// Fault-injection framework (paper §5.1: "By the means of fault injection,
// we get the information in Table 1-3").
//
// Injects the three unhealthy situations the paper evaluates — process
// death, node crash, single-network-interface failure — plus restores and
// scripted scenarios. Every injection is journaled with its simulated time
// so the benches can compute detection latency against the kernel's
// FaultLog.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/daemon.h"

namespace phoenix::faults {

struct InjectionRecord {
  sim::SimTime at = 0;
  std::string what;
};

class FaultInjector {
 public:
  explicit FaultInjector(cluster::Cluster& cluster) : cluster_(cluster) {}

  /// Kills a daemon process (SIGKILL semantics: no cleanup, no notice).
  sim::SimTime kill_daemon(cluster::Daemon& daemon);

  /// Powers a node off: daemons and processes die, links drop.
  sim::SimTime crash_node(net::NodeId node);

  /// Powers a crashed node back on (daemons stay down until restarted).
  sim::SimTime restore_node(net::NodeId node);

  /// Fails one network interface of one node.
  sim::SimTime cut_interface(net::NodeId node, net::NetworkId network);
  sim::SimTime restore_interface(net::NodeId node, net::NetworkId network);

  /// Partitions the given network cluster-wide (every node's interface on
  /// that network goes down) — a switch failure.
  sim::SimTime fail_network(net::NetworkId network);
  sim::SimTime restore_network(net::NetworkId network);

  /// One-directional blackhole: every message from `from` to `to` (all
  /// networks) silently vanishes; the reverse direction keeps flowing. This
  /// is the asymmetric-partition primitive that fools silence-based failure
  /// detection — `from` looks dead from `to`'s side only.
  sim::SimTime block_link(net::NodeId from, net::NodeId to);
  sim::SimTime unblock_link(net::NodeId from, net::NodeId to);
  sim::SimTime clear_blocked_links();

  /// Slow node: every message `node` sends arrives `delay` late (heartbeats
  /// late but the node is not dead). 0 restores full speed.
  sim::SimTime slow_node(net::NodeId node, sim::SimTime delay);
  sim::SimTime restore_node_speed(net::NodeId node);

  /// Independent per-message loss probability on every network (lossy
  /// datagram weather; 0 restores perfect delivery).
  sim::SimTime set_packet_loss(double probability);

  /// Drops the next `count` fabric messages addressed to `to`, then lets
  /// traffic through again — targeted reply loss, the classic trigger for
  /// client retransmission and server-side replay.
  sim::SimTime drop_next_to(net::Address to, unsigned count);

  /// Removes any targeted drop filter installed by drop_next_to.
  sim::SimTime clear_message_drops();

  /// Schedules an arbitrary injection at an absolute simulated time.
  void schedule(sim::SimTime at, std::function<void()> action, std::string label);

  /// Schedules without adding a journal entry of its own — used by the
  /// Scenario compiler, whose steps journal through the verbs they invoke
  /// (a labelled schedule() would double-record every step).
  void schedule_silent(sim::SimTime at, std::function<void()> action);

  const std::vector<InjectionRecord>& history() const noexcept { return history_; }
  void clear_history() { history_.clear(); }

 private:
  sim::SimTime record(std::string what);

  cluster::Cluster& cluster_;
  std::vector<InjectionRecord> history_;
};

}  // namespace phoenix::faults
