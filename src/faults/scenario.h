// Declarative fault scenarios.
//
// A Scenario is a time-ordered script of injections built with a fluent
// cursor API and compiled onto a FaultInjector at run time. It widens the
// paper's three benign fault classes (process death, node crash, NIC
// failure) into the adversarial shapes that stress a failure detector:
//
//   partition_asymmetric(a, b)   one-directional blackhole a -> b
//   flap_link(node, net, ...)    an interface that bounces down and up
//   crash_rack({n1, n2, ...})    correlated simultaneous node deaths
//   slow_node(node, delay)       heartbeats late, node not dead
//   restart_storm(daemon, n, g)  a daemon that keeps dying after recovery
//   crash_zone(kernel, z)        every node of a group-topology zone dies
//   partition_zone(kernel, z)    the zone is blackholed from the rest
//
// Every step fires through the injector's journaled verbs, so the benches
// read a complete injection history with simulated timestamps; the script
// itself is inert data until apply() schedules it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_injector.h"

namespace phoenix::kernel {
class PhoenixKernel;
}

namespace phoenix::faults {

class Scenario {
 public:
  Scenario() = default;

  // --- time cursor ----------------------------------------------------------
  //
  // Steps fire at the cursor's offset, measured from the base time passed to
  // apply(). Primitive verbs do not move the cursor; composites with an
  // intrinsic duration (flap_link, restart_storm) advance it past their last
  // action so scripts read top-to-bottom.

  /// Moves the cursor to an absolute offset from the apply() base.
  Scenario& at(sim::SimTime offset);
  /// Advances the cursor.
  Scenario& after(sim::SimTime delta);

  // --- primitive verbs ------------------------------------------------------

  Scenario& kill_daemon(cluster::Daemon& daemon);
  Scenario& crash_node(net::NodeId node);
  Scenario& restore_node(net::NodeId node);
  Scenario& cut_interface(net::NodeId node, net::NetworkId network);
  Scenario& restore_interface(net::NodeId node, net::NetworkId network);
  Scenario& fail_network(net::NetworkId network);
  Scenario& restore_network(net::NetworkId network);
  Scenario& slow_node(net::NodeId node, sim::SimTime delay);
  Scenario& restore_node_speed(net::NodeId node);

  // --- adversarial composites -----------------------------------------------

  /// One-directional partition: every message a -> b silently vanishes while
  /// b -> a keeps flowing — a looks dead from b's side only.
  Scenario& partition_asymmetric(net::NodeId a, net::NodeId b);
  Scenario& heal_asymmetric(net::NodeId a, net::NodeId b);

  /// The interface flaps: down at the cursor, up half a period later,
  /// repeated `cycles` times. Advances the cursor by cycles * period.
  Scenario& flap_link(net::NodeId node, net::NetworkId network,
                      sim::SimTime period, int cycles);

  /// Correlated failure: every node of the rack dies at the same instant.
  Scenario& crash_rack(const std::vector<net::NodeId>& nodes);
  Scenario& restore_rack(const std::vector<net::NodeId>& nodes);

  /// Restart storm: the daemon is killed `n` times, `gap` apart (recovery
  /// restarts it in between). Advances the cursor by (n - 1) * gap.
  Scenario& restart_storm(cluster::Daemon& daemon, int n, sim::SimTime gap);

  // --- zone verbs (zoned group topology) ------------------------------------
  //
  // The node set of a zone is resolved at script-build time from the
  // kernel's static zone map and GSD placement; the script itself stays
  // inert data like every other verb.

  /// Correlated zone failure: every node hosting one of `zone`'s GSD
  /// partitions crashes at the cursor — the whole sub-ring dies at once and
  /// detection falls to the top ring.
  Scenario& crash_zone(kernel::PhoenixKernel& kernel, std::uint32_t zone);
  Scenario& restore_zone(kernel::PhoenixKernel& kernel, std::uint32_t zone);

  /// Network partition of the zone: every link between a zone node and any
  /// node outside it is blackholed in both directions. Links among the
  /// zone's own nodes keep flowing, so the sub-ring stays internally healthy
  /// while its leader vanishes from the top ring.
  Scenario& partition_zone(kernel::PhoenixKernel& kernel, std::uint32_t zone);
  Scenario& heal_zone(kernel::PhoenixKernel& kernel, std::uint32_t zone);

  /// Escape hatch for injections the vocabulary lacks; `fn` runs at the
  /// cursor and should journal through the injector it receives.
  Scenario& run(std::function<void(FaultInjector&)> fn);

  /// Current cursor offset.
  sim::SimTime cursor() const noexcept { return cursor_; }
  /// Offset of the latest scheduled step (sizes the observation window).
  sim::SimTime duration() const noexcept { return last_; }
  std::size_t step_count() const noexcept { return steps_.size(); }

  /// Compiles the script: every step becomes a scheduled injection at
  /// `base + offset`. The injector must outlive the simulation run.
  void apply(FaultInjector& injector, sim::SimTime base) const;

 private:
  struct Step {
    sim::SimTime offset = 0;
    std::function<void(FaultInjector&)> fire;
  };

  Scenario& add(std::function<void(FaultInjector&)> fire);
  Scenario& add_at(sim::SimTime offset, std::function<void(FaultInjector&)> fire);

  std::vector<Step> steps_;
  sim::SimTime cursor_ = 0;
  sim::SimTime last_ = 0;
};

}  // namespace phoenix::faults
