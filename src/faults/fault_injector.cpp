#include "faults/fault_injector.h"

#include <memory>
#include <utility>

namespace phoenix::faults {

sim::SimTime FaultInjector::record(std::string what) {
  const sim::SimTime t = cluster_.now();
  history_.push_back(InjectionRecord{t, std::move(what)});
  return t;
}

sim::SimTime FaultInjector::kill_daemon(cluster::Daemon& daemon) {
  daemon.kill();
  return record("kill " + daemon.name() + " on node " +
                std::to_string(daemon.node_id().value));
}

sim::SimTime FaultInjector::crash_node(net::NodeId node) {
  cluster_.crash_node(node);
  return record("crash node " + std::to_string(node.value));
}

sim::SimTime FaultInjector::restore_node(net::NodeId node) {
  cluster_.restore_node(node);
  return record("restore node " + std::to_string(node.value));
}

sim::SimTime FaultInjector::cut_interface(net::NodeId node, net::NetworkId network) {
  cluster_.fabric().set_interface_up(node, network, false);
  return record("cut node " + std::to_string(node.value) + " network " +
                std::to_string(network.value));
}

sim::SimTime FaultInjector::restore_interface(net::NodeId node,
                                              net::NetworkId network) {
  cluster_.fabric().set_interface_up(node, network, true);
  return record("restore node " + std::to_string(node.value) + " network " +
                std::to_string(network.value));
}

sim::SimTime FaultInjector::fail_network(net::NetworkId network) {
  for (const auto& node : cluster_.nodes()) {
    cluster_.fabric().set_interface_up(node.id(), network, false);
  }
  return record("fail network " + std::to_string(network.value));
}

sim::SimTime FaultInjector::restore_network(net::NetworkId network) {
  for (const auto& node : cluster_.nodes()) {
    cluster_.fabric().set_interface_up(node.id(), network, true);
  }
  return record("restore network " + std::to_string(network.value));
}

sim::SimTime FaultInjector::block_link(net::NodeId from, net::NodeId to) {
  cluster_.fabric().set_link_blocked(from, to, true);
  return record("block link " + std::to_string(from.value) + " -> " +
                std::to_string(to.value));
}

sim::SimTime FaultInjector::unblock_link(net::NodeId from, net::NodeId to) {
  cluster_.fabric().set_link_blocked(from, to, false);
  return record("unblock link " + std::to_string(from.value) + " -> " +
                std::to_string(to.value));
}

sim::SimTime FaultInjector::clear_blocked_links() {
  cluster_.fabric().clear_blocked_links();
  return record("clear blocked links");
}

sim::SimTime FaultInjector::slow_node(net::NodeId node, sim::SimTime delay) {
  cluster_.fabric().set_node_send_delay(node, delay);
  return record("slow node " + std::to_string(node.value) + " by " +
                std::to_string(delay) + "us");
}

sim::SimTime FaultInjector::restore_node_speed(net::NodeId node) {
  cluster_.fabric().set_node_send_delay(node, 0);
  return record("restore node " + std::to_string(node.value) + " speed");
}

sim::SimTime FaultInjector::set_packet_loss(double probability) {
  cluster_.fabric().latency_model().loss_probability = probability;
  return record("packet loss " + std::to_string(probability));
}

sim::SimTime FaultInjector::drop_next_to(net::Address to, unsigned count) {
  auto remaining = std::make_shared<unsigned>(count);
  cluster_.fabric().set_drop_filter(
      [remaining, to](const net::Address&, const net::Address& dest,
                      const net::Message&) {
        if (*remaining == 0 || dest != to) return false;
        --*remaining;
        return true;
      });
  return record("drop next " + std::to_string(count) + " messages to node " +
                std::to_string(to.node.value) + " port " +
                std::to_string(to.port.value));
}

sim::SimTime FaultInjector::clear_message_drops() {
  cluster_.fabric().set_drop_filter(nullptr);
  return record("clear message drops");
}

void FaultInjector::schedule(sim::SimTime at, std::function<void()> action,
                             std::string label) {
  cluster_.engine().schedule_at(
      at, [this, action = std::move(action), label = std::move(label)] {
        record(label);
        action();
      });
}

void FaultInjector::schedule_silent(sim::SimTime at, std::function<void()> action) {
  cluster_.engine().schedule_at(at, std::move(action));
}

}  // namespace phoenix::faults
