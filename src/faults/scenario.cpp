#include "faults/scenario.h"

#include <algorithm>

#include "kernel/kernel.h"

namespace phoenix::faults {

namespace {

/// Nodes hosting a zone's GSD partitions, deduplicated, in zone-ring order.
std::vector<net::NodeId> zone_nodes(kernel::PhoenixKernel& kernel,
                                    std::uint32_t zone) {
  const auto zones = kernel::ZoneTopology::from(kernel.params().topology,
                                                kernel.partition_count());
  std::vector<net::NodeId> out;
  for (net::PartitionId p : zones.zone_members(zone)) {
    const net::NodeId n =
        kernel.service_node(kernel::ServiceKind::kGroupService, p);
    if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
  }
  return out;
}

/// Every cluster node NOT in `members`.
std::vector<net::NodeId> other_nodes(kernel::PhoenixKernel& kernel,
                                     const std::vector<net::NodeId>& members) {
  std::vector<net::NodeId> out;
  const auto total = kernel.cluster().node_count();
  for (std::size_t i = 0; i < total; ++i) {
    const net::NodeId n{static_cast<std::uint32_t>(i)};
    if (std::find(members.begin(), members.end(), n) == members.end())
      out.push_back(n);
  }
  return out;
}

}  // namespace

Scenario& Scenario::at(sim::SimTime offset) {
  cursor_ = offset;
  return *this;
}

Scenario& Scenario::after(sim::SimTime delta) {
  cursor_ += delta;
  return *this;
}

Scenario& Scenario::add(std::function<void(FaultInjector&)> fire) {
  return add_at(cursor_, std::move(fire));
}

Scenario& Scenario::add_at(sim::SimTime offset,
                           std::function<void(FaultInjector&)> fire) {
  steps_.push_back(Step{offset, std::move(fire)});
  last_ = std::max(last_, offset);
  return *this;
}

Scenario& Scenario::kill_daemon(cluster::Daemon& daemon) {
  return add([&daemon](FaultInjector& inj) { inj.kill_daemon(daemon); });
}

Scenario& Scenario::crash_node(net::NodeId node) {
  return add([node](FaultInjector& inj) { inj.crash_node(node); });
}

Scenario& Scenario::restore_node(net::NodeId node) {
  return add([node](FaultInjector& inj) { inj.restore_node(node); });
}

Scenario& Scenario::cut_interface(net::NodeId node, net::NetworkId network) {
  return add([node, network](FaultInjector& inj) {
    inj.cut_interface(node, network);
  });
}

Scenario& Scenario::restore_interface(net::NodeId node, net::NetworkId network) {
  return add([node, network](FaultInjector& inj) {
    inj.restore_interface(node, network);
  });
}

Scenario& Scenario::fail_network(net::NetworkId network) {
  return add([network](FaultInjector& inj) { inj.fail_network(network); });
}

Scenario& Scenario::restore_network(net::NetworkId network) {
  return add([network](FaultInjector& inj) { inj.restore_network(network); });
}

Scenario& Scenario::slow_node(net::NodeId node, sim::SimTime delay) {
  return add([node, delay](FaultInjector& inj) { inj.slow_node(node, delay); });
}

Scenario& Scenario::restore_node_speed(net::NodeId node) {
  return add([node](FaultInjector& inj) { inj.restore_node_speed(node); });
}

Scenario& Scenario::partition_asymmetric(net::NodeId a, net::NodeId b) {
  return add([a, b](FaultInjector& inj) { inj.block_link(a, b); });
}

Scenario& Scenario::heal_asymmetric(net::NodeId a, net::NodeId b) {
  return add([a, b](FaultInjector& inj) { inj.unblock_link(a, b); });
}

Scenario& Scenario::flap_link(net::NodeId node, net::NetworkId network,
                              sim::SimTime period, int cycles) {
  for (int c = 0; c < cycles; ++c) {
    const sim::SimTime down = cursor_ + c * period;
    add_at(down, [node, network](FaultInjector& inj) {
      inj.cut_interface(node, network);
    });
    add_at(down + period / 2, [node, network](FaultInjector& inj) {
      inj.restore_interface(node, network);
    });
  }
  cursor_ += static_cast<sim::SimTime>(cycles) * period;
  return *this;
}

Scenario& Scenario::crash_rack(const std::vector<net::NodeId>& nodes) {
  return add([nodes](FaultInjector& inj) {
    for (net::NodeId n : nodes) inj.crash_node(n);
  });
}

Scenario& Scenario::restore_rack(const std::vector<net::NodeId>& nodes) {
  return add([nodes](FaultInjector& inj) {
    for (net::NodeId n : nodes) inj.restore_node(n);
  });
}

Scenario& Scenario::restart_storm(cluster::Daemon& daemon, int n,
                                  sim::SimTime gap) {
  for (int k = 0; k < n; ++k) {
    add_at(cursor_ + k * gap,
           [&daemon](FaultInjector& inj) { inj.kill_daemon(daemon); });
  }
  if (n > 1) cursor_ += static_cast<sim::SimTime>(n - 1) * gap;
  return *this;
}

Scenario& Scenario::crash_zone(kernel::PhoenixKernel& kernel,
                               std::uint32_t zone) {
  return crash_rack(zone_nodes(kernel, zone));
}

Scenario& Scenario::restore_zone(kernel::PhoenixKernel& kernel,
                                 std::uint32_t zone) {
  return restore_rack(zone_nodes(kernel, zone));
}

Scenario& Scenario::partition_zone(kernel::PhoenixKernel& kernel,
                                   std::uint32_t zone) {
  const std::vector<net::NodeId> inside = zone_nodes(kernel, zone);
  const std::vector<net::NodeId> outside = other_nodes(kernel, inside);
  return add([inside, outside](FaultInjector& inj) {
    for (net::NodeId a : inside) {
      for (net::NodeId b : outside) {
        inj.block_link(a, b);
        inj.block_link(b, a);
      }
    }
  });
}

Scenario& Scenario::heal_zone(kernel::PhoenixKernel& kernel,
                              std::uint32_t zone) {
  const std::vector<net::NodeId> inside = zone_nodes(kernel, zone);
  const std::vector<net::NodeId> outside = other_nodes(kernel, inside);
  return add([inside, outside](FaultInjector& inj) {
    for (net::NodeId a : inside) {
      for (net::NodeId b : outside) {
        inj.unblock_link(a, b);
        inj.unblock_link(b, a);
      }
    }
  });
}

Scenario& Scenario::run(std::function<void(FaultInjector&)> fn) {
  return add(std::move(fn));
}

void Scenario::apply(FaultInjector& injector, sim::SimTime base) const {
  for (const Step& step : steps_) {
    injector.schedule_silent(base + step.offset,
                             [fire = step.fire, &injector] { fire(injector); });
  }
}

}  // namespace phoenix::faults
