#include "pws/portal.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "kernel/bulletin/data_bulletin.h"

namespace phoenix::pws {

namespace {
constexpr net::PortId kPortalPort{22};
}  // namespace

Portal::Portal(cluster::Cluster& cluster, net::NodeId node,
               kernel::PhoenixKernel& kernel, net::Address scheduler,
               sim::SimTime refresh_interval)
    : Daemon(cluster, "pws.portal", node, kPortalPort),
      kernel_(kernel),
      scheduler_(scheduler),
      refresher_(cluster.engine(), refresh_interval, [this] { refresh(); }) {}

void Portal::on_start() { refresher_.start_after(1 * sim::kSecond); }

void Portal::on_stop() { refresher_.stop(); }

void Portal::refresh() {
  if (!alive()) return;
  auto jobs_query = std::make_shared<PwsQueryMsg>();
  pending_jobs_query_ = next_request_id_++;
  jobs_query->request_id = pending_jobs_query_;
  jobs_query->reply_to = address();
  send_any(scheduler_, std::move(jobs_query));

  auto nodes_query = std::make_shared<kernel::DbQueryMsg>();
  pending_nodes_query_ = next_request_id_++;
  nodes_query->query_id = pending_nodes_query_;
  nodes_query->table = kernel::BulletinTable::kNodes;
  nodes_query->cluster_scope = true;
  nodes_query->reply_to = address();
  send_any(kernel_.service_address(kernel::ServiceKind::kDataBulletin,
                                   cluster().partition_of(node_id())),
           std::move(nodes_query));
}

void Portal::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;
  if (const auto* reply = net::message_cast<PwsQueryReplyMsg>(m)) {
    if (reply->request_id != pending_jobs_query_) return;
    jobs_ = reply->jobs;
    std::sort(jobs_.begin(), jobs_.end(),
              [](const Job& a, const Job& b) { return a.id < b.id; });
    ++refreshes_;
    return;
  }
  if (const auto* reply = net::message_cast<kernel::DbQueryReplyMsg>(m)) {
    if (reply->query_id != pending_nodes_query_) return;
    nodes_ = reply->node_rows;
    return;
  }
}

bool Portal::shutdown_node(net::NodeId node) {
  if (node.value >= kernel_.cluster().node_count()) return false;
  if (!kernel_.cluster().node(node).alive()) return false;
  kernel_.cluster().crash_node(node);  // clean power-off: everything stops
  return true;
}

bool Portal::start_node(net::NodeId node) {
  if (node.value >= kernel_.cluster().node_count()) return false;
  if (kernel_.cluster().node(node).alive()) return false;
  kernel_.cluster().restore_node(node);
  kernel_.ppm(node).start();
  kernel_.detector(node).start();
  kernel_.watch_daemon(node).start();
  return true;
}

std::string Portal::render() const {
  std::ostringstream out;
  char line[192];

  out << "+================ Phoenix-PWS Integrated Portal ================+\n";
  out << "| Jobs:\n";
  std::snprintf(line, sizeof(line), "| %-5s %-10s %-8s %-10s %-5s %-10s %s\n",
                "id", "name", "user", "pool", "nodes", "state", "prio");
  out << line;
  std::size_t shown = 0;
  for (const auto& job : jobs_) {
    if (++shown > 20) {
      std::snprintf(line, sizeof(line), "|   ... %zu more\n", jobs_.size() - 20);
      out << line;
      break;
    }
    std::snprintf(line, sizeof(line), "| %-5llu %-10s %-8s %-10s %-5u %-10s %d\n",
                  static_cast<unsigned long long>(job.id), job.name.c_str(),
                  job.user.c_str(), job.pool.c_str(), job.nodes_needed,
                  std::string(to_string(job.state)).c_str(), job.priority);
    out << line;
  }

  out << "| Nodes ('#'=busy, '.'=idle, 'x'=down):\n| ";
  // Node grid from the bulletin rows, ordered by id; nodes absent from the
  // bulletin (crashed/stale) render as down.
  std::map<std::uint32_t, const kernel::NodeRecord*> by_id;
  for (const auto& row : nodes_) by_id[row.node.value] = &row;
  for (std::size_t n = 0; n < kernel_.cluster().node_count(); ++n) {
    const auto it = by_id.find(static_cast<std::uint32_t>(n));
    char c = 'x';
    if (it != by_id.end() && it->second->alive) {
      c = it->second->usage.cpu_pct > 50.0 ? '#' : '.';
    }
    out << c;
    if ((n + 1) % 32 == 0 && n + 1 < kernel_.cluster().node_count()) out << "\n| ";
  }
  out << "\n| Controls: start/shutdown nodes via Portal::start_node / shutdown_node\n";
  out << "+================================================================+\n";
  return out.str();
}

}  // namespace phoenix::pws
