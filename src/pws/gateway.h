// Client-side submission gateway (DESIGN.md §13).
//
// A flash crowd of tenants — the paper's 1M-user grid scenario — must not
// translate into one scheduler RPC per job. The gateway sits next to the
// users (a portal front-end, in the paper's terms) and coalesces their
// submissions into PwsSubmitBatchMsg windows:
//
//   - a time/size window (flush_interval, max_batch) bounds both the added
//     latency and the batch wire size;
//   - batch assembly is weighted deficit-round-robin across tenants, so one
//     job-spamming tenant cannot monopolize a window — every backlogged
//     tenant drains in proportion to its weight;
//   - a cancel that arrives while its submission is still queued locally is
//     absorbed in the gateway (the scheduler never sees either message);
//   - each batch is retried on a timer until its reply arrives; the
//     scheduler's ReplayCache makes the retransmit idempotent, so a lost
//     reply costs a retry, not duplicate jobs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "obs/metrics.h"
#include "pws/scheduler.h"

namespace phoenix::pws {

struct GatewayConfig {
  /// The PWS scheduler this gateway feeds.
  net::Address scheduler;
  /// Batch window: a flush fires every interval while work is queued.
  sim::SimTime flush_interval = 10 * sim::kMillisecond;
  /// Jobs per batch message; a window with more backlog sends several.
  std::size_t max_batch = 256;
  /// Retransmit a batch whose reply has not arrived after this long.
  sim::SimTime retry_timeout = 2 * sim::kSecond;
  /// Retransmissions allowed per batch before giving up (kUnavailable).
  int max_retries = 4;
  /// Fair-queuing weight for tenants not listed in tenant_weights.
  double default_weight = 1.0;
  /// Per-tenant fair-queuing weights (user name -> weight).
  std::map<std::string, double> tenant_weights;
};

struct GatewayStats {
  std::uint64_t submitted = 0;         // tickets issued
  std::uint64_t absorbed_cancels = 0;  // cancelled before ever being sent
  std::uint64_t batches_sent = 0;      // first transmissions
  std::uint64_t retries = 0;           // retransmissions
  std::uint64_t replies = 0;           // batch replies consumed
  std::uint64_t accepted = 0;          // per-job kAccepted verdicts
  std::uint64_t denied = 0;            // per-job kAdmissionDenied verdicts
  std::uint64_t failed = 0;            // per-job kUnavailable (budget spent)
  std::uint64_t cancels_sent = 0;      // remote cancels shipped in batches
};

class SubmissionGateway final : public cluster::Daemon {
 public:
  /// Gateway-local handle for a submission; valid until its callback runs.
  using Ticket = std::uint64_t;
  /// Invoked exactly once per ticket with the final verdict (the job id is
  /// 0 unless status == kAccepted).
  using SubmitCallback = std::function<void(Ticket, const BatchSubmitResult&)>;

  SubmissionGateway(cluster::Cluster& cluster, net::NodeId node,
                    GatewayConfig config);
  ~SubmissionGateway() override;

  /// Queues a submission into the current window. The callback fires when
  /// the scheduler's verdict arrives (or the retry budget is spent).
  Ticket submit(const SubmitRequest& request, SubmitCallback callback = {});

  /// Absorbs a submission that is still queued locally: its callback fires
  /// with kCancelled and nothing is ever sent. False once it left in a
  /// batch — cancel the job by id (from the callback) instead.
  bool cancel(Ticket ticket);

  /// Queues a remote cancellation for an already-scheduled job; batched
  /// and retried like submissions.
  void cancel_job(JobId id);

  /// Sends every assembled batch now instead of waiting for the window.
  void flush();

  const GatewayStats& stats() const noexcept { return stats_; }
  /// Submissions queued locally, not yet shipped.
  std::size_t backlog() const noexcept { return backlog_; }
  /// Batches on the wire awaiting a reply.
  std::size_t inflight() const noexcept {
    return inflight_.size() + inflight_cancels_.size();
  }

 private:
  struct PendingItem {
    Ticket ticket = 0;
    SubmitRequest request;
    SubmitCallback callback;
    sim::SimTime created_at = 0;
  };
  struct TenantQueue {
    std::deque<PendingItem> items;
    double weight = 1.0;
    double deficit = 0.0;
    bool active = false;  // already listed in active_
  };
  struct InflightBatch {
    std::shared_ptr<PwsSubmitBatchMsg> message;
    std::vector<PendingItem> items;  // request order == results order
    int attempts = 1;
  };
  struct InflightCancel {
    std::shared_ptr<PwsCancelBatchMsg> message;
    int attempts = 1;
  };

  void handle(const net::Envelope& env) override;
  void on_start() override;
  void on_stop() override;

  TenantQueue& tenant(const std::string& user);
  std::vector<PendingItem> assemble_batch();
  void send_batch(std::vector<PendingItem> items);
  void send_cancel_batch();
  void arm_retry(std::uint64_t request_id, bool is_cancel);
  void finish_item(const PendingItem& item, const BatchSubmitResult& result);

  GatewayConfig config_;
  std::unordered_map<std::uint32_t, TenantQueue> tenants_;  // user SymbolId ->
  std::vector<std::uint32_t> active_;  // activation order: deterministic DRR
  std::unordered_map<Ticket, std::uint32_t> ticket_tenant_;
  std::vector<JobId> pending_cancels_;
  std::unordered_map<std::uint64_t, InflightBatch> inflight_;
  std::unordered_map<std::uint64_t, InflightCancel> inflight_cancels_;
  std::size_t backlog_ = 0;
  Ticket next_ticket_ = 1;
  std::uint64_t next_request_id_ = 1;
  GatewayStats stats_;

  obs::Registry* metrics_ = nullptr;
  obs::Histogram* submit_latency_us_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Counter* batches_ctr_ = nullptr;
  obs::Counter* absorbed_ctr_ = nullptr;
  obs::Counter* retries_ctr_ = nullptr;
  std::uint64_t probe_id_ = 0;

  sim::PeriodicTask ticker_;
};

}  // namespace phoenix::pws
