#include "pws/gateway.h"

#include <algorithm>
#include <utility>

#include "net/symbol.h"

namespace phoenix::pws {

SubmissionGateway::SubmissionGateway(cluster::Cluster& cluster, net::NodeId node,
                                     GatewayConfig config)
    : Daemon(cluster, "pws.gateway", node, cluster::ports::kPwsGateway),
      config_(std::move(config)),
      ticker_(cluster.engine(), config_.flush_interval, [this] { flush(); }) {
  metrics_ = &cluster.metrics();
  submit_latency_us_ = metrics_->histogram("pws.gateway.submit_latency_us");
  batch_size_hist_ = metrics_->histogram("pws.gateway.batch_size");
  batches_ctr_ = metrics_->counter("pws.gateway.batches");
  absorbed_ctr_ = metrics_->counter("pws.gateway.absorbed_cancels");
  retries_ctr_ = metrics_->counter("pws.gateway.retries");
  probe_id_ = metrics_->register_probe([this](obs::Registry& r) {
    if (!alive()) return;
    r.gauge("pws.gateway.backlog")->set(static_cast<double>(backlog_));
    r.gauge("pws.gateway.inflight")->set(static_cast<double>(inflight()));
  });
  start();
}

SubmissionGateway::~SubmissionGateway() {
  if (metrics_ != nullptr && probe_id_ != 0) metrics_->unregister_probe(probe_id_);
}

void SubmissionGateway::on_start() {
  ticker_.set_period(config_.flush_interval);
  ticker_.start_after(config_.flush_interval);
}

void SubmissionGateway::on_stop() { ticker_.stop(); }

SubmissionGateway::TenantQueue& SubmissionGateway::tenant(const std::string& user) {
  const auto sym = net::intern_symbol(user);
  auto [it, inserted] = tenants_.try_emplace(sym.value);
  if (inserted) {
    auto weight_it = config_.tenant_weights.find(user);
    const double weight = weight_it == config_.tenant_weights.end()
                              ? config_.default_weight
                              : weight_it->second;
    // A zero/negative weight would starve DRR forever; clamp instead.
    it->second.weight = std::max(1e-3, weight);
  }
  if (!it->second.active) {
    it->second.active = true;
    active_.push_back(sym.value);
  }
  return it->second;
}

SubmissionGateway::Ticket SubmissionGateway::submit(const SubmitRequest& request,
                                                    SubmitCallback callback) {
  const Ticket ticket = next_ticket_++;
  TenantQueue& queue = tenant(request.user);
  queue.items.push_back(
      PendingItem{ticket, request, std::move(callback), now()});
  ticket_tenant_[ticket] = net::intern_symbol(request.user).value;
  ++backlog_;
  ++stats_.submitted;
  return ticket;
}

bool SubmissionGateway::cancel(Ticket ticket) {
  auto where = ticket_tenant_.find(ticket);
  if (where == ticket_tenant_.end()) return false;  // already shipped (or done)
  auto tenant_it = tenants_.find(where->second);
  if (tenant_it == tenants_.end()) return false;
  auto& items = tenant_it->second.items;
  auto item_it = std::find_if(items.begin(), items.end(), [&](const PendingItem& p) {
    return p.ticket == ticket;
  });
  if (item_it == items.end()) return false;
  PendingItem item = std::move(*item_it);
  items.erase(item_it);
  --backlog_;
  ++stats_.absorbed_cancels;
  if (metrics_->enabled()) absorbed_ctr_->inc();
  finish_item(item, BatchSubmitResult{0, SubmitStatus::kCancelled});
  return true;
}

void SubmissionGateway::cancel_job(JobId id) { pending_cancels_.push_back(id); }

void SubmissionGateway::finish_item(const PendingItem& item,
                                    const BatchSubmitResult& result) {
  ticket_tenant_.erase(item.ticket);
  switch (result.status) {
    case SubmitStatus::kAccepted: ++stats_.accepted; break;
    case SubmitStatus::kAdmissionDenied: ++stats_.denied; break;
    case SubmitStatus::kUnavailable: ++stats_.failed; break;
    default: break;
  }
  if (metrics_->enabled()) {
    submit_latency_us_->record(static_cast<std::uint64_t>(now() - item.created_at));
  }
  if (item.callback) item.callback(item.ticket, result);
}

std::vector<SubmissionGateway::PendingItem> SubmissionGateway::assemble_batch() {
  // Weighted deficit round-robin over the backlogged tenants, in activation
  // order: each round a tenant earns `weight` credits and ships one queued
  // job per credit, so a spammer with weight 1 gets exactly one slot per
  // round no matter how deep its queue is.
  std::vector<PendingItem> batch;
  while (batch.size() < config_.max_batch && backlog_ > 0) {
    bool accrued = false;
    for (std::size_t i = 0; i < active_.size() && batch.size() < config_.max_batch;
         ++i) {
      auto tenant_it = tenants_.find(active_[i]);
      if (tenant_it == tenants_.end() || tenant_it->second.items.empty()) continue;
      TenantQueue& queue = tenant_it->second;
      queue.deficit += queue.weight;  // weights < 1 fire every few rounds
      accrued = true;
      while (queue.deficit >= 1.0 && !queue.items.empty() &&
             batch.size() < config_.max_batch) {
        queue.deficit -= 1.0;
        batch.push_back(std::move(queue.items.front()));
        queue.items.pop_front();
        --backlog_;
      }
      if (queue.items.empty()) queue.deficit = 0.0;  // credits don't bank idle
    }
    if (!accrued) break;  // defensive: backlog_ out of step with the queues
  }
  // Compact the activation list once everything drained (keeps DRR order
  // stable while a burst is in progress, bounds the list between bursts).
  if (backlog_ == 0) {
    for (const std::uint32_t sym : active_) {
      auto it = tenants_.find(sym);
      if (it != tenants_.end()) it->second.active = false;
    }
    active_.clear();
  }
  return batch;
}

void SubmissionGateway::send_batch(std::vector<PendingItem> items) {
  auto batch = std::make_shared<PwsSubmitBatchMsg>();
  batch->reply_to = address();
  batch->request_id = next_request_id_++;
  batch->requests.reserve(items.size());
  for (const PendingItem& item : items) {
    ticket_tenant_.erase(item.ticket);  // shipped: no longer locally cancellable
    batch->requests.push_back(item.request);
  }
  ++stats_.batches_sent;
  if (metrics_->enabled()) {
    batches_ctr_->inc();
    batch_size_hist_->record(items.size());
  }
  inflight_.emplace(batch->request_id,
                    InflightBatch{batch, std::move(items), 1});
  send_any(config_.scheduler, batch);
  arm_retry(batch->request_id, /*is_cancel=*/false);
}

void SubmissionGateway::send_cancel_batch() {
  auto batch = std::make_shared<PwsCancelBatchMsg>();
  batch->reply_to = address();
  batch->request_id = next_request_id_++;
  batch->job_ids = std::move(pending_cancels_);
  pending_cancels_.clear();
  stats_.cancels_sent += batch->job_ids.size();
  inflight_cancels_.emplace(batch->request_id, InflightCancel{batch, 1});
  send_any(config_.scheduler, batch);
  arm_retry(batch->request_id, /*is_cancel=*/true);
}

void SubmissionGateway::flush() {
  if (!alive()) return;
  while (backlog_ > 0) {
    std::vector<PendingItem> items = assemble_batch();
    if (items.empty()) break;
    send_batch(std::move(items));
  }
  if (!pending_cancels_.empty()) send_cancel_batch();
}

void SubmissionGateway::arm_retry(std::uint64_t request_id, bool is_cancel) {
  engine().schedule_after(config_.retry_timeout, [this, request_id, is_cancel] {
    if (!alive()) return;
    if (is_cancel) {
      auto it = inflight_cancels_.find(request_id);
      if (it == inflight_cancels_.end()) return;  // reply arrived
      if (it->second.attempts > config_.max_retries) {
        inflight_cancels_.erase(it);  // give up silently; cancel is advisory
        return;
      }
      ++it->second.attempts;
      ++stats_.retries;
      if (metrics_->enabled()) retries_ctr_->inc();
      send_any(config_.scheduler, it->second.message);
      arm_retry(request_id, true);
      return;
    }
    auto it = inflight_.find(request_id);
    if (it == inflight_.end()) return;  // reply arrived
    if (it->second.attempts > config_.max_retries) {
      // Budget spent with no verdict: surface kUnavailable. The scheduler
      // may have executed the batch (reply lost) — the caller can query.
      InflightBatch failed = std::move(it->second);
      inflight_.erase(it);
      for (const PendingItem& item : failed.items) {
        finish_item(item, BatchSubmitResult{0, SubmitStatus::kUnavailable});
      }
      return;
    }
    ++it->second.attempts;
    ++stats_.retries;
    if (metrics_->enabled()) retries_ctr_->inc();
    send_any(config_.scheduler, it->second.message);
    arm_retry(request_id, false);
  });
}

void SubmissionGateway::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;
  if (const auto* reply = net::message_cast<PwsSubmitBatchReplyMsg>(m)) {
    auto it = inflight_.find(reply->request_id);
    if (it == inflight_.end()) return;  // duplicate reply of a served retry
    InflightBatch done = std::move(it->second);
    inflight_.erase(it);
    ++stats_.replies;
    for (std::size_t i = 0; i < done.items.size(); ++i) {
      const BatchSubmitResult result = i < reply->results.size()
                                           ? reply->results[i]
                                           : BatchSubmitResult{0, SubmitStatus::kUnavailable};
      finish_item(done.items[i], result);
    }
    return;
  }
  if (const auto* reply = net::message_cast<PwsCancelBatchReplyMsg>(m)) {
    inflight_cancels_.erase(reply->request_id);
    return;
  }
}

}  // namespace phoenix::pws
