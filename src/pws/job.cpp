#include "pws/job.h"

#include <sstream>

namespace phoenix::pws {

std::string_view to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kAuthorizing: return "authorizing";
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kRejected: return "rejected";
    case JobState::kCancelled: return "cancelled";
    case JobState::kTimedOut: return "timed-out";
  }
  return "?";
}

std::string_view to_string(SubmitStatus status) noexcept {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kAdmissionDenied: return "admission-denied";
    case SubmitStatus::kUnknownPool: return "unknown-pool";
    case SubmitStatus::kAuthDenied: return "auth-denied";
    case SubmitStatus::kCancelled: return "cancelled";
    case SubmitStatus::kUnavailable: return "unavailable";
  }
  return "?";
}

std::string serialize_jobs(const std::map<JobId, Job>& jobs) {
  std::ostringstream out;
  for (const auto& [id, job] : jobs) {
    out << id << '|' << job.name << '|' << job.user << '|' << job.pool << '|'
        << job.nodes_needed << '|' << job.duration << '|'
        << static_cast<int>(job.state) << '|' << job.submitted_at << '|'
        << job.started_at << '|' << job.finished_at << '|' << job.exited << '|'
        << job.requeues << '|' << job.priority << '|' << job.walltime_limit
        << '|' << job.arch << '|' << job.after_ok << '|';
    for (std::size_t i = 0; i < job.allocated.size(); ++i) {
      if (i > 0) out << ',';
      out << job.allocated[i].value;
    }
    out << '|';
    bool first = true;
    for (const auto& [node, pid] : job.pids) {
      if (!first) out << ',';
      first = false;
      out << node << '=' << pid;
    }
    out << '\n';
  }
  return out.str();
}

std::map<JobId, Job> deserialize_jobs(const std::string& data) {
  std::map<JobId, Job> jobs;
  std::istringstream in(data);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string f;
    Job job;
    auto next = [&]() -> std::string {
      std::getline(fields, f, '|');
      return f;
    };
    try {
      job.id = std::stoull(next());
      job.name = next();
      job.user = next();
      job.pool = next();
      job.nodes_needed = static_cast<unsigned>(std::stoul(next()));
      job.duration = std::stoull(next());
      job.state = static_cast<JobState>(std::stoi(next()));
      job.submitted_at = std::stoull(next());
      job.started_at = std::stoull(next());
      job.finished_at = std::stoull(next());
      job.exited = static_cast<unsigned>(std::stoul(next()));
      job.requeues = static_cast<unsigned>(std::stoul(next()));
      job.priority = std::stoi(next());
      job.walltime_limit = std::stoull(next());
      job.arch = next();
      job.after_ok = std::stoull(next());
      std::istringstream alloc(next());
      std::string a;
      while (std::getline(alloc, a, ',')) {
        if (!a.empty()) {
          job.allocated.push_back(
              net::NodeId{static_cast<std::uint32_t>(std::stoul(a))});
        }
      }
      std::istringstream pids(next());
      std::string p;
      while (std::getline(pids, p, ',')) {
        const auto eq = p.find('=');
        if (eq != std::string::npos) {
          job.pids[static_cast<std::uint32_t>(std::stoul(p.substr(0, eq)))] =
              std::stoull(p.substr(eq + 1));
        }
      }
    } catch (const std::exception&) {
      continue;  // skip malformed lines rather than aborting recovery
    }
    jobs.emplace(job.id, std::move(job));
  }
  return jobs;
}

}  // namespace phoenix::pws
