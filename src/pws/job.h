// PWS job model.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "net/ids.h"
#include "net/symbol.h"
#include "sim/time.h"

namespace phoenix::pws {

enum class JobState : std::uint8_t {
  kAuthorizing,  // waiting for the security service's verdict
  kQueued,
  kRunning,
  kCompleted,
  kFailed,     // a hosting node died and the retry budget is exhausted
  kRejected,   // authorization denied
  kCancelled,
  kTimedOut,   // exceeded its walltime limit and was killed
};

std::string_view to_string(JobState state) noexcept;

using JobId = std::uint64_t;

/// Per-request verdict of the submission path. Batch replies carry one per
/// request so a client can tell "the pool said no" (kUnknownPool) from "the
/// admission-control token bucket said slow down" (kAdmissionDenied).
enum class SubmitStatus : std::uint8_t {
  kAccepted,
  kAdmissionDenied,  // per-tenant token bucket empty (job spam)
  kUnknownPool,
  kAuthDenied,       // security service refused
  kCancelled,        // absorbed by the gateway before ever being sent
  kUnavailable,      // gateway retry budget exhausted, outcome unknown
};

std::string_view to_string(SubmitStatus status) noexcept;

/// What a user hands to a job-management system (PWS or the PBS baseline).
struct SubmitRequest {
  std::string name;
  std::string user;
  std::string pool;
  unsigned nodes = 1;
  sim::SimTime duration = 0;
  int priority = 0;               // higher runs first within a pool
  sim::SimTime walltime_limit = 0;  // 0 = unlimited; exceeded jobs are killed
  std::string arch;               // required node architecture ("" = any)
  /// Dependency: this job may only start after the given job COMPLETED
  /// successfully ("afterok"). If the dependency fails / is cancelled /
  /// times out, this job is cancelled too. 0 = no dependency.
  JobId after_ok = 0;
};

struct Job {
  JobId id = 0;
  std::string name;
  std::string user;
  std::string pool;
  unsigned nodes_needed = 1;
  sim::SimTime duration = 0;
  int priority = 0;
  sim::SimTime walltime_limit = 0;
  std::string arch;
  JobId after_ok = 0;

  JobState state = JobState::kQueued;
  sim::SimTime submitted_at = 0;
  sim::SimTime started_at = 0;
  sim::SimTime finished_at = 0;
  std::vector<net::NodeId> allocated;
  std::map<std::uint32_t, cluster::Pid> pids;  // node id -> process id
  unsigned exited = 0;
  unsigned requeues = 0;

  /// Interned identities (net/symbol.h), filled by the scheduler at
  /// submission/recovery so hot paths compare dense ids, not strings.
  /// Volatile: never serialized; rebuilt from `user`/`pool` on restore.
  net::SymbolId user_sym{};
  net::SymbolId pool_sym{};

  bool terminal() const noexcept {
    return state == JobState::kCompleted || state == JobState::kFailed ||
           state == JobState::kRejected || state == JobState::kCancelled ||
           state == JobState::kTimedOut;
  }
};

/// One line per job; used for the scheduler's checkpoint state.
std::string serialize_jobs(const std::map<JobId, Job>& jobs);
std::map<JobId, Job> deserialize_jobs(const std::string& data);

}  // namespace phoenix::pws
