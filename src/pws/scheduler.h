// PWS scheduler daemon (paper §5.4, Figure 8).
//
// The Partitioned Workload Solution job-management system built on the
// Phoenix kernel. Compared with PBS, the kernel already provides most of
// the machinery, so this module is only the user interface and scheduling
// logic:
//  - cluster-wide resource state comes from the data bulletin federation
//    (no per-node polling);
//  - node failure/recovery arrives as event-service pushes, and jobs on a
//    dead node are requeued automatically;
//  - job loading goes through the parallel process management service;
//  - submissions are authorized by the security service;
//  - scheduler state is checkpointed, and the GSD supervises the scheduler
//    as an extension service — the HA the paper says PBS lacks.
//
// Multi-tenant scale path (DESIGN.md §13): submissions may arrive in
// batches (PwsSubmitBatchMsg, deduplicated per batch through a ReplayCache),
// scheduling is incremental — a dirty-pool set plus per-pool ordered pending
// indexes and free-node sets bound each pass to the pools something actually
// happened to — the walltime sweep pops a min-heap of expiry times instead
// of scanning the job table, and per-tenant token buckets reject job spam
// before it ever enters a queue.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/kernel.h"
#include "kernel/security/security_service.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "pws/job.h"
#include "pws/pool.h"

namespace phoenix::pws {

struct PwsSubmitMsg final : net::Message {
  SubmitRequest request;
  kernel::Token token;  // validated against the security service if enabled
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("pws.submit")
  std::size_t wire_size() const noexcept override {
    return request.name.size() + request.user.size() + request.pool.size() + 48;
  }
};

struct PwsSubmitReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool accepted = false;
  JobId job_id = 0;
  std::string reason;

  PHOENIX_MESSAGE_TYPE("pws.submit_reply")
  std::size_t wire_size() const noexcept override { return reason.size() + 24; }
};

/// Batched submission: one RPC, one replay-cache entry, one coalesced
/// checkpoint and one prompt scheduling pass for a whole window of jobs.
/// Retransmitting the same (reply_to, request_id) returns the identical
/// JobId vector from the scheduler's ReplayCache instead of re-admitting.
struct PwsSubmitBatchMsg final : net::Message {
  std::vector<SubmitRequest> requests;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("pws.submit_batch")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 24;
    for (const auto& r : requests) {
      n += r.name.size() + r.user.size() + r.pool.size() + r.arch.size() + 40;
    }
    return n;
  }
};

/// Per-request verdict, in request order. job_id is 0 unless accepted.
struct BatchSubmitResult {
  JobId job_id = 0;
  SubmitStatus status = SubmitStatus::kAccepted;
};

struct PwsSubmitBatchReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::vector<BatchSubmitResult> results;

  PHOENIX_MESSAGE_TYPE("pws.submit_batch_reply")
  std::size_t wire_size() const noexcept override {
    return 16 + results.size() * 12;
  }
};

/// Batched cancellation, deduplicated like PwsSubmitBatchMsg.
struct PwsCancelBatchMsg final : net::Message {
  std::vector<JobId> job_ids;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("pws.cancel_batch")
  std::size_t wire_size() const noexcept override {
    return 24 + job_ids.size() * 8;
  }
};

struct PwsCancelBatchReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> cancelled;  // per job id, in request order

  PHOENIX_MESSAGE_TYPE("pws.cancel_batch_reply")
  std::size_t wire_size() const noexcept override {
    return 16 + cancelled.size();
  }
};

/// qstat-style query: all jobs, one user's jobs, or a single job id.
struct PwsQueryMsg final : net::Message {
  std::string user;   // non-empty: restrict to this user
  JobId job_id = 0;   // non-zero: this job only
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("pws.query")
  std::size_t wire_size() const noexcept override { return user.size() + 24; }
};

struct PwsQueryReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::vector<Job> jobs;

  PHOENIX_MESSAGE_TYPE("pws.query_reply")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 16;
    for (const auto& j : jobs) n += j.name.size() + j.user.size() + 64;
    return n;
  }
};

/// qdel-style cancellation.
struct PwsCancelMsg final : net::Message {
  JobId job_id = 0;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("pws.cancel")
  std::size_t wire_size() const noexcept override { return 24; }
};

struct PwsCancelReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool cancelled = false;

  PHOENIX_MESSAGE_TYPE("pws.cancel_reply")
  std::size_t wire_size() const noexcept override { return 9; }
};

struct PwsStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t requeued = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t leases_granted = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t admission_denied = 0;  // token-bucket rejections
  std::uint64_t batches = 0;           // submit batches executed (not replays)
  double total_wait_seconds = 0.0;  // queued -> started, over completed jobs
};

struct PwsConfig {
  std::vector<PoolConfig> pools;
  sim::SimTime schedule_tick = 1 * sim::kSecond;
  unsigned max_requeues = 2;
  bool use_security = false;  // route submissions through the security service

  // --- batch-native submission path (DESIGN.md §13) -------------------------

  /// Checkpoint coalescing window for the batched path. 0 (default) keeps
  /// the historical save-per-change wire behaviour. >0 bounds checkpoint
  /// traffic to one leading save plus one trailing flush per window —
  /// bounded-staleness durability: a crash loses at most this much recent
  /// state, which the gateway's batch retries re-cover. A non-zero window
  /// also coalesces the completion-prompted scheduling passes (one pending
  /// pass at a time instead of one per finished job).
  sim::SimTime checkpoint_interval = 0;

  /// When false, terminal jobs are retired from the job table once their
  /// accounting is done: memory and checkpoint size stay bounded by the
  /// *live* job count, which is what lets a 100k-user flash crowd run in
  /// one scheduler. Queries no longer see finished jobs, and an after_ok
  /// dependency on an already-retired job cancels the dependent.
  bool retain_terminal_jobs = true;

  /// Admission control: sustained jobs/s a single tenant may submit
  /// (token-bucket refill rate). 0 disables admission control entirely.
  double admission_rate = 0.0;
  /// Token-bucket capacity: burst a tenant may submit instantly.
  double admission_burst = 16.0;

  /// Batch ingest schedules a (coalesced) scheduling pass this soon instead
  /// of waiting for the periodic tick — batched submissions would otherwise
  /// pay up to a full schedule_tick of latency.
  sim::SimTime batch_pass_delay = 1 * sim::kMillisecond;
};

class PwsScheduler final : public cluster::Daemon {
 public:
  PwsScheduler(cluster::Cluster& cluster, net::NodeId node,
               kernel::PhoenixKernel& kernel, PwsConfig config);
  ~PwsScheduler() override;

  // --- submission -------------------------------------------------------------

  /// Trusted local submission (bypasses the security round-trip).
  JobId submit(const SubmitRequest& request);

  /// As submit(), with the typed verdict (admission control, unknown pool).
  BatchSubmitResult submit_with_status(const SubmitRequest& request);

  /// Cancels a queued job; running jobs are killed on every node.
  bool cancel(JobId id);

  // --- introspection ------------------------------------------------------------

  const Job* job(JobId id) const;
  const std::map<JobId, Job>& jobs() const noexcept { return jobs_; }
  const PwsStats& stats() const noexcept { return stats_; }
  const Pool* pool(const std::string& name) const;
  std::size_t queued_count() const noexcept { return queued_jobs_; }
  std::size_t running_count() const noexcept { return running_jobs_; }

  /// Pool a node's capacity currently serves (leases change this).
  std::string effective_pool(net::NodeId node) const;
  bool is_leased(net::NodeId node) const;

  /// Per-user consumed node-seconds (fair-share input). Materialized from
  /// the interned-id table on demand — introspection, not a hot path.
  std::map<std::string, double> user_usage() const;

  /// Forces a scheduling pass now (tests).
  void schedule_now() { schedule_pass(); }

 private:
  struct NodeSlot {
    std::int32_t owner_pool = -1;
    std::int32_t leased_to = -1;  // -1: serving its owner
    JobId running_job = 0;
    bool node_alive = true;
  };

  void handle(const net::Envelope& env) override;
  void on_start() override;
  void on_stop() override;

  // submission internals
  BatchSubmitResult submit_internal(const SubmitRequest& request,
                                    bool checkpoint_each);
  bool admit_tenant(net::SymbolId user);
  void handle_submit_batch(const PwsSubmitBatchMsg& batch);
  void handle_cancel_batch(const PwsCancelBatchMsg& batch);

  // incremental scheduling
  void schedule_pass();
  void scan_pool(std::size_t pool_index);
  void mark_pool_dirty(std::size_t pool_index);
  void request_pass_soon();
  std::vector<net::NodeId> free_nodes_of(std::size_t pool_index,
                                         const std::string& arch) const;
  std::size_t borrow_nodes(std::size_t borrower, std::size_t deficit);
  void start_job(Job& job, std::vector<net::NodeId> nodes, Pool& pool);
  void launch(Job& job);
  void complete_process(cluster::Pid pid, net::NodeId node);
  void finish_job(Job& job, JobState final_state);
  void handle_node_failed(net::NodeId node);
  void requeue_or_fail(Job& job);
  void enforce_walltime();
  sim::SimTime shadow_time(const Job& head, std::size_t pool_index) const;

  // bookkeeping helpers
  std::size_t pool_index_of(net::SymbolId sym) const;  // npos when unknown
  std::int32_t effective_pool_index(const NodeSlot& slot) const noexcept {
    return slot.leased_to >= 0 ? slot.leased_to : slot.owner_pool;
  }
  double usage_of_sym(net::SymbolId user) const;
  /// Frees a slot back to its owner pool and marks the pools this capacity
  /// could now serve (owner; every borrowing pool when the owner could lend).
  void free_slot(std::uint32_t node_value, NodeSlot& slot);
  void capacity_freed(std::size_t owner_index);
  /// Called when a pool's pending index emptied: idle capacity of a lender
  /// becomes borrowable, so wake every borrowing pool with pending work.
  void pool_drained(std::size_t pool_index);
  void wake_dependents(JobId id);
  void retire_if_unretained(JobId id);

  // state persistence
  void checkpoint_state();
  void save_checkpoint_now();
  void recover_state();
  void rebuild_after_restore();
  void reconcile_with_bulletin();
  void announce_up();
  void subscribe_events();

  kernel::PhoenixKernel& kernel_;
  PwsConfig config_;

  std::vector<Pool> pools_;  // name order, matching the historical std::map
  std::unordered_map<std::uint32_t, std::size_t> pool_index_;  // SymbolId ->
  std::map<std::uint32_t, NodeSlot> slots_;

  std::map<JobId, Job> jobs_;
  std::set<JobId> running_ids_;  // ordered: shadow_time scans deterministically
  std::unordered_map<std::uint32_t, double> usage_;  // user SymbolId ->
  PwsStats stats_;
  JobId next_job_id_ = 1;
  std::uint64_t next_request_id_ = 1;
  std::size_t queued_jobs_ = 0;
  std::size_t running_jobs_ = 0;

  // incremental-pass state
  std::vector<std::uint8_t> pool_dirty_;
  bool pass_pending_ = false;
  /// after_ok waiters: dependency job id -> jobs gated on it. A completing
  /// (or dying) dependency wakes only its dependents' pools.
  std::unordered_map<JobId, std::vector<JobId>> dependents_;
  /// Walltime expiry min-heap (expiry, job id); lazily invalidated — a
  /// requeued job pushes a fresh entry on its next launch, stale ones are
  /// discarded at pop. The periodic sweep is O(expired), not O(jobs).
  std::priority_queue<std::pair<sim::SimTime, JobId>,
                      std::vector<std::pair<sim::SimTime, JobId>>,
                      std::greater<>>
      expiry_;

  // admission control (per-tenant token buckets)
  struct TokenBucket {
    double tokens = 0.0;
    sim::SimTime last_refill = 0;
  };
  std::unordered_map<std::uint32_t, TokenBucket> buckets_;

  // batch dedup: one replay-cache entry per batch
  net::ReplayCache batch_replay_{1024};

  // checkpoint coalescing (the ServiceRuntime mark_dirty pattern)
  sim::SimTime last_ckpt_time_ = 0;
  bool ever_ckpt_ = false;
  bool ckpt_dirty_ = false;
  bool ckpt_flush_scheduled_ = false;

  // observability (cluster registry; recording gated on enabled())
  obs::Registry* metrics_ = nullptr;
  obs::Histogram* schedule_latency_us_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Counter* submitted_ctr_ = nullptr;
  obs::Counter* admission_denied_ctr_ = nullptr;
  obs::Counter* batches_ctr_ = nullptr;
  obs::Counter* cancelled_ctr_ = nullptr;
  std::uint64_t probe_id_ = 0;

  // In-flight request correlation.
  struct PendingAuthz {
    JobId job;
    net::Address reply_to;
    std::uint64_t caller_request_id = 0;
  };
  std::map<std::uint64_t, PendingAuthz> pending_authz_;
  struct PendingSpawn {
    JobId job;
    net::NodeId node;
  };
  std::map<std::uint64_t, PendingSpawn> pending_spawns_;
  std::map<cluster::Pid, JobId> pid_to_job_;

  sim::PeriodicTask ticker_;
  bool started_before_ = false;
  std::uint64_t recovery_load_id_ = 0;
  std::uint64_t reconcile_query_id_ = 0;
};

}  // namespace phoenix::pws
