// PWS scheduler daemon (paper §5.4, Figure 8).
//
// The Partitioned Workload Solution job-management system built on the
// Phoenix kernel. Compared with PBS, the kernel already provides most of
// the machinery, so this module is only the user interface and scheduling
// logic:
//  - cluster-wide resource state comes from the data bulletin federation
//    (no per-node polling);
//  - node failure/recovery arrives as event-service pushes, and jobs on a
//    dead node are requeued automatically;
//  - job loading goes through the parallel process management service;
//  - submissions are authorized by the security service;
//  - scheduler state is checkpointed, and the GSD supervises the scheduler
//    as an extension service — the HA the paper says PBS lacks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/kernel.h"
#include "kernel/security/security_service.h"
#include "pws/job.h"
#include "pws/pool.h"

namespace phoenix::pws {

struct PwsSubmitMsg final : net::Message {
  SubmitRequest request;
  kernel::Token token;  // validated against the security service if enabled
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("pws.submit")
  std::size_t wire_size() const noexcept override {
    return request.name.size() + request.user.size() + request.pool.size() + 48;
  }
};

struct PwsSubmitReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool accepted = false;
  JobId job_id = 0;
  std::string reason;

  PHOENIX_MESSAGE_TYPE("pws.submit_reply")
  std::size_t wire_size() const noexcept override { return reason.size() + 24; }
};

/// qstat-style query: all jobs, one user's jobs, or a single job id.
struct PwsQueryMsg final : net::Message {
  std::string user;   // non-empty: restrict to this user
  JobId job_id = 0;   // non-zero: this job only
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("pws.query")
  std::size_t wire_size() const noexcept override { return user.size() + 24; }
};

struct PwsQueryReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::vector<Job> jobs;

  PHOENIX_MESSAGE_TYPE("pws.query_reply")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 16;
    for (const auto& j : jobs) n += j.name.size() + j.user.size() + 64;
    return n;
  }
};

/// qdel-style cancellation.
struct PwsCancelMsg final : net::Message {
  JobId job_id = 0;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("pws.cancel")
  std::size_t wire_size() const noexcept override { return 24; }
};

struct PwsCancelReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool cancelled = false;

  PHOENIX_MESSAGE_TYPE("pws.cancel_reply")
  std::size_t wire_size() const noexcept override { return 9; }
};

struct PwsStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t requeued = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t leases_granted = 0;
  double total_wait_seconds = 0.0;  // queued -> started, over completed jobs
};

struct PwsConfig {
  std::vector<PoolConfig> pools;
  sim::SimTime schedule_tick = 1 * sim::kSecond;
  unsigned max_requeues = 2;
  bool use_security = false;  // route submissions through the security service
};

class PwsScheduler final : public cluster::Daemon {
 public:
  PwsScheduler(cluster::Cluster& cluster, net::NodeId node,
               kernel::PhoenixKernel& kernel, PwsConfig config);

  // --- submission -------------------------------------------------------------

  /// Trusted local submission (bypasses the security round-trip).
  JobId submit(const SubmitRequest& request);

  /// Cancels a queued job; running jobs are killed on every node.
  bool cancel(JobId id);

  // --- introspection ------------------------------------------------------------

  const Job* job(JobId id) const;
  const std::map<JobId, Job>& jobs() const noexcept { return jobs_; }
  const PwsStats& stats() const noexcept { return stats_; }
  const Pool* pool(const std::string& name) const;
  std::size_t queued_count() const;
  std::size_t running_count() const;

  /// Pool a node's capacity currently serves (leases change this).
  std::string effective_pool(net::NodeId node) const;
  bool is_leased(net::NodeId node) const;

  /// Per-user consumed node-seconds (fair-share input).
  const std::map<std::string, double>& user_usage() const noexcept {
    return user_usage_;
  }

  /// Forces a scheduling pass now (tests).
  void schedule_now() { schedule_pass(); }

 private:
  void handle(const net::Envelope& env) override;
  void on_start() override;
  void on_stop() override;

  void schedule_pass();
  bool try_start(Job& job, Pool& pool,
                 const std::vector<net::NodeId>& free_nodes_hint);
  std::vector<net::NodeId> free_nodes_of(const std::string& pool_name,
                                         const std::string& arch = {}) const;
  std::size_t borrow_nodes(Pool& pool, std::size_t deficit);
  void launch(Job& job);
  void complete_process(cluster::Pid pid, net::NodeId node);
  void finish_job(Job& job, JobState final_state);
  void handle_node_failed(net::NodeId node);
  void requeue_or_fail(Job& job);
  void enforce_walltime();
  void subscribe_events();
  void checkpoint_state();
  void recover_state();
  void reconcile_with_bulletin();
  void announce_up();
  sim::SimTime shadow_time(const Job& head, const std::string& pool_name) const;

  kernel::PhoenixKernel& kernel_;
  PwsConfig config_;
  std::map<std::string, Pool> pools_;

  struct NodeSlot {
    std::string owner_pool;
    std::string leased_to;  // empty: serving its owner
    JobId running_job = 0;
    bool node_alive = true;
  };
  std::map<std::uint32_t, NodeSlot> slots_;

  std::map<JobId, Job> jobs_;
  std::map<std::string, double> user_usage_;
  PwsStats stats_;
  JobId next_job_id_ = 1;
  std::uint64_t next_request_id_ = 1;

  // In-flight request correlation.
  struct PendingAuthz {
    JobId job;
    net::Address reply_to;
    std::uint64_t caller_request_id = 0;
  };
  std::map<std::uint64_t, PendingAuthz> pending_authz_;
  struct PendingSpawn {
    JobId job;
    net::NodeId node;
  };
  std::map<std::uint64_t, PendingSpawn> pending_spawns_;
  std::map<cluster::Pid, JobId> pid_to_job_;

  sim::PeriodicTask ticker_;
  bool started_before_ = false;
  std::uint64_t recovery_load_id_ = 0;
  std::uint64_t reconcile_query_id_ = 0;
};

}  // namespace phoenix::pws
