#include "pws/pool.h"

#include <algorithm>

namespace phoenix::pws {

std::string_view to_string(SchedPolicy policy) noexcept {
  switch (policy) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kSjf: return "sjf";
    case SchedPolicy::kFairShare: return "fair-share";
    case SchedPolicy::kBackfill: return "backfill";
  }
  return "?";
}

void Pool::order_queue(const std::map<JobId, Job>& jobs,
                       const std::map<std::string, double>& usage) {
  auto duration_of = [&](JobId id) -> sim::SimTime {
    auto it = jobs.find(id);
    return it == jobs.end() ? 0 : it->second.duration;
  };
  auto usage_of = [&](JobId id) -> double {
    auto it = jobs.find(id);
    if (it == jobs.end()) return 0.0;
    auto u = usage.find(it->second.user);
    return u == usage.end() ? 0.0 : u->second;
  };

  switch (config_.policy) {
    case SchedPolicy::kFifo:
    case SchedPolicy::kBackfill:
      // Submission (== insertion) order; nothing to do.
      break;
    case SchedPolicy::kSjf:
      std::stable_sort(queue_.begin(), queue_.end(),
                       [&](JobId a, JobId b) { return duration_of(a) < duration_of(b); });
      break;
    case SchedPolicy::kFairShare:
      std::stable_sort(queue_.begin(), queue_.end(),
                       [&](JobId a, JobId b) { return usage_of(a) < usage_of(b); });
      break;
  }

  // Priority overrides any policy: higher-priority jobs first, policy order
  // (stable) as the tiebreak within a priority level.
  auto priority_of = [&](JobId id) -> int {
    auto it = jobs.find(id);
    return it == jobs.end() ? 0 : it->second.priority;
  };
  std::stable_sort(queue_.begin(), queue_.end(), [&](JobId a, JobId b) {
    return priority_of(a) > priority_of(b);
  });
}

}  // namespace phoenix::pws
