#include "pws/pool.h"

#include <algorithm>

namespace phoenix::pws {

std::string_view to_string(SchedPolicy policy) noexcept {
  switch (policy) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kSjf: return "sjf";
    case SchedPolicy::kFairShare: return "fair-share";
    case SchedPolicy::kBackfill: return "backfill";
  }
  return "?";
}

double Pool::key_of(const Job& job, double usage_key) const noexcept {
  switch (config_.policy) {
    case SchedPolicy::kFifo:
    case SchedPolicy::kBackfill:
      return 0.0;  // pure arrival order (priority still ranks first)
    case SchedPolicy::kSjf:
      return static_cast<double>(job.duration);
    case SchedPolicy::kFairShare:
      return usage_key;
  }
  return 0.0;
}

void Pool::insert_ordered(Pending entry) {
  auto pos = std::lower_bound(pending_.begin(), pending_.end(), entry, before);
  pending_.insert(pos, entry);
}

void Pool::enqueue(const Job& job, double usage_key) {
  insert_ordered(Pending{job.id, next_seq_++, job.priority, key_of(job, usage_key)});
}

void Pool::enqueue_front(const Job& job, double usage_key) {
  insert_ordered(Pending{job.id, --front_seq_, job.priority, key_of(job, usage_key)});
}

bool Pool::remove(JobId id) {
  // Linear: fair-share keys drift between refreshes, so a binary search on
  // the stored key is not reliable. Cancels of already-submitted jobs are
  // rare next to enqueue/scan traffic (the gateway absorbs same-window
  // cancels before they ever reach the scheduler).
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [id](const Pending& p) { return p.id == id; });
  if (it == pending_.end()) return false;
  pending_.erase(it);
  return true;
}

std::vector<JobId> Pool::pending_jobs() const {
  std::vector<JobId> out;
  out.reserve(pending_.size());
  for (const Pending& p : pending_) out.push_back(p.id);
  return out;
}

void Pool::sort_pending() {
  std::sort(pending_.begin(), pending_.end(), before);
}

}  // namespace phoenix::pws
