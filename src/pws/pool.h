// PWS pools and scheduling policies (paper §5.4).
//
// PWS "supports multi-pools with customized scheduling policies for
// different pools and dynamic leasing among different pools". A pool owns a
// set of nodes and a queue ordered by its policy; idle nodes of a lending
// pool can be leased to a borrowing pool and are returned when freed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "net/ids.h"
#include "pws/job.h"

namespace phoenix::pws {

enum class SchedPolicy : std::uint8_t {
  kFifo,
  kSjf,        // shortest (estimated) job first
  kFairShare,  // least-consuming user first (node-seconds)
  kBackfill,   // FIFO head reservation + EASY backfill
};

std::string_view to_string(SchedPolicy policy) noexcept;

struct PoolConfig {
  std::string name;
  SchedPolicy policy = SchedPolicy::kFifo;
  std::vector<net::NodeId> nodes;
  bool allow_lending = true;
  bool allow_borrowing = true;
};

class Pool {
 public:
  explicit Pool(PoolConfig config) : config_(std::move(config)) {}

  const std::string& name() const noexcept { return config_.name; }
  SchedPolicy policy() const noexcept { return config_.policy; }
  const PoolConfig& config() const noexcept { return config_; }
  const std::vector<net::NodeId>& owned_nodes() const noexcept {
    return config_.nodes;
  }

  std::deque<JobId>& queue() noexcept { return queue_; }
  const std::deque<JobId>& queue() const noexcept { return queue_; }

  /// Orders the queue according to the pool's policy. `usage` maps user ->
  /// consumed node-seconds (fair share); `jobs` resolves queue entries.
  /// FIFO order is the tiebreak everywhere; kBackfill keeps FIFO order
  /// (backfilling is an allocation-time decision, not a queue order).
  void order_queue(const std::map<JobId, Job>& jobs,
                   const std::map<std::string, double>& usage);

 private:
  PoolConfig config_;
  std::deque<JobId> queue_;
};

}  // namespace phoenix::pws
