// PWS pools and scheduling policies (paper §5.4).
//
// PWS "supports multi-pools with customized scheduling policies for
// different pools and dynamic leasing among different pools". A pool owns a
// set of nodes and a pending-job index ordered by its policy; idle nodes of
// a lending pool can be leased to a borrowing pool and are returned when
// freed.
//
// The pending index is kept ordered *incrementally* (DESIGN.md §13): jobs
// are inserted at their policy position (priority first, then the policy
// key, then submission order), so a scheduling pass never re-sorts
// FIFO/SJF/backfill pools. Only fair-share pools re-sort, and only when the
// scheduler marks them dirty — their ordering key (per-user consumed
// node-seconds) drifts as other jobs complete. The resulting order is
// identical to the historical "stable-sort by policy key, then stable-sort
// by priority" double pass: both reduce to the lexicographic order
// (priority desc, policy key asc, arrival seq asc).
//
// The pool also owns the set of free nodes currently *serving* it (owned
// nodes plus leased-in capacity), ordered by node id so allocation order
// matches the historical whole-cluster slot scan.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "net/ids.h"
#include "pws/job.h"

namespace phoenix::pws {

enum class SchedPolicy : std::uint8_t {
  kFifo,
  kSjf,        // shortest (estimated) job first
  kFairShare,  // least-consuming user first (node-seconds)
  kBackfill,   // FIFO head reservation + EASY backfill
};

std::string_view to_string(SchedPolicy policy) noexcept;

struct PoolConfig {
  std::string name;
  SchedPolicy policy = SchedPolicy::kFifo;
  std::vector<net::NodeId> nodes;
  bool allow_lending = true;
  bool allow_borrowing = true;
};

class Pool {
 public:
  explicit Pool(PoolConfig config) : config_(std::move(config)) {}

  const std::string& name() const noexcept { return config_.name; }
  SchedPolicy policy() const noexcept { return config_.policy; }
  const PoolConfig& config() const noexcept { return config_; }
  const std::vector<net::NodeId>& owned_nodes() const noexcept {
    return config_.nodes;
  }

  // --- ordered pending index --------------------------------------------------

  /// One queued (or dependency-waiting) job. Entries sort by
  /// (priority desc, key asc, seq asc); `key` is the policy ordering key —
  /// 0 for FIFO/backfill, the estimated duration for SJF, the submitting
  /// user's consumed node-seconds for fair share.
  struct Pending {
    JobId id = 0;
    std::int64_t seq = 0;
    int priority = 0;
    double key = 0.0;
  };

  /// Inserts `job` at its policy position (arrival order within ties).
  /// `usage_key` is the job's current fair-share key (ignored for other
  /// policies — their keys are derived from the job itself).
  void enqueue(const Job& job, double usage_key = 0.0);

  /// Re-inserts a requeued job *ahead* of every queued job with an equal
  /// (priority, key) — the historical push_front-then-stable-sort position.
  void enqueue_front(const Job& job, double usage_key = 0.0);

  /// Removes the entry for `id`; false when not pending here.
  bool remove(JobId id);

  /// Fair-share pools: recomputes every entry's usage key via
  /// `usage_of(job)` and re-sorts. Other policies keep their incremental
  /// order; no work. Call before scanning a dirty pool.
  template <typename UsageOf>
  void refresh(const std::map<JobId, Job>& jobs, UsageOf&& usage_of) {
    if (config_.policy != SchedPolicy::kFairShare) return;
    for (Pending& p : pending_) {
      auto it = jobs.find(p.id);
      p.key = it == jobs.end() ? 0.0 : usage_of(it->second);
    }
    sort_pending();
  }

  std::vector<Pending>& pending() noexcept { return pending_; }
  const std::vector<Pending>& pending() const noexcept { return pending_; }
  bool has_pending() const noexcept { return !pending_.empty(); }
  std::size_t pending_count() const noexcept { return pending_.size(); }

  /// Pending job ids in scheduling order (introspection/tests).
  std::vector<JobId> pending_jobs() const;

  // --- free capacity ----------------------------------------------------------

  /// Idle, live nodes whose capacity currently serves this pool (owned
  /// nodes plus leased-in ones), ordered by node id. Maintained by the
  /// scheduler on every allocation / completion / lease / liveness change.
  std::set<std::uint32_t>& free_nodes() noexcept { return free_nodes_; }
  const std::set<std::uint32_t>& free_nodes() const noexcept {
    return free_nodes_;
  }

 private:
  static bool before(const Pending& a, const Pending& b) noexcept {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  }
  double key_of(const Job& job, double usage_key) const noexcept;
  void insert_ordered(Pending entry);
  void sort_pending();

  PoolConfig config_;
  std::vector<Pending> pending_;
  std::set<std::uint32_t> free_nodes_;
  std::int64_t next_seq_ = 1;   // arrival tiebreak
  std::int64_t front_seq_ = 0;  // decreasing: requeues beat equal-key peers
};

}  // namespace phoenix::pws
