#include "pws/scheduler.h"

#include <algorithm>
#include <utility>

#include "kernel/ppm/process_manager.h"

namespace phoenix::pws {

using kernel::ServiceKind;

PwsScheduler::PwsScheduler(cluster::Cluster& cluster, net::NodeId node,
                           kernel::PhoenixKernel& kernel, PwsConfig config)
    : Daemon(cluster, "pws.scheduler", node, cluster::ports::kPwsScheduler),
      kernel_(kernel),
      config_(std::move(config)),
      ticker_(cluster.engine(), config_.schedule_tick, [this] { schedule_pass(); }) {
  for (const auto& pool_config : config_.pools) {
    pools_.emplace(pool_config.name, Pool(pool_config));
    for (net::NodeId n : pool_config.nodes) {
      slots_[n.value] = NodeSlot{pool_config.name, "", 0,
                                 cluster.node(n).alive()};
    }
  }
}

void PwsScheduler::on_start() {
  ticker_.set_period(config_.schedule_tick);
  ticker_.start_after(config_.schedule_tick);
  subscribe_events();
  if (started_before_) {
    recover_state();
  } else {
    announce_up();
  }
  started_before_ = true;
}

void PwsScheduler::on_stop() { ticker_.stop(); }

void PwsScheduler::subscribe_events() {
  kernel::Subscription sub;
  sub.consumer = address();
  sub.types = {std::string(kernel::event_types::kNodeFailed),
               std::string(kernel::event_types::kNodeRecovered)};
  auto msg = std::make_shared<kernel::EsSubscribeMsg>();
  msg->subscription = std::move(sub);
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(ServiceKind::kEventService, partition),
           std::move(msg));
}

void PwsScheduler::announce_up() {
  const auto partition = cluster().partition_of(node_id());
  auto up = std::make_shared<kernel::ServiceUpMsg>();
  up->extension = "pws.scheduler";
  up->partition = partition;
  up->service = address();
  send_any(kernel_.service_address(ServiceKind::kGroupService, partition),
           std::move(up));
}

// --- submission ---------------------------------------------------------------

JobId PwsScheduler::submit(const SubmitRequest& request) {
  Job job;
  job.id = next_job_id_++;
  job.name = request.name.empty() ? "job" + std::to_string(job.id) : request.name;
  job.user = request.user;
  job.pool = request.pool;
  job.nodes_needed = std::max(1u, request.nodes);
  job.duration = request.duration;
  job.priority = request.priority;
  job.walltime_limit = request.walltime_limit;
  job.arch = request.arch;
  job.after_ok = request.after_ok;
  job.state = JobState::kQueued;
  job.submitted_at = now();

  auto pool_it = pools_.find(job.pool);
  if (pool_it == pools_.end()) {
    job.state = JobState::kRejected;
    ++stats_.rejected;
    const JobId id = job.id;
    jobs_.emplace(id, std::move(job));
    return id;
  }
  const JobId id = job.id;
  jobs_.emplace(id, std::move(job));
  pool_it->second.queue().push_back(id);
  ++stats_.submitted;
  checkpoint_state();
  return id;
}

bool PwsScheduler::cancel(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.terminal()) return false;
  Job& job = it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kAuthorizing) {
    auto pool_it = pools_.find(job.pool);
    if (pool_it != pools_.end()) {
      auto& q = pool_it->second.queue();
      std::erase(q, id);
    }
    job.state = JobState::kCancelled;
    job.finished_at = now();
    checkpoint_state();
    return true;
  }
  // Running: kill every process, free the slots.
  for (const auto& [node_value, pid] : job.pids) {
    auto kill = std::make_shared<kernel::KillMsg>();
    kill->pid = pid;
    send_any({net::NodeId{node_value}, kernel::port_of(ServiceKind::kProcessManager)},
             std::move(kill));
    pid_to_job_.erase(pid);
  }
  for (net::NodeId n : job.allocated) {
    auto slot = slots_.find(n.value);
    if (slot != slots_.end() && slot->second.running_job == id) {
      slot->second.running_job = 0;
      slot->second.leased_to.clear();
    }
  }
  finish_job(job, JobState::kCancelled);
  return true;
}

// --- scheduling -----------------------------------------------------------------

std::string PwsScheduler::effective_pool(net::NodeId node) const {
  auto it = slots_.find(node.value);
  if (it == slots_.end()) return {};
  return it->second.leased_to.empty() ? it->second.owner_pool
                                      : it->second.leased_to;
}

bool PwsScheduler::is_leased(net::NodeId node) const {
  auto it = slots_.find(node.value);
  return it != slots_.end() && !it->second.leased_to.empty();
}

std::vector<net::NodeId> PwsScheduler::free_nodes_of(
    const std::string& pool_name, const std::string& arch) const {
  std::vector<net::NodeId> out;
  for (const auto& [node_value, slot] : slots_) {
    if (slot.running_job != 0 || !slot.node_alive) continue;
    const std::string& serving =
        slot.leased_to.empty() ? slot.owner_pool : slot.leased_to;
    if (serving != pool_name) continue;
    if (!arch.empty() &&
        cluster().node(net::NodeId{node_value}).arch() != arch) {
      continue;  // architecture constraint (heterogeneous clusters)
    }
    out.push_back(net::NodeId{node_value});
  }
  return out;
}

std::size_t PwsScheduler::borrow_nodes(Pool& pool, std::size_t deficit) {
  if (!pool.config().allow_borrowing) return 0;
  std::size_t borrowed = 0;
  for (auto& [other_name, other] : pools_) {
    if (borrowed >= deficit) break;
    if (other_name == pool.name() || !other.config().allow_lending) continue;
    // Only lend nodes the owner is not about to use itself.
    if (!other.queue().empty()) continue;
    for (const auto& [node_value, _] : slots_) {
      if (borrowed >= deficit) break;
      auto& slot = slots_[node_value];
      if (slot.owner_pool == other_name && slot.leased_to.empty() &&
          slot.running_job == 0 && slot.node_alive) {
        slot.leased_to = pool.name();
        ++borrowed;
        ++stats_.leases_granted;
      }
    }
  }
  return borrowed;
}

sim::SimTime PwsScheduler::shadow_time(const Job& head,
                                       const std::string& pool_name) const {
  // Earliest time the head job could start: walk running jobs serving this
  // pool in completion order, accumulating freed nodes.
  std::vector<std::pair<sim::SimTime, unsigned>> completions;
  for (const auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    unsigned nodes_in_pool = 0;
    for (net::NodeId n : job.allocated) {
      if (effective_pool(n) == pool_name) ++nodes_in_pool;
    }
    if (nodes_in_pool > 0) {
      completions.emplace_back(job.started_at + job.duration, nodes_in_pool);
    }
  }
  std::sort(completions.begin(), completions.end());
  std::size_t available = free_nodes_of(pool_name, head.arch).size();
  for (const auto& [finish, freed] : completions) {
    available += freed;
    if (available >= head.nodes_needed) return finish;
  }
  return sim::kNever;
}

void PwsScheduler::schedule_pass() {
  if (!alive()) return;
  enforce_walltime();
  for (auto& [name, pool] : pools_) {
    pool.order_queue(jobs_, user_usage_);
    auto& queue = pool.queue();

    bool head_blocked = false;
    sim::SimTime head_shadow = sim::kNever;
    for (std::size_t i = 0; i < queue.size();) {
      auto job_it = jobs_.find(queue[i]);
      if (job_it == jobs_.end() || job_it->second.terminal()) {
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      Job& job = job_it->second;

      // Dependency gate ("afterok"): wait for the dependency to complete;
      // cancel this job if the dependency ended any other way.
      if (job.after_ok != 0) {
        const auto dep = jobs_.find(job.after_ok);
        const bool dep_ok =
            dep != jobs_.end() && dep->second.state == JobState::kCompleted;
        const bool dep_dead =
            dep == jobs_.end() ||
            (dep->second.terminal() && dep->second.state != JobState::kCompleted);
        if (dep_dead) {
          job.state = JobState::kCancelled;
          job.finished_at = now();
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        if (!dep_ok) {
          ++i;  // dependency still pending: skip without blocking the head
          continue;
        }
      }

      if (head_blocked) {
        // EASY backfill: later jobs may run if they fit now and finish
        // before the head's reserved start.
        if (pool.policy() != SchedPolicy::kBackfill) break;
        if (now() + job.duration > head_shadow) {
          ++i;
          continue;
        }
      }

      std::vector<net::NodeId> free = free_nodes_of(name, job.arch);
      if (free.size() < job.nodes_needed) {
        const std::size_t got =
            borrow_nodes(pool, job.nodes_needed - free.size());
        if (got > 0) free = free_nodes_of(name, job.arch);
      }
      if (free.size() < job.nodes_needed) {
        if (!head_blocked) {
          head_blocked = true;
          head_shadow = shadow_time(job, name);
        }
        ++i;
        continue;
      }

      free.resize(job.nodes_needed);
      job.allocated = free;
      job.state = JobState::kRunning;
      job.started_at = now();
      stats_.total_wait_seconds += sim::to_seconds(now() - job.submitted_at);
      for (net::NodeId n : free) slots_[n.value].running_job = job.id;
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
      launch(job);
    }
  }
  checkpoint_state();
}

void PwsScheduler::enforce_walltime() {
  std::vector<JobId> victims;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning && job.walltime_limit > 0 &&
        now() > job.started_at + job.walltime_limit) {
      victims.push_back(id);
    }
  }
  for (const JobId id : victims) {
    Job& job = jobs_.at(id);
    for (const auto& [node_value, pid] : job.pids) {
      pid_to_job_.erase(pid);
      auto kill = std::make_shared<kernel::KillMsg>();
      kill->pid = pid;
      send_any({net::NodeId{node_value},
                kernel::port_of(ServiceKind::kProcessManager)},
               std::move(kill));
    }
    for (net::NodeId n : job.allocated) {
      auto slot = slots_.find(n.value);
      if (slot != slots_.end() && slot->second.running_job == id) {
        slot->second.running_job = 0;
        slot->second.leased_to.clear();
      }
    }
    ++stats_.timed_out;
    finish_job(job, JobState::kTimedOut);
  }
}

void PwsScheduler::launch(Job& job) {
  for (net::NodeId n : job.allocated) {
    auto spawn = std::make_shared<kernel::SpawnMsg>();
    spawn->spec.name = job.name;
    spawn->spec.owner = job.user;
    spawn->spec.cpu_share = static_cast<double>(cluster().node(n).cpus());
    spawn->spec.duration = job.duration;
    spawn->reply_to = address();
    spawn->exit_notify = address();
    spawn->request_id = next_request_id_++;
    pending_spawns_[spawn->request_id] = PendingSpawn{job.id, n};
    send_any({n, kernel::port_of(ServiceKind::kProcessManager)}, std::move(spawn));
  }
}

void PwsScheduler::complete_process(cluster::Pid pid, net::NodeId node) {
  auto map_it = pid_to_job_.find(pid);
  if (map_it == pid_to_job_.end()) return;
  const JobId job_id = map_it->second;
  pid_to_job_.erase(map_it);

  auto job_it = jobs_.find(job_id);
  if (job_it == jobs_.end()) return;
  Job& job = job_it->second;
  if (job.state != JobState::kRunning) return;
  ++job.exited;
  user_usage_[job.user] += sim::to_seconds(job.duration);

  auto slot = slots_.find(node.value);
  if (slot != slots_.end() && slot->second.running_job == job_id) {
    slot->second.running_job = 0;
    slot->second.leased_to.clear();  // leased capacity returns to its owner
  }
  if (job.exited >= job.allocated.size()) {
    finish_job(job, JobState::kCompleted);
    // Freed nodes may unblock queued work without waiting a full tick.
    engine().schedule_after(1 * sim::kMillisecond, [this] { schedule_pass(); });
  }
}

void PwsScheduler::finish_job(Job& job, JobState final_state) {
  job.state = final_state;
  job.finished_at = now();
  if (final_state == JobState::kCompleted) ++stats_.completed;
  if (final_state == JobState::kFailed) ++stats_.failed;
  checkpoint_state();
}

void PwsScheduler::handle_node_failed(net::NodeId node) {
  auto slot = slots_.find(node.value);
  if (slot == slots_.end()) return;
  slot->second.node_alive = false;
  const JobId victim = slot->second.running_job;
  slot->second.running_job = 0;
  slot->second.leased_to.clear();
  if (victim == 0) return;

  auto job_it = jobs_.find(victim);
  if (job_it == jobs_.end() || job_it->second.state != JobState::kRunning) return;
  Job& job = job_it->second;

  // Kill the job's surviving processes and free their slots.
  for (const auto& [node_value, pid] : job.pids) {
    pid_to_job_.erase(pid);
    if (node_value == node.value) continue;
    auto kill = std::make_shared<kernel::KillMsg>();
    kill->pid = pid;
    send_any({net::NodeId{node_value}, kernel::port_of(ServiceKind::kProcessManager)},
             std::move(kill));
  }
  for (net::NodeId n : job.allocated) {
    auto s = slots_.find(n.value);
    if (s != slots_.end() && s->second.running_job == victim) {
      s->second.running_job = 0;
      s->second.leased_to.clear();
    }
  }
  requeue_or_fail(job);
}

void PwsScheduler::requeue_or_fail(Job& job) {
  job.allocated.clear();
  job.pids.clear();
  job.exited = 0;
  if (job.requeues < config_.max_requeues) {
    ++job.requeues;
    ++stats_.requeued;
    job.state = JobState::kQueued;
    auto pool_it = pools_.find(job.pool);
    if (pool_it != pools_.end()) pool_it->second.queue().push_front(job.id);
    checkpoint_state();
  } else {
    finish_job(job, JobState::kFailed);
  }
}

// --- state persistence ------------------------------------------------------------

void PwsScheduler::checkpoint_state() {
  auto save = std::make_shared<kernel::CheckpointSaveMsg>();
  save->service = "pws";
  save->key = "jobs";
  save->data = serialize_jobs(jobs_);
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(ServiceKind::kCheckpointService, partition),
           std::move(save));
}

void PwsScheduler::recover_state() {
  recovery_load_id_ = next_request_id_++;
  auto load = std::make_shared<kernel::CheckpointLoadMsg>();
  load->service = "pws";
  load->key = "jobs";
  load->reply_to = address();
  load->request_id = recovery_load_id_;
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(ServiceKind::kCheckpointService, partition),
           std::move(load));
}

void PwsScheduler::reconcile_with_bulletin() {
  // Running jobs may have finished while we were down; ask the bulletin
  // federation which application processes still exist.
  reconcile_query_id_ = next_request_id_++;
  auto query = std::make_shared<kernel::DbQueryMsg>();
  query->query_id = reconcile_query_id_;
  query->table = kernel::BulletinTable::kApps;
  query->cluster_scope = true;
  query->reply_to = address();
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(ServiceKind::kDataBulletin, partition),
           std::move(query));
}

// --- message handling ------------------------------------------------------------

void PwsScheduler::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;

  if (const auto* submit = net::message_cast<PwsSubmitMsg>(m)) {
    if (config_.use_security) {
      Job job;
      job.id = next_job_id_++;
      job.name = submit->request.name.empty() ? "job" + std::to_string(job.id)
                                              : submit->request.name;
      job.user = submit->request.user;
      job.pool = submit->request.pool;
      job.nodes_needed = std::max(1u, submit->request.nodes);
      job.duration = submit->request.duration;
      job.state = JobState::kAuthorizing;
      job.submitted_at = now();
      const JobId id = job.id;
      jobs_.emplace(id, std::move(job));

      auto authz = std::make_shared<kernel::AuthzRequestMsg>();
      authz->token = submit->token;
      authz->action = "job.submit";
      authz->resource = "pool/" + submit->request.pool;
      authz->reply_to = address();
      authz->request_id = next_request_id_++;
      pending_authz_[authz->request_id] =
          PendingAuthz{id, submit->reply_to, submit->request_id};
      send_any(kernel_.service_address(ServiceKind::kSecurity, net::PartitionId{0}),
               std::move(authz));
      return;
    }
    const JobId accepted = this->submit(submit->request);
    if (submit->reply_to.valid()) {
      auto reply = std::make_shared<PwsSubmitReplyMsg>();
      reply->request_id = submit->request_id;
      reply->accepted = jobs_.at(accepted).state != JobState::kRejected;
      reply->job_id = accepted;
      send_any(submit->reply_to, std::move(reply));
    }
    return;
  }

  if (const auto* query = net::message_cast<PwsQueryMsg>(m)) {
    auto reply = std::make_shared<PwsQueryReplyMsg>();
    reply->request_id = query->request_id;
    for (const auto& [id, job] : jobs_) {
      if (query->job_id != 0 && id != query->job_id) continue;
      if (!query->user.empty() && job.user != query->user) continue;
      reply->jobs.push_back(job);
    }
    send_any(query->reply_to, std::move(reply));
    return;
  }

  if (const auto* cancel_msg = net::message_cast<PwsCancelMsg>(m)) {
    auto reply = std::make_shared<PwsCancelReplyMsg>();
    reply->request_id = cancel_msg->request_id;
    reply->cancelled = cancel(cancel_msg->job_id);
    if (cancel_msg->reply_to.valid()) send_any(cancel_msg->reply_to, std::move(reply));
    return;
  }

  if (const auto* authz = net::message_cast<kernel::AuthzReplyMsg>(m)) {
    auto it = pending_authz_.find(authz->request_id);
    if (it == pending_authz_.end()) return;
    const PendingAuthz pending = it->second;
    pending_authz_.erase(it);
    auto job_it = jobs_.find(pending.job);
    if (job_it == jobs_.end()) return;
    Job& job = job_it->second;
    bool accepted = false;
    std::string reason = authz->reason;
    if (!authz->allowed) {
      job.state = JobState::kRejected;
      job.finished_at = now();
      ++stats_.rejected;
    } else if (auto pool_it = pools_.find(job.pool); pool_it == pools_.end()) {
      job.state = JobState::kRejected;
      job.finished_at = now();
      ++stats_.rejected;
      reason = "unknown pool '" + job.pool + "'";
    } else {
      job.state = JobState::kQueued;
      pool_it->second.queue().push_back(job.id);
      ++stats_.submitted;
      accepted = true;
    }
    checkpoint_state();
    if (pending.reply_to.valid()) {
      auto reply = std::make_shared<PwsSubmitReplyMsg>();
      reply->request_id = pending.caller_request_id;
      reply->accepted = accepted;
      reply->job_id = job.id;
      reply->reason = std::move(reason);
      send_any(pending.reply_to, std::move(reply));
    }
    return;
  }

  if (const auto* spawn = net::message_cast<kernel::SpawnReplyMsg>(m)) {
    auto it = pending_spawns_.find(spawn->request_id);
    if (it == pending_spawns_.end()) return;
    const PendingSpawn pending = it->second;
    pending_spawns_.erase(it);
    auto job_it = jobs_.find(pending.job);
    if (job_it == jobs_.end() || !spawn->ok) return;
    job_it->second.pids[pending.node.value] = spawn->pid;
    pid_to_job_[spawn->pid] = pending.job;
    checkpoint_state();
    return;
  }

  if (const auto* exit = net::message_cast<kernel::ExitNotifyMsg>(m)) {
    complete_process(exit->pid, exit->node);
    return;
  }

  if (const auto* notify = net::message_cast<kernel::EsNotifyMsg>(m)) {
    const kernel::Event& e = notify->event;
    if (e.type == kernel::event_types::kNodeFailed) {
      handle_node_failed(e.subject_node);
    } else if (e.type == kernel::event_types::kNodeRecovered) {
      auto slot = slots_.find(e.subject_node.value);
      if (slot != slots_.end()) slot->second.node_alive = true;
    }
    return;
  }

  if (const auto* load = net::message_cast<kernel::CheckpointLoadReplyMsg>(m)) {
    if (load->request_id != recovery_load_id_ || recovery_load_id_ == 0) return;
    recovery_load_id_ = 0;
    if (load->found) {
      jobs_ = deserialize_jobs(load->data);
      // Rebuild volatile indices from the recovered job table.
      for (auto& [id, job] : jobs_) {
        if (id >= next_job_id_) next_job_id_ = id + 1;
        if (job.state == JobState::kRunning) {
          for (net::NodeId n : job.allocated) {
            auto slot = slots_.find(n.value);
            if (slot != slots_.end()) slot->second.running_job = id;
          }
          for (const auto& [node_value, pid] : job.pids) pid_to_job_[pid] = id;
        } else if (job.state == JobState::kQueued ||
                   job.state == JobState::kAuthorizing) {
          job.state = JobState::kQueued;
          auto pool_it = pools_.find(job.pool);
          if (pool_it != pools_.end()) pool_it->second.queue().push_back(id);
        }
      }
      reconcile_with_bulletin();
    } else {
      announce_up();
    }
    return;
  }

  if (const auto* reply = net::message_cast<kernel::DbQueryReplyMsg>(m)) {
    if (reply->query_id != reconcile_query_id_ || reconcile_query_id_ == 0) return;
    reconcile_query_id_ = 0;
    // Any tracked pid that the bulletin no longer lists finished while we
    // were down.
    std::vector<std::pair<cluster::Pid, net::NodeId>> gone;
    for (const auto& [pid, job_id] : pid_to_job_) {
      bool found = false;
      for (const auto& row : reply->app_rows) {
        if (row.pid == pid) {
          found = true;
          break;
        }
      }
      if (!found) {
        auto job_it = jobs_.find(job_id);
        if (job_it != jobs_.end()) {
          for (const auto& [node_value, p] : job_it->second.pids) {
            if (p == pid) gone.emplace_back(pid, net::NodeId{node_value});
          }
        }
      }
    }
    for (const auto& [pid, node] : gone) complete_process(pid, node);
    announce_up();
    return;
  }
}

const Job* PwsScheduler::job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const Pool* PwsScheduler::pool(const std::string& name) const {
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : &it->second;
}

std::size_t PwsScheduler::queued_count() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kQueued) ++n;
  }
  return n;
}

std::size_t PwsScheduler::running_count() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning) ++n;
  }
  return n;
}

}  // namespace phoenix::pws
