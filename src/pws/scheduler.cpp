#include "pws/scheduler.h"

#include <algorithm>
#include <utility>

#include "kernel/ppm/process_manager.h"

namespace phoenix::pws {

using kernel::ServiceKind;

namespace {
constexpr std::size_t kNoPool = static_cast<std::size_t>(-1);
}  // namespace

PwsScheduler::PwsScheduler(cluster::Cluster& cluster, net::NodeId node,
                           kernel::PhoenixKernel& kernel, PwsConfig config)
    : Daemon(cluster, "pws.scheduler", node, cluster::ports::kPwsScheduler),
      kernel_(kernel),
      config_(std::move(config)),
      ticker_(cluster.engine(), config_.schedule_tick, [this] { schedule_pass(); }) {
  for (const auto& pool_config : config_.pools) pools_.emplace_back(pool_config);
  // Name order, matching the historical std::map<string, Pool> iteration.
  std::sort(pools_.begin(), pools_.end(),
            [](const Pool& a, const Pool& b) { return a.name() < b.name(); });
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    pool_index_[net::intern_symbol(pools_[i].name()).value] = i;
    for (net::NodeId n : pools_[i].owned_nodes()) {
      const bool node_alive = cluster.node(n).alive();
      slots_[n.value] = NodeSlot{static_cast<std::int32_t>(i), -1, 0, node_alive};
      if (node_alive) pools_[i].free_nodes().insert(n.value);
    }
  }
  pool_dirty_.assign(pools_.size(), 1);  // first pass looks at everything

  metrics_ = &cluster.metrics();
  schedule_latency_us_ = metrics_->histogram("pws.schedule_latency_us");
  batch_size_hist_ = metrics_->histogram("pws.batch_size");
  submitted_ctr_ = metrics_->counter("pws.submitted");
  admission_denied_ctr_ = metrics_->counter("pws.admission_denied");
  batches_ctr_ = metrics_->counter("pws.batches");
  cancelled_ctr_ = metrics_->counter("pws.cancelled");
  probe_id_ = metrics_->register_probe([this](obs::Registry& r) {
    if (!alive()) return;  // a migrated-away instance must not clobber gauges
    r.gauge("pws.queue_depth")->set(static_cast<double>(queued_jobs_));
    r.gauge("pws.running")->set(static_cast<double>(running_jobs_));
    r.gauge("pws.jobs_tracked")->set(static_cast<double>(jobs_.size()));
  });
}

PwsScheduler::~PwsScheduler() {
  if (metrics_ != nullptr && probe_id_ != 0) metrics_->unregister_probe(probe_id_);
}

void PwsScheduler::on_start() {
  ticker_.set_period(config_.schedule_tick);
  ticker_.start_after(config_.schedule_tick);
  subscribe_events();
  if (started_before_) {
    recover_state();
  } else {
    announce_up();
  }
  started_before_ = true;
}

void PwsScheduler::on_stop() { ticker_.stop(); }

void PwsScheduler::subscribe_events() {
  kernel::Subscription sub;
  sub.consumer = address();
  sub.types = {std::string(kernel::event_types::kNodeFailed),
               std::string(kernel::event_types::kNodeRecovered)};
  auto msg = std::make_shared<kernel::EsSubscribeMsg>();
  msg->subscription = std::move(sub);
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(ServiceKind::kEventService, partition),
           std::move(msg));
}

void PwsScheduler::announce_up() {
  const auto partition = cluster().partition_of(node_id());
  auto up = std::make_shared<kernel::ServiceUpMsg>();
  up->extension = "pws.scheduler";
  up->partition = partition;
  up->service = address();
  send_any(kernel_.service_address(ServiceKind::kGroupService, partition),
           std::move(up));
}

// --- submission ---------------------------------------------------------------

JobId PwsScheduler::submit(const SubmitRequest& request) {
  return submit_internal(request, true).job_id;
}

BatchSubmitResult PwsScheduler::submit_with_status(const SubmitRequest& request) {
  return submit_internal(request, true);
}

bool PwsScheduler::admit_tenant(net::SymbolId user) {
  if (config_.admission_rate <= 0.0) return true;
  auto [it, inserted] = buckets_.try_emplace(user.value);
  TokenBucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = config_.admission_burst;  // a new tenant starts full
  } else {
    bucket.tokens = std::min(
        config_.admission_burst,
        bucket.tokens + config_.admission_rate *
                            sim::to_seconds(now() - bucket.last_refill));
  }
  bucket.last_refill = now();
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

BatchSubmitResult PwsScheduler::submit_internal(const SubmitRequest& request,
                                                bool checkpoint_each) {
  const auto user_sym = net::intern_symbol(request.user);
  if (!admit_tenant(user_sym)) {
    ++stats_.admission_denied;
    if (metrics_->enabled()) admission_denied_ctr_->inc();
    return {0, SubmitStatus::kAdmissionDenied};
  }

  Job job;
  job.id = next_job_id_++;
  job.name = request.name.empty() ? "job" + std::to_string(job.id) : request.name;
  job.user = request.user;
  job.pool = request.pool;
  job.nodes_needed = std::max(1u, request.nodes);
  job.duration = request.duration;
  job.priority = request.priority;
  job.walltime_limit = request.walltime_limit;
  job.arch = request.arch;
  job.after_ok = request.after_ok;
  job.state = JobState::kQueued;
  job.submitted_at = now();
  job.user_sym = user_sym;
  job.pool_sym = net::intern_symbol(request.pool);

  const std::size_t pool_index = pool_index_of(job.pool_sym);
  const JobId id = job.id;
  if (pool_index == kNoPool) {
    job.state = JobState::kRejected;
    ++stats_.rejected;
    jobs_.emplace(id, std::move(job));
    retire_if_unretained(id);
    return {id, SubmitStatus::kUnknownPool};
  }
  if (request.after_ok != 0) {
    auto dep = jobs_.find(request.after_ok);
    if (dep != jobs_.end() && !dep->second.terminal()) {
      dependents_[request.after_ok].push_back(id);
    }
  }
  pools_[pool_index].enqueue(job, usage_of_sym(user_sym));
  jobs_.emplace(id, std::move(job));
  ++queued_jobs_;
  ++stats_.submitted;
  if (metrics_->enabled()) submitted_ctr_->inc();
  mark_pool_dirty(pool_index);
  if (checkpoint_each) checkpoint_state();
  return {id, SubmitStatus::kAccepted};
}

bool PwsScheduler::cancel(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.terminal()) return false;
  Job& job = it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kAuthorizing) {
    if (job.state == JobState::kQueued) {
      const std::size_t pool_index = pool_index_of(job.pool_sym);
      if (pool_index != kNoPool) {
        Pool& pool = pools_[pool_index];
        const bool had_pending = pool.has_pending();
        pool.remove(id);
        if (had_pending && !pool.has_pending()) pool_drained(pool_index);
      }
      --queued_jobs_;
    }
    job.state = JobState::kCancelled;
    job.finished_at = now();
    ++stats_.cancelled;
    if (metrics_->enabled()) cancelled_ctr_->inc();
    wake_dependents(id);
    retire_if_unretained(id);
    checkpoint_state();
    return true;
  }
  // Running: kill every process, free the slots.
  for (const auto& [node_value, pid] : job.pids) {
    auto kill = std::make_shared<kernel::KillMsg>();
    kill->pid = pid;
    send_any({net::NodeId{node_value}, kernel::port_of(ServiceKind::kProcessManager)},
             std::move(kill));
    pid_to_job_.erase(pid);
  }
  for (net::NodeId n : job.allocated) {
    auto slot = slots_.find(n.value);
    if (slot != slots_.end() && slot->second.running_job == id) {
      free_slot(n.value, slot->second);
    }
  }
  ++stats_.cancelled;
  if (metrics_->enabled()) cancelled_ctr_->inc();
  finish_job(job, JobState::kCancelled);
  return true;
}

// --- batch RPC ingest ---------------------------------------------------------

void PwsScheduler::handle_submit_batch(const PwsSubmitBatchMsg& batch) {
  std::shared_ptr<const net::Message> cached;
  switch (batch_replay_.begin(batch.reply_to, PwsSubmitBatchMsg::static_type_id(),
                              batch.request_id, &cached)) {
    case net::ReplayCache::Admit::kReplay:
      if (batch.reply_to.valid() && cached != nullptr) {
        send_any(batch.reply_to, std::move(cached));
      }
      return;
    case net::ReplayCache::Admit::kInFlight:
      return;
    case net::ReplayCache::Admit::kNew:
      break;
  }
  auto reply = std::make_shared<PwsSubmitBatchReplyMsg>();
  reply->request_id = batch.request_id;
  reply->results.reserve(batch.requests.size());
  for (const auto& request : batch.requests) {
    reply->results.push_back(submit_internal(request, false));
  }
  ++stats_.batches;
  if (metrics_->enabled()) {
    batches_ctr_->inc();
    batch_size_hist_->record(batch.requests.size());
  }
  checkpoint_state();  // one (coalescible) checkpoint for the whole batch
  request_pass_soon();
  batch_replay_.complete(batch.reply_to, PwsSubmitBatchMsg::static_type_id(),
                         batch.request_id, reply);
  if (batch.reply_to.valid()) send_any(batch.reply_to, std::move(reply));
}

void PwsScheduler::handle_cancel_batch(const PwsCancelBatchMsg& batch) {
  std::shared_ptr<const net::Message> cached;
  switch (batch_replay_.begin(batch.reply_to, PwsCancelBatchMsg::static_type_id(),
                              batch.request_id, &cached)) {
    case net::ReplayCache::Admit::kReplay:
      if (batch.reply_to.valid() && cached != nullptr) {
        send_any(batch.reply_to, std::move(cached));
      }
      return;
    case net::ReplayCache::Admit::kInFlight:
      return;
    case net::ReplayCache::Admit::kNew:
      break;
  }
  auto reply = std::make_shared<PwsCancelBatchReplyMsg>();
  reply->request_id = batch.request_id;
  reply->cancelled.reserve(batch.job_ids.size());
  for (const JobId id : batch.job_ids) {
    reply->cancelled.push_back(cancel(id) ? 1 : 0);
  }
  batch_replay_.complete(batch.reply_to, PwsCancelBatchMsg::static_type_id(),
                         batch.request_id, reply);
  if (batch.reply_to.valid()) send_any(batch.reply_to, std::move(reply));
}

void PwsScheduler::request_pass_soon() {
  if (pass_pending_) return;
  pass_pending_ = true;
  engine().schedule_after(config_.batch_pass_delay, [this] {
    pass_pending_ = false;
    schedule_pass();
  });
}

// --- scheduling -----------------------------------------------------------------

std::string PwsScheduler::effective_pool(net::NodeId node) const {
  auto it = slots_.find(node.value);
  if (it == slots_.end()) return {};
  const std::int32_t index = effective_pool_index(it->second);
  return index < 0 ? std::string{} : pools_[static_cast<std::size_t>(index)].name();
}

bool PwsScheduler::is_leased(net::NodeId node) const {
  auto it = slots_.find(node.value);
  return it != slots_.end() && it->second.leased_to >= 0;
}

std::vector<net::NodeId> PwsScheduler::free_nodes_of(
    std::size_t pool_index, const std::string& arch) const {
  // The free set holds only idle, live nodes serving this pool, in node-id
  // order — the same order the historical whole-cluster slot scan produced.
  std::vector<net::NodeId> out;
  const auto& free = pools_[pool_index].free_nodes();
  out.reserve(free.size());
  for (const std::uint32_t node_value : free) {
    if (!arch.empty() &&
        cluster().node(net::NodeId{node_value}).arch() != arch) {
      continue;  // architecture constraint (heterogeneous clusters)
    }
    out.push_back(net::NodeId{node_value});
  }
  return out;
}

std::size_t PwsScheduler::borrow_nodes(std::size_t borrower, std::size_t deficit) {
  Pool& pool = pools_[borrower];
  if (!pool.config().allow_borrowing) return 0;
  std::size_t borrowed = 0;
  for (std::size_t li = 0; li < pools_.size() && borrowed < deficit; ++li) {
    if (li == borrower) continue;
    Pool& lender = pools_[li];
    if (!lender.config().allow_lending) continue;
    // Only lend nodes the owner is not about to use itself.
    if (lender.has_pending()) continue;
    auto& lender_free = lender.free_nodes();
    for (auto it = lender_free.begin();
         it != lender_free.end() && borrowed < deficit;) {
      NodeSlot& slot = slots_[*it];
      // Leased-in capacity is not re-lendable; only the lender's own nodes.
      if (slot.owner_pool != static_cast<std::int32_t>(li) ||
          slot.leased_to >= 0) {
        ++it;
        continue;
      }
      slot.leased_to = static_cast<std::int32_t>(borrower);
      pool.free_nodes().insert(*it);
      it = lender_free.erase(it);
      ++borrowed;
      ++stats_.leases_granted;
    }
  }
  return borrowed;
}

sim::SimTime PwsScheduler::shadow_time(const Job& head,
                                       std::size_t pool_index) const {
  // Earliest time the head job could start: walk running jobs serving this
  // pool in completion order, accumulating freed nodes.
  const auto target = static_cast<std::int32_t>(pool_index);
  std::vector<std::pair<sim::SimTime, unsigned>> completions;
  for (const JobId id : running_ids_) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::kRunning) continue;
    const Job& job = it->second;
    unsigned nodes_in_pool = 0;
    for (net::NodeId n : job.allocated) {
      auto slot = slots_.find(n.value);
      if (slot != slots_.end() && effective_pool_index(slot->second) == target) {
        ++nodes_in_pool;
      }
    }
    if (nodes_in_pool > 0) {
      completions.emplace_back(job.started_at + job.duration, nodes_in_pool);
    }
  }
  std::sort(completions.begin(), completions.end());
  std::size_t available = free_nodes_of(pool_index, head.arch).size();
  for (const auto& [finish, freed] : completions) {
    available += freed;
    if (available >= head.nodes_needed) return finish;
  }
  return sim::kNever;
}

void PwsScheduler::mark_pool_dirty(std::size_t pool_index) {
  if (pool_index < pool_dirty_.size()) pool_dirty_[pool_index] = 1;
}

void PwsScheduler::schedule_pass() {
  if (!alive()) return;
  enforce_walltime();
  // One in-(name-)order sweep over the pools something actually happened to.
  // Marks set mid-sweep for a later pool are honored this pass (the full
  // scan would have reached them anyway); marks for an earlier pool wait
  // for the next tick, exactly like the historical single ordered pass.
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (!pool_dirty_[i]) continue;
    pool_dirty_[i] = 0;
    scan_pool(i);
  }
  checkpoint_state();
}

void PwsScheduler::scan_pool(std::size_t pool_index) {
  Pool& pool = pools_[pool_index];
  pool.refresh(jobs_, [this](const Job& j) { return usage_of_sym(j.user_sym); });
  auto& pending = pool.pending();
  const bool had_pending = !pending.empty();

  bool head_blocked = false;
  sim::SimTime head_shadow = sim::kNever;
  for (std::size_t i = 0; i < pending.size();) {
    auto job_it = jobs_.find(pending[i].id);
    if (job_it == jobs_.end() || job_it->second.terminal()) {
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    Job& job = job_it->second;

    // Dependency gate ("afterok"): wait for the dependency to complete;
    // cancel this job if the dependency ended any other way.
    if (job.after_ok != 0) {
      const auto dep = jobs_.find(job.after_ok);
      const bool dep_ok =
          dep != jobs_.end() && dep->second.state == JobState::kCompleted;
      const bool dep_dead =
          dep == jobs_.end() ||
          (dep->second.terminal() && dep->second.state != JobState::kCompleted);
      if (dep_dead) {
        job.state = JobState::kCancelled;
        job.finished_at = now();
        --queued_jobs_;
        ++stats_.cancelled;
        if (metrics_->enabled()) cancelled_ctr_->inc();
        const JobId dead = job.id;
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        wake_dependents(dead);
        retire_if_unretained(dead);
        continue;
      }
      if (!dep_ok) {
        ++i;  // dependency still pending: skip without blocking the head
        continue;
      }
    }

    if (head_blocked) {
      // EASY backfill: later jobs may run if they fit now and finish
      // before the head's reserved start.
      if (pool.policy() != SchedPolicy::kBackfill) break;
      if (now() + job.duration > head_shadow) {
        ++i;
        continue;
      }
    }

    std::vector<net::NodeId> free = free_nodes_of(pool_index, job.arch);
    if (free.size() < job.nodes_needed) {
      const std::size_t got =
          borrow_nodes(pool_index, job.nodes_needed - free.size());
      if (got > 0) free = free_nodes_of(pool_index, job.arch);
    }
    if (free.size() < job.nodes_needed) {
      if (!head_blocked) {
        head_blocked = true;
        head_shadow = shadow_time(job, pool_index);
      }
      ++i;
      continue;
    }

    free.resize(job.nodes_needed);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
    start_job(job, std::move(free), pool);
  }
  if (had_pending && pending.empty()) pool_drained(pool_index);
}

void PwsScheduler::start_job(Job& job, std::vector<net::NodeId> nodes,
                             Pool& pool) {
  job.allocated = std::move(nodes);
  // A duplicate pending entry (post-recovery) can re-start a job that is
  // already running — keep the counters exact even then.
  if (job.state == JobState::kQueued && queued_jobs_ > 0) --queued_jobs_;
  if (job.state != JobState::kRunning) {
    ++running_jobs_;
    running_ids_.insert(job.id);
  }
  job.state = JobState::kRunning;
  job.started_at = now();
  stats_.total_wait_seconds += sim::to_seconds(now() - job.submitted_at);
  if (metrics_->enabled()) {
    schedule_latency_us_->record(
        static_cast<std::uint64_t>(now() - job.submitted_at));
  }
  for (net::NodeId n : job.allocated) {
    slots_[n.value].running_job = job.id;
    pool.free_nodes().erase(n.value);
  }
  if (job.walltime_limit > 0) {
    expiry_.push({job.started_at + job.walltime_limit, job.id});
  }
  launch(job);
}

void PwsScheduler::enforce_walltime() {
  // Pop the expiry min-heap instead of scanning the job table: O(expired).
  // Entries are lazily invalidated — a requeued job pushed a fresh entry at
  // its relaunch, so a stale one fails revalidation and is dropped.
  std::vector<JobId> victims;
  while (!expiry_.empty() && expiry_.top().first < now()) {
    const JobId id = expiry_.top().second;
    expiry_.pop();
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    const Job& job = it->second;
    if (job.state != JobState::kRunning || job.walltime_limit == 0) continue;
    if (now() > job.started_at + job.walltime_limit) victims.push_back(id);
  }
  // Kill in job-id order (the historical job-table scan order).
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  for (const JobId id : victims) {
    Job& job = jobs_.at(id);
    if (job.state != JobState::kRunning) continue;
    for (const auto& [node_value, pid] : job.pids) {
      pid_to_job_.erase(pid);
      auto kill = std::make_shared<kernel::KillMsg>();
      kill->pid = pid;
      send_any({net::NodeId{node_value},
                kernel::port_of(ServiceKind::kProcessManager)},
               std::move(kill));
    }
    for (net::NodeId n : job.allocated) {
      auto slot = slots_.find(n.value);
      if (slot != slots_.end() && slot->second.running_job == id) {
        free_slot(n.value, slot->second);
      }
    }
    ++stats_.timed_out;
    finish_job(job, JobState::kTimedOut);
  }
}

void PwsScheduler::launch(Job& job) {
  for (net::NodeId n : job.allocated) {
    auto spawn = std::make_shared<kernel::SpawnMsg>();
    spawn->spec.name = job.name;
    spawn->spec.owner = job.user;
    spawn->spec.cpu_share = static_cast<double>(cluster().node(n).cpus());
    spawn->spec.duration = job.duration;
    spawn->reply_to = address();
    spawn->exit_notify = address();
    spawn->request_id = next_request_id_++;
    pending_spawns_[spawn->request_id] = PendingSpawn{job.id, n};
    send_any({n, kernel::port_of(ServiceKind::kProcessManager)}, std::move(spawn));
  }
}

void PwsScheduler::complete_process(cluster::Pid pid, net::NodeId node) {
  auto map_it = pid_to_job_.find(pid);
  if (map_it == pid_to_job_.end()) return;
  const JobId job_id = map_it->second;
  pid_to_job_.erase(map_it);

  auto job_it = jobs_.find(job_id);
  if (job_it == jobs_.end()) return;
  Job& job = job_it->second;
  if (job.state != JobState::kRunning) return;
  ++job.exited;
  usage_[job.user_sym.value] += sim::to_seconds(job.duration);
  // Fair-share ordering keys drift with usage; re-rank those pools' queues.
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (pools_[i].policy() == SchedPolicy::kFairShare && pools_[i].has_pending()) {
      mark_pool_dirty(i);
    }
  }

  auto slot = slots_.find(node.value);
  if (slot != slots_.end() && slot->second.running_job == job_id) {
    free_slot(node.value, slot->second);
  }
  if (job.exited >= job.allocated.size()) {
    finish_job(job, JobState::kCompleted);
    // Freed nodes may unblock queued work without waiting a full tick. In
    // the batched configuration one coalesced prompt pass covers a whole
    // crop of completions; the historical path schedules one per job.
    if (config_.checkpoint_interval > 0) {
      request_pass_soon();
    } else {
      engine().schedule_after(1 * sim::kMillisecond, [this] { schedule_pass(); });
    }
  }
}

void PwsScheduler::finish_job(Job& job, JobState final_state) {
  if (job.state == JobState::kRunning) {
    --running_jobs_;
    running_ids_.erase(job.id);
  } else if (job.state == JobState::kQueued) {
    --queued_jobs_;
  }
  job.state = final_state;
  job.finished_at = now();
  if (final_state == JobState::kCompleted) ++stats_.completed;
  if (final_state == JobState::kFailed) ++stats_.failed;
  const JobId id = job.id;
  wake_dependents(id);
  retire_if_unretained(id);  // `job` may dangle past this point
  checkpoint_state();
}

void PwsScheduler::free_slot(std::uint32_t node_value, NodeSlot& slot) {
  slot.running_job = 0;
  slot.leased_to = -1;  // leased capacity returns to its owner
  if (slot.node_alive && slot.owner_pool >= 0) {
    const auto owner = static_cast<std::size_t>(slot.owner_pool);
    pools_[owner].free_nodes().insert(node_value);
    capacity_freed(owner);
  }
}

void PwsScheduler::capacity_freed(std::size_t owner_index) {
  mark_pool_dirty(owner_index);
  // Idle capacity of a lender with nothing queued is borrowable: wake every
  // pool that could claim it.
  const Pool& owner = pools_[owner_index];
  if (!owner.config().allow_lending || owner.has_pending()) return;
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (i == owner_index) continue;
    if (pools_[i].config().allow_borrowing && pools_[i].has_pending()) {
      mark_pool_dirty(i);
    }
  }
}

void PwsScheduler::pool_drained(std::size_t pool_index) {
  if (!pools_[pool_index].config().allow_lending) return;
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (i == pool_index) continue;
    if (pools_[i].config().allow_borrowing && pools_[i].has_pending()) {
      mark_pool_dirty(i);
    }
  }
}

void PwsScheduler::wake_dependents(JobId id) {
  auto it = dependents_.find(id);
  if (it == dependents_.end()) return;
  const std::vector<JobId> waiters = std::move(it->second);
  dependents_.erase(it);
  const auto self = jobs_.find(id);
  const bool completed =
      self != jobs_.end() && self->second.state == JobState::kCompleted;
  for (const JobId waiter : waiters) {
    auto waiter_it = jobs_.find(waiter);
    if (waiter_it == jobs_.end() || waiter_it->second.terminal()) continue;
    Job& dependent = waiter_it->second;
    // With terminal jobs retired from the table, the scan could no longer
    // tell "dependency completed then vanished" from "never existed" — so
    // release the gate here, before the dependency is retired.
    if (completed && !config_.retain_terminal_jobs) dependent.after_ok = 0;
    const std::size_t pool_index = pool_index_of(dependent.pool_sym);
    if (pool_index != kNoPool) mark_pool_dirty(pool_index);
  }
}

void PwsScheduler::retire_if_unretained(JobId id) {
  if (config_.retain_terminal_jobs) return;
  auto it = jobs_.find(id);
  if (it == jobs_.end() || !it->second.terminal()) return;
  dependents_.erase(id);
  jobs_.erase(it);
}

void PwsScheduler::handle_node_failed(net::NodeId node) {
  auto slot_it = slots_.find(node.value);
  if (slot_it == slots_.end()) return;
  NodeSlot& slot = slot_it->second;
  if (slot.running_job == 0 && slot.node_alive) {
    // Dead capacity serves nobody: drop it from its pool's free set.
    const std::int32_t serving = effective_pool_index(slot);
    if (serving >= 0) {
      pools_[static_cast<std::size_t>(serving)].free_nodes().erase(node.value);
    }
  }
  slot.node_alive = false;
  const JobId victim = slot.running_job;
  slot.running_job = 0;
  slot.leased_to = -1;
  if (victim == 0) return;

  auto job_it = jobs_.find(victim);
  if (job_it == jobs_.end() || job_it->second.state != JobState::kRunning) return;
  Job& job = job_it->second;

  // Kill the job's surviving processes and free their slots.
  for (const auto& [node_value, pid] : job.pids) {
    pid_to_job_.erase(pid);
    if (node_value == node.value) continue;
    auto kill = std::make_shared<kernel::KillMsg>();
    kill->pid = pid;
    send_any({net::NodeId{node_value}, kernel::port_of(ServiceKind::kProcessManager)},
             std::move(kill));
  }
  for (net::NodeId n : job.allocated) {
    auto s = slots_.find(n.value);
    if (s != slots_.end() && s->second.running_job == victim) {
      free_slot(n.value, s->second);
    }
  }
  requeue_or_fail(job);
}

void PwsScheduler::requeue_or_fail(Job& job) {
  job.allocated.clear();
  job.pids.clear();
  job.exited = 0;
  if (job.requeues < config_.max_requeues) {
    ++job.requeues;
    ++stats_.requeued;
    if (job.state == JobState::kRunning) {
      --running_jobs_;
      running_ids_.erase(job.id);
    }
    job.state = JobState::kQueued;
    ++queued_jobs_;
    const std::size_t pool_index = pool_index_of(job.pool_sym);
    if (pool_index != kNoPool) {
      pools_[pool_index].enqueue_front(job, usage_of_sym(job.user_sym));
      mark_pool_dirty(pool_index);
    }
    checkpoint_state();
  } else {
    finish_job(job, JobState::kFailed);
  }
}

// --- state persistence ------------------------------------------------------------

void PwsScheduler::checkpoint_state() {
  if (config_.checkpoint_interval == 0) {
    save_checkpoint_now();
    return;
  }
  if (!ever_ckpt_ || now() - last_ckpt_time_ >= config_.checkpoint_interval) {
    // Leading edge: a change after a quiet stretch checkpoints immediately,
    // so an isolated submission is persisted with no added staleness.
    save_checkpoint_now();
    return;
  }
  // Saved recently; fold further changes into one trailing flush at the end
  // of the window.
  ckpt_dirty_ = true;
  if (ckpt_flush_scheduled_) return;
  ckpt_flush_scheduled_ = true;
  const sim::SimTime delay =
      last_ckpt_time_ + config_.checkpoint_interval - now();
  engine().schedule_after(delay, [this] {
    ckpt_flush_scheduled_ = false;
    if (ckpt_dirty_ && alive()) save_checkpoint_now();
  });
}

void PwsScheduler::save_checkpoint_now() {
  auto save = std::make_shared<kernel::CheckpointSaveMsg>();
  save->service = "pws";
  save->key = "jobs";
  save->data = serialize_jobs(jobs_);
  last_ckpt_time_ = now();
  ever_ckpt_ = true;
  ckpt_dirty_ = false;
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(ServiceKind::kCheckpointService, partition),
           std::move(save));
}

void PwsScheduler::recover_state() {
  recovery_load_id_ = next_request_id_++;
  auto load = std::make_shared<kernel::CheckpointLoadMsg>();
  load->service = "pws";
  load->key = "jobs";
  load->reply_to = address();
  load->request_id = recovery_load_id_;
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(ServiceKind::kCheckpointService, partition),
           std::move(load));
}

void PwsScheduler::rebuild_after_restore() {
  // Volatile indexes are rebuilt from the recovered job table; the slot
  // table keeps its in-memory lease/liveness state (only running_job marks
  // are re-derived). The pending indexes are deliberately NOT cleared:
  // an in-place restart historically re-pushed every recovered queued job
  // behind whatever the in-memory queue already held, and the faulted
  // pws_vs_pbs experiment depends on that exact (duplicate-tolerant)
  // sequence of scheduling decisions.
  for (auto& pool : pools_) pool.free_nodes().clear();
  running_ids_.clear();
  expiry_ = {};
  dependents_.clear();
  pid_to_job_.clear();
  queued_jobs_ = 0;
  running_jobs_ = 0;

  for (auto& [id, job] : jobs_) {
    job.user_sym = net::intern_symbol(job.user);
    job.pool_sym = net::intern_symbol(job.pool);
    if (id >= next_job_id_) next_job_id_ = id + 1;
    if (job.state == JobState::kRunning) {
      for (net::NodeId n : job.allocated) {
        auto slot = slots_.find(n.value);
        if (slot != slots_.end()) slot->second.running_job = id;
      }
      for (const auto& [node_value, pid] : job.pids) pid_to_job_[pid] = id;
      ++running_jobs_;
      running_ids_.insert(id);
      if (job.walltime_limit > 0) {
        expiry_.push({job.started_at + job.walltime_limit, id});
      }
    } else if (job.state == JobState::kQueued ||
               job.state == JobState::kAuthorizing) {
      job.state = JobState::kQueued;
      const std::size_t pool_index = pool_index_of(job.pool_sym);
      if (pool_index != kNoPool) {
        pools_[pool_index].enqueue(job, usage_of_sym(job.user_sym));
      }
      ++queued_jobs_;
      if (job.after_ok != 0) {
        auto dep = jobs_.find(job.after_ok);
        if (dep != jobs_.end() && !dep->second.terminal()) {
          dependents_[job.after_ok].push_back(id);
        }
      }
    }
  }
  for (const auto& [node_value, slot] : slots_) {
    if (slot.node_alive && slot.running_job == 0) {
      const std::int32_t serving = effective_pool_index(slot);
      if (serving >= 0) {
        pools_[static_cast<std::size_t>(serving)].free_nodes().insert(node_value);
      }
    }
  }
  pool_dirty_.assign(pools_.size(), 1);  // everything is suspect after recovery
}

void PwsScheduler::reconcile_with_bulletin() {
  // Running jobs may have finished while we were down; ask the bulletin
  // federation which application processes still exist.
  reconcile_query_id_ = next_request_id_++;
  auto query = std::make_shared<kernel::DbQueryMsg>();
  query->query_id = reconcile_query_id_;
  query->table = kernel::BulletinTable::kApps;
  query->cluster_scope = true;
  query->reply_to = address();
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(ServiceKind::kDataBulletin, partition),
           std::move(query));
}

// --- message handling ------------------------------------------------------------

void PwsScheduler::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;

  if (const auto* submit = net::message_cast<PwsSubmitMsg>(m)) {
    if (config_.use_security) {
      Job job;
      job.id = next_job_id_++;
      job.name = submit->request.name.empty() ? "job" + std::to_string(job.id)
                                              : submit->request.name;
      job.user = submit->request.user;
      job.pool = submit->request.pool;
      job.nodes_needed = std::max(1u, submit->request.nodes);
      job.duration = submit->request.duration;
      job.state = JobState::kAuthorizing;
      job.submitted_at = now();
      job.user_sym = net::intern_symbol(job.user);
      job.pool_sym = net::intern_symbol(job.pool);
      const JobId id = job.id;
      jobs_.emplace(id, std::move(job));

      auto authz = std::make_shared<kernel::AuthzRequestMsg>();
      authz->token = submit->token;
      authz->action = "job.submit";
      authz->resource = "pool/" + submit->request.pool;
      authz->reply_to = address();
      authz->request_id = next_request_id_++;
      pending_authz_[authz->request_id] =
          PendingAuthz{id, submit->reply_to, submit->request_id};
      send_any(kernel_.service_address(ServiceKind::kSecurity, net::PartitionId{0}),
               std::move(authz));
      return;
    }
    const BatchSubmitResult result = submit_internal(submit->request, true);
    if (submit->reply_to.valid()) {
      auto reply = std::make_shared<PwsSubmitReplyMsg>();
      reply->request_id = submit->request_id;
      reply->accepted = result.status == SubmitStatus::kAccepted;
      reply->job_id = result.job_id;
      if (result.status != SubmitStatus::kAccepted) {
        reply->reason = std::string(to_string(result.status));
      }
      send_any(submit->reply_to, std::move(reply));
    }
    return;
  }

  if (const auto* batch = net::message_cast<PwsSubmitBatchMsg>(m)) {
    handle_submit_batch(*batch);
    return;
  }

  if (const auto* batch = net::message_cast<PwsCancelBatchMsg>(m)) {
    handle_cancel_batch(*batch);
    return;
  }

  if (const auto* query = net::message_cast<PwsQueryMsg>(m)) {
    auto reply = std::make_shared<PwsQueryReplyMsg>();
    reply->request_id = query->request_id;
    for (const auto& [id, job] : jobs_) {
      if (query->job_id != 0 && id != query->job_id) continue;
      if (!query->user.empty() && job.user != query->user) continue;
      reply->jobs.push_back(job);
    }
    send_any(query->reply_to, std::move(reply));
    return;
  }

  if (const auto* cancel_msg = net::message_cast<PwsCancelMsg>(m)) {
    auto reply = std::make_shared<PwsCancelReplyMsg>();
    reply->request_id = cancel_msg->request_id;
    reply->cancelled = cancel(cancel_msg->job_id);
    if (cancel_msg->reply_to.valid()) send_any(cancel_msg->reply_to, std::move(reply));
    return;
  }

  if (const auto* authz = net::message_cast<kernel::AuthzReplyMsg>(m)) {
    auto it = pending_authz_.find(authz->request_id);
    if (it == pending_authz_.end()) return;
    const PendingAuthz pending = it->second;
    pending_authz_.erase(it);
    auto job_it = jobs_.find(pending.job);
    if (job_it == jobs_.end()) return;
    Job& job = job_it->second;
    const JobId job_id = job.id;
    bool accepted = false;
    std::string reason = authz->reason;
    const std::size_t pool_index = pool_index_of(job.pool_sym);
    if (!authz->allowed) {
      job.state = JobState::kRejected;
      job.finished_at = now();
      ++stats_.rejected;
      retire_if_unretained(job_id);
    } else if (pool_index == kNoPool) {
      job.state = JobState::kRejected;
      job.finished_at = now();
      ++stats_.rejected;
      reason = "unknown pool '" + job.pool + "'";
      retire_if_unretained(job_id);
    } else {
      job.state = JobState::kQueued;
      pools_[pool_index].enqueue(job, usage_of_sym(job.user_sym));
      ++queued_jobs_;
      mark_pool_dirty(pool_index);
      ++stats_.submitted;
      if (metrics_->enabled()) submitted_ctr_->inc();
      accepted = true;
    }
    checkpoint_state();
    if (pending.reply_to.valid()) {
      auto reply = std::make_shared<PwsSubmitReplyMsg>();
      reply->request_id = pending.caller_request_id;
      reply->accepted = accepted;
      reply->job_id = job_id;
      reply->reason = std::move(reason);
      send_any(pending.reply_to, std::move(reply));
    }
    return;
  }

  if (const auto* spawn = net::message_cast<kernel::SpawnReplyMsg>(m)) {
    auto it = pending_spawns_.find(spawn->request_id);
    if (it == pending_spawns_.end()) return;
    const PendingSpawn pending = it->second;
    pending_spawns_.erase(it);
    auto job_it = jobs_.find(pending.job);
    if (job_it == jobs_.end() || !spawn->ok) return;
    job_it->second.pids[pending.node.value] = spawn->pid;
    pid_to_job_[spawn->pid] = pending.job;
    checkpoint_state();
    return;
  }

  if (const auto* exit = net::message_cast<kernel::ExitNotifyMsg>(m)) {
    complete_process(exit->pid, exit->node);
    return;
  }

  if (const auto* notify = net::message_cast<kernel::EsNotifyMsg>(m)) {
    const kernel::Event& e = notify->event;
    if (e.type == kernel::event_types::kNodeFailed) {
      handle_node_failed(e.subject_node);
    } else if (e.type == kernel::event_types::kNodeRecovered) {
      auto slot_it = slots_.find(e.subject_node.value);
      if (slot_it != slots_.end() && !slot_it->second.node_alive) {
        slot_it->second.node_alive = true;
        if (slot_it->second.running_job == 0) {
          const std::int32_t serving = effective_pool_index(slot_it->second);
          if (serving >= 0) {
            const auto index = static_cast<std::size_t>(serving);
            pools_[index].free_nodes().insert(e.subject_node.value);
            capacity_freed(index);
          }
        }
      }
    }
    return;
  }

  if (const auto* load = net::message_cast<kernel::CheckpointLoadReplyMsg>(m)) {
    if (load->request_id != recovery_load_id_ || recovery_load_id_ == 0) return;
    recovery_load_id_ = 0;
    if (load->found) {
      jobs_ = deserialize_jobs(load->data);
      rebuild_after_restore();
      reconcile_with_bulletin();
    } else {
      announce_up();
    }
    return;
  }

  if (const auto* reply = net::message_cast<kernel::DbQueryReplyMsg>(m)) {
    if (reply->query_id != reconcile_query_id_ || reconcile_query_id_ == 0) return;
    reconcile_query_id_ = 0;
    // Any tracked pid that the bulletin no longer lists finished while we
    // were down.
    std::vector<std::pair<cluster::Pid, net::NodeId>> gone;
    for (const auto& [pid, job_id] : pid_to_job_) {
      bool found = false;
      for (const auto& row : reply->app_rows) {
        if (row.pid == pid) {
          found = true;
          break;
        }
      }
      if (!found) {
        auto job_it = jobs_.find(job_id);
        if (job_it != jobs_.end()) {
          for (const auto& [node_value, p] : job_it->second.pids) {
            if (p == pid) gone.emplace_back(pid, net::NodeId{node_value});
          }
        }
      }
    }
    for (const auto& [pid, node] : gone) complete_process(pid, node);
    announce_up();
    return;
  }
}

// --- introspection ----------------------------------------------------------------

const Job* PwsScheduler::job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const Pool* PwsScheduler::pool(const std::string& name) const {
  const auto sym = net::find_symbol(name);
  if (!sym.valid()) return nullptr;
  auto it = pool_index_.find(sym.value);
  return it == pool_index_.end() ? nullptr : &pools_[it->second];
}

std::size_t PwsScheduler::pool_index_of(net::SymbolId sym) const {
  auto it = pool_index_.find(sym.value);
  return it == pool_index_.end() ? kNoPool : it->second;
}

double PwsScheduler::usage_of_sym(net::SymbolId user) const {
  auto it = usage_.find(user.value);
  return it == usage_.end() ? 0.0 : it->second;
}

std::map<std::string, double> PwsScheduler::user_usage() const {
  std::map<std::string, double> out;
  for (const auto& [sym, seconds] : usage_) {
    out[std::string(net::symbol_name(net::SymbolId{sym}))] = seconds;
  }
  return out;
}

}  // namespace phoenix::pws
