#include "pws/pws.h"

#include <stdexcept>

namespace phoenix::pws {

PwsSystem::PwsSystem(kernel::PhoenixKernel& kernel, PwsConfig config,
                     net::NodeId node)
    : kernel_(kernel) {
  if (!node.valid()) {
    node = kernel.cluster().server_node(net::PartitionId{0});
  }

  // Factory the kernel uses both now and when recreating the scheduler on a
  // backup node after a migration.
  auto shared_config = std::make_shared<PwsConfig>(std::move(config));
  kernel_.register_extension(
      kExtensionName,
      [&kernel, shared_config](net::NodeId target)
          -> std::unique_ptr<cluster::Daemon> {
        return std::make_unique<PwsScheduler>(kernel.cluster(), target, kernel,
                                              *shared_config);
      });

  cluster::Daemon* created = kernel_.create_extension(kExtensionName, node);
  if (created == nullptr) {
    throw std::logic_error("failed to create PWS scheduler");
  }
  created->start();

  // Put the scheduler under GSD supervision in its partition.
  const auto partition = kernel_.cluster().partition_of(node);
  kernel_.gsd(partition).supervise(kernel::SupervisedSpec{
      kExtensionName, kernel::ServiceKind::kEventService /*unused for extensions*/,
      kExtensionName, cluster::ports::kPwsScheduler});
}

PwsScheduler& PwsSystem::scheduler() {
  auto* d = kernel_.extension(kExtensionName);
  if (d == nullptr) throw std::logic_error("PWS scheduler not instantiated");
  return *static_cast<PwsScheduler*>(d);
}

const PwsScheduler& PwsSystem::scheduler() const {
  auto* d = kernel_.extension(kExtensionName);
  if (d == nullptr) throw std::logic_error("PWS scheduler not instantiated");
  return *static_cast<PwsScheduler*>(d);
}

}  // namespace phoenix::pws
