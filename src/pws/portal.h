// PWS integrated portal (paper Figure 9: "Integrated Web GUI for
// Phoenix-PWS: Start/Shutdown Nodes").
//
// A user-environment daemon that talks to the scheduler over its message
// protocol (qstat/qdel-style), pulls node state from the data bulletin
// federation, and renders the integrated management screen: queue and job
// tables per pool, a node grid with per-node state, and start/shutdown
// controls for individual nodes (shutdown kills the node's user processes
// and powers it down cleanly; start powers it back up and restarts the
// kernel's per-node daemons).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/kernel.h"
#include "pws/scheduler.h"

namespace phoenix::pws {

class Portal final : public cluster::Daemon {
 public:
  Portal(cluster::Cluster& cluster, net::NodeId node,
         kernel::PhoenixKernel& kernel, net::Address scheduler,
         sim::SimTime refresh_interval = 5 * sim::kSecond);

  /// The job table as of the last refresh.
  const std::vector<Job>& jobs() const noexcept { return jobs_; }
  std::uint64_t refreshes() const noexcept { return refreshes_; }

  /// Issues an immediate refresh round-trip (tests/demos).
  void refresh_now() { refresh(); }

  /// Figure-9 style screen: job queue + node grid + controls legend.
  std::string render() const;

  // --- node controls (the figure's "Start/Shutdown Nodes") -----------------

  /// Clean shutdown: user processes killed, node powered off. The kernel
  /// will report it failed and PWS will requeue its jobs — that is the
  /// point: operators use the same resilience path.
  bool shutdown_node(net::NodeId node);

  /// Powers a node back up and restarts its per-node kernel daemons.
  bool start_node(net::NodeId node);

 private:
  void handle(const net::Envelope& env) override;
  void on_start() override;
  void on_stop() override;
  void refresh();

  kernel::PhoenixKernel& kernel_;
  net::Address scheduler_;
  sim::PeriodicTask refresher_;
  std::vector<Job> jobs_;
  std::vector<kernel::NodeRecord> nodes_;
  std::uint64_t refreshes_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t pending_jobs_query_ = 0;
  std::uint64_t pending_nodes_query_ = 0;
};

}  // namespace phoenix::pws
