// PwsSystem: lifecycle facade for the PWS job-management environment.
//
// Registers the scheduler as a Phoenix extension service so the kernel's
// recovery machinery (GSD supervision, checkpoint-based state recovery,
// migration to a backup node) applies to it — the high availability the
// paper contrasts against PBS.
#pragma once

#include <memory>
#include <string>

#include "kernel/kernel.h"
#include "pws/scheduler.h"

namespace phoenix::pws {

class PwsSystem {
 public:
  /// Creates the scheduler on `node` (default: partition 0's server node)
  /// and wires it into the kernel's supervision and migration machinery.
  PwsSystem(kernel::PhoenixKernel& kernel, PwsConfig config,
            net::NodeId node = net::NodeId{});

  /// Current scheduler instance (replaced transparently on migration).
  PwsScheduler& scheduler();
  const PwsScheduler& scheduler() const;

  JobId submit(const SubmitRequest& request) { return scheduler().submit(request); }

  static constexpr const char* kExtensionName = "pws.scheduler";

 private:
  kernel::PhoenixKernel& kernel_;
};

}  // namespace phoenix::pws
