// System construction tool (paper §3): "System constructor configures,
// deploys and boots cluster system with system construction tool, and
// system construction tool behaves like the BIOS and kernel booting module
// of a host operating system."
//
// Unlike PhoenixKernel::boot()'s all-at-once bring-up, the constructor
// performs a staged, verified rollout:
//
//   probe    — POST-style hardware check: node liveness, per-network
//              interface state, dead-node inventory;
//   core     — configuration service (with hardware introspection) and
//              security service on the head node;
//   per partition, in order —
//     deploy    node daemons (PPM, detector, WD) on each live node,
//     services  checkpoint / event / bulletin instances + the GSD
//               (the first GSD founds the meta-group; later ones join),
//     verify    wait for the GSD to join the ring and for detectors to
//               populate the partition's bulletin; record the duration.
//
// The result is a BootReport a system constructor can read top to bottom,
// plus a plan() dry-run that lists the steps without executing them.
#pragma once

#include <string>
#include <vector>

#include "kernel/kernel.h"

namespace phoenix::construct {

struct PartitionReport {
  net::PartitionId partition;
  bool ok = false;
  bool ring_member = false;       // GSD joined the meta-group
  std::size_t nodes_deployed = 0;
  std::size_t nodes_skipped = 0;  // dead at deploy time
  std::size_t bulletin_rows = 0;  // rows after the first detector round
  sim::SimTime started_at = 0;
  sim::SimTime ready_at = 0;
  std::string note;
};

struct BootReport {
  bool ok = false;
  std::size_t nodes_total = 0;
  std::size_t nodes_dead_at_probe = 0;
  std::size_t interfaces_down_at_probe = 0;
  std::vector<PartitionReport> partitions;
  sim::SimTime total_time = 0;

  std::string to_string() const;
};

struct ConstructOptions {
  /// Maximum simulated time to wait for one partition to verify.
  sim::SimTime partition_timeout = 60 * sim::kSecond;
  /// Require at least one detector round in the partition bulletin.
  bool verify_bulletin = true;
  /// Refuse to continue when a partition fails verification.
  bool stop_on_failure = false;
};

class SystemConstructor {
 public:
  SystemConstructor(kernel::PhoenixKernel& kernel, ConstructOptions options = {});

  /// Dry run: the ordered step list, one line per step.
  std::vector<std::string> plan() const;

  /// Executes the staged boot, driving the simulation while verifying.
  /// Idempotent guard: throws if the kernel was already booted.
  BootReport execute();

 private:
  PartitionReport bring_up_partition(net::PartitionId p, bool found_ring);

  kernel::PhoenixKernel& kernel_;
  ConstructOptions options_;
};

}  // namespace phoenix::construct
