#include "construct/constructor.h"

#include <sstream>

namespace phoenix::construct {

SystemConstructor::SystemConstructor(kernel::PhoenixKernel& kernel,
                                     ConstructOptions options)
    : kernel_(kernel), options_(options) {}

std::vector<std::string> SystemConstructor::plan() const {
  std::vector<std::string> steps;
  const auto& spec = kernel_.cluster().spec();
  steps.push_back("probe: check " + std::to_string(spec.total_nodes()) +
                  " nodes x " + std::to_string(spec.networks) + " networks");
  steps.push_back("core: start configuration (introspect) + security on node " +
                  std::to_string(kernel_.cluster().server_node(net::PartitionId{0}).value));
  for (std::size_t p = 0; p < spec.partitions; ++p) {
    std::ostringstream step;
    step << "partition " << p << ": deploy " << spec.nodes_per_partition()
         << " nodes, start CS/ES/DB/GSD ("
         << (p == 0 ? "found meta-group" : "join meta-group") << "), verify";
    steps.push_back(step.str());
  }
  steps.push_back("report: aggregate per-partition results");
  return steps;
}

BootReport SystemConstructor::execute() {
  BootReport report;
  auto& cluster = kernel_.cluster();
  const auto& spec = cluster.spec();
  const sim::SimTime t0 = cluster.now();

  // -- probe ---------------------------------------------------------------
  report.nodes_total = cluster.node_count();
  for (const auto& node : cluster.nodes()) {
    if (!node.alive()) {
      ++report.nodes_dead_at_probe;
      continue;
    }
    for (std::size_t n = 0; n < spec.networks; ++n) {
      if (!cluster.fabric().interface_up(node.id(),
                                         net::NetworkId{static_cast<std::uint8_t>(n)})) {
        ++report.interfaces_down_at_probe;
      }
    }
  }

  // -- deploy objects + core services ---------------------------------------
  if (!kernel_.daemons_created()) kernel_.create_daemons();
  kernel_.start_core_services();
  cluster.engine().run_for(100 * sim::kMillisecond);

  // -- partitions, in order --------------------------------------------------
  bool ring_founded = false;
  report.ok = true;
  for (std::size_t p = 0; p < spec.partitions; ++p) {
    const net::PartitionId pid{static_cast<std::uint32_t>(p)};
    PartitionReport pr = bring_up_partition(pid, /*found_ring=*/!ring_founded);
    if (pr.ring_member) ring_founded = true;
    if (!pr.ok) {
      report.ok = false;
      if (options_.stop_on_failure) {
        report.partitions.push_back(std::move(pr));
        break;
      }
    }
    report.partitions.push_back(std::move(pr));
  }

  report.total_time = cluster.now() - t0;
  return report;
}

PartitionReport SystemConstructor::bring_up_partition(net::PartitionId p,
                                                      bool found_ring) {
  auto& cluster = kernel_.cluster();
  PartitionReport pr;
  pr.partition = p;
  pr.started_at = cluster.now();

  // The partition's server must be alive to host its services; fall back to
  // the first live migration target otherwise.
  const net::NodeId server = cluster.server_node(p);
  if (!cluster.node(server).alive()) {
    pr.note = "server node dead at boot";
    pr.ok = false;
    return pr;
  }

  for (net::NodeId n : cluster.partition_nodes(p)) {
    if (!cluster.node(n).alive()) {
      ++pr.nodes_skipped;
      continue;
    }
    kernel_.start_node_daemons(n);
    ++pr.nodes_deployed;
  }
  kernel_.start_partition_services(p, found_ring);

  // -- verify -----------------------------------------------------------------
  const sim::SimTime deadline = cluster.now() + options_.partition_timeout;
  auto& gsd = kernel_.gsd(p);
  while (cluster.now() < deadline && !(gsd.joined() && gsd.view().contains(p))) {
    cluster.engine().run_for(250 * sim::kMillisecond);
  }
  pr.ring_member = gsd.joined() && gsd.view().contains(p);

  if (options_.verify_bulletin) {
    const auto& db = kernel_.bulletin(p);
    while (cluster.now() < deadline && db.node_row_count() < pr.nodes_deployed) {
      cluster.engine().run_for(250 * sim::kMillisecond);
    }
    pr.bulletin_rows = db.node_row_count();
  }

  pr.ready_at = cluster.now();
  pr.ok = pr.ring_member &&
          (!options_.verify_bulletin || pr.bulletin_rows >= pr.nodes_deployed);
  if (!pr.ok && pr.note.empty()) {
    pr.note = pr.ring_member ? "bulletin did not fill before timeout"
                             : "GSD did not join the meta-group";
  }
  return pr;
}

std::string BootReport::to_string() const {
  std::ostringstream out;
  out << "boot " << (ok ? "OK" : "FAILED") << " in "
      << sim::format_duration(total_time) << "; nodes " << nodes_total << " ("
      << nodes_dead_at_probe << " dead at probe, " << interfaces_down_at_probe
      << " interfaces down)\n";
  for (const auto& pr : partitions) {
    out << "  partition " << pr.partition.value << ": "
        << (pr.ok ? "ok" : "FAILED") << ", deployed " << pr.nodes_deployed
        << " nodes (" << pr.nodes_skipped << " skipped), ring="
        << (pr.ring_member ? "joined" : "no") << ", bulletin rows "
        << pr.bulletin_rows << ", took "
        << sim::format_duration(pr.ready_at - pr.started_at);
    if (!pr.note.empty()) out << " [" << pr.note << "]";
    out << "\n";
  }
  return out.str();
}

}  // namespace phoenix::construct
