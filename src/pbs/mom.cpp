#include "pbs/mom.h"

#include <memory>

namespace phoenix::pbs {

Mom::Mom(cluster::Cluster& cluster, net::NodeId node, double cpu_share)
    : Daemon(cluster, "pbs.mom", node, cluster::ports::kPbsMom, cpu_share) {}

void Mom::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;

  if (const auto* poll = net::message_cast<PollMsg>(m)) {
    auto reply = std::make_shared<PollReplyMsg>();
    reply->poll_id = poll->poll_id;
    reply->node = node_id();
    const auto& node = cluster().node(node_id());
    reply->usage = node.resources();
    for (cluster::Pid pid : launched_) {
      const auto* info = node.find_process(pid);
      reply->job_processes.push_back(PollReplyMsg::JobProcess{
          pid, info != nullptr && info->state == cluster::ProcessState::kRunning});
    }
    send_any(poll->reply_to, std::move(reply));
    return;
  }

  if (const auto* spawn = net::message_cast<MomSpawnMsg>(m)) {
    auto& node = cluster().node(node_id());
    const cluster::Pid pid = cluster().next_pid();
    node.add_process(cluster::ProcessInfo{
        .pid = pid,
        .name = spawn->job_name,
        .owner = spawn->owner,
        .state = cluster::ProcessState::kRunning,
        .cpu_share = spawn->cpu_share,
        .started_at = now(),
    });
    launched_.push_back(pid);
    if (spawn->duration > 0) {
      engine().schedule_after(spawn->duration, [this, pid] {
        auto& n = cluster().node(node_id());
        if (n.alive()) n.terminate_process(pid, cluster::ProcessState::kExited, now());
      });
    }
    if (spawn->reply_to.valid()) {
      auto reply = std::make_shared<MomSpawnReplyMsg>();
      reply->request_id = spawn->request_id;
      reply->ok = true;
      reply->pid = pid;
      reply->node = node_id();
      send_any(spawn->reply_to, std::move(reply));
    }
    return;
  }

  if (const auto* kill = net::message_cast<MomKillMsg>(m)) {
    cluster().node(node_id()).terminate_process(kill->pid,
                                                cluster::ProcessState::kKilled, now());
    return;
  }
}

}  // namespace phoenix::pbs
