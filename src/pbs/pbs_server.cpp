#include "pbs/pbs_server.h"

#include <algorithm>
#include <memory>

namespace phoenix::pbs {

PbsServer::PbsServer(cluster::Cluster& cluster, net::NodeId node,
                     std::vector<net::NodeId> compute_nodes,
                     sim::SimTime poll_interval)
    : Daemon(cluster, "pbs.server", node, cluster::ports::kPbsServer),
      compute_nodes_(std::move(compute_nodes)),
      poll_interval_(poll_interval),
      poller_(cluster.engine(), poll_interval, [this] { poll_all(); }) {}

void PbsServer::on_start() {
  poller_.set_period(poll_interval_);
  poller_.start_after(poll_interval_);
}

void PbsServer::on_stop() { poller_.stop(); }

JobId PbsServer::submit(const SubmitRequest& request) {
  Job job;
  job.id = next_job_id_++;
  job.name = request.name.empty() ? "job" + std::to_string(job.id) : request.name;
  job.user = request.user;
  job.pool = "default";
  job.nodes_needed = std::max(1u, request.nodes);
  job.duration = request.duration;
  job.state = JobState::kQueued;
  job.submitted_at = now();
  const JobId id = job.id;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  ++stats_.submitted;
  schedule_jobs();
  return id;
}

void PbsServer::schedule_jobs() {
  // Strict FIFO over the central free-node view.
  while (!queue_.empty()) {
    auto job_it = jobs_.find(queue_.front());
    if (job_it == jobs_.end() || job_it->second.terminal()) {
      queue_.pop_front();
      continue;
    }
    Job& job = job_it->second;
    std::vector<net::NodeId> free;
    for (net::NodeId n : compute_nodes_) {
      if (!node_running_.contains(n.value)) free.push_back(n);
      if (free.size() == job.nodes_needed) break;
    }
    if (free.size() < job.nodes_needed) break;  // head-of-line blocks
    job.allocated = free;
    job.state = JobState::kRunning;
    job.started_at = now();
    stats_.total_wait_seconds += sim::to_seconds(now() - job.submitted_at);
    for (net::NodeId n : free) node_running_[n.value] = job.id;
    queue_.pop_front();
    launch(job);
  }
}

void PbsServer::launch(Job& job) {
  for (net::NodeId n : job.allocated) {
    auto spawn = std::make_shared<MomSpawnMsg>();
    spawn->job_name = job.name;
    spawn->owner = job.user;
    spawn->cpu_share = static_cast<double>(cluster().node(n).cpus());
    spawn->duration = job.duration;
    spawn->reply_to = address();
    spawn->request_id = next_request_id_++;
    pending_spawns_[spawn->request_id] = {job.id, n};
    send_any({n, cluster::ports::kPbsMom}, std::move(spawn));
  }
}

void PbsServer::poll_all() {
  if (!alive()) return;
  for (net::NodeId n : compute_nodes_) {
    auto poll = std::make_shared<PollMsg>();
    poll->reply_to = address();
    poll->poll_id = next_request_id_++;
    send_any({n, cluster::ports::kPbsMom}, std::move(poll));
    ++stats_.polls_sent;
  }
}

void PbsServer::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;

  if (const auto* reply = net::message_cast<MomSpawnReplyMsg>(m)) {
    auto it = pending_spawns_.find(reply->request_id);
    if (it == pending_spawns_.end() || !reply->ok) return;
    const auto [job_id, node] = it->second;
    pending_spawns_.erase(it);
    auto job_it = jobs_.find(job_id);
    if (job_it == jobs_.end()) return;
    job_it->second.pids[node.value] = reply->pid;
    pid_to_job_[reply->pid] = job_id;
    pid_expected_exit_[reply->pid] = now() + job_it->second.duration;
    return;
  }

  if (const auto* poll = net::message_cast<PollReplyMsg>(m)) {
    // Completion is only discovered here — the polling lag the paper
    // criticizes.
    for (const auto& proc : poll->job_processes) {
      if (proc.running) continue;
      auto pit = pid_to_job_.find(proc.pid);
      if (pit == pid_to_job_.end()) continue;
      const JobId job_id = pit->second;
      pid_to_job_.erase(pit);
      auto expected = pid_expected_exit_.find(proc.pid);
      if (expected != pid_expected_exit_.end()) {
        if (now() > expected->second) {
          completion_lag_sum_s_ += sim::to_seconds(now() - expected->second);
          ++completion_lag_count_;
        }
        pid_expected_exit_.erase(expected);
      }
      auto job_it = jobs_.find(job_id);
      if (job_it == jobs_.end()) continue;
      Job& job = job_it->second;
      ++job.exited;
      if (node_running_[poll->node.value] == job_id) {
        node_running_.erase(poll->node.value);
      }
      if (job.exited >= job.allocated.size() && job.state == JobState::kRunning) {
        job.state = JobState::kCompleted;
        job.finished_at = now();
        ++stats_.completed;
      }
    }
    schedule_jobs();
    return;
  }
}

const Job* PbsServer::job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

std::size_t PbsServer::queued_count() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kQueued) ++n;
  }
  return n;
}

std::size_t PbsServer::running_count() const {
  std::size_t n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning) ++n;
  }
  return n;
}

double PbsServer::mean_completion_lag_seconds() const {
  return completion_lag_count_ == 0
             ? 0.0
             : completion_lag_sum_s_ / static_cast<double>(completion_lag_count_);
}

}  // namespace phoenix::pbs
