// PBS MoM (machine-oriented miniserver) baseline daemon.
//
// One per node. Answers the central server's periodic polls with the node's
// resource gauges and the state of the job processes it launched, and
// spawns/kills jobs on request. This is the architecture the paper's §5.4
// contrasts with PWS: all state flows through polling, so control traffic
// scales with node count x poll rate rather than with state changes.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/daemon.h"
#include "cluster/node.h"
#include "net/message.h"

namespace phoenix::pbs {

struct PollMsg final : net::Message {
  net::Address reply_to;
  std::uint64_t poll_id = 0;

  PHOENIX_MESSAGE_TYPE("pbs.poll")
  std::size_t wire_size() const noexcept override { return 16; }
};

struct PollReplyMsg final : net::Message {
  std::uint64_t poll_id = 0;
  net::NodeId node;
  cluster::ResourceUsage usage;
  struct JobProcess {
    cluster::Pid pid = 0;
    bool running = false;
  };
  std::vector<JobProcess> job_processes;

  PHOENIX_MESSAGE_TYPE("pbs.poll_reply")
  std::size_t wire_size() const noexcept override {
    return cluster::ResourceUsage::kWireBytes + job_processes.size() * 9 + 16;
  }
};

struct MomSpawnMsg final : net::Message {
  std::string job_name;
  std::string owner;
  double cpu_share = 1.0;
  sim::SimTime duration = 0;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("pbs.spawn")
  std::size_t wire_size() const noexcept override {
    // Same image-shipping cost as the PPM path, for a fair comparison.
    return job_name.size() + owner.size() + (4 << 20) / 1024 + 32;
  }
};

struct MomSpawnReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool ok = false;
  cluster::Pid pid = 0;
  net::NodeId node;

  PHOENIX_MESSAGE_TYPE("pbs.spawn_reply")
  std::size_t wire_size() const noexcept override { return 24; }
};

struct MomKillMsg final : net::Message {
  cluster::Pid pid = 0;

  PHOENIX_MESSAGE_TYPE("pbs.kill")
  std::size_t wire_size() const noexcept override { return 16; }
};

class Mom final : public cluster::Daemon {
 public:
  Mom(cluster::Cluster& cluster, net::NodeId node, double cpu_share = 0.0);

 private:
  void handle(const net::Envelope& env) override;

  std::vector<cluster::Pid> launched_;
};

}  // namespace phoenix::pbs
