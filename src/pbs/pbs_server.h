// PBS-style central batch server baseline (paper §5.4, Figure 7).
//
// One central server, FIFO queue, no high availability. Resource state and
// job completion are learned exclusively by polling every node's MoM at a
// fixed rate — the paper's point: "PBS needs polling continually and
// consumes network bandwidth", and a failed server takes the whole batch
// system down.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/daemon.h"
#include "pbs/mom.h"
#include "pws/job.h"  // reuse the Job/JobState model for comparable stats

namespace phoenix::pbs {

using pws::Job;
using pws::JobId;
using pws::JobState;
using pws::SubmitRequest;

struct PbsStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t polls_sent = 0;
  double total_wait_seconds = 0.0;
};

class PbsServer final : public cluster::Daemon {
 public:
  PbsServer(cluster::Cluster& cluster, net::NodeId node,
            std::vector<net::NodeId> compute_nodes,
            sim::SimTime poll_interval = 10 * sim::kSecond);

  JobId submit(const SubmitRequest& request);

  const Job* job(JobId id) const;
  const std::map<JobId, Job>& jobs() const noexcept { return jobs_; }
  const PbsStats& stats() const noexcept { return stats_; }
  std::size_t queued_count() const;
  std::size_t running_count() const;

  /// Observed completion lag: job actually exited -> server noticed.
  /// (Mean over completed processes; the PWS/PBS bench reports this.)
  double mean_completion_lag_seconds() const;

 private:
  void handle(const net::Envelope& env) override;
  void on_start() override;
  void on_stop() override;
  void poll_all();
  void schedule_jobs();
  void launch(Job& job);

  std::vector<net::NodeId> compute_nodes_;
  sim::SimTime poll_interval_;
  sim::PeriodicTask poller_;

  std::deque<JobId> queue_;
  std::map<JobId, Job> jobs_;
  std::map<std::uint32_t, JobId> node_running_;        // node -> job
  std::map<cluster::Pid, JobId> pid_to_job_;
  std::map<cluster::Pid, sim::SimTime> pid_expected_exit_;
  std::map<std::uint64_t, std::pair<JobId, net::NodeId>> pending_spawns_;
  JobId next_job_id_ = 1;
  std::uint64_t next_request_id_ = 1;
  PbsStats stats_;
  double completion_lag_sum_s_ = 0.0;
  std::uint64_t completion_lag_count_ = 0;
};

}  // namespace phoenix::pbs
