#include "gridview/gridview.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace phoenix::gridview {

namespace {
constexpr std::size_t kEventBufferLimit = 256;
constexpr std::size_t kHistoryLimit = 720;  // 2 h at a 10 s refresh
constexpr net::PortId kGridViewPort = cluster::ports::kGridView;
}  // namespace

GridView::GridView(cluster::Cluster& cluster, net::NodeId node,
                   kernel::PhoenixKernel& kernel, sim::SimTime refresh_interval)
    : Daemon(cluster, "gridview", node, kGridViewPort),
      kernel_(kernel),
      refresher_(cluster.engine(), refresh_interval, [this] { refresh(); }) {}

void GridView::on_start() {
  // Register interested event types with the event service (single access
  // point: our partition's instance replicates the registration).
  kernel::Subscription sub;
  sub.consumer = address();
  for (auto type : {kernel::event_types::kNodeFailed,
                    kernel::event_types::kNodeRecovered,
                    kernel::event_types::kNetworkFailed,
                    kernel::event_types::kNetworkRecovered,
                    kernel::event_types::kServiceFailed,
                    kernel::event_types::kServiceRecovered,
                    kernel::event_types::kGsdMigrated}) {
    sub.types.emplace_back(type);
  }
  auto msg = std::make_shared<kernel::EsSubscribeMsg>();
  msg->subscription = std::move(sub);
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(kernel::ServiceKind::kEventService, partition),
           std::move(msg));

  refresher_.start_after(1 * sim::kSecond);
}

void GridView::on_stop() { refresher_.stop(); }

void GridView::refresh() {
  if (!alive()) return;
  // One call against any data bulletin instance returns cluster-wide data.
  auto query = std::make_shared<kernel::DbQueryMsg>();
  pending_query_ = query_seq_++;
  query->query_id = pending_query_;
  query->table = kernel::BulletinTable::kBoth;
  query->cluster_scope = true;
  query->aggregate_only = aggregate_mode_;
  query->reply_to = address();
  query_sent_at_ = now();
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(kernel::ServiceKind::kDataBulletin, partition),
           std::move(query));
}

void GridView::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;
  if (const auto* reply = net::message_cast<kernel::DbQueryReplyMsg>(m)) {
    if (reply->query_id != pending_query_) return;
    pending_query_ = 0;
    last_latency_ = now() - query_sent_at_;
    if (cluster().metrics().enabled()) {
      if (refresh_latency_hist_ == nullptr) {
        refresh_latency_hist_ =
            cluster().metrics().histogram("gridview.refresh_latency_us");
      }
      refresh_latency_hist_->record(last_latency_);
    }
    partitions_included_ = reply->partitions_included;
    summary_ = reply->aggregated
                   ? reply->summary
                   : kernel::summarize(reply->node_rows, reply->app_rows);
    if (env.message.use_count() == 1) {
      // Sole owner of the delivered reply: keep its row vector instead of
      // copying 640 rows per refresh.
      nodes_ = std::move(const_cast<kernel::DbQueryReplyMsg*>(reply)->node_rows);
    } else {
      nodes_ = reply->node_rows;
    }
    ++refreshes_;
    history_.push_back(Sample{now(), summary_, last_latency_});
    while (history_.size() > kHistoryLimit) history_.pop_front();
    return;
  }
  if (const auto* notify = net::message_cast<kernel::EsNotifyMsg>(m)) {
    events_.push_back(notify->event);
    while (events_.size() > kEventBufferLimit) events_.pop_front();
    return;
  }
}

std::string GridView::render_sparkline(Metric metric, std::size_t width) const {
  if (history_.empty() || width == 0) return "(no data)";
  auto value_of = [metric](const Sample& s) -> double {
    switch (metric) {
      case Metric::kCpu: return s.summary.avg_cpu_pct;
      case Metric::kMem: return s.summary.avg_mem_pct;
      case Metric::kSwap: return s.summary.avg_swap_pct;
      case Metric::kQueryLatency: return sim::to_seconds(s.query_latency) * 1e3;
    }
    return 0;
  };
  // Downsample the history to `width` buckets (mean per bucket).
  const std::size_t buckets = std::min(width, history_.size());
  std::vector<double> values(buckets, 0.0);
  std::vector<std::size_t> counts(buckets, 0);
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const std::size_t b = i * buckets / history_.size();
    values[b] += value_of(history_[i]);
    ++counts[b];
  }
  double lo = 1e300, hi = -1e300;
  for (std::size_t b = 0; b < buckets; ++b) {
    values[b] /= static_cast<double>(std::max<std::size_t>(1, counts[b]));
    lo = std::min(lo, values[b]);
    hi = std::max(hi, values[b]);
  }
  static constexpr char kLevels[] = " .:-=+*#%@";
  std::string line;
  for (double v : values) {
    const double norm = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    line += kLevels[static_cast<std::size_t>(norm * 9.0)];
  }
  char range[64];
  std::snprintf(range, sizeof(range), " [%.2f..%.2f]", lo, hi);
  return line + range;
}

double GridView::mean_query_latency_s() const {
  if (history_.empty()) return 0.0;
  double sum = 0;
  for (const auto& s : history_) sum += sim::to_seconds(s.query_latency);
  return sum / static_cast<double>(history_.size());
}

std::string GridView::render_dashboard() const {
  std::ostringstream out;
  char line[160];

  out << "+------------------- Fire Phoenix GridView -------------------+\n";
  std::snprintf(line, sizeof(line),
                "| nodes: %5zu   reporting: %5zu   apps: %5zu              \n",
                summary_.node_count, summary_.alive_count, summary_.app_count);
  out << line;

  auto bar = [&](const char* label, double pct) {
    const int width = 40;
    const int filled = static_cast<int>(pct / 100.0 * width + 0.5);
    std::string b(static_cast<std::size_t>(filled), '#');
    b.resize(width, '.');
    std::snprintf(line, sizeof(line), "| %-6s [%s] %6.2f%%\n", label, b.c_str(), pct);
    out << line;
  };
  bar("CPU", summary_.avg_cpu_pct);
  bar("MEM", summary_.avg_mem_pct);
  bar("SWAP", summary_.avg_swap_pct);

  std::snprintf(line, sizeof(line),
                "| last refresh latency: %s   refreshes: %llu\n",
                sim::format_duration(last_latency_).c_str(),
                static_cast<unsigned long long>(refreshes_));
  out << line;
  if (!events_.empty()) {
    out << "| recent events:\n";
    const std::size_t shown = std::min<std::size_t>(5, events_.size());
    for (std::size_t i = events_.size() - shown; i < events_.size(); ++i) {
      std::snprintf(line, sizeof(line), "|   [%s] %s node=%u\n",
                    sim::format_duration(events_[i].timestamp).c_str(),
                    events_[i].type.c_str(), events_[i].subject_node.value);
      out << line;
    }
  }
  out << "+--------------------------------------------------------------+\n";
  return out.str();
}

}  // namespace phoenix::gridview
