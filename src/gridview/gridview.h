// GridView monitoring environment (paper §5.3, Figure 6).
//
// GridView interacts with the Phoenix kernel ONLY through the documented
// interfaces of the data bulletin, event, and configuration services:
//  - registers its interested event types (node/network failures and
//    recoveries) with the event service and receives real-time pushes;
//  - collects cluster-wide performance data with a single call to the data
//    bulletin federation, at a configurable refresh rate;
//  - renders the cluster-wide average CPU / memory / swap usage snapshot
//    (ASCII here; the original renders pixels).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/bulletin/data_bulletin.h"
#include "kernel/event/event_service.h"
#include "kernel/kernel.h"
#include "obs/metrics.h"

namespace phoenix::gridview {

class GridView final : public cluster::Daemon {
 public:
  GridView(cluster::Cluster& cluster, net::NodeId node,
           kernel::PhoenixKernel& kernel,
           sim::SimTime refresh_interval = 10 * sim::kSecond);

  /// Most recent cluster-wide aggregates.
  const kernel::UsageSummary& last_summary() const noexcept { return summary_; }
  const std::vector<kernel::NodeRecord>& last_nodes() const noexcept {
    return nodes_;
  }

  /// Round-trip latency of the most recent federation query.
  sim::SimTime last_refresh_latency() const noexcept { return last_latency_; }
  std::uint64_t refreshes_completed() const noexcept { return refreshes_; }
  std::uint32_t last_partitions_included() const noexcept {
    return partitions_included_;
  }

  /// Time-series of past refreshes (performance analysis; bounded buffer).
  struct Sample {
    sim::SimTime at = 0;
    kernel::UsageSummary summary;
    sim::SimTime query_latency = 0;
  };
  const std::deque<Sample>& history() const noexcept { return history_; }

  /// ASCII sparkline of a metric over the retained history.
  enum class Metric { kCpu, kMem, kSwap, kQueryLatency };
  std::string render_sparkline(Metric metric, std::size_t width = 60) const;

  /// Mean query latency over the retained history, seconds.
  double mean_query_latency_s() const;

  /// Event notifications received (most recent last; bounded buffer).
  const std::deque<kernel::Event>& events() const noexcept { return events_; }

  /// ASCII rendering of the Figure-6 style dashboard.
  std::string render_dashboard() const;

  /// Issues an immediate refresh (tests/benches).
  void refresh_now() { refresh(); }

  /// Aggregate mode: partition instances summarize locally and only the
  /// constant-size UsageSummary travels (no per-node rows). Right for very
  /// large clusters; last_nodes() stays empty while enabled.
  void set_aggregate_mode(bool on) noexcept { aggregate_mode_ = on; }

 private:
  void handle(const net::Envelope& env) override;
  void on_start() override;
  void on_stop() override;
  void refresh();

  kernel::PhoenixKernel& kernel_;
  sim::PeriodicTask refresher_;
  kernel::UsageSummary summary_;
  std::vector<kernel::NodeRecord> nodes_;
  std::deque<kernel::Event> events_;
  std::deque<Sample> history_;
  std::uint64_t refreshes_ = 0;
  bool aggregate_mode_ = false;
  std::uint64_t query_seq_ = 1;
  std::uint64_t pending_query_ = 0;
  sim::SimTime query_sent_at_ = 0;
  sim::SimTime last_latency_ = 0;
  std::uint32_t partitions_included_ = 0;
  obs::Histogram* refresh_latency_hist_ = nullptr;  // resolved on first use
};

}  // namespace phoenix::gridview
