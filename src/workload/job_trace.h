// Synthetic job-trace generator for the job-management experiments.
//
// Poisson arrivals, exponential-with-floor durations, node counts drawn
// from a skewed distribution (many small jobs, few large ones) — the usual
// shape of scientific-computing batch traces. Deterministic per seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace phoenix::workload {

struct TraceJob {
  sim::SimTime arrival = 0;
  unsigned nodes = 1;
  sim::SimTime duration = 0;
  std::string user;
  std::string pool;
  std::string name;
};

struct TraceParams {
  std::size_t job_count = 100;
  double mean_interarrival_s = 30.0;
  double mean_duration_s = 300.0;
  double min_duration_s = 10.0;
  unsigned max_nodes = 8;
  std::vector<std::string> users = {"alice", "bob", "carol"};
  std::vector<std::string> pools = {"batch"};
  std::uint64_t seed = 7;
};

std::vector<TraceJob> generate_trace(const TraceParams& params);

}  // namespace phoenix::workload
