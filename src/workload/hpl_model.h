// Analytic Linpack (HPL) performance model.
//
// The paper's Table 4 measures the impact of the Phoenix kernel daemons on
// Linpack at 4-128 CPUs. We cannot run HPL inside a discrete-event
// simulation, so we model it: HPL performs 2/3·n³ + 2·n² floating-point
// operations; delivered performance is peak × parallel efficiency, with
// efficiency decaying logarithmically in CPU count (communication and
// load-imbalance losses); background daemons subtract their measured CPU
// share from the capacity available to the benchmark. The experiment's
// quantity of interest — the WITH/WITHOUT Phoenix ratio — depends only on
// that daemon share, which is measured from the simulated cluster itself.
#pragma once

#include <cstddef>

namespace phoenix::workload {

struct HplConfig {
  unsigned cpus = 4;
  /// Per-CPU peak, GFLOPS (the Dawning 4000A's 2.2 GHz Opteron ≈ 4.4).
  double peak_gflops_per_cpu = 4.4;
  /// Matrix dimension. 0 = choose a memory-scaled default for `cpus`.
  double problem_size_n = 0;
  /// Parallel-efficiency decay per doubling of CPU count.
  double comm_alpha = 0.035;
  /// CPU fraction consumed by background daemons (0 = dedicated machine).
  double background_cpu_fraction = 0.0;
};

struct HplResult {
  double gflops = 0.0;
  double time_seconds = 0.0;
  double efficiency = 0.0;  // delivered / peak
};

/// Memory-scaled default problem size (~weak scaling, as HPL is tuned).
double default_problem_size(unsigned cpus);

/// Evaluates the model.
HplResult run_hpl_model(const HplConfig& config);

}  // namespace phoenix::workload
