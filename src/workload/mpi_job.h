// Synthetic parallel (MPI-style) application model.
//
// A gang of rank daemons, one per allocated node, exchanging messages over
// the SAME simulated networks the Phoenix kernel uses for its control
// traffic. This puts application and kernel traffic on one fabric so their
// shares can be compared — the network-side companion to Table 4's CPU-side
// overhead measurement ("fault tolerance means loss of performance"; how
// much of the wire does the kernel actually take?).
//
// Communication pattern: a ring exchange (each rank sends a block to its
// right neighbour every step), the dominant pattern of HPL's panel
// broadcasts and of many stencil codes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/daemon.h"

namespace phoenix::workload {

struct MpiJobConfig {
  std::vector<net::NodeId> nodes;          // one rank per node
  sim::SimTime step_interval = 100 * sim::kMillisecond;
  std::size_t block_bytes = 256 * 1024;    // payload per neighbour exchange
  sim::SimTime duration = 0;               // 0 = run until stopped
  net::PortId port = net::PortId{40};      // rank mailbox port
};

/// The payload of one ring-exchange step.
struct MpiBlockMsg final : net::Message {
  std::uint64_t step = 0;
  std::uint32_t from_rank = 0;
  std::size_t bytes = 0;

  PHOENIX_MESSAGE_TYPE("app.mpi_block")
  std::size_t wire_size() const noexcept override { return bytes + 16; }
};

class MpiRank final : public cluster::Daemon {
 public:
  MpiRank(cluster::Cluster& cluster, const MpiJobConfig& config,
          std::uint32_t rank);

  std::uint64_t steps_sent() const noexcept { return steps_sent_; }
  std::uint64_t blocks_received() const noexcept { return blocks_received_; }

 private:
  void handle(const net::Envelope& env) override;
  void on_start() override;
  void on_stop() override;
  void step();

  const MpiJobConfig config_;
  std::uint32_t rank_;
  sim::PeriodicTask stepper_;
  std::uint64_t steps_sent_ = 0;
  std::uint64_t blocks_received_ = 0;
};

/// Owns the gang: creates one rank per node and starts/stops them together.
class MpiJob {
 public:
  MpiJob(cluster::Cluster& cluster, MpiJobConfig config);

  void start();
  void stop();

  std::size_t ranks() const noexcept { return ranks_.size(); }
  const MpiRank& rank(std::size_t i) const { return *ranks_.at(i); }

  /// Total exchanges completed across the gang.
  std::uint64_t total_steps() const;

 private:
  MpiJobConfig config_;
  std::vector<std::unique_ptr<MpiRank>> ranks_;
};

}  // namespace phoenix::workload
