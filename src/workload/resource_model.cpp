#include "workload/resource_model.h"

#include <algorithm>
#include <array>
#include <string>

namespace phoenix::workload {

namespace {

// Cycling identities for churned synthetic apps. Small pools on purpose:
// real clusters run a handful of application binaries under a handful of
// accounts, which is exactly what makes symbol interning pay off.
constexpr std::array<std::string_view, 4> kChurnNames = {
    "hpl.xhpl", "wrf.exe", "blastp", "povray"};
constexpr std::array<std::string_view, 3> kChurnOwners = {"alice", "bob",
                                                          "carol"};

}  // namespace

ResourceModel::ResourceModel(cluster::Cluster& cluster, ResourceModelParams params)
    : cluster_(cluster),
      params_(params),
      updater_(cluster.engine(), params.update_interval, [this] { update_once(); }) {}

void ResourceModel::start() { updater_.start_after(1 * sim::kMillisecond); }

void ResourceModel::stop() { updater_.stop(); }

void ResourceModel::update_once() {
  for (auto& node : cluster_.nodes()) {
    if (!node.alive()) continue;
    update_node(node);
    if (params_.churn_apps_per_node > 0 &&
        node.role() == cluster::NodeRole::kCompute) {
      churn_node(node);
    }
  }
}

void ResourceModel::update_node(cluster::Node& node) {
  auto& rng = cluster_.engine().rng();
  auto& u = node.resources();

  auto walk = [&](double current, double base, double noise) {
    const double reverted = current + params_.reversion * (base - current);
    return reverted + rng.uniform(-noise, noise);
  };

  // CPU: baseline walk plus what the process table actually consumes.
  const double proc_pct =
      100.0 * node.daemon_cpu_load() / static_cast<double>(std::max(1u, node.cpus()));
  // Approximate the baseline by removing the current process contribution
  // (it changes slowly relative to the update interval).
  const double cpu_base =
      walk(std::max(0.0, u.cpu_pct - proc_pct), params_.base_cpu_pct,
           params_.cpu_noise);
  u.cpu_pct = std::clamp(cpu_base + proc_pct, 0.0, 100.0);
  u.mem_pct = std::clamp(walk(u.mem_pct, params_.base_mem_pct, params_.mem_noise),
                         0.0, 100.0);
  u.swap_pct = std::clamp(
      walk(u.swap_pct, params_.base_swap_pct, params_.swap_noise), 0.0, 100.0);
  u.disk_io_mbps = std::max(
      0.0, walk(u.disk_io_mbps, params_.base_disk_mbps, params_.base_disk_mbps / 3));
  u.net_io_mbps = std::max(
      0.0, walk(u.net_io_mbps, params_.base_net_mbps, params_.base_net_mbps / 3));
}

void ResourceModel::churn_node(cluster::Node& node) {
  auto& rng = cluster_.engine().rng();
  const sim::SimTime now = cluster_.engine().now();

  // Exit a random subset of the running synthetic apps.
  std::size_t running = 0;
  std::vector<cluster::Pid> to_exit;
  for (const auto& [pid, p] : node.process_table()) {
    if (p.owner == "kernel" || p.state != cluster::ProcessState::kRunning) continue;
    ++running;
    if (rng.uniform(0.0, 1.0) < params_.churn_exit_probability) {
      to_exit.push_back(pid);
    }
  }
  for (const cluster::Pid pid : to_exit) {
    node.terminate_process(pid, cluster::ProcessState::kExited, now, 0);
    ++apps_exited_;
  }
  node.reap();
  running -= to_exit.size();

  // Start replacements up to the target population.
  while (running < params_.churn_apps_per_node) {
    cluster::ProcessInfo p;
    p.pid = cluster_.next_pid();
    p.name = std::string(kChurnNames[p.pid % kChurnNames.size()]);
    p.owner = std::string(kChurnOwners[p.pid % kChurnOwners.size()]);
    p.state = cluster::ProcessState::kRunning;
    p.cpu_share = 0.0;  // churned apps exercise reporting, not the CPU model
    p.started_at = now;
    node.add_process(std::move(p));
    ++apps_started_;
    ++running;
  }
}

}  // namespace phoenix::workload
