#include "workload/resource_model.h"

#include <algorithm>

namespace phoenix::workload {

ResourceModel::ResourceModel(cluster::Cluster& cluster, ResourceModelParams params)
    : cluster_(cluster),
      params_(params),
      updater_(cluster.engine(), params.update_interval, [this] { update_once(); }) {}

void ResourceModel::start() { updater_.start_after(1 * sim::kMillisecond); }

void ResourceModel::stop() { updater_.stop(); }

void ResourceModel::update_once() {
  for (auto& node : cluster_.nodes()) {
    if (node.alive()) update_node(node);
  }
}

void ResourceModel::update_node(cluster::Node& node) {
  auto& rng = cluster_.engine().rng();
  auto& u = node.resources();

  auto walk = [&](double current, double base, double noise) {
    const double reverted = current + params_.reversion * (base - current);
    return reverted + rng.uniform(-noise, noise);
  };

  // CPU: baseline walk plus what the process table actually consumes.
  const double proc_pct =
      100.0 * node.daemon_cpu_load() / static_cast<double>(std::max(1u, node.cpus()));
  // Approximate the baseline by removing the current process contribution
  // (it changes slowly relative to the update interval).
  const double cpu_base =
      walk(std::max(0.0, u.cpu_pct - proc_pct), params_.base_cpu_pct,
           params_.cpu_noise);
  u.cpu_pct = std::clamp(cpu_base + proc_pct, 0.0, 100.0);
  u.mem_pct = std::clamp(walk(u.mem_pct, params_.base_mem_pct, params_.mem_noise),
                         0.0, 100.0);
  u.swap_pct = std::clamp(
      walk(u.swap_pct, params_.base_swap_pct, params_.swap_noise), 0.0, 100.0);
  u.disk_io_mbps = std::max(
      0.0, walk(u.disk_io_mbps, params_.base_disk_mbps, params_.base_disk_mbps / 3));
  u.net_io_mbps = std::max(
      0.0, walk(u.net_io_mbps, params_.base_net_mbps, params_.base_net_mbps / 3));
}

}  // namespace phoenix::workload
