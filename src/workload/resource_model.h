// Synthetic node-resource generator.
//
// Drives the per-node CPU/memory/swap/I-O gauges that the detectors sample:
// a mean-reverting random walk around configurable baselines, plus the CPU
// actually consumed by processes in the node's process table. Defaults are
// tuned to the paper's Figure-6 "common load" snapshot (≈13 % CPU, ≈51 %
// memory, ≈0.7 % swap across 640 nodes).
//
// Optionally also churns synthetic user applications through the compute
// nodes' process tables (churn_apps_per_node > 0): each update, a fraction
// of the running synthetic apps exits and replacements start, exercising
// the detectors' delta-reporting path the way a busy cluster would.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "sim/engine.h"

namespace phoenix::workload {

struct ResourceModelParams {
  double base_cpu_pct = 12.5;    // idle/system baseline, before process load
  double cpu_noise = 4.0;
  double base_mem_pct = 51.0;
  double mem_noise = 6.0;
  double base_swap_pct = 0.72;
  double swap_noise = 0.4;
  double base_disk_mbps = 6.0;
  double base_net_mbps = 12.0;
  double reversion = 0.3;        // pull-back strength toward the baseline
  sim::SimTime update_interval = 5 * sim::kSecond;

  // Application churn (0 = off): target running synthetic apps per compute
  // node, and the per-update probability that each of them exits (an equal
  // number of fresh apps starts to hold the target).
  std::size_t churn_apps_per_node = 0;
  double churn_exit_probability = 0.1;
};

class ResourceModel {
 public:
  ResourceModel(cluster::Cluster& cluster, ResourceModelParams params = {});

  void start();
  void stop();

  /// One synchronous update of every live node's gauges (and app churn).
  void update_once();

  std::uint64_t apps_started() const noexcept { return apps_started_; }
  std::uint64_t apps_exited() const noexcept { return apps_exited_; }

 private:
  void update_node(cluster::Node& node);
  void churn_node(cluster::Node& node);

  cluster::Cluster& cluster_;
  ResourceModelParams params_;
  sim::PeriodicTask updater_;
  std::uint64_t apps_started_ = 0;
  std::uint64_t apps_exited_ = 0;
};

}  // namespace phoenix::workload
