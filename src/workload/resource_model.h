// Synthetic node-resource generator.
//
// Drives the per-node CPU/memory/swap/I-O gauges that the detectors sample:
// a mean-reverting random walk around configurable baselines, plus the CPU
// actually consumed by processes in the node's process table. Defaults are
// tuned to the paper's Figure-6 "common load" snapshot (≈13 % CPU, ≈51 %
// memory, ≈0.7 % swap across 640 nodes).
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "sim/engine.h"

namespace phoenix::workload {

struct ResourceModelParams {
  double base_cpu_pct = 12.5;    // idle/system baseline, before process load
  double cpu_noise = 4.0;
  double base_mem_pct = 51.0;
  double mem_noise = 6.0;
  double base_swap_pct = 0.72;
  double swap_noise = 0.4;
  double base_disk_mbps = 6.0;
  double base_net_mbps = 12.0;
  double reversion = 0.3;        // pull-back strength toward the baseline
  sim::SimTime update_interval = 5 * sim::kSecond;
};

class ResourceModel {
 public:
  ResourceModel(cluster::Cluster& cluster, ResourceModelParams params = {});

  void start();
  void stop();

  /// One synchronous update of every live node's gauges.
  void update_once();

 private:
  void update_node(cluster::Node& node);

  cluster::Cluster& cluster_;
  ResourceModelParams params_;
  sim::PeriodicTask updater_;
};

}  // namespace phoenix::workload
