#include "workload/tenant_load.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"

namespace phoenix::workload {

std::string tenant_name(std::uint32_t tenant) {
  return "u" + std::to_string(tenant);
}

namespace {

double rate_at(const TenantLoadParams& params, sim::SimTime t) {
  double rate = params.base_rate;
  for (const FlashWindow& flash : params.flashes) {
    if (t >= flash.start && t < flash.end) rate *= flash.rate_multiplier;
  }
  return rate;
}

/// Next rate-change boundary strictly after t (horizon if none).
sim::SimTime next_boundary(const TenantLoadParams& params, sim::SimTime t) {
  sim::SimTime boundary = params.horizon;
  for (const FlashWindow& flash : params.flashes) {
    if (flash.start > t) boundary = std::min(boundary, flash.start);
    if (flash.end > t) boundary = std::min(boundary, flash.end);
  }
  return boundary;
}

}  // namespace

std::vector<TenantEvent> generate_tenant_load(const TenantLoadParams& params) {
  sim::Rng rng(params.seed);
  std::vector<TenantEvent> events;
  events.reserve(static_cast<std::size_t>(
      sim::to_seconds(params.horizon) * params.base_rate * 1.5));

  const auto spammer_count = static_cast<std::uint32_t>(
      params.spammer_fraction * static_cast<double>(params.tenant_count));
  const auto normal_count = params.tenant_count - spammer_count;
  // Probability the next submission comes from a spammer: spammers are
  // spammer_boost times as likely per capita.
  const double spam_weight =
      static_cast<double>(spammer_count) * params.spammer_boost;
  const double normal_weight = static_cast<double>(normal_count);
  const double spam_pick =
      spam_weight + normal_weight > 0.0 ? spam_weight / (spam_weight + normal_weight)
                                        : 0.0;

  sim::SimTime clock = 0;
  while (clock < params.horizon) {
    // Piecewise-constant-rate Poisson: draw at the current rate; a draw
    // that crosses a rate boundary is discarded and redrawn from the
    // boundary (thinning-free and deterministic).
    const double rate = rate_at(params, clock);
    if (rate <= 0.0) break;
    const sim::SimTime step =
        sim::from_seconds(rng.exponential(1.0 / rate));
    const sim::SimTime boundary = next_boundary(params, clock);
    if (clock + step >= boundary) {
      clock = boundary;
      continue;
    }
    clock += step;
    if (clock >= params.horizon) break;

    TenantEvent event;
    event.arrival = clock;
    if (spammer_count > 0 && rng.uniform() < spam_pick) {
      event.tenant = static_cast<std::uint32_t>(
          rng.uniform_int(0, spammer_count - 1));
    } else if (normal_count > 0) {
      event.tenant = spammer_count + static_cast<std::uint32_t>(rng.uniform_int(
                                         0, normal_count - 1));
    }
    unsigned nodes = 1;
    while (nodes < params.max_nodes && rng.chance(0.45)) nodes *= 2;
    event.nodes = std::min(nodes, std::max(1u, params.max_nodes));
    event.duration = sim::from_seconds(std::max(
        params.min_duration_s, rng.exponential(params.mean_duration_s)));
    if (params.cancel_fraction > 0.0 && rng.uniform() < params.cancel_fraction) {
      event.cancel_after = params.cancel_delay;
    }
    events.push_back(event);
  }
  return events;
}

}  // namespace phoenix::workload
