// Multi-tenant submission-load generator for the gateway experiments.
//
// Models a portal-scale user population (10k-1M tenants) submitting small
// jobs as a piecewise-constant-rate Poisson process: a base arrival rate,
// one or more "flash crowd" windows where the rate multiplies (the whole
// campus hits the portal after a deadline announcement), a minority of
// spammer tenants who submit far above their fair share, and a fraction of
// submissions that are cancelled almost immediately (fat-fingered runs).
// Deterministic per seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace phoenix::workload {

struct TenantEvent {
  sim::SimTime arrival = 0;
  std::uint32_t tenant = 0;  // dense tenant index; name is "u<tenant>"
  unsigned nodes = 1;
  sim::SimTime duration = 0;
  /// Cancel this submission cancel_after after submitting it (0 = keep).
  sim::SimTime cancel_after = 0;
};

struct FlashWindow {
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  double rate_multiplier = 10.0;
};

struct TenantLoadParams {
  std::uint32_t tenant_count = 10'000;
  /// Aggregate submission rate outside flash windows (jobs/s).
  double base_rate = 1000.0;
  sim::SimTime horizon = 60 * sim::kSecond;
  std::vector<FlashWindow> flashes;
  /// Fraction of tenants that are spammers, and how much more often a
  /// spammer submits than a normal tenant.
  double spammer_fraction = 0.0;
  double spammer_boost = 100.0;
  /// Fraction of submissions cancelled cancel_delay after they are issued.
  double cancel_fraction = 0.0;
  sim::SimTime cancel_delay = 1 * sim::kMillisecond;
  /// Job shape: single-node jobs of fixed-ish exponential duration.
  double mean_duration_s = 0.05;
  double min_duration_s = 0.01;
  unsigned max_nodes = 1;
  std::uint64_t seed = 11;
};

/// Tenant name for an event ("u<index>").
std::string tenant_name(std::uint32_t tenant);

/// Events in arrival order.
std::vector<TenantEvent> generate_tenant_load(const TenantLoadParams& params);

}  // namespace phoenix::workload
