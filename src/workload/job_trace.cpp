#include "workload/job_trace.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"

namespace phoenix::workload {

std::vector<TraceJob> generate_trace(const TraceParams& params) {
  sim::Rng rng(params.seed);
  std::vector<TraceJob> jobs;
  jobs.reserve(params.job_count);
  double clock_s = 0.0;
  for (std::size_t i = 0; i < params.job_count; ++i) {
    clock_s += rng.exponential(params.mean_interarrival_s);
    TraceJob job;
    job.arrival = sim::from_seconds(clock_s);
    job.duration = sim::from_seconds(
        std::max(params.min_duration_s, rng.exponential(params.mean_duration_s)));
    // Node counts: mostly 1-2, occasionally up to max (geometric-ish).
    unsigned nodes = 1;
    while (nodes < params.max_nodes && rng.chance(0.45)) nodes *= 2;
    job.nodes = std::min(nodes, params.max_nodes);
    job.user = params.users.empty()
                   ? "user"
                   : params.users[rng.uniform_int(0, params.users.size() - 1)];
    job.pool = params.pools.empty()
                   ? "batch"
                   : params.pools[rng.uniform_int(0, params.pools.size() - 1)];
    job.name = "job" + std::to_string(i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace phoenix::workload
