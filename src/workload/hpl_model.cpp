#include "workload/hpl_model.h"

#include <algorithm>
#include <cmath>

namespace phoenix::workload {

double default_problem_size(unsigned cpus) {
  // Keep per-CPU memory roughly constant: n grows with sqrt(cpus).
  // Base of 20000 at 4 CPUs matches typical 2004-era per-node memory.
  return 20000.0 * std::sqrt(static_cast<double>(cpus) / 4.0);
}

HplResult run_hpl_model(const HplConfig& config) {
  HplResult r;
  const double cpus = static_cast<double>(std::max(1u, config.cpus));
  const double n = config.problem_size_n > 0 ? config.problem_size_n
                                             : default_problem_size(config.cpus);
  const double flops = (2.0 / 3.0) * n * n * n + 2.0 * n * n;

  const double parallel_eff = 1.0 / (1.0 + config.comm_alpha * std::log2(cpus));
  const double available = std::clamp(1.0 - config.background_cpu_fraction, 0.0, 1.0);

  const double peak = cpus * config.peak_gflops_per_cpu;  // GFLOPS
  r.gflops = peak * parallel_eff * available;
  r.efficiency = r.gflops / peak;
  r.time_seconds = r.gflops > 0 ? flops / (r.gflops * 1e9) : 0.0;
  return r;
}

}  // namespace phoenix::workload
