#include "workload/mpi_job.h"

namespace phoenix::workload {

MpiRank::MpiRank(cluster::Cluster& cluster, const MpiJobConfig& config,
                 std::uint32_t rank)
    : Daemon(cluster, "mpi.rank" + std::to_string(rank),
             config.nodes.at(rank), config.port, /*cpu_share=*/1.0),
      config_(config),
      rank_(rank),
      stepper_(cluster.engine(), config.step_interval, [this] { step(); }) {}

void MpiRank::on_start() {
  stepper_.set_period(config_.step_interval);
  // Ranks start in lockstep (a real gang launcher synchronizes them).
  stepper_.start_after(config_.step_interval);
  if (config_.duration > 0) {
    engine().schedule_after(config_.duration, [this] {
      if (running()) stop();
    });
  }
}

void MpiRank::on_stop() { stepper_.stop(); }

void MpiRank::step() {
  if (!alive()) return;
  const std::uint32_t right =
      static_cast<std::uint32_t>((rank_ + 1) % config_.nodes.size());
  auto block = std::make_shared<MpiBlockMsg>();
  block->step = ++steps_sent_;
  block->from_rank = rank_;
  block->bytes = config_.block_bytes;
  send_any({config_.nodes[right], config_.port}, std::move(block));
}

void MpiRank::handle(const net::Envelope& env) {
  if (net::message_cast<MpiBlockMsg>(*env.message) != nullptr) {
    ++blocks_received_;
  }
}

MpiJob::MpiJob(cluster::Cluster& cluster, MpiJobConfig config)
    : config_(std::move(config)) {
  for (std::uint32_t r = 0; r < config_.nodes.size(); ++r) {
    ranks_.push_back(std::make_unique<MpiRank>(cluster, config_, r));
  }
}

void MpiJob::start() {
  for (auto& rank : ranks_) rank->start();
}

void MpiJob::stop() {
  for (auto& rank : ranks_) {
    if (rank->running()) rank->stop();
  }
}

std::uint64_t MpiJob::total_steps() const {
  std::uint64_t total = 0;
  for (const auto& rank : ranks_) total += rank->steps_sent();
  return total;
}

}  // namespace phoenix::workload
