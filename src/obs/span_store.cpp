#include "obs/span_store.h"

#include <sstream>
#include <utility>

namespace phoenix::obs {

void SpanStore::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  while (spans_.size() > capacity_) spans_.pop_front();
}

void SpanStore::record(Span span) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  spans_.push_back(std::move(span));
  while (spans_.size() > capacity_) spans_.pop_front();
}

std::deque<Span> SpanStore::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t SpanStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void SpanStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

namespace {

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string SpanStore::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":";
    append_json_string(out, s.name);
    out << ",\"cat\":";
    append_json_string(out, s.component);
    // pid groups events by trace in the viewer; tid flattens each trace to
    // one track. ts/dur are already microseconds (SimTime unit).
    out << ",\"ph\":\"X\",\"ts\":" << s.start
        << ",\"dur\":" << (s.end >= s.start ? s.end - s.start : 0)
        << ",\"pid\":" << (s.trace_id % 100000) << ",\"tid\":1"
        << ",\"args\":{\"trace_id\":\"" << s.trace_id << "\",\"span_id\":\""
        << s.span_id << "\",\"parent_span_id\":\"" << s.parent_span_id
        << "\",\"outcome\":";
    append_json_string(out, s.outcome);
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace phoenix::obs
