// Causal trace context propagation.
//
// A TraceContext names the trace a piece of work belongs to and the span
// that should parent whatever the current code records or sends. It is
// propagated *ambiently* through a thread-local frame rather than through
// message envelopes: the fabric captures the sender's ambient context when
// tracing is enabled, and re-establishes it (rooted at the wire-hop span)
// around the delivery callback on the receiving side. This keeps Envelope
// — and with it the fabric's small-buffer-optimized delivery closures —
// exactly the size it was before tracing existed; the traced path pays for
// its fatter closures, the untraced path pays one branch.
//
// Thread-local means the ambient frame is naturally per-shard under the
// ParallelEngine: each worker thread carries its own frame, and the
// cross-shard mailbox closure re-establishes the context on the
// destination shard's thread.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace phoenix::obs {

/// Identifies the enclosing trace and the span that parents new work.
/// trace_id 0 = no active trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  bool active() const noexcept { return trace_id != 0; }
};

namespace detail {
struct AmbientFrame {
  TraceContext ctx;
  /// When the frame was established by a message delivery: the sim time the
  /// message was put on the wire (0 = not a delivery frame). Lets servers
  /// measure transport+queue latency without growing Envelope.
  sim::SimTime sent_at = 0;
};
inline thread_local AmbientFrame g_ambient;
}  // namespace detail

/// The context ambient on this thread ({0,0} when none).
inline TraceContext current_context() noexcept { return detail::g_ambient.ctx; }

/// Wire-send time of the delivery that established the current frame
/// (0 when the current work was not triggered by a traced delivery).
inline sim::SimTime current_delivery_sent_at() noexcept {
  return detail::g_ambient.sent_at;
}

/// RAII: installs `ctx` as the ambient context for the current scope and
/// restores the previous frame on exit. `sent_at` != 0 marks a delivery
/// frame (see current_delivery_sent_at).
class ContextScope {
 public:
  explicit ContextScope(TraceContext ctx, sim::SimTime sent_at = 0) noexcept
      : saved_(detail::g_ambient) {
    detail::g_ambient = detail::AmbientFrame{ctx, sent_at};
  }
  ~ContextScope() { detail::g_ambient = saved_; }

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  detail::AmbientFrame saved_;
};

}  // namespace phoenix::obs
