#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace phoenix::obs {

void Histogram::record(std::uint64_t v) noexcept {
  ++buckets_[std::bit_width(v)];
  ++count_;
  sum_ += v;
  if (v > max_) max_ = v;
}

double Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then walk the cumulative counts.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cum + buckets_[i] >= rank) {
      if (i == 0) return 0.0;
      // Interpolate inside [2^(i-1), 2^i) by the rank's position among the
      // bucket's samples; clamp the top bucket's upper edge to max().
      const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
      double hi = i >= 64 ? static_cast<double>(max_)
                          : static_cast<double>(std::uint64_t{1} << i);
      hi = std::min(hi, static_cast<double>(max_) + 1.0);
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * frac;
    }
    cum += buckets_[i];
  }
  return static_cast<double>(max_);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b = 0;
  count_ = sum_ = max_ = 0;
}

const Counter* Registry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t Registry::register_probe(Probe probe) {
  const std::uint64_t id = next_probe_id_++;
  probes_.emplace_back(id, std::move(probe));
  return id;
}

void Registry::unregister_probe(std::uint64_t id) {
  std::erase_if(probes_, [id](const auto& p) { return p.first == id; });
}

namespace {

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void append_double(std::ostringstream& out, double v) {
  // Integral doubles render without a fraction; JSON has no NaN/Inf.
  if (!std::isfinite(v)) {
    out << 0;
  } else if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    out << static_cast<std::int64_t>(v);
  } else {
    out << v;
  }
}

}  // namespace

std::string Registry::snapshot_json() {
  // Probes may create/overwrite gauges; run them before rendering. Iterate
  // over a copy of the probe list so a probe registering a probe is safe.
  const auto probes = probes_;
  for (const auto& [id, probe] : probes) probe(*this);

  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(out, name);
    out << ": " << c.value();
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(out, name);
    out << ": ";
    append_double(out, g.value());
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(out, name);
    out << ": { \"count\": " << h.count() << ", \"sum\": " << h.sum()
        << ", \"max\": " << h.max() << ", \"mean\": ";
    append_double(out, h.mean());
    out << ", \"p50\": ";
    append_double(out, h.percentile(0.50));
    out << ", \"p95\": ";
    append_double(out, h.percentile(0.95));
    out << ", \"p99\": ";
    append_double(out, h.percentile(0.99));
    out << " }";
  }
  out << (first ? "" : "\n  ") << "}\n}";
  return out.str();
}

void Registry::reset_values() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace phoenix::obs
