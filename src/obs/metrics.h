// Process-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms.
//
// One Registry per Cluster (not a true global — parallel trials in one
// process must not share counters). Same cost discipline as sim::Tracer:
// every hot-path instrumentation site is guarded by one branch on
// `enabled()` and records nothing when the registry is off, so the paper
// experiments stay byte-identical with observability compiled in.
//
// Metric objects are owned by the registry and keyed by name; lookup
// returns a stable pointer (node-based map), so instrumented components
// resolve their metrics once and then write through the cached pointer.
// Pull-based sources (fabric stats, engine counters) register a *probe*
// instead: a closure run at snapshot time that publishes gauges, keeping
// the data plane untouched between snapshots.
//
// Thread discipline: the registry is NOT thread-safe. Mutate it from the
// owning (cluster) thread, or — for ShardedFabric worlds — only while the
// parallel engine is quiescent. Probes follow the same rule because they
// read quiescent-only stats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace phoenix::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement (last write wins).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed distribution, sized for latencies in simulated
/// microseconds: bucket i holds values whose bit width is i, i.e.
/// [2^(i-1), 2^i), with bucket 0 holding the value 0. 64 buckets cover the
/// full uint64 range; recording is a bit-width + one array increment.
/// Percentiles interpolate linearly inside the winning bucket — accurate
/// to the bucket's resolution (a factor of 2), which is plenty for p50/p95/
/// p99 trend lines; `max()` is exact.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(v) in [0, 64]

  void record(std::uint64_t v) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]; 0 when empty. q=0.5 -> p50, etc.
  double percentile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Named metrics, owned here; plus snapshot-time probes for pull sources.
class Registry {
 public:
  /// Probes are run by snapshot_json() to publish gauges from pull
  /// sources. Returns an id for unregister_probe (sources whose lifetime
  /// is shorter than the registry's must unregister in their destructor).
  using Probe = std::function<void(Registry&)>;

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Find-or-create by name. Pointers stay valid for the registry's
  /// lifetime (std::map nodes are stable).
  Counter* counter(const std::string& name) { return &counters_[name]; }
  Gauge* gauge(const std::string& name) { return &gauges_[name]; }
  Histogram* histogram(const std::string& name) { return &histograms_[name]; }

  /// nullptr when the metric was never created (const lookup, no insert).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::uint64_t register_probe(Probe probe);
  void unregister_probe(std::uint64_t id);
  std::size_t probe_count() const noexcept { return probes_.size(); }

  /// Runs every probe (publishing pull-source gauges), then renders all
  /// metrics as one deterministic JSON object:
  ///   { "counters": {..}, "gauges": {..},
  ///     "histograms": { name: {count,sum,max,mean,p50,p95,p99}, .. } }
  std::string snapshot_json();

  /// Zeroes counters and histograms (gauges are overwritten by the next
  /// probe run anyway). Registered probes and metric names survive.
  void reset_values();

 private:
  bool enabled_ = false;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<std::pair<std::uint64_t, Probe>> probes_;
  std::uint64_t next_probe_id_ = 1;
};

}  // namespace phoenix::obs
