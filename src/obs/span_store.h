// Bounded store of completed spans + Chrome trace-event export.
//
// A span is one unit of causally-linked work: a KernelApi call, one send
// attempt, a wire hop, a server-side serve, a dedup replay, a takeover.
// Components record spans *on completion* (start and end sim-times known),
// linked to their parent by span id, so the store is append-only and needs
// no open-span bookkeeping.
//
// Cost discipline: `enabled()` is the one branch instrumented code checks;
// everything else (id minting, the mutex, string copies) happens only when
// tracing is on. record() is thread-safe because ShardedFabric records wire
// hops from parallel worker threads.
//
// Export is Chrome trace-event JSON ("X" complete events, ts/dur in
// microseconds = sim-time units), loadable in Perfetto / chrome://tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "obs/trace_context.h"
#include "sim/time.h"

namespace phoenix::obs {

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  // 0 = trace root
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  std::string component;  // e.g. "api", "fabric/0", "cs/0"
  std::string name;       // e.g. "call:config_set", "hop:ConfigSetMsg"
  std::string outcome;    // e.g. "ok", "retry", "lost", "replay"
};

class SpanStore {
 public:
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Retention bound; oldest spans are evicted first.
  void set_capacity(std::size_t n);
  std::size_t capacity() const noexcept { return capacity_; }

  /// Fresh unique id, usable as a trace id or span id. Ids are minted from
  /// one atomic counter: unique across threads, not stable across thread
  /// counts (the tree *structure* is what determinism tests assert on).
  std::uint64_t mint_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a completed span. No-op when disabled (callers normally check
  /// enabled() first and skip building the span at all).
  void record(Span span);

  /// Snapshot of retained spans, oldest-first. Takes the lock — call while
  /// any parallel engine is quiescent.
  std::deque<Span> spans() const;
  std::size_t size() const;
  std::uint64_t recorded_total() const noexcept { return recorded_; }
  void clear();

  /// Chrome trace-event JSON: {"traceEvents":[...]}. Each span becomes a
  /// ph:"X" event with pid = trace_id's low bits and args carrying the
  /// ids/outcome, so Perfetto groups spans by trace.
  std::string to_chrome_json() const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 65536;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::deque<Span> spans_;
  std::uint64_t recorded_ = 0;
};

}  // namespace phoenix::obs
