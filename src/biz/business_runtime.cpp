#include "biz/business_runtime.h"

#include <algorithm>
#include <sstream>

#include "kernel/bulletin/data_bulletin.h"
#include "kernel/event/event_service.h"
#include "kernel/ppm/process_manager.h"

namespace phoenix::biz {

namespace {
constexpr net::PortId kBizPort{21};
}  // namespace

BusinessRuntime::BusinessRuntime(cluster::Cluster& cluster, net::NodeId node,
                                 kernel::PhoenixKernel& kernel, BizConfig config)
    : Daemon(cluster, "biz.runtime", node, kBizPort),
      kernel_(kernel),
      config_(std::move(config)),
      request_driver_(cluster.engine(),
                      config_.request_interval > 0 ? config_.request_interval
                                                   : sim::kSecond,
                      [this] { route_request(); }),
      load_refresher_(cluster.engine(), config_.load_refresh_interval,
                      [this] { refresh_load(); }) {}

void BusinessRuntime::on_start() {
  kernel::Subscription sub;
  sub.consumer = address();
  sub.types = {std::string(kernel::event_types::kAppExited),
               std::string(kernel::event_types::kNodeFailed)};
  auto msg = std::make_shared<kernel::EsSubscribeMsg>();
  msg->subscription = std::move(sub);
  send_any(kernel_.service_address(kernel::ServiceKind::kEventService,
                                   cluster().partition_of(node_id())),
           std::move(msg));

  for (const auto& tier : config_.tiers) {
    for (unsigned i = 0; i < tier.replicas; ++i) deploy(tier);
  }
  if (config_.request_interval > 0) request_driver_.start();
  if (config_.placement == PlacementPolicy::kLeastLoaded) {
    load_refresher_.start_after(1 * sim::kSecond);
  }
}

void BusinessRuntime::on_stop() {
  request_driver_.stop();
  load_refresher_.stop();
}

std::vector<net::NodeId> BusinessRuntime::placement_candidates() const {
  std::vector<net::NodeId> candidates;
  const auto& spec = cluster().spec();
  for (std::uint32_t p = 0; p < spec.partitions; ++p) {
    for (net::NodeId n : cluster().compute_nodes(net::PartitionId{p})) {
      if (cluster().node(n).alive()) candidates.push_back(n);
    }
  }
  return candidates;
}

void BusinessRuntime::deploy(const TierSpec& tier) {
  auto candidates = placement_candidates();
  if (candidates.empty()) return;

  net::NodeId target;
  if (config_.placement == PlacementPolicy::kLeastLoaded && !node_cpu_.empty()) {
    // Lowest cached CPU wins; unknown nodes count as idle.
    double best = 1e18;
    target = candidates.front();
    for (net::NodeId n : candidates) {
      const auto it = node_cpu_.find(n.value);
      const double cpu = it == node_cpu_.end() ? 0.0 : it->second;
      if (cpu < best) {
        best = cpu;
        target = n;
      }
    }
  } else {
    target = candidates[next_placement_++ % candidates.size()];
  }

  auto spawn = std::make_shared<kernel::SpawnMsg>();
  spawn->spec.name = "biz." + tier.name;
  spawn->spec.owner = "business";
  spawn->spec.cpu_share = tier.cpu_share;
  spawn->spec.duration = 0;  // service processes run until killed
  spawn->reply_to = address();
  spawn->request_id = ++request_seq_;
  pending_[request_seq_] = tier.name;
  send_any({target, kernel::port_of(kernel::ServiceKind::kProcessManager)},
           std::move(spawn));
}

void BusinessRuntime::refresh_load() {
  if (!alive()) return;
  auto query = std::make_shared<kernel::DbQueryMsg>();
  load_query_id_ = ++request_seq_;
  query->query_id = load_query_id_;
  query->table = kernel::BulletinTable::kNodes;
  query->cluster_scope = true;
  query->reply_to = address();
  send_any(kernel_.service_address(kernel::ServiceKind::kDataBulletin,
                                   cluster().partition_of(node_id())),
           std::move(query));
}

const TierSpec* BusinessRuntime::tier_spec(const std::string& name) const {
  for (const auto& t : config_.tiers) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::size_t BusinessRuntime::replicas_running(const std::string& tier) const {
  std::size_t n = 0;
  for (const auto& [pid, inst] : instances_) {
    if (inst.tier == tier && inst.running) ++n;
  }
  return n;
}

std::vector<net::NodeId> BusinessRuntime::replica_nodes(
    const std::string& tier) const {
  std::vector<net::NodeId> out;
  for (const auto& [pid, inst] : instances_) {
    if (inst.tier == tier && inst.running) out.push_back(inst.node);
  }
  return out;
}

bool BusinessRuntime::route_request() {
  // A request traverses every tier; it succeeds iff each has a live replica
  // on a live node.
  bool ok = !config_.tiers.empty();
  for (const auto& tier : config_.tiers) {
    bool tier_ok = false;
    for (const auto& [pid, inst] : instances_) {
      if (inst.tier == tier.name && inst.running &&
          cluster().node(inst.node).alive()) {
        tier_ok = true;
        break;
      }
    }
    if (!tier_ok) {
      ok = false;
      break;
    }
  }
  if (ok) {
    ++stats_.requests_served;
  } else {
    ++stats_.requests_failed;
  }
  return ok;
}

void BusinessRuntime::heal(cluster::Pid pid) {
  auto it = instances_.find(pid);
  if (it == instances_.end() || !it->second.running) return;
  it->second.running = false;
  const TierSpec* tier = tier_spec(it->second.tier);
  if (tier == nullptr) return;
  ++stats_.restarts;
  deploy(*tier);
}

void BusinessRuntime::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;

  if (const auto* reply = net::message_cast<kernel::SpawnReplyMsg>(m)) {
    auto it = pending_.find(reply->request_id);
    if (it == pending_.end() || !reply->ok) return;
    instances_[reply->pid] = Instance{it->second, reply->node, true};
    pending_.erase(it);
    ++stats_.deployed;
    return;
  }
  if (const auto* notify = net::message_cast<kernel::EsNotifyMsg>(m)) {
    const kernel::Event& e = notify->event;
    if (e.type == kernel::event_types::kAppExited) {
      try {
        heal(std::stoull(e.attr("pid")));
      } catch (const std::exception&) {
        // non-numeric pid attribute: not one of ours
      }
    } else if (e.type == kernel::event_types::kNodeFailed) {
      std::vector<cluster::Pid> victims;
      for (const auto& [pid, inst] : instances_) {
        if (inst.running && inst.node == e.subject_node) victims.push_back(pid);
      }
      for (const cluster::Pid pid : victims) heal(pid);
    }
    return;
  }
  if (const auto* reply = net::message_cast<kernel::DbQueryReplyMsg>(m)) {
    if (reply->query_id != load_query_id_) return;
    node_cpu_.clear();
    for (const auto& row : reply->node_rows) {
      node_cpu_[row.node.value] = row.usage.cpu_pct;
    }
    return;
  }
}

std::string BusinessRuntime::render_status() const {
  std::ostringstream out;
  out << "business runtime: ";
  for (const auto& tier : config_.tiers) {
    out << tier.name << " " << replicas_running(tier.name) << "/" << tier.replicas
        << "  ";
  }
  out << "| availability " << stats_.availability() << " (" << stats_.requests_served
      << " ok, " << stats_.requests_failed << " failed), " << stats_.restarts
      << " self-heals";
  return out.str();
}

}  // namespace phoenix::biz
