// Business application runtime environment (paper §3, Figure 1): "manages
// multi-tier business applications and guarantees their high-availability
// and load-balancing".
//
// A business application is a set of tiers (web / app / db / ...), each
// with a target replica count. The runtime:
//  - deploys replicas through the parallel process management service,
//    placing them round-robin or on the least-loaded candidate node (load
//    read from the data bulletin federation — the §4.2 purpose of the
//    application/physical detectors for "business application runtime");
//  - subscribes to application-exit and node-failure events and redeploys
//    replicas to hold every tier at its target (self-healing);
//  - routes logical requests across running replicas (round-robin) and
//    accounts availability: a request succeeds only when EVERY tier has at
//    least one live replica — the 7x24 metric of the paper's introduction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/kernel.h"

namespace phoenix::biz {

struct TierSpec {
  std::string name;
  unsigned replicas = 1;
  double cpu_share = 1.0;
};

enum class PlacementPolicy : std::uint8_t {
  kRoundRobin,
  kLeastLoaded,  // lowest CPU among candidates, from the bulletin federation
};

struct BizConfig {
  std::vector<TierSpec> tiers;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  /// Period of the synthetic request driver (0 = no requests generated).
  sim::SimTime request_interval = 0;
  /// Bulletin refresh period for least-loaded placement.
  sim::SimTime load_refresh_interval = 5 * sim::kSecond;
};

struct BizStats {
  std::uint64_t deployed = 0;
  std::uint64_t restarts = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t requests_failed = 0;

  double availability() const {
    const std::uint64_t total = requests_served + requests_failed;
    return total == 0 ? 1.0
                      : static_cast<double>(requests_served) /
                            static_cast<double>(total);
  }
};

class BusinessRuntime final : public cluster::Daemon {
 public:
  BusinessRuntime(cluster::Cluster& cluster, net::NodeId node,
                  kernel::PhoenixKernel& kernel, BizConfig config);

  std::size_t replicas_running(const std::string& tier) const;
  const BizStats& stats() const noexcept { return stats_; }

  /// Routes one logical request through every tier; true iff each tier had
  /// a live replica. Counted in stats().
  bool route_request();

  /// Node currently hosting each running replica of a tier (tests).
  std::vector<net::NodeId> replica_nodes(const std::string& tier) const;

  std::string render_status() const;

 private:
  struct Instance {
    std::string tier;
    net::NodeId node;
    bool running = false;
  };

  void handle(const net::Envelope& env) override;
  void on_start() override;
  void on_stop() override;
  void deploy(const TierSpec& tier);
  void heal(cluster::Pid pid);
  void refresh_load();
  const TierSpec* tier_spec(const std::string& name) const;
  std::vector<net::NodeId> placement_candidates() const;

  kernel::PhoenixKernel& kernel_;
  BizConfig config_;
  std::map<cluster::Pid, Instance> instances_;
  std::map<std::uint64_t, std::string> pending_;  // spawn request -> tier
  std::map<std::uint32_t, double> node_cpu_;      // bulletin-fed load cache
  BizStats stats_;
  std::uint64_t request_seq_ = 0;
  std::size_t next_placement_ = 0;
  std::uint64_t load_query_id_ = 0;
  sim::PeriodicTask request_driver_;
  sim::PeriodicTask load_refresher_;
};

}  // namespace phoenix::biz
