#include "sim/trace.h"

#include <sstream>

namespace phoenix::sim {

std::string_view to_string(TraceLevel level) noexcept {
  switch (level) {
    case TraceLevel::kDebug: return "debug";
    case TraceLevel::kInfo: return "info";
    case TraceLevel::kWarn: return "warn";
    case TraceLevel::kError: return "error";
  }
  return "?";
}

void Tracer::set_capacity(std::size_t n) {
  capacity_ = n;
  while (entries_.size() > capacity_) entries_.pop_front();
}

void Tracer::record(SimTime at, TraceLevel level, std::string component,
                    std::string message) {
  if (!enabled_ || level < min_level_) return;
  ++recorded_;
  entries_.push_back(TraceEntry{at, level, std::move(component), std::move(message)});
  while (entries_.size() > capacity_) entries_.pop_front();
}

void Tracer::clear() { entries_.clear(); }

std::deque<TraceEntry> Tracer::filtered(const std::string& prefix,
                                        std::size_t limit) const {
  std::deque<TraceEntry> out;
  for (auto it = entries_.rbegin(); it != entries_.rend() && out.size() < limit;
       ++it) {
    if (it->component.compare(0, prefix.size(), prefix) == 0) {
      out.push_front(*it);
    }
  }
  return out;
}

std::string Tracer::dump(std::size_t last_n) const {
  std::ostringstream out;
  const std::size_t begin =
      entries_.size() > last_n ? entries_.size() - last_n : 0;
  for (std::size_t i = begin; i < entries_.size(); ++i) {
    const TraceEntry& e = entries_[i];
    out << '[' << format_duration(e.at) << "] " << to_string(e.level) << ' '
        << e.component << ": " << e.message << '\n';
  }
  return out.str();
}

}  // namespace phoenix::sim
