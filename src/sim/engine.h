// Discrete-event simulation engine.
//
// The engine owns the virtual clock and a priority queue of scheduled
// callbacks. All Phoenix daemons are actors driven entirely by engine
// events: message deliveries, timers, and fault injections. Determinism:
// ties on time are broken by insertion sequence number.
//
// Hot-path design (see DESIGN.md, "Simulation-core performance"):
//   - The priority queue holds 24-byte POD keys {time, seq, id}; the
//     callback itself lives in a stable slot array and is never moved by
//     heap sifts.
//   - Cancellation is lazy via generation counters: an EventId packs
//     (slot, generation); cancel/fire bump the slot's generation, so a
//     queued ghost key is recognized and skipped when popped. No per-event
//     hash-set insert/erase.
//   - Callbacks are InplaceCallback (48-byte small-buffer), so the lambdas
//     daemons schedule (this + a few ids, or this + an Envelope) never
//     touch the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/inplace_function.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace phoenix::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Packs (slot << kGenerationBits) | generation; value 0 is never issued
/// (generations skip 0), so a default EventId is always invalid.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

class Engine {
 public:
  /// 48 bytes covers the largest hot-path capture (Fabric's delivery
  /// lambda: this + Envelope). Bigger closures fall back to the heap.
  using Callback = InplaceCallback<48>;

  /// Width of the per-slot generation counter inside EventId. After
  /// 2^kGenerationBits - 1 reuses of one slot the counter wraps and an
  /// ancient stale id aliases the current occupant (classic ABA); ~1M
  /// schedule/cancel cycles on the *same slot* is far beyond any id a
  /// daemon keeps around.
  static constexpr unsigned kGenerationBits = 20;

  explicit Engine(std::uint64_t seed = 42);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedules `cb` to run at absolute time `t` (clamped to now()).
  /// Templated so the closure is constructed directly in its slot — no
  /// temporary Callback, no relocation.
  template <typename F, typename = std::enable_if_t<std::is_invocable_r_v<
                            void, std::decay_t<F>&>>>
  EventId schedule_at(SimTime t, F&& cb) {
    return schedule_impl(t, std::forward<F>(cb));
  }

  /// Schedules `cb` to run `delay` microseconds from now.
  template <typename F, typename = std::enable_if_t<std::is_invocable_r_v<
                            void, std::decay_t<F>&>>>
  EventId schedule_after(SimTime delay, F&& cb) {
    return schedule_impl(now_ + delay, std::forward<F>(cb));
  }

  /// Allocation-free raw form: `fn(ctx)` runs at `t`. Used by self-
  /// rescheduling timers (PeriodicTask) so the heartbeat storm constructs
  /// no closure per tick.
  EventId schedule_raw_at(SimTime t, void (*fn)(void*), void* ctx);
  EventId schedule_raw_after(SimTime delay, void (*fn)(void*), void* ctx);

  /// Cancels a pending event. Returns true if it had not yet fired.
  bool cancel(EventId id);

  /// Runs the single earliest event. Returns false if the queue is empty.
  bool step() { return step_limited(kNever); }

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(SimTime t);

  /// Runs for `delta` of simulated time from now.
  std::size_t run_for(SimTime delta) { return run_until(now_ + delta); }

  /// Number of events still pending.
  std::size_t pending() const noexcept { return live_; }

  /// Time of the earliest queued entry — live or lazily-cancelled ghost — or
  /// kNever when the queue is empty. A lower bound on when the next event
  /// can fire; the parallel engine uses it to fast-forward over idle time
  /// windows without popping (ghosts make it conservative, never wrong).
  SimTime next_time_lower_bound() const noexcept {
    return queue_.empty() ? kNever : queue_.top().time;
  }

  /// Total events executed since construction.
  std::uint64_t executed() const noexcept { return executed_; }

  Rng& rng() noexcept { return rng_; }

 private:
  static constexpr std::uint64_t kGenMask = (1u << kGenerationBits) - 1;

  // Priority-queue key: plain-old-data, 24 bytes, cheap to sift. The
  // callback for `id` lives in slots_[id >> kGenerationBits].
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    std::uint64_t id;   // packed (slot, generation)
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  struct Slot {
    std::uint32_t gen = 1;
    // Distinguishes an occupied slot from one parked on the free list. A
    // free slot already carries the generation its NEXT occupant will get,
    // so without this flag a stale id could alias it after a generation
    // wrap and cancel() would corrupt the free list / live count.
    bool live = false;
    Callback cb;
  };

  std::uint64_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint64_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const std::uint64_t slot = slots_.size();
    slots_.emplace_back();
    return slot;
  }

  template <typename F>
  EventId schedule_impl(SimTime t, F&& cb) {
    if (t < now_) t = now_;
    const std::uint64_t slot = acquire_slot();
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      slots_[slot].cb = std::forward<F>(cb);
    } else {
      slots_[slot].cb.emplace(std::forward<F>(cb));
    }
    slots_[slot].live = true;
    const std::uint64_t id = (slot << kGenerationBits) | slots_[slot].gen;
    queue_.push(Entry{t, next_seq_++, id});
    ++live_;
    return EventId{id};
  }

  bool step_limited(SimTime limit);

  /// Bumps the slot's generation (skipping 0) and returns it to the free
  /// list; any EventId minted for the old generation is now stale.
  void retire(std::uint64_t slot) {
    std::uint32_t g = (slots_[slot].gen + 1) & kGenMask;
    if (g == 0) g = 1;
    slots_[slot].gen = g;
    slots_[slot].live = false;
    free_slots_.push_back(slot);
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet fired/cancelled
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint64_t> free_slots_;  // LIFO: reuse stays cache-hot
  Rng rng_;
};

/// A self-rescheduling periodic timer. Construction does not start it;
/// call start(). Stopping is safe from inside the tick callback. Re-arming
/// goes through the engine's raw-thunk path: a tick schedules its successor
/// without constructing or destroying any closure.
class PeriodicTask {
 public:
  using Tick = std::function<void()>;

  PeriodicTask(Engine& engine, SimTime period, Tick tick);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Arms the timer: first tick fires after `initial_delay` (default: one period).
  void start();
  void start_after(SimTime initial_delay);
  void stop();

  bool running() const noexcept { return running_; }
  SimTime period() const noexcept { return period_; }

  /// Changes the period; takes effect at the next (re)arming.
  void set_period(SimTime period) noexcept { period_ = period; }

 private:
  static void tick_thunk(void* self);
  void on_tick();
  void arm(SimTime delay);

  Engine& engine_;
  SimTime period_;
  Tick tick_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace phoenix::sim
