// Discrete-event simulation engine.
//
// The engine owns the virtual clock and a priority queue of scheduled
// callbacks. All Phoenix daemons are actors driven entirely by engine
// events: message deliveries, timers, and fault injections. Determinism:
// ties on time are broken by insertion sequence number.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace phoenix::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  explicit Engine(std::uint64_t seed = 42);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedules `cb` to run at absolute time `t` (clamped to now()).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` to run `delay` microseconds from now.
  EventId schedule_after(SimTime delay, Callback cb);

  /// Cancels a pending event. Returns true if it had not yet fired.
  bool cancel(EventId id);

  /// Runs the single earliest event. Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(SimTime t);

  /// Runs for `delta` of simulated time from now.
  std::size_t run_for(SimTime delta) { return run_until(now_ + delta); }

  /// Number of events still pending.
  std::size_t pending() const noexcept { return live_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed() const noexcept { return executed_; }

  Rng& rng() noexcept { return rng_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;  // scheduled, not yet fired/cancelled
  Rng rng_;
};

/// A self-rescheduling periodic timer. Construction does not start it;
/// call start(). Stopping is safe from inside the tick callback.
class PeriodicTask {
 public:
  using Tick = std::function<void()>;

  PeriodicTask(Engine& engine, SimTime period, Tick tick);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Arms the timer: first tick fires after `initial_delay` (default: one period).
  void start();
  void start_after(SimTime initial_delay);
  void stop();

  bool running() const noexcept { return running_; }
  SimTime period() const noexcept { return period_; }

  /// Changes the period; takes effect at the next (re)arming.
  void set_period(SimTime period) noexcept { period_ = period; }

 private:
  void arm(SimTime delay);

  Engine& engine_;
  SimTime period_;
  Tick tick_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace phoenix::sim
