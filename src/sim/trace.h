// Structured tracing for the simulated cluster.
//
// A bounded in-memory journal of (time, level, component, message) entries,
// owned by the Cluster and fed by daemons through Daemon::trace(). Disabled
// by default — recording costs one branch — and intended for debugging
// protocol interactions and for the admin console's "fault analysis" dumps.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "sim/time.h"

namespace phoenix::sim {

enum class TraceLevel : std::uint8_t { kDebug, kInfo, kWarn, kError };

std::string_view to_string(TraceLevel level) noexcept;

struct TraceEntry {
  SimTime at = 0;
  TraceLevel level = TraceLevel::kInfo;
  std::string component;  // daemon name, e.g. "gsd/3"
  std::string message;
};

class Tracer {
 public:
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Entries below this level are not recorded (default: kDebug = all).
  void set_min_level(TraceLevel level) noexcept { min_level_ = level; }

  /// Retention bound; oldest entries are evicted first.
  void set_capacity(std::size_t n);
  std::size_t capacity() const noexcept { return capacity_; }

  void record(SimTime at, TraceLevel level, std::string component,
              std::string message);

  const std::deque<TraceEntry>& entries() const noexcept { return entries_; }
  std::uint64_t recorded_total() const noexcept { return recorded_; }
  void clear();

  /// Entries whose component starts with `prefix` ("" = all), newest-first
  /// capped at `limit`.
  std::deque<TraceEntry> filtered(const std::string& prefix,
                                  std::size_t limit = SIZE_MAX) const;

  /// Renders the newest `last_n` entries, one per line.
  std::string dump(std::size_t last_n = 50) const;

 private:
  bool enabled_ = false;
  TraceLevel min_level_ = TraceLevel::kDebug;
  std::size_t capacity_ = 4096;
  std::deque<TraceEntry> entries_;
  std::uint64_t recorded_ = 0;
};

}  // namespace phoenix::sim
