#include "sim/rng.h"

#include <cmath>
#include <numbers>

namespace phoenix::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // xoshiro state must not be all-zero; SplitMix64 guarantees that for any seed.
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  return lo + next() % span;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

std::uint64_t derive_stream_seed(std::uint64_t root_seed,
                                 std::uint64_t stream_id) noexcept {
  // Mix the stream id into the root with a distinct odd multiplier, then run
  // two SplitMix64 rounds so every output bit depends on every input bit of
  // both the root and the id (adjacent shard ids land far apart).
  std::uint64_t x = root_seed ^ (0xd1b54a32d192ed03ULL * (stream_id + 1));
  const std::uint64_t a = splitmix64(x);
  return splitmix64(x) ^ rotl(a, 23);
}

}  // namespace phoenix::sim
