// Simulated-time primitives.
//
// Phoenix reproduces cluster-scale timing behaviour (30 s heartbeats,
// sub-millisecond diagnosis probes) on one machine, so all components run
// against a virtual clock measured in integer microseconds. Integer time
// keeps event ordering exact and runs deterministic.
#pragma once

#include <cstdint>
#include <string>

namespace phoenix::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

/// Signed duration in microseconds (deltas may be negative in intermediate math).
using SimDuration = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1'000'000;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;

/// Never: a schedule time no event can reach.
inline constexpr SimTime kNever = ~SimTime{0};

/// Converts a microsecond count to seconds as a double (for reporting only).
constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts (possibly fractional) seconds to simulated microseconds.
constexpr SimTime from_seconds(double seconds) noexcept {
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

/// Renders a time as a short human-readable string, e.g. "30.39s" or "348us".
std::string format_duration(SimTime t);

}  // namespace phoenix::sim
