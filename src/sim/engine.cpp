#include "sim/engine.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace phoenix::sim {

std::string format_duration(SimTime t) {
  char buf[48];
  if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "us", t);
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(t) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", to_seconds(t));
  }
  return buf;
}

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

EventId Engine::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{t, seq, std::move(cb)});
  live_.insert(seq);
  return EventId{seq};
}

EventId Engine::schedule_after(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool Engine::cancel(EventId id) {
  // Lazy cancellation: the entry stays queued and is skipped when popped.
  return live_.erase(id.value) > 0;
}

bool Engine::step() {
  while (!queue_.empty()) {
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (live_.erase(e.seq) == 0) continue;  // was cancelled
    now_ = e.time;
    ++executed_;
    e.cb();
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    if (step()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

PeriodicTask::PeriodicTask(Engine& engine, SimTime period, Tick tick)
    : engine_(engine), period_(period), tick_(std::move(tick)) {}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() { start_after(period_); }

void PeriodicTask::start_after(SimTime initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTask::stop() {
  if (pending_.value != 0) {
    engine_.cancel(pending_);
    pending_ = EventId{};
  }
  running_ = false;
}

void PeriodicTask::arm(SimTime delay) {
  pending_ = engine_.schedule_after(delay, [this] {
    pending_ = EventId{};
    if (!running_) return;
    tick_();
    // tick_ may have called stop() (or even start()); only re-arm if still
    // running and nothing else re-armed us.
    if (running_ && pending_.value == 0) arm(period_);
  });
}

}  // namespace phoenix::sim
