#include "sim/engine.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace phoenix::sim {

std::string format_duration(SimTime t) {
  char buf[48];
  if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "us", t);
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(t) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", to_seconds(t));
  }
  return buf;
}

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

EventId Engine::schedule_raw_at(SimTime t, void (*fn)(void*), void* ctx) {
  return schedule_impl(t, Callback(fn, ctx));
}

EventId Engine::schedule_raw_after(SimTime delay, void (*fn)(void*), void* ctx) {
  return schedule_impl(now_ + delay, Callback(fn, ctx));
}

bool Engine::cancel(EventId id) {
  // Lazy cancellation: the queue key stays queued and is skipped when
  // popped; only the generation bump and callback teardown happen here.
  const std::uint64_t slot = id.value >> kGenerationBits;
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value & kGenMask);
  if (gen == 0 || slot >= slots_.size() || !slots_[slot].live ||
      slots_[slot].gen != gen) {
    return false;
  }
  slots_[slot].cb = Callback{};  // release captures promptly
  retire(slot);
  --live_;
  return true;
}

bool Engine::step_limited(SimTime limit) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    const std::uint64_t slot = top.id >> kGenerationBits;
    if (!slots_[slot].live || slots_[slot].gen != (top.id & kGenMask)) {
      queue_.pop();  // cancelled ghost
      continue;
    }
    if (top.time > limit) return false;
    queue_.pop();
    // Move the callback out and retire the slot *before* running it: the
    // callback may legally schedule into (and thus reuse) this very slot.
    Callback cb = std::move(slots_[slot].cb);
    slots_[slot].cb = Callback{};
    retire(slot);
    --live_;
    now_ = top.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  std::size_t n = 0;
  while (step_limited(t)) ++n;
  if (now_ < t) now_ = t;
  return n;
}

PeriodicTask::PeriodicTask(Engine& engine, SimTime period, Tick tick)
    : engine_(engine), period_(period), tick_(std::move(tick)) {}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() { start_after(period_); }

void PeriodicTask::start_after(SimTime initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTask::stop() {
  if (pending_.value != 0) {
    engine_.cancel(pending_);
    pending_ = EventId{};
  }
  running_ = false;
}

void PeriodicTask::tick_thunk(void* self) {
  static_cast<PeriodicTask*>(self)->on_tick();
}

void PeriodicTask::on_tick() {
  pending_ = EventId{};
  if (!running_) return;
  tick_();
  // tick_ may have called stop() (or even start()); only re-arm if still
  // running and nothing else re-armed us.
  if (running_ && pending_.value == 0) arm(period_);
}

void PeriodicTask::arm(SimTime delay) {
  pending_ = engine_.schedule_raw_after(delay, &PeriodicTask::tick_thunk, this);
}

}  // namespace phoenix::sim
