// Small-buffer-optimized move-only callable for the engine's hot path.
//
// std::function keeps only ~16 bytes inline (libstdc++), so the lambdas the
// Phoenix daemons actually schedule — `this` plus an Envelope, a pid, or a
// couple of ids, typically 24–48 bytes — heap-allocate on every schedule.
// With three heartbeat networks per watch daemon that is thousands of
// allocations per simulated second. InplaceCallback stores callables up to
// `Capacity` bytes inline and only falls back to the heap beyond that, and
// is move-only so it can carry move-only captures (e.g. unique_ptr).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace phoenix::sim {

template <std::size_t Capacity>
class InplaceCallback {
 public:
  InplaceCallback() = default;
  InplaceCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Wraps any void() callable. Inline when it fits and is nothrow-movable;
  /// heap-backed otherwise (cold: oversized captures are rare and a bug to
  /// fix at the call site, not a crash).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  /// Raw-thunk form: a plain function pointer plus context, guaranteed
  /// allocation-free. Used by PeriodicTask so a re-arming timer constructs
  /// no closure object at all.
  InplaceCallback(void (*fn)(void*), void* ctx)
      : InplaceCallback(RawThunk{fn, ctx}) {
    static_assert(fits_inline<RawThunk>());
  }

  InplaceCallback(InplaceCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(buf_);
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;

  ~InplaceCallback() {
    if (ops_ != nullptr) ops_->destroy(buf_);
  }

  /// Destroys the current target (if any) and constructs `f` in place —
  /// one construction instead of construct-into-temporary + relocate.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  static constexpr std::size_t capacity() noexcept { return Capacity; }

  /// True when callables of type F are stored without heap allocation.
  template <typename F>
  static constexpr bool stores_inline() noexcept {
    return fits_inline<std::decay_t<F>>();
  }

 private:
  struct RawThunk {
    void (*fn)(void*);
    void* ctx;
    void operator()() const { fn(ctx); }
  };

  struct Ops {
    void (*invoke)(void* buf);
    void (*relocate)(void* from, void* to);  // move-construct + destroy source
    void (*destroy)(void* buf);
  };

  template <typename Fn>
  static constexpr bool fits_inline() noexcept {
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](void* from, void* to) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* buf) { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* buf) { (**std::launder(reinterpret_cast<Fn**>(buf)))(); },
      [](void* from, void* to) {
        // Pointer relocation is a trivial copy; no source teardown needed.
        ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
      },
      [](void* buf) { delete *std::launder(reinterpret_cast<Fn**>(buf)); },
  };

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace phoenix::sim
