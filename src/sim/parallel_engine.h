// Conservative parallel discrete-event engine.
//
// The single-threaded sim::Engine tops out around a few million events per
// second, which caps experiments at roughly 4k simulated nodes. This engine
// shards the simulated world across worker threads: each shard owns a
// private Engine (its own event queue, clock, and RNG stream derived from
// the root seed + shard id) and the shards advance in lockstep through time
// windows whose width is the *lookahead* — the minimum latency any
// cross-shard interaction can have (in Phoenix, the fabric's minimum
// inter-node delivery latency; see net::LatencyModel::min_latency()).
//
// Protocol (classic conservative time-window synchronization):
//   - Window k covers simulated times [k0, k0 + lookahead). Within a window
//     every shard runs its local events independently; no shard can affect
//     another inside the same window because any cross-shard effect is at
//     least one lookahead away.
//   - Cross-shard events go through per-(sender, receiver) SPSC mailboxes.
//     An entry is tagged with the window (epoch) that produced it; receivers
//     drain entries tagged with *earlier* epochs at the start of each
//     window, so an entry produced concurrently with the receiver's current
//     window is never consumed early.
//   - A barrier separates windows. Its completion step advances the window,
//     fast-forwarding over idle gaps (min over all shard queues and mailbox
//     entries) so sparse workloads do not pay per-window costs for empty
//     simulated time.
//
// Determinism contract: for a fixed shard count and seed, results are
// bit-identical for ANY thread count, including threads = 0 (the sequential
// reference mode, which executes the exact same protocol on the calling
// thread). Mailboxes are drained in fixed sender order, entries in FIFO
// order, and every RNG draw happens on the shard that owns it — thread
// scheduling can reorder nothing observable. Changing the *shard count*
// changes RNG stream assignment and event interleaving, so it is a
// different (equally valid) experiment, like changing the seed.
//
// The single-threaded Engine remains the default for all paper experiments;
// this engine is the substrate for 16k+-node scale runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/engine.h"
#include "sim/time.h"

namespace phoenix::sim {

namespace detail {

/// Unbounded single-producer single-consumer mailbox (linked list with a
/// dummy head). The producer is whichever thread owns the sending shard, the
/// consumer whichever owns the receiving shard; both roles are fixed for a
/// run, and production during window k overlaps consumption of window k-1
/// entries — exactly the SPSC contract.
class SpscMailbox {
 public:
  struct Entry {
    SimTime at = 0;            // absolute delivery time
    std::uint64_t epoch = 0;   // window that produced the entry
    Engine::Callback cb;
    EventId* id_slot = nullptr;  // optional: receives the minted id at drain
  };

  SpscMailbox() : head_(new Node), tail_(head_) {}
  ~SpscMailbox();

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  /// Producer only.
  void push(Entry e);

  /// Consumer only: pops every entry tagged with an epoch < `before` into
  /// `fn`, stopping at the first newer entry (FIFO order, so all drainable
  /// entries precede it).
  template <typename Fn>
  void drain_before(std::uint64_t before, Fn&& fn) {
    while (Node* next = head_->next.load(std::memory_order_acquire)) {
      if (next->e.epoch >= before) break;
      fn(next->e);
      delete head_;
      head_ = next;
    }
  }

  /// Earliest delivery time among queued entries, or kNever. Only safe while
  /// both endpoints are quiescent (the barrier completion step).
  SimTime min_time() const noexcept;

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    Entry e;
  };

  Node* head_;  // consumer-owned dummy; head_->next is the front entry
  Node* tail_;  // producer-owned
};

}  // namespace detail

class ParallelEngine {
 public:
  using Callback = Engine::Callback;

  struct Options {
    /// Number of shards the simulated world is partitioned into. Fixed for
    /// the life of the engine; part of the determinism contract.
    std::size_t shards = 1;
    /// Worker threads executing the shards (round-robin ownership). 0 runs
    /// the identical protocol sequentially on the calling thread — the
    /// deterministic reference mode for replay-equivalence tests.
    std::size_t threads = 0;
    /// Conservative lookahead: no cross-shard event may be delivered less
    /// than this far into the future. Must be > 0 — with zero lookahead a
    /// shard could affect another within the current window and conservative
    /// parallel execution is impossible (the constructor throws).
    SimTime lookahead = 0;
    /// Root seed; shard s draws from Rng(derive_stream_seed(seed, s)).
    std::uint64_t seed = 42;
  };

  explicit ParallelEngine(const Options& opts);
  ~ParallelEngine() = default;

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t thread_count() const noexcept { return threads_; }
  SimTime lookahead() const noexcept { return lookahead_; }

  /// The shard-local engine. During a run it must only be touched by the
  /// thread currently executing shard `s`; between runs (quiescent) any
  /// thread may schedule setup events or inspect state.
  Engine& shard(std::size_t s) { return shards_[s]->engine; }
  const Engine& shard(std::size_t s) const { return shards_[s]->engine; }

  /// Simulated time every shard has reached (quiescent only).
  SimTime now() const noexcept { return resume_at_; }

  /// Schedules `cb` on shard `to` at absolute time `at`, called from shard
  /// `from`'s execution context during a run. `at` must lie beyond the
  /// current window (guaranteed when the delay is >= lookahead); a
  /// same-window delivery throws std::logic_error — the caller's latency
  /// model is incompatible with the configured lookahead.
  ///
  /// If `id_slot` is non-null it receives the EventId minted when the entry
  /// is drained into shard `to`; the slot must only be read (e.g. to
  /// cancel the event) from code running on shard `to` — the owning thread.
  /// `from == to` degenerates to a direct local schedule.
  void post_cross(std::size_t from, std::size_t to, SimTime at, Callback cb,
                  EventId* id_slot = nullptr);

  /// Runs every shard through time windows until all clocks reach `t`
  /// (inclusive, like Engine::run_until). Returns events executed across
  /// all shards during this call.
  std::uint64_t run_until(SimTime t);

  // --- counters (quiescent only) -------------------------------------------

  /// Total events executed across all shards since construction.
  std::uint64_t executed() const noexcept;
  /// Cross-shard events posted / drained into their target shard.
  std::uint64_t cross_posted() const noexcept;
  std::uint64_t cross_delivered() const noexcept;
  /// Synchronization windows executed (barrier rounds).
  std::uint64_t windows_run() const noexcept { return epoch_; }

 private:
  // Cache-line sized so two shards' hot state never false-shares.
  struct alignas(64) Shard {
    explicit Shard(std::uint64_t seed) : engine(seed) {}
    Engine engine;
    std::uint64_t cross_posted = 0;
    std::uint64_t cross_delivered = 0;
  };

  detail::SpscMailbox& mailbox(std::size_t from, std::size_t to) {
    return *mailboxes_[from * shards_.size() + to];
  }

  void drain_into(std::size_t s);
  void run_window_for(std::size_t worker);
  /// Barrier completion: advances to the next window (or fast-forwards over
  /// an idle gap) and decides termination. Runs exclusively.
  void advance_window() noexcept;
  /// Sets win_end_ for the window beginning at `start`, jumping over idle
  /// simulated time when every shard queue and mailbox is beyond it.
  void compute_window(SimTime start) noexcept;
  void record_error() noexcept;

  std::size_t threads_;
  SimTime lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<detail::SpscMailbox>> mailboxes_;

  // Window state: written only before a run starts or inside the barrier
  // completion step (which synchronizes with every worker), read freely by
  // workers during a window.
  SimTime win_end_ = 0;
  SimTime target_ = 0;
  SimTime resume_at_ = 0;  // where the next run's first window begins
  std::uint64_t epoch_ = 0;
  bool done_ = false;
  bool in_run_ = false;

  std::mutex error_mutex_;
  std::exception_ptr error_;
  std::atomic<bool> has_error_{false};
};

}  // namespace phoenix::sim
