#include "sim/parallel_engine.h"

#include <barrier>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace phoenix::sim {

namespace detail {

SpscMailbox::~SpscMailbox() {
  // Quiescent teardown: free the dummy plus any undrained entries.
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next.load(std::memory_order_relaxed);
    delete n;
    n = next;
  }
}

void SpscMailbox::push(Entry e) {
  Node* n = new Node;
  n->e = std::move(e);
  // Publish via the predecessor's next pointer; tail_ is producer-private.
  tail_->next.store(n, std::memory_order_release);
  tail_ = n;
}

SimTime SpscMailbox::min_time() const noexcept {
  // Entries are FIFO by *post* order, not delivery time, so the idle-gap
  // computation must scan them all. Backlog is bounded by one window's
  // cross-shard production (older entries drain every window).
  SimTime m = kNever;
  for (Node* n = head_->next.load(std::memory_order_acquire); n != nullptr;
       n = n->next.load(std::memory_order_acquire)) {
    if (n->e.at < m) m = n->e.at;
  }
  return m;
}

}  // namespace detail

ParallelEngine::ParallelEngine(const Options& opts)
    : threads_(opts.threads), lookahead_(opts.lookahead) {
  if (opts.shards == 0) {
    throw std::invalid_argument("ParallelEngine: shards must be >= 1");
  }
  if (opts.lookahead == 0) {
    throw std::invalid_argument(
        "ParallelEngine: zero lookahead — conservative parallel simulation "
        "requires a positive minimum cross-shard delivery latency");
  }
  shards_.reserve(opts.shards);
  for (std::size_t s = 0; s < opts.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(derive_stream_seed(opts.seed, s)));
  }
  mailboxes_.resize(opts.shards * opts.shards);
  for (std::size_t f = 0; f < opts.shards; ++f) {
    for (std::size_t t = 0; t < opts.shards; ++t) {
      if (f != t) {
        mailboxes_[f * opts.shards + t] = std::make_unique<detail::SpscMailbox>();
      }
    }
  }
}

void ParallelEngine::post_cross(std::size_t from, std::size_t to, SimTime at,
                                Callback cb, EventId* id_slot) {
  if (from >= shards_.size() || to >= shards_.size()) {
    throw std::out_of_range("ParallelEngine::post_cross: shard index out of range");
  }
  if (from == to) {  // degenerate: no mailbox needed, schedule locally
    const EventId id = shards_[to]->engine.schedule_at(at, std::move(cb));
    if (id_slot != nullptr) *id_slot = id;
    return;
  }
  if (!in_run_) {
    throw std::logic_error(
        "ParallelEngine::post_cross called while quiescent — schedule "
        "directly on the target shard's engine instead");
  }
  if (at <= win_end_) {
    throw std::logic_error(
        "ParallelEngine::post_cross: delivery at t=" + std::to_string(at) +
        " falls inside the current window (ends t=" + std::to_string(win_end_) +
        "): cross-shard latency below the configured lookahead of " +
        std::to_string(lookahead_) + "us");
  }
  ++shards_[from]->cross_posted;
  mailbox(from, to).push({at, epoch_, std::move(cb), id_slot});
}

void ParallelEngine::drain_into(std::size_t s) {
  // Fixed sender order + FIFO within a mailbox: the insertion sequence into
  // the shard engine (and therefore same-time tie-breaking) is identical for
  // every thread count.
  const std::uint64_t before = epoch_;
  Shard& sh = *shards_[s];
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    if (src == s) continue;
    mailbox(src, s).drain_before(before, [&](detail::SpscMailbox::Entry& e) {
      const EventId id = sh.engine.schedule_at(e.at, std::move(e.cb));
      if (e.id_slot != nullptr) *e.id_slot = id;
      ++sh.cross_delivered;
    });
  }
}

void ParallelEngine::record_error() noexcept {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) error_ = std::current_exception();
  has_error_.store(true, std::memory_order_relaxed);
}

void ParallelEngine::advance_window() noexcept {
  ++epoch_;
  if (has_error_.load(std::memory_order_relaxed) || win_end_ >= target_) {
    done_ = true;
    return;
  }
  compute_window(win_end_ + 1);
}

void ParallelEngine::compute_window(SimTime start) noexcept {
  // Idle fast-forward: if nothing anywhere can happen before `start`'s
  // window, jump to the earliest pending thing (shard queues first — the
  // common busy case skips the mailbox scan entirely).
  SimTime earliest = kNever;
  for (const auto& sh : shards_) {
    earliest = std::min(earliest, sh->engine.next_time_lower_bound());
  }
  if (earliest > start) {
    for (const auto& mb : mailboxes_) {
      if (mb) earliest = std::min(earliest, mb->min_time());
    }
  }
  if (earliest > start) start = std::min(earliest, target_);
  const SimTime span = lookahead_ - 1;
  win_end_ = (target_ - start < span) ? target_ : start + span;
}

std::uint64_t ParallelEngine::run_until(SimTime t) {
  const std::uint64_t before = executed();
  if (t < resume_at_) t = resume_at_;
  target_ = t;
  // The first window re-covers the previous run's final instant: events
  // scheduled at exactly `resume_at_` while quiescent still execute, and
  // every event's execution time stays >= its window's start.
  compute_window(resume_at_);
  done_ = false;
  error_ = nullptr;
  has_error_.store(false, std::memory_order_relaxed);
  in_run_ = true;

  if (threads_ == 0) {
    // Sequential reference mode: the identical protocol, one window at a
    // time, shards in index order.
    for (;;) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        try {
          drain_into(s);
          shards_[s]->engine.run_until(win_end_);
        } catch (...) {
          record_error();
        }
      }
      advance_window();
      if (done_) break;
    }
  } else {
    struct Completion {
      ParallelEngine* pe;
      void operator()() const noexcept { pe->advance_window(); }
    };
    std::barrier<Completion> bar(static_cast<std::ptrdiff_t>(threads_),
                                 Completion{this});
    auto worker = [&](std::size_t w) {
      for (;;) {
        for (std::size_t s = w; s < shards_.size(); s += threads_) {
          try {
            drain_into(s);
            shards_[s]->engine.run_until(win_end_);
          } catch (...) {
            record_error();
          }
        }
        bar.arrive_and_wait();
        if (done_) return;
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads_ - 1);
    for (std::size_t w = 1; w < threads_; ++w) pool.emplace_back(worker, w);
    worker(0);  // the calling thread is worker 0
    for (auto& th : pool) th.join();
  }

  in_run_ = false;
  resume_at_ = target_;
  if (error_) std::rethrow_exception(error_);
  return executed() - before;
}

std::uint64_t ParallelEngine::executed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->engine.executed();
  return n;
}

std::uint64_t ParallelEngine::cross_posted() const noexcept {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->cross_posted;
  return n;
}

std::uint64_t ParallelEngine::cross_delivered() const noexcept {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->cross_delivered;
  return n;
}

}  // namespace phoenix::sim
