// Thread-parallel trial execution.
//
// A simulated experiment is single-threaded by design (the engine's
// determinism depends on it), but INDEPENDENT trials — different seeds,
// parameters, or fault scenarios — share nothing and can run on separate OS
// threads. This helper maps a trial function over an index range with a
// bounded worker pool, preserving result order. The benches use it to sweep
// configurations across cores.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace phoenix::sim {

/// Runs `fn(i)` for i in [0, trials) on up to `workers` threads (0 = one
/// per hardware thread) and returns the results in index order. `fn` must
/// be self-contained: each invocation builds its own Engine/Cluster, so
/// trials share no mutable state. Exceptions from `fn` propagate from the
/// first failing index.
///
/// Templated on the callable so each trial is a direct (usually inlined)
/// call — no std::function type erasure and no per-call virtual dispatch
/// in the sweep loop.
template <typename Fn,
          typename Result = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>>
std::vector<Result> run_parallel_trials(std::size_t trials, Fn&& fn,
                                        std::size_t workers = 0) {
  std::vector<Result> results(trials);
  if (trials == 0) return results;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, trials);

  if (workers == 1) {
    for (std::size_t i = 0; i < trials; ++i) results[i] = fn(i);
    return results;
  }

  std::mutex next_mutex;
  std::size_t next = 0;
  std::exception_ptr first_error;
  std::size_t first_error_index = trials;

  auto worker = [&] {
    for (;;) {
      std::size_t i;
      {
        const std::lock_guard<std::mutex> lock(next_mutex);
        if (next >= trials || first_error) return;
        i = next++;
      }
      try {
        results[i] = fn(i);
      } catch (...) {
        // Single lock: first_error_index starts at `trials`, so the index
        // comparison alone decides whether this failure is the new first.
        const std::lock_guard<std::mutex> lock(next_mutex);
        if (i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace phoenix::sim
