// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic choice in the simulation (latency jitter, synthetic load,
// job arrivals) draws from one seedable stream so a whole experiment replays
// bit-identically from its seed.
#pragma once

#include <cstdint>

namespace phoenix::sim {

/// xoshiro256** generator, seeded via SplitMix64. Small, fast, and good
/// enough statistically for workload synthesis; not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability p of true.
  bool chance(double p) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace phoenix::sim
