// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic choice in the simulation (latency jitter, synthetic load,
// job arrivals) draws from one seedable stream so a whole experiment replays
// bit-identically from its seed.
#pragma once

#include <cstdint>

namespace phoenix::sim {

/// xoshiro256** generator, seeded via SplitMix64. Small, fast, and good
/// enough statistically for workload synthesis; not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability p of true.
  bool chance(double p) noexcept;

 private:
  std::uint64_t state_[4];
};

/// Derives an independent child seed from a root seed and a stream id.
///
/// The parallel engine gives every shard its own Rng seeded with
/// derive_stream_seed(root, shard): for a fixed shard count a parallel run
/// is bit-reproducible regardless of how shards are interleaved across
/// worker threads, because no shard ever draws from another shard's stream.
/// The derivation is pure (same inputs -> same seed) and decorrelates
/// adjacent stream ids through two SplitMix64 rounds, so shard 0 and shard 1
/// do not see shifted copies of one sequence.
std::uint64_t derive_stream_seed(std::uint64_t root_seed,
                                 std::uint64_t stream_id) noexcept;

}  // namespace phoenix::sim
