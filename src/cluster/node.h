// Simulated cluster node: role, liveness, resource gauges, process table.
//
// A node hosts daemons (Phoenix kernel services) and managed processes (jobs
// loaded through the parallel process manager). Crashing a node kills
// everything on it; the group service's job is to notice and recover.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ids.h"
#include "sim/time.h"

namespace phoenix::cluster {

using net::NodeId;
using net::PartitionId;

enum class NodeRole : std::uint8_t {
  kServer,   // runs the partition's GSD + kernel service instances
  kBackup,   // takes over server daemons on server-node failure
  kCompute,  // runs WD + detectors + user jobs only
};

std::string_view to_string(NodeRole role) noexcept;

/// Instantaneous resource gauges, as sampled by the physical resource
/// detector. Units follow the paper's monitoring figure: percentages for
/// CPU/memory/swap, MB/s for I/O rates.
struct ResourceUsage {
  double cpu_pct = 0.0;
  double mem_pct = 0.0;
  double swap_pct = 0.0;
  double disk_io_mbps = 0.0;
  double net_io_mbps = 0.0;

  /// Serialized size of one gauge record on the wire.
  static constexpr std::size_t kWireBytes = 5 * sizeof(double);

  /// Exact comparison — the detector's delta reports use it to skip
  /// re-shipping gauges that have not moved since the last sample.
  friend bool operator==(const ResourceUsage&, const ResourceUsage&) = default;
};

using Pid = std::uint64_t;

enum class ProcessState : std::uint8_t { kRunning, kExited, kKilled };

std::string_view to_string(ProcessState state) noexcept;

/// A process entry in a node's process table. Covers both kernel daemons
/// and user jobs loaded via PPM; the application-state detector reports
/// these records to the data bulletin.
struct ProcessInfo {
  Pid pid = 0;
  std::string name;
  std::string owner;          // submitting user or "kernel"
  ProcessState state = ProcessState::kRunning;
  double cpu_share = 0.0;     // fraction of one CPU consumed while running
  sim::SimTime started_at = 0;
  sim::SimTime ended_at = 0;  // valid when state != kRunning
  int exit_code = 0;
};

class Node {
 public:
  Node(NodeId id, PartitionId partition, NodeRole role, unsigned cpus,
       std::string arch = "x86_64", double cpu_speed_ghz = 2.2);

  NodeId id() const noexcept { return id_; }
  PartitionId partition() const noexcept { return partition_; }
  NodeRole role() const noexcept { return role_; }
  unsigned cpus() const noexcept { return cpus_; }

  /// Hardware architecture tag (the heterogeneous-resource layer of the
  /// paper's Figure 1; placement constraints match against this).
  const std::string& arch() const noexcept { return arch_; }
  double cpu_speed_ghz() const noexcept { return cpu_speed_ghz_; }

  bool alive() const noexcept { return alive_; }
  void set_alive(bool alive) noexcept { alive_ = alive; }

  ResourceUsage& resources() noexcept { return resources_; }
  const ResourceUsage& resources() const noexcept { return resources_; }

  // --- process table ------------------------------------------------------

  /// Registers a running process; pid must be unique on this node.
  void add_process(ProcessInfo info);

  /// Marks a process exited/killed. Returns false if the pid is unknown or
  /// already terminated.
  bool terminate_process(Pid pid, ProcessState final_state, sim::SimTime now,
                         int exit_code = 0);

  /// Removes terminated processes from the table (PPM "resource cleanup").
  /// Returns the number of entries removed.
  std::size_t reap();

  const ProcessInfo* find_process(Pid pid) const;
  std::vector<ProcessInfo> processes() const;

  /// Zero-copy view of the process table (the detector walks this every
  /// sample; processes() copies every name/owner string per call).
  const std::unordered_map<Pid, ProcessInfo>& process_table() const noexcept {
    return processes_;
  }
  std::size_t running_process_count() const;

  /// Sum of cpu_share over running processes — background load daemons
  /// impose on this node (the Linpack-overhead experiment reads this).
  double daemon_cpu_load() const;

 private:
  NodeId id_;
  PartitionId partition_;
  NodeRole role_;
  unsigned cpus_;
  std::string arch_;
  double cpu_speed_ghz_;
  bool alive_ = true;
  ResourceUsage resources_;
  std::unordered_map<Pid, ProcessInfo> processes_;
};

}  // namespace phoenix::cluster
