#include "cluster/cluster.h"

#include <cassert>
#include <stdexcept>

#include "cluster/daemon.h"

namespace phoenix::cluster {

Cluster::Cluster(const ClusterSpec& spec)
    : spec_(spec),
      engine_(spec.seed),
      fabric_(engine_, spec.total_nodes(), spec.networks) {
  if (spec.partitions == 0) throw std::invalid_argument("cluster needs >= 1 partition");
  nodes_.reserve(spec.total_nodes());
  std::size_t compute_index = 0;
  for (std::size_t p = 0; p < spec.partitions; ++p) {
    const PartitionId pid{static_cast<std::uint32_t>(p)};
    auto add = [&](NodeRole role) {
      const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
      std::string arch = spec.default_arch;
      if (role == NodeRole::kCompute && !spec.compute_archs.empty()) {
        arch = spec.compute_archs[compute_index++ % spec.compute_archs.size()];
      }
      nodes_.emplace_back(id, pid, role, spec.cpus_per_node, std::move(arch),
                          spec.cpu_speed_ghz);
    };
    add(NodeRole::kServer);
    for (std::size_t b = 0; b < spec.backups_per_partition; ++b) add(NodeRole::kBackup);
    for (std::size_t c = 0; c < spec.computes_per_partition; ++c) add(NodeRole::kCompute);
  }

  // Two-level topology: a partition shares an edge switch; inter-partition
  // traffic crosses the core and pays extra latency.
  fabric_.set_group_size(spec.nodes_per_partition());
  fabric_.set_node_alive_predicate(
      [this](NodeId id) { return node(id).alive(); });
  fabric_.set_delivery_handler(
      [this](const net::Envelope& env) { deliver(env); });

  // Observability plane (off by default — enabling is one setter each).
  // The engine and fabric are pull sources: snapshot-time probes, no
  // per-event cost. Probes and Cluster share a lifetime, so no unregister.
  fabric_.set_span_store(&spans_);
  fabric_.register_metrics(metrics_, "fabric");
  metrics_.register_probe([this](obs::Registry& r) {
    r.gauge("engine.events_executed")
        ->set(static_cast<double>(engine_.executed()));
    r.gauge("engine.sim_now_us")->set(static_cast<double>(engine_.now()));
    r.gauge("cluster.dead_letters")->set(static_cast<double>(dead_letters_));
  });
}

Node& Cluster::node(NodeId id) {
  return nodes_.at(id.value);
}

const Node& Cluster::node(NodeId id) const {
  return nodes_.at(id.value);
}

NodeId Cluster::server_node(PartitionId p) const {
  return NodeId{static_cast<std::uint32_t>(p.value * spec_.nodes_per_partition())};
}

std::vector<NodeId> Cluster::backup_nodes(PartitionId p) const {
  std::vector<NodeId> out;
  const std::size_t base = p.value * spec_.nodes_per_partition();
  for (std::size_t b = 0; b < spec_.backups_per_partition; ++b) {
    out.push_back(NodeId{static_cast<std::uint32_t>(base + 1 + b)});
  }
  return out;
}

std::vector<NodeId> Cluster::compute_nodes(PartitionId p) const {
  std::vector<NodeId> out;
  const std::size_t base =
      p.value * spec_.nodes_per_partition() + 1 + spec_.backups_per_partition;
  for (std::size_t c = 0; c < spec_.computes_per_partition; ++c) {
    out.push_back(NodeId{static_cast<std::uint32_t>(base + c)});
  }
  return out;
}

std::vector<NodeId> Cluster::partition_nodes(PartitionId p) const {
  std::vector<NodeId> out;
  const std::size_t base = p.value * spec_.nodes_per_partition();
  for (std::size_t i = 0; i < spec_.nodes_per_partition(); ++i) {
    out.push_back(NodeId{static_cast<std::uint32_t>(base + i)});
  }
  return out;
}

PartitionId Cluster::partition_of(NodeId id) const {
  return PartitionId{
      static_cast<std::uint32_t>(id.value / spec_.nodes_per_partition())};
}

void Cluster::crash_node(NodeId id) {
  Node& n = node(id);
  if (!n.alive()) return;
  n.set_alive(false);
  fabric_.set_node_links_up(id, false);
  // Every daemon and process on the node dies with it.
  for (Daemon* d : daemons_on(id)) d->kill();
  for (const ProcessInfo& p : n.processes()) {
    n.terminate_process(p.pid, ProcessState::kKilled, engine_.now());
  }
}

void Cluster::restore_node(NodeId id) {
  Node& n = node(id);
  if (n.alive()) return;
  n.set_alive(true);
  fabric_.set_node_links_up(id, true);
}

void Cluster::register_daemon(Daemon& daemon) {
  const auto [it, inserted] = daemons_.emplace(daemon.address(), &daemon);
  if (!inserted) {
    throw std::logic_error("address already bound: node " +
                           std::to_string(daemon.address().node.value) + " port " +
                           std::to_string(daemon.address().port.value));
  }
}

void Cluster::unregister_daemon(const Daemon& daemon) {
  auto it = daemons_.find(daemon.address());
  if (it != daemons_.end() && it->second == &daemon) daemons_.erase(it);
}

Daemon* Cluster::daemon_at(const net::Address& addr) const {
  auto it = daemons_.find(addr);
  return it == daemons_.end() ? nullptr : it->second;
}

std::vector<Daemon*> Cluster::daemons_on(NodeId node) const {
  std::vector<Daemon*> out;
  for (const auto& [addr, d] : daemons_) {
    if (addr.node == node) out.push_back(d);
  }
  return out;
}

void Cluster::deliver(const net::Envelope& env) {
  Daemon* d = daemon_at(env.to);
  if (d == nullptr || !d->alive()) {
    ++dead_letters_;
    return;
  }
  d->deliver(env);
}

}  // namespace phoenix::cluster
