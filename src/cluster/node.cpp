#include "cluster/node.h"

#include <utility>

namespace phoenix::cluster {

std::string_view to_string(NodeRole role) noexcept {
  switch (role) {
    case NodeRole::kServer: return "server";
    case NodeRole::kBackup: return "backup";
    case NodeRole::kCompute: return "compute";
  }
  return "?";
}

std::string_view to_string(ProcessState state) noexcept {
  switch (state) {
    case ProcessState::kRunning: return "running";
    case ProcessState::kExited: return "exited";
    case ProcessState::kKilled: return "killed";
  }
  return "?";
}

Node::Node(NodeId id, PartitionId partition, NodeRole role, unsigned cpus,
           std::string arch, double cpu_speed_ghz)
    : id_(id),
      partition_(partition),
      role_(role),
      cpus_(cpus),
      arch_(std::move(arch)),
      cpu_speed_ghz_(cpu_speed_ghz) {}

void Node::add_process(ProcessInfo info) {
  processes_.insert_or_assign(info.pid, std::move(info));
}

bool Node::terminate_process(Pid pid, ProcessState final_state, sim::SimTime now,
                             int exit_code) {
  auto it = processes_.find(pid);
  if (it == processes_.end() || it->second.state != ProcessState::kRunning) return false;
  it->second.state = final_state;
  it->second.ended_at = now;
  it->second.exit_code = exit_code;
  return true;
}

std::size_t Node::reap() {
  std::size_t removed = 0;
  for (auto it = processes_.begin(); it != processes_.end();) {
    if (it->second.state != ProcessState::kRunning) {
      it = processes_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

const ProcessInfo* Node::find_process(Pid pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

std::vector<ProcessInfo> Node::processes() const {
  std::vector<ProcessInfo> out;
  out.reserve(processes_.size());
  for (const auto& [pid, info] : processes_) out.push_back(info);
  return out;
}

std::size_t Node::running_process_count() const {
  std::size_t n = 0;
  for (const auto& [pid, info] : processes_) {
    if (info.state == ProcessState::kRunning) ++n;
  }
  return n;
}

double Node::daemon_cpu_load() const {
  double load = 0.0;
  for (const auto& [pid, info] : processes_) {
    if (info.state == ProcessState::kRunning) load += info.cpu_share;
  }
  return load;
}

}  // namespace phoenix::cluster
