#include "cluster/shard_map.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "cluster/cluster.h"

namespace phoenix::cluster {

ShardMap::ShardMap(std::vector<std::uint32_t> node_shard)
    : node_shard_(std::move(node_shard)) {
  if (node_shard_.empty()) {
    throw std::invalid_argument("ShardMap: empty node->shard assignment");
  }
  std::uint32_t max_shard = 0;
  for (const std::uint32_t s : node_shard_) max_shard = std::max(max_shard, s);
  shard_count_ = static_cast<std::size_t>(max_shard) + 1;
  std::vector<char> seen(shard_count_, 0);
  for (const std::uint32_t s : node_shard_) seen[s] = 1;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    if (!seen[s]) {
      throw std::invalid_argument("ShardMap: shard " + std::to_string(s) +
                                  " owns no nodes (ids must be dense)");
    }
  }
}

ShardMap ShardMap::partition_blocks(std::size_t partitions,
                                    std::size_t nodes_per_partition,
                                    std::size_t shards) {
  if (partitions == 0 || nodes_per_partition == 0) {
    throw std::invalid_argument("ShardMap: need >= 1 partition and node");
  }
  if (shards == 0) throw std::invalid_argument("ShardMap: need >= 1 shard");
  shards = std::min(shards, partitions);  // no empty shards
  std::vector<std::uint32_t> map(partitions * nodes_per_partition);
  for (std::size_t p = 0; p < partitions; ++p) {
    const std::uint32_t shard = static_cast<std::uint32_t>(p * shards / partitions);
    const std::size_t base = p * nodes_per_partition;
    for (std::size_t i = 0; i < nodes_per_partition; ++i) map[base + i] = shard;
  }
  return ShardMap(std::move(map));
}

ShardMap ShardMap::partition_blocks(const ClusterSpec& spec, std::size_t shards) {
  return partition_blocks(spec.partitions, spec.nodes_per_partition(), shards);
}

std::vector<net::NodeId> ShardMap::nodes_in(std::uint32_t shard) const {
  std::vector<net::NodeId> out;
  for (std::size_t n = 0; n < node_shard_.size(); ++n) {
    if (node_shard_[n] == shard) {
      out.push_back(net::NodeId{static_cast<std::uint32_t>(n)});
    }
  }
  return out;
}

std::size_t ShardMap::max_shard_load() const {
  std::vector<std::size_t> loads(shard_count_, 0);
  for (const std::uint32_t s : node_shard_) ++loads[s];
  return *std::max_element(loads.begin(), loads.end());
}

}  // namespace phoenix::cluster
