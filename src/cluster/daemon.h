// Daemon: the actor base class for every Phoenix service process.
//
// A daemon is bound to an (node, port) address, owns a pid in its node's
// process table while running, and reacts to delivered envelopes and timers.
// Killing a daemon (fault injection or node crash) silences it without
// notice — exactly what the group service must detect and repair.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "cluster/cluster.h"
#include "net/message.h"

namespace phoenix::cluster {

/// Well-known ports for kernel daemons (one service instance per node, so a
/// static port map suffices — mirrors /etc/services in a real deployment).
namespace ports {
inline constexpr net::PortId kWatchDaemon{1};
inline constexpr net::PortId kGroupService{2};
inline constexpr net::PortId kEventService{3};
inline constexpr net::PortId kCheckpointService{4};
inline constexpr net::PortId kDataBulletin{5};
inline constexpr net::PortId kProcessManager{6};
inline constexpr net::PortId kConfiguration{7};
inline constexpr net::PortId kSecurity{8};
inline constexpr net::PortId kDetector{9};
inline constexpr net::PortId kPbsServer{10};
inline constexpr net::PortId kPbsMom{11};
inline constexpr net::PortId kPwsScheduler{12};
inline constexpr net::PortId kGridView{13};
inline constexpr net::PortId kClient{14};
inline constexpr net::PortId kPwsGateway{15};
}  // namespace ports

class Daemon {
 public:
  /// Binds the daemon to (node, port) and registers it with the cluster.
  /// The daemon starts in the stopped state; call start().
  Daemon(Cluster& cluster, std::string name, NodeId node, net::PortId port,
         double cpu_share = 0.0);
  virtual ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  const std::string& name() const noexcept { return name_; }
  net::Address address() const noexcept { return {node_, port_}; }
  NodeId node_id() const noexcept { return node_; }
  Pid pid() const noexcept { return pid_; }

  /// Running, and hosted on a live node.
  bool alive() const;
  bool running() const noexcept { return running_; }

  /// Starts (or restarts) the daemon: allocates a pid, enters the node's
  /// process table, and invokes on_start().
  void start();

  /// Graceful stop: leaves the process table cleanly, invokes on_stop().
  void stop();

  /// Abrupt process death (fault injection / node crash). No on_stop();
  /// the process-table entry is marked killed.
  void kill();

  /// Releases this daemon's address binding without destroying the object.
  /// Used when a service instance is superseded (migration): the old object
  /// stays alive in a graveyard so its pending timers fire harmlessly, but
  /// its address becomes free for a successor. Idempotent.
  void unbind();

  /// Envelope delivery entry point; ignored unless alive().
  void deliver(const net::Envelope& env);

 protected:
  Cluster& cluster() noexcept { return cluster_; }
  const Cluster& cluster() const noexcept { return cluster_; }
  sim::Engine& engine() noexcept { return cluster_.engine(); }
  sim::SimTime now() const noexcept { return cluster_.now(); }

  /// Records a structured trace entry under this daemon's name (no-op
  /// unless the cluster's tracer is enabled).
  void trace(sim::TraceLevel level, std::string message) {
    cluster_.tracer().record(cluster_.now(), level, name_, std::move(message));
  }

  /// Sends over a specific network; returns false if the path is down.
  bool send(const net::Address& to, net::NetworkId network,
            std::shared_ptr<const net::Message> msg);

  /// Sends over the first available network; invalid NetworkId if none.
  net::NetworkId send_any(const net::Address& to,
                          std::shared_ptr<const net::Message> msg);

  /// Sends the same message over EVERY network whose path is up (the watch
  /// daemon's heartbeat pattern). Returns the number of copies sent.
  std::size_t send_all_networks(const net::Address& to,
                                std::shared_ptr<const net::Message> msg);

  /// Hooks for subclasses.
  virtual void on_start() {}
  virtual void on_stop() {}
  virtual void handle(const net::Envelope& env) = 0;

 private:
  Cluster& cluster_;
  std::string name_;
  NodeId node_;
  net::PortId port_;
  double cpu_share_;
  bool running_ = false;
  Pid pid_ = 0;
};

}  // namespace phoenix::cluster
