// Node -> shard placement for the parallel simulation engine.
//
// The cluster's unit of locality is the partition: a server, its backups,
// and its computes exchange the latency-critical traffic (heartbeats,
// diagnosis probes, intra-partition RPC), while inter-partition traffic
// crosses the core switches and pays LatencyModel::cross_group_extra. A
// ShardMap therefore never splits a partition across shards — every
// partition's nodes land on one shard, so the chatty traffic stays on the
// sending shard's private event queue and only the slower inter-partition
// traffic crosses a mailbox.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/ids.h"

namespace phoenix::cluster {

struct ClusterSpec;

class ShardMap {
 public:
  /// From an explicit node->shard assignment; shard ids must be dense
  /// (every shard in [0, max+1) owns at least one node).
  explicit ShardMap(std::vector<std::uint32_t> node_shard);

  /// Partition-aligned placement: `partitions` partitions of
  /// `nodes_per_partition` consecutive node ids each, laid out as
  /// contiguous balanced blocks of whole partitions per shard (partition p
  /// goes to shard p * shards / partitions). Shards are capped at the
  /// partition count so no shard is empty.
  static ShardMap partition_blocks(std::size_t partitions,
                                   std::size_t nodes_per_partition,
                                   std::size_t shards);

  /// Convenience overload reading the partition layout from a ClusterSpec.
  static ShardMap partition_blocks(const ClusterSpec& spec, std::size_t shards);

  std::size_t shard_count() const noexcept { return shard_count_; }
  std::size_t node_count() const noexcept { return node_shard_.size(); }

  std::uint32_t shard_of(net::NodeId node) const {
    return node_shard_.at(node.value);
  }

  /// The raw mapping, in the shape net::ShardedFabric consumes.
  const std::vector<std::uint32_t>& node_shards() const noexcept {
    return node_shard_;
  }

  std::vector<net::NodeId> nodes_in(std::uint32_t shard) const;

  /// Node count on the most loaded shard (balance diagnostic: near-linear
  /// scaling needs max_shard_load ~= node_count / shard_count).
  std::size_t max_shard_load() const;

 private:
  std::vector<std::uint32_t> node_shard_;
  std::size_t shard_count_ = 0;
};

}  // namespace phoenix::cluster
