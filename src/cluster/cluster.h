// The simulated cluster: engine + fabric + nodes + daemon registry.
//
// Layout follows the paper's management framework (§4.3): the cluster is a
// sequence of partitions, each with one server node, one or more backup
// nodes, and compute nodes. Node ids are dense and laid out partition by
// partition as [server, backups..., computes...].
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/node.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "obs/span_store.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace phoenix::cluster {

class Daemon;

struct ClusterSpec {
  std::size_t partitions = 8;
  std::size_t computes_per_partition = 16;
  std::size_t backups_per_partition = 1;
  std::size_t networks = 3;  // the Dawning 4000A gives every node 3 networks
  unsigned cpus_per_node = 4;
  std::uint64_t seed = 42;

  /// Heterogeneous hardware: architectures assigned to compute nodes
  /// round-robin (empty = every node is `default_arch`). Server and backup
  /// nodes always use `default_arch`.
  std::string default_arch = "x86_64";
  std::vector<std::string> compute_archs;
  double cpu_speed_ghz = 2.2;

  std::size_t nodes_per_partition() const noexcept {
    return 1 + backups_per_partition + computes_per_partition;
  }
  std::size_t total_nodes() const noexcept {
    return partitions * nodes_per_partition();
  }
};

class Cluster {
 public:
  explicit Cluster(const ClusterSpec& spec);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterSpec& spec() const noexcept { return spec_; }
  sim::Engine& engine() noexcept { return engine_; }
  net::Fabric& fabric() noexcept { return fabric_; }
  sim::Tracer& tracer() noexcept { return tracer_; }
  const sim::Tracer& tracer() const noexcept { return tracer_; }

  /// Metrics registry and span store for the observability plane. Both are
  /// off by default (paper runs stay byte-identical); the span store is
  /// pre-wired into the fabric and the engine/fabric probes are
  /// pre-registered, so `metrics().set_enabled(true)` /
  /// `span_store().set_enabled(true)` is all a diagnostic run needs.
  obs::Registry& metrics() noexcept { return metrics_; }
  const obs::Registry& metrics() const noexcept { return metrics_; }
  obs::SpanStore& span_store() noexcept { return spans_; }
  const obs::SpanStore& span_store() const noexcept { return spans_; }

  sim::SimTime now() const noexcept { return engine_.now(); }

  // --- nodes ---------------------------------------------------------------

  std::size_t node_count() const noexcept { return nodes_.size(); }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::vector<Node>& nodes() noexcept { return nodes_; }
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  NodeId server_node(PartitionId p) const;
  std::vector<NodeId> backup_nodes(PartitionId p) const;
  std::vector<NodeId> compute_nodes(PartitionId p) const;
  std::vector<NodeId> partition_nodes(PartitionId p) const;
  PartitionId partition_of(NodeId id) const;

  /// Powers a node off: all daemons and processes on it die immediately,
  /// all its network interfaces go down.
  void crash_node(NodeId id);

  /// Powers a crashed node back on with links up. Daemons do NOT restart
  /// automatically — recovery is the group service's job.
  void restore_node(NodeId id);

  // --- daemon registry -------------------------------------------------------

  /// Registers a daemon at its address. At most one daemon per address.
  void register_daemon(Daemon& daemon);
  void unregister_daemon(const Daemon& daemon);

  /// The daemon bound to `addr`, or nullptr.
  Daemon* daemon_at(const net::Address& addr) const;

  /// All registered daemons hosted on `node`.
  std::vector<Daemon*> daemons_on(NodeId node) const;

  /// Messages that arrived for a missing or dead daemon.
  std::uint64_t dead_letters() const noexcept { return dead_letters_; }

  /// Fresh cluster-unique pid.
  Pid next_pid() noexcept { return next_pid_++; }

 private:
  void deliver(const net::Envelope& env);

  ClusterSpec spec_;
  sim::Engine engine_;
  net::Fabric fabric_;
  sim::Tracer tracer_;
  obs::Registry metrics_;
  obs::SpanStore spans_;
  std::vector<Node> nodes_;
  std::unordered_map<net::Address, Daemon*> daemons_;
  std::uint64_t dead_letters_ = 0;
  Pid next_pid_ = 1;
};

}  // namespace phoenix::cluster
