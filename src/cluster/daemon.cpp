#include "cluster/daemon.h"

namespace phoenix::cluster {

Daemon::Daemon(Cluster& cluster, std::string name, NodeId node, net::PortId port,
               double cpu_share)
    : cluster_(cluster),
      name_(std::move(name)),
      node_(node),
      port_(port),
      cpu_share_(cpu_share) {
  cluster_.register_daemon(*this);
}

Daemon::~Daemon() {
  if (running_) {
    Node& n = cluster_.node(node_);
    n.terminate_process(pid_, ProcessState::kExited, cluster_.now());
  }
  cluster_.unregister_daemon(*this);
}

bool Daemon::alive() const {
  return running_ && cluster_.node(node_).alive();
}

void Daemon::start() {
  if (running_) return;
  running_ = true;
  pid_ = cluster_.next_pid();
  cluster_.node(node_).add_process(ProcessInfo{
      .pid = pid_,
      .name = name_,
      .owner = "kernel",
      .state = ProcessState::kRunning,
      .cpu_share = cpu_share_,
      .started_at = cluster_.now(),
  });
  on_start();
}

void Daemon::stop() {
  if (!running_) return;
  on_stop();
  running_ = false;
  cluster_.node(node_).terminate_process(pid_, ProcessState::kExited, cluster_.now());
}

void Daemon::kill() {
  if (!running_) return;
  running_ = false;
  cluster_.node(node_).terminate_process(pid_, ProcessState::kKilled, cluster_.now());
}

void Daemon::unbind() {
  cluster_.unregister_daemon(*this);  // no-op if another daemon holds the address
}

void Daemon::deliver(const net::Envelope& env) {
  if (!alive()) return;
  handle(env);
}

namespace {
bool sendable(const Cluster& cluster, const net::Address& to) {
  return to.valid() && to.node.value < cluster.node_count();
}
}  // namespace

bool Daemon::send(const net::Address& to, net::NetworkId network,
                  std::shared_ptr<const net::Message> msg) {
  if (!alive() || !sendable(cluster_, to)) return false;
  return cluster_.fabric().send(address(), to, network, std::move(msg));
}

net::NetworkId Daemon::send_any(const net::Address& to,
                                std::shared_ptr<const net::Message> msg) {
  if (!alive() || !sendable(cluster_, to)) return net::NetworkId{};
  return cluster_.fabric().send_any(address(), to, std::move(msg));
}

std::size_t Daemon::send_all_networks(const net::Address& to,
                                      std::shared_ptr<const net::Message> msg) {
  if (!alive() || !sendable(cluster_, to)) return 0;
  std::size_t sent = 0;
  auto& fabric = cluster_.fabric();
  for (std::size_t n = 0; n < fabric.network_count(); ++n) {
    const net::NetworkId net{static_cast<std::uint8_t>(n)};
    if (fabric.send(address(), to, net, msg)) ++sent;
  }
  return sent;
}

}  // namespace phoenix::cluster
