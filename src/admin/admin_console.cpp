#include "admin/admin_console.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "kernel/event/event_service.h"
#include "kernel/ppm/process_manager.h"

namespace phoenix::admin {

namespace {
constexpr net::PortId kAdminPort{20};
}  // namespace

AdminConsole::AdminConsole(cluster::Cluster& cluster, net::NodeId node,
                           kernel::PhoenixKernel& kernel)
    : Daemon(cluster, "admin", node, kAdminPort), kernel_(kernel) {
  start();
}

std::vector<NodeStatus> AdminConsole::node_statuses() const {
  std::vector<NodeStatus> out;
  for (const auto& node : kernel_.cluster().nodes()) {
    NodeStatus status;
    status.node = node.id();
    status.partition = node.partition();
    status.role = node.role();
    status.alive = node.alive();
    status.drained = is_drained(node.id());
    status.running_processes = node.running_process_count();
    status.cpu_pct = node.resources().cpu_pct;
    status.mem_pct = node.resources().mem_pct;
    out.push_back(status);
  }
  return out;
}

std::vector<ServicePlacement> AdminConsole::service_placements() const {
  std::vector<ServicePlacement> out;
  using kernel::ServiceKind;
  for (ServiceKind kind :
       {ServiceKind::kGroupService, ServiceKind::kEventService,
        ServiceKind::kCheckpointService, ServiceKind::kDataBulletin}) {
    for (std::size_t p = 0; p < kernel_.partition_count(); ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      ServicePlacement placement;
      placement.kind = kind;
      placement.partition = pid;
      placement.node = kernel_.service_node(kind, pid);
      const cluster::Daemon* d =
          kernel_.cluster().daemon_at(kernel_.service_address(kind, pid));
      placement.alive = d != nullptr && d->alive();
      out.push_back(placement);
    }
  }
  return out;
}

FaultAnalysis AdminConsole::analyze_faults() const {
  FaultAnalysis analysis;
  const auto& records = kernel_.fault_log().records();
  analysis.total_faults = records.size();

  // Accumulate per-component means and the union of outage intervals. An
  // outage starts at the component's last confirmed sign of life (the GSD
  // records it from the heartbeat tables), not at detection.
  std::vector<std::pair<sim::SimTime, sim::SimTime>> outages;
  for (const auto& r : records) {
    auto& c = analysis.by_component[r.component];
    ++c.faults;
    c.mean_diagnose_s += sim::to_seconds(r.diagnosed_at - r.detected_at);
    const sim::SimTime began = r.last_seen_at > 0 ? r.last_seen_at : r.detected_at;
    if (r.recovered) {
      ++c.recovered;
      c.mean_recover_s += sim::to_seconds(r.recovered_at - r.diagnosed_at);
      c.mean_ttr_s += sim::to_seconds(r.recovered_at - began);
      outages.emplace_back(began, r.recovered_at);
    } else {
      ++analysis.unrecovered;
      outages.emplace_back(began, kernel_.cluster().now());
    }
  }
  for (auto& [component, c] : analysis.by_component) {
    const double n = static_cast<double>(c.faults);
    c.mean_diagnose_s /= n;
    if (c.recovered > 0) {
      c.mean_recover_s /= static_cast<double>(c.recovered);
      c.mean_ttr_s /= static_cast<double>(c.recovered);
    }
  }

  // Availability: 1 - (union of outage time) / elapsed.
  const double elapsed = sim::to_seconds(kernel_.cluster().now());
  if (elapsed > 0 && !outages.empty()) {
    std::sort(outages.begin(), outages.end());
    double covered = 0;
    sim::SimTime cur_start = outages[0].first, cur_end = outages[0].second;
    for (std::size_t i = 1; i < outages.size(); ++i) {
      if (outages[i].first <= cur_end) {
        cur_end = std::max(cur_end, outages[i].second);
      } else {
        covered += sim::to_seconds(cur_end - cur_start);
        cur_start = outages[i].first;
        cur_end = outages[i].second;
      }
    }
    covered += sim::to_seconds(cur_end - cur_start);
    analysis.availability = std::max(0.0, 1.0 - covered / elapsed);
  }
  return analysis;
}

std::string AdminConsole::render_status() const {
  std::ostringstream out;
  char line[192];

  out << "=== Fire Phoenix administration console ===\n";
  std::size_t alive = 0, drained = 0;
  const auto statuses = node_statuses();
  for (const auto& s : statuses) {
    if (s.alive) ++alive;
    if (s.drained) ++drained;
  }
  std::snprintf(line, sizeof(line), "nodes: %zu total, %zu alive, %zu drained\n",
                statuses.size(), alive, drained);
  out << line;

  out << "service placement:\n";
  for (const auto& p : service_placements()) {
    std::snprintf(line, sizeof(line), "  %-6s partition %-3u -> node %-4u %s\n",
                  std::string(kernel::to_string(p.kind)).c_str(),
                  p.partition.value, p.node.value, p.alive ? "up" : "DOWN");
    out << line;
  }

  const FaultAnalysis analysis = analyze_faults();
  std::snprintf(line, sizeof(line),
                "faults: %zu handled (%zu unrecovered), availability %.4f\n",
                analysis.total_faults, analysis.unrecovered,
                analysis.availability);
  out << line;
  for (const auto& [component, c] : analysis.by_component) {
    std::snprintf(line, sizeof(line),
                  "  %-4s x%-3zu diagnose %.3fs recover %.3fs (mean TTR %.3fs)\n",
                  component.c_str(), c.faults, c.mean_diagnose_s, c.mean_recover_s,
                  c.mean_ttr_s);
    out << line;
  }
  return out.str();
}

std::string AdminConsole::metrics_report() const {
  return kernel_.cluster().metrics().snapshot_json();
}

CommandResult AdminConsole::run_command(const std::string& command,
                                        std::vector<net::NodeId> nodes,
                                        std::size_t fanout, sim::SimTime timeout) {
  CommandResult result;
  if (nodes.empty()) return result;

  auto msg = std::make_shared<kernel::ParallelCmdMsg>();
  msg->command = command;
  msg->nodes = std::move(nodes);
  msg->fanout = fanout;
  msg->reply_to = address();
  msg->request_id = next_request_id_++;
  pending_cmd_ = msg->request_id;
  cmd_done_ = false;

  const net::Address root{msg->nodes.front(),
                          kernel::port_of(kernel::ServiceKind::kProcessManager)};
  const sim::SimTime started = now();
  if (!send_any(root, std::move(msg)).valid()) {
    result.timed_out = true;
    return result;
  }
  const sim::SimTime deadline = now() + timeout;
  auto& engine = kernel_.cluster().engine();
  while (!cmd_done_ && now() < deadline) {
    if (!engine.step()) break;
  }
  if (!cmd_done_) {
    result.timed_out = true;
    return result;
  }
  result = last_result_;
  result.elapsed = now() - started;
  return result;
}

bool AdminConsole::drain_node(net::NodeId node) {
  if (node.value >= kernel_.cluster().node_count()) return false;
  if (!kernel_.cluster().node(node).alive()) return false;

  kernel_.config().set("admin/node/" + std::to_string(node.value) + "/drained", "1");
  // Kill every non-kernel process on the node through its PPM.
  for (const auto& proc : kernel_.cluster().node(node).processes()) {
    if (proc.owner == "kernel" || proc.state != cluster::ProcessState::kRunning) {
      continue;
    }
    auto kill = std::make_shared<kernel::KillMsg>();
    kill->pid = proc.pid;
    send_any({node, kernel::port_of(kernel::ServiceKind::kProcessManager)},
             std::move(kill));
  }
  publish_admin_event("admin.node_drained", node);
  return true;
}

bool AdminConsole::undrain_node(net::NodeId node) {
  if (!is_drained(node)) return false;
  kernel_.config().erase("admin/node/" + std::to_string(node.value) + "/drained");
  publish_admin_event("admin.node_undrained", node);
  return true;
}

bool AdminConsole::is_drained(net::NodeId node) const {
  return kernel_.config()
      .get("admin/node/" + std::to_string(node.value) + "/drained")
      .has_value();
}

bool AdminConsole::handover_partition(net::PartitionId partition,
                                      net::NodeId target) {
  if (partition.value >= kernel_.partition_count()) return false;
  if (target.value >= kernel_.cluster().node_count()) return false;
  if (!kernel_.cluster().node(target).alive()) return false;
  if (kernel_.cluster().partition_of(target) != partition) return false;
  if (kernel_.service_node(kernel::ServiceKind::kGroupService, partition) == target) {
    return false;  // already there
  }

  // Reuse the migration machinery, minus the failure detection: ask the
  // target's PPM to instantiate a fresh GSD there. The new GSD recovers its
  // view from the (still warm) checkpoint state, rejoins the ring with a
  // newer incarnation — displacing the old member entry — and re-creates
  // the partition's CS/ES/DB beside itself, each recovering its state
  // through the checkpoint federation.
  auto start = std::make_shared<kernel::StartServiceMsg>();
  start->kind = kernel::ServiceKind::kGroupService;
  start->partition = partition;
  start->create = true;
  start->request_id = next_request_id_++;
  send_any({target, kernel::port_of(kernel::ServiceKind::kProcessManager)},
           std::move(start));
  publish_admin_event("admin.handover", target);
  return true;
}

void AdminConsole::publish_admin_event(std::string type, net::NodeId node) {
  auto pub = std::make_shared<kernel::EsPublishMsg>();
  pub->event.type = std::move(type);
  pub->event.subject_node = node;
  const auto partition = cluster().partition_of(node_id());
  send_any(kernel_.service_address(kernel::ServiceKind::kEventService, partition),
           std::move(pub));
}

void AdminConsole::handle(const net::Envelope& env) {
  if (const auto* reply =
          net::message_cast<kernel::ParallelCmdReplyMsg>(*env.message)) {
    if (reply->request_id != pending_cmd_) return;
    last_result_.succeeded = reply->succeeded;
    last_result_.failed = reply->failed;
    cmd_done_ = true;
    return;
  }
}

}  // namespace phoenix::admin
