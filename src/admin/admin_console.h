// System management tools (paper §3): "System management and monitoring
// tools assist system administrators to perform daily system management,
// real-time system monitoring, performance analysis and fault analysis."
//
// The AdminConsole is a user-environment daemon built on documented kernel
// interfaces only:
//  - cluster status and service-placement tables (configuration + group
//    service state),
//  - fault analysis over the kernel's fault journal: per-component counts,
//    mean detect/diagnose/recover times (MTTR), availability estimates,
//  - parallel administrative commands across node sets (PPM tree fan-out),
//  - node drain/undrain for maintenance (kills user processes, records the
//    administrative state in the configuration service, publishes events).
//
// Blocking helpers (run_command, drain_node) drive the simulation until
// their replies arrive — the console is an interactive tool, like the
// construction tool.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/kernel.h"

namespace phoenix::admin {

/// One node's administrative view.
struct NodeStatus {
  net::NodeId node;
  net::PartitionId partition;
  cluster::NodeRole role = cluster::NodeRole::kCompute;
  bool alive = false;
  bool drained = false;
  std::size_t running_processes = 0;
  double cpu_pct = 0;
  double mem_pct = 0;
};

/// Where each per-partition kernel service currently lives.
struct ServicePlacement {
  kernel::ServiceKind kind;
  net::PartitionId partition;
  net::NodeId node;
  bool alive = false;
};

/// Aggregated fault analysis over the kernel's journal.
struct FaultAnalysis {
  struct ComponentStats {
    std::size_t faults = 0;
    std::size_t recovered = 0;
    double mean_diagnose_s = 0;
    double mean_recover_s = 0;
    double mean_ttr_s = 0;  // detection -> recovered
  };
  std::map<std::string, ComponentStats> by_component;
  std::size_t total_faults = 0;
  std::size_t unrecovered = 0;
  /// Fraction of elapsed time with no unrecovered fault outstanding
  /// (a coarse whole-system availability estimate).
  double availability = 1.0;
};

struct CommandResult {
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  sim::SimTime elapsed = 0;
  bool timed_out = false;
};

class AdminConsole final : public cluster::Daemon {
 public:
  AdminConsole(cluster::Cluster& cluster, net::NodeId node,
               kernel::PhoenixKernel& kernel);

  // --- monitoring ------------------------------------------------------------

  std::vector<NodeStatus> node_statuses() const;
  std::vector<ServicePlacement> service_placements() const;
  FaultAnalysis analyze_faults() const;

  /// ASCII status screen (nodes, placements, fault summary).
  std::string render_status() const;

  /// JSON snapshot of the cluster metrics registry (counters, gauges,
  /// histogram percentiles). Runs the registered probes, so fabric/engine
  /// gauges reflect the state at the moment of the query. "{}"-shaped but
  /// empty when the registry is disabled.
  std::string metrics_report() const;

  // --- administration ----------------------------------------------------------

  /// Runs a command on every listed node via PPM tree fan-out, driving the
  /// simulation until the aggregate reply arrives (or timeout).
  CommandResult run_command(const std::string& command,
                            std::vector<net::NodeId> nodes,
                            std::size_t fanout = 8,
                            sim::SimTime timeout = 30 * sim::kSecond);

  /// Drains a node for maintenance: kills its non-kernel processes, flags
  /// it in the configuration service, and publishes an admin event.
  /// Returns false for unknown/dead nodes.
  bool drain_node(net::NodeId node);
  bool undrain_node(net::NodeId node);
  bool is_drained(net::NodeId node) const;

  /// Planned handover: relocates a partition's server services (GSD, then
  /// its CS/ES/DB) to `target` WITHOUT waiting for failure detection —
  /// the maintenance companion of the failure-driven migration path, and
  /// the step before draining or shutting down a server node. The target
  /// must be a live node of the same partition.
  bool handover_partition(net::PartitionId partition, net::NodeId target);

 private:
  void handle(const net::Envelope& env) override;
  void publish_admin_event(std::string type, net::NodeId node);

  kernel::PhoenixKernel& kernel_;
  std::uint64_t next_request_id_ = 1;

  // In-flight blocking command.
  std::uint64_t pending_cmd_ = 0;
  CommandResult last_result_;
  bool cmd_done_ = false;
};

}  // namespace phoenix::admin
