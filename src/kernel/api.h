// KernelApi — the uniform client interface to the Phoenix kernel.
//
// The paper (§4.2): "Phoenix kernel provides documented interfaces and
// parallel command calls for user environments in different forms with
// uniformed semantics (Such as Socket, RPC and ORB etc.)". This class is
// that uniform form: an asynchronous, callback-based RPC facade over the
// kernel's message protocols, with request correlation, per-call timeouts,
// and location transparency (calls go to the caller's partition instance of
// each federated service; the federation makes that a full access point).
//
// Every user environment in this repository could be written against this
// class alone; GridView-style monitors, submission portals, and management
// tools need nothing else from the kernel.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/bulletin/data_bulletin.h"
#include "kernel/checkpoint/checkpoint_service.h"
#include "kernel/config/configuration_service.h"
#include "kernel/event/event_service.h"
#include "kernel/kernel.h"
#include "kernel/ppm/process_manager.h"
#include "kernel/security/security_service.h"

namespace phoenix::kernel {

class KernelApi final : public cluster::Daemon {
 public:
  /// Binds the API endpoint on `node` with a caller-chosen port (several
  /// clients may coexist on one node with different ports).
  KernelApi(cluster::Cluster& cluster, net::NodeId node, PhoenixKernel& kernel,
            net::PortId port = net::PortId{30});

  /// Default per-call deadline; expired calls complete with nullopt/false.
  void set_call_timeout(sim::SimTime t) noexcept { call_timeout_ = t; }

  // --- configuration ----------------------------------------------------------

  using GetCallback = std::function<void(std::optional<std::string>)>;
  void config_get(const std::string& key, GetCallback done);

  using SetCallback = std::function<void(bool ok, std::uint64_t version)>;
  void config_set(const std::string& key, const std::string& value,
                  SetCallback done);

  // --- security ----------------------------------------------------------------

  using AuthCallback = std::function<void(std::optional<Token>)>;
  void authenticate(const std::string& user, const std::string& secret,
                    AuthCallback done);

  using AuthzCallback = std::function<void(bool allowed)>;
  void authorize(const Token& token, const std::string& action,
                 const std::string& resource, AuthzCallback done);

  // --- checkpoint ----------------------------------------------------------------

  using SaveCallback = std::function<void(bool ok, std::uint64_t version)>;
  void checkpoint_save(const std::string& service, const std::string& key,
                       std::string data, SaveCallback done);

  using LoadCallback = std::function<void(std::optional<std::string>)>;
  void checkpoint_load(const std::string& service, const std::string& key,
                       LoadCallback done);

  // --- data bulletin ----------------------------------------------------------------

  using QueryCallback = std::function<void(std::vector<NodeRecord>,
                                           std::vector<AppRecord>)>;
  void query(BulletinTable table, bool cluster_scope, BulletinFilter filter,
             QueryCallback done);

  // --- events ----------------------------------------------------------------

  using EventCallback = std::function<void(const Event&)>;
  /// Subscribes this endpoint; matching events invoke `on_event` forever.
  void subscribe(std::vector<std::string> types, EventCallback on_event);
  void publish(Event event);

  // --- parallel process management -------------------------------------------------

  using SpawnCallback = std::function<void(bool ok, cluster::Pid pid)>;
  /// `on_exit` (optional) fires when the process ends.
  void spawn(net::NodeId node, ProcessSpec spec, SpawnCallback done,
             std::function<void(cluster::Pid)> on_exit = {});

  using CommandCallback =
      std::function<void(std::uint64_t succeeded, std::uint64_t failed)>;
  void parallel_command(const std::string& command, std::vector<net::NodeId> nodes,
                        std::size_t fanout, CommandCallback done);

  /// Calls still awaiting replies (tests).
  std::size_t pending_calls() const noexcept { return pending_.size(); }
  std::uint64_t timed_out_calls() const noexcept { return timeouts_; }

 private:
  void handle(const net::Envelope& env) override;

  /// One in-flight call: a type-erased completion plus a timeout handler.
  struct Pending {
    std::function<void(const net::Message&)> complete;
    std::function<void()> expire;
  };

  std::uint64_t issue(std::function<void(const net::Message&)> complete,
                      std::function<void()> expire);
  void finish(std::uint64_t id, const net::Message& msg);

  PhoenixKernel& kernel_;
  net::PartitionId home_partition_;
  sim::SimTime call_timeout_ = 10 * sim::kSecond;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<cluster::Pid, std::function<void(cluster::Pid)>> exit_watch_;
  EventCallback on_event_;
  std::uint64_t next_id_ = 1;
  std::uint64_t timeouts_ = 0;
};

}  // namespace phoenix::kernel
