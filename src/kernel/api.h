// KernelApi — the uniform client interface to the Phoenix kernel.
//
// The paper (§4.2): "Phoenix kernel provides documented interfaces and
// parallel command calls for user environments in different forms with
// uniformed semantics (Such as Socket, RPC and ORB etc.)". This class is
// that uniform form: an asynchronous RPC facade over the kernel's message
// protocols, built on the resilient substrate of net/rpc.h (DESIGN.md §9).
//
// Every call completes exactly once with a net::Result<T>: a typed payload
// plus a Status the caller can branch on. Per-call CallOptions select the
// deadline and retry budget; between attempts the client backs off
// exponentially (RetryPolicy) and re-resolves the target through the
// service directory, so a call issued against an instance that dies
// mid-flight re-routes to the recovered or federated instance instead of
// timing out. Mutating services keep a ReplayCache, which makes the
// retries safe: a retransmitted config_set / spawn / checkpoint_save is
// answered from the cache, never applied twice.
//
// Every user environment in this repository could be written against this
// class alone; GridView-style monitors, submission portals, and management
// tools need nothing else from the kernel.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/bulletin/data_bulletin.h"
#include "obs/metrics.h"
#include "obs/span_store.h"
#include "obs/trace_context.h"
#include "kernel/checkpoint/checkpoint_service.h"
#include "kernel/config/configuration_service.h"
#include "kernel/event/event_service.h"
#include "kernel/kernel.h"
#include "kernel/ppm/process_manager.h"
#include "kernel/security/security_service.h"
#include "net/rpc.h"

namespace phoenix::kernel {

/// A cluster-wide bulletin answer: the merged rows plus how many partition
/// instances contributed (dead instances only shrink the merge).
struct BulletinSnapshot {
  std::vector<NodeRecord> nodes;
  std::vector<AppRecord> apps;
  std::uint32_t partitions_included = 0;
};

/// Aggregated result of a parallel command tree.
struct CommandOutcome {
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
};

class KernelApi final : public cluster::Daemon {
 public:
  using Status = net::Status;
  using CallOptions = net::CallOptions;
  template <typename T>
  using Result = net::Result<T>;
  /// The one completion shape every call uses.
  template <typename T>
  using Callback = std::function<void(Result<T>)>;

  /// Binds the API endpoint on `node` with a caller-chosen port (several
  /// clients may coexist on one node with different ports).
  KernelApi(cluster::Cluster& cluster, net::NodeId node, PhoenixKernel& kernel,
            net::PortId port = net::PortId{30});
  ~KernelApi() override;

  // --- client-wide defaults ---------------------------------------------------

  /// Deadline used when CallOptions::deadline is 0.
  void set_default_deadline(sim::SimTime t) noexcept { default_deadline_ = t; }
  sim::SimTime default_deadline() const noexcept { return default_deadline_; }

  /// Backoff schedule and default retry budget, tunable per client.
  net::RetryPolicy& retry_policy() noexcept { return policy_; }
  const net::RetryPolicy& retry_policy() const noexcept { return policy_; }

  // --- configuration ----------------------------------------------------------

  /// kOk with nullopt means "the service answered: no such key".
  void config_get(const std::string& key,
                  Callback<std::optional<std::string>> done,
                  CallOptions opts = {});

  /// Value: the new tree version.
  void config_set(const std::string& key, const std::string& value,
                  Callback<std::uint64_t> done, CallOptions opts = {});

  // --- security ----------------------------------------------------------------

  /// kDenied when the credentials are refused.
  void authenticate(const std::string& user, const std::string& secret,
                    Callback<Token> done, CallOptions opts = {});

  /// kOk/true when allowed; kDenied when the service refuses.
  void authorize(const Token& token, const std::string& action,
                 const std::string& resource, Callback<bool> done,
                 CallOptions opts = {});

  // --- checkpoint ----------------------------------------------------------------

  /// Value: the stored version.
  void checkpoint_save(const std::string& service, const std::string& key,
                       std::string data, Callback<std::uint64_t> done,
                       CallOptions opts = {});

  /// kOk with nullopt means "the federation answered: not found".
  void checkpoint_load(const std::string& service, const std::string& key,
                       Callback<std::optional<std::string>> done,
                       CallOptions opts = {});

  // --- data bulletin ----------------------------------------------------------------

  void query(BulletinTable table, bool cluster_scope, BulletinFilter filter,
             Callback<BulletinSnapshot> done, CallOptions opts = {});

  /// Per-service runtime health rows (ServiceRuntime counters) held by the
  /// home partition's bulletin. Populated only when
  /// FtParams::service_stats_interval is enabled; empty otherwise.
  void service_stats(Callback<std::vector<ServiceStatsRecord>> done,
                     CallOptions opts = {});

  // --- events ----------------------------------------------------------------

  using EventCallback = std::function<void(const Event&)>;

  /// Subscribes this endpoint; matching events invoke `on_event` forever.
  /// One-way: `done` (optional) completes kOk once the registration is on
  /// the wire, kUnreachable if no attempt could be transmitted in time.
  void subscribe(std::vector<std::string> types, EventCallback on_event,
                 Callback<bool> done = {}, CallOptions opts = {});

  /// One-way, same transmit semantics as subscribe. Never retried after a
  /// successful transmission (a duplicate publish would be a new event).
  void publish(Event event, Callback<bool> done = {}, CallOptions opts = {});

  // --- parallel process management -------------------------------------------------

  /// Value: the new pid. `on_exit` (optional) fires when the process ends.
  void spawn(net::NodeId node, ProcessSpec spec, Callback<cluster::Pid> done,
             std::function<void(cluster::Pid)> on_exit = {},
             CallOptions opts = {});

  void parallel_command(const std::string& command,
                        std::vector<net::NodeId> nodes, std::size_t fanout,
                        Callback<CommandOutcome> done, CallOptions opts = {});

  // --- observability ----------------------------------------------------------

  /// Calls still awaiting replies.
  std::size_t pending_calls() const noexcept { return calls_.size(); }
  /// Retransmissions sent (attempts after the first, across all calls).
  std::uint64_t retries_sent() const noexcept { return retries_; }
  /// Attempts that went to a different address than the previous one
  /// (directory re-resolution or federation failover picked a new target).
  std::uint64_t reroutes() const noexcept { return reroutes_; }
  /// Calls failed with kTimeout.
  std::uint64_t timed_out_calls() const noexcept { return timeouts_; }
  /// Calls failed with kRetriesExhausted.
  std::uint64_t exhausted_calls() const noexcept { return exhausted_; }
  /// Calls failed with kUnreachable (no attempt ever transmitted).
  std::uint64_t unreachable_calls() const noexcept { return unreachable_; }
  /// Calls the service answered with a refusal (kDenied).
  std::uint64_t denied_calls() const noexcept { return denied_; }
  /// Replies that matched no pending call (the original answer already
  /// arrived and this is a retry's duplicate, or the call already failed).
  std::uint64_t duplicate_replies() const noexcept { return duplicate_replies_; }

 private:
  void handle(const net::Envelope& env) override;

  /// One in-flight call: typed completion closures plus the retry state
  /// machine (request to retransmit, resolved options, attempt count,
  /// backoff timer, last target for reroute accounting).
  struct Call {
    std::function<void(const net::Message&)> complete;  // on matched reply
    std::function<void(Status)> fail;                   // on any failure
    std::shared_ptr<net::Message> request;
    std::uint16_t* attempt_field = nullptr;  // request's attempt ordinal slot
    ServiceKind service = ServiceKind::kConfiguration;  // directory-resolved
    bool use_directory = true;   // false: fixed_target (PPM calls)
    bool federated = false;      // dead home -> rotate to a live instance
    bool one_way = false;        // completes kOk at transmit time
    net::Address fixed_target;
    net::CallOptions opts;       // resolved (no inherit markers left)
    sim::SimTime deadline_at = 0;
    int attempt = 0;             // attempts started (1 = first send)
    bool transmitted = false;    // at least one attempt reached the fabric
    net::Address last_target;
    sim::EventId timer{};
    const char* op = "";         // span name suffix, e.g. "config_set"
    sim::SimTime issued_at = 0;
    /// When tracing: trace_id plus the root ("call:") span's own id, which
    /// parents every attempt span and (via the ambient context at send
    /// time) every downstream wire hop and serve span.
    obs::TraceContext ctx;
  };

  /// Fills in inherited defaults; !idempotent forces a single attempt.
  net::CallOptions resolve(net::CallOptions opts) const noexcept;

  /// Registers the call under a fresh id and launches the first attempt.
  /// The caller has already stamped the id into the request message.
  void launch(std::uint64_t id, Call call, const char* op);
  void record_call_span(const Call& call, std::string_view outcome);
  void start_attempt(std::uint64_t id);
  void on_attempt_timer(std::uint64_t id);
  void fail_call(std::uint64_t id, Status status);
  void finish(std::uint64_t id, const net::Message& msg);

  /// Where the next attempt goes. For federated services, the first
  /// partition (ring-wise from home) whose instance sits on a live node;
  /// `home_out` receives the un-rotated home address (reroute accounting).
  net::Address resolve_target(const Call& call, net::Address* home_out);

  PhoenixKernel& kernel_;
  net::PartitionId home_partition_;
  sim::SimTime default_deadline_ = 10 * sim::kSecond;
  net::RetryPolicy policy_;
  std::unordered_map<std::uint64_t, Call> calls_;
  std::unordered_map<cluster::Pid, std::function<void(cluster::Pid)>> exit_watch_;
  EventCallback on_event_;
  obs::Registry* metrics_;       // cluster-owned; cached for one-branch guards
  obs::SpanStore* spans_;        // cluster-owned
  obs::Histogram* call_latency_; // "api.call_latency_us", registry-owned
  std::uint64_t metrics_probe_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ok_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t exhausted_ = 0;
  std::uint64_t unreachable_ = 0;
  std::uint64_t denied_ = 0;
  std::uint64_t duplicate_replies_ = 0;
};

}  // namespace phoenix::kernel
