// Configuration service (paper §4.2).
//
// One instance per cluster. Holds a versioned key/value tree describing
// physical resources, kernel services, and user environments; populates the
// hardware branch by self-introspection of the cluster; serves get/set over
// messages and notifies subscribers of changes through the event service.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/runtime/service_runtime.h"
#include "net/message.h"
#include "net/rpc.h"

namespace phoenix::kernel {

/// Request/response message pair for reads.
struct ConfigGetMsg final : net::Message {
  std::string key;
  net::Address reply_to;
  std::uint64_t request_id = 0;
  /// Client retransmission ordinal (1 = first send). Rides in the fixed
  /// wire header (net::kWireHeaderBytes): excluded from wire_size().
  std::uint16_t attempt = 1;

  PHOENIX_MESSAGE_TYPE("config.get")
  std::size_t wire_size() const noexcept override { return key.size() + 16; }
};

struct ConfigGetReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool found = false;
  std::string key;
  std::string value;
  std::uint64_t version = 0;

  PHOENIX_MESSAGE_TYPE("config.get_reply")
  std::size_t wire_size() const noexcept override {
    return key.size() + value.size() + 24;
  }
};

struct ConfigSetMsg final : net::Message {
  std::string key;
  std::string value;
  net::Address reply_to;
  std::uint64_t request_id = 0;
  std::uint16_t attempt = 1;  // header-resident; excluded from wire_size()

  PHOENIX_MESSAGE_TYPE("config.set")
  std::size_t wire_size() const noexcept override {
    return key.size() + value.size() + 16;
  }
};

struct ConfigSetReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::uint64_t version = 0;

  PHOENIX_MESSAGE_TYPE("config.set_reply")
  std::size_t wire_size() const noexcept override { return 16; }
};

class ConfigurationService final : public ServiceRuntime {
 public:
  /// Callback invoked on every successful set (the kernel bridges this to a
  /// "config.changed" event through the event service).
  using ChangeHook = std::function<void(const std::string& key,
                                        const std::string& value,
                                        std::uint64_t version)>;

  ConfigurationService(cluster::Cluster& cluster, net::NodeId node,
                       double cpu_share = 0.0,
                       ServiceDirectory* directory = nullptr,
                       const FtParams* params = nullptr);

  // --- local API (used in-process by kernel components and tests) --------

  /// Scans the cluster and fills the "hardware/..." branch: node count,
  /// partition layout, per-node role/cpus, network count.
  void introspect();

  std::optional<std::string> get(const std::string& key) const;
  std::uint64_t set(const std::string& key, std::string value);
  bool erase(const std::string& key);

  /// All keys under the given prefix, sorted.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  std::uint64_t version() const noexcept { return version_; }
  std::size_t size() const noexcept { return tree_.size(); }

  void set_change_hook(ChangeHook hook) { change_hook_ = std::move(hook); }

 private:
  struct Entry {
    std::string value;
    std::uint64_t version;
  };
  std::map<std::string, Entry> tree_;
  std::uint64_t version_ = 0;
  ChangeHook change_hook_;
};

}  // namespace phoenix::kernel
