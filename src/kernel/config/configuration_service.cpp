#include "kernel/config/configuration_service.h"

#include <memory>

#include "kernel/service_kind.h"

namespace phoenix::kernel {

ConfigurationService::ConfigurationService(cluster::Cluster& cluster,
                                           net::NodeId node, double cpu_share)
    : Daemon(cluster, "config", node, port_of(ServiceKind::kConfiguration),
             cpu_share) {}

void ConfigurationService::introspect() {
  const auto& spec = cluster().spec();
  set("hardware/partitions", std::to_string(spec.partitions));
  set("hardware/nodes", std::to_string(spec.total_nodes()));
  set("hardware/networks", std::to_string(spec.networks));
  set("hardware/nodes_per_partition", std::to_string(spec.nodes_per_partition()));
  for (const auto& n : cluster().nodes()) {
    const std::string base = "hardware/node/" + std::to_string(n.id().value);
    set(base + "/role", std::string(cluster::to_string(n.role())));
    set(base + "/partition", std::to_string(n.partition().value));
    set(base + "/cpus", std::to_string(n.cpus()));
    set(base + "/arch", n.arch());
  }
}

std::optional<std::string> ConfigurationService::get(const std::string& key) const {
  auto it = tree_.find(key);
  if (it == tree_.end()) return std::nullopt;
  return it->second.value;
}

std::uint64_t ConfigurationService::set(const std::string& key, std::string value) {
  const std::uint64_t v = ++version_;
  tree_[key] = Entry{std::move(value), v};
  if (change_hook_) change_hook_(key, tree_[key].value, v);
  return v;
}

bool ConfigurationService::erase(const std::string& key) {
  return tree_.erase(key) > 0;
}

std::vector<std::string> ConfigurationService::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = tree_.lower_bound(prefix); it != tree_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void ConfigurationService::handle(const net::Envelope& env) {
  if (const auto* get_msg = net::message_cast<ConfigGetMsg>(*env.message)) {
    auto reply = std::make_shared<ConfigGetReplyMsg>();
    reply->request_id = get_msg->request_id;
    reply->key = get_msg->key;
    if (auto v = get(get_msg->key)) {
      reply->found = true;
      reply->value = *v;
      reply->version = tree_.at(get_msg->key).version;
    }
    send_any(get_msg->reply_to, std::move(reply));
    return;
  }
  if (const auto* set_msg = net::message_cast<ConfigSetMsg>(*env.message)) {
    std::shared_ptr<const net::Message> replay;
    switch (replay_.begin(set_msg->reply_to, set_msg->type_id(),
                          set_msg->request_id, &replay)) {
      case net::ReplayCache::Admit::kReplay:
        send_any(set_msg->reply_to, std::move(replay));
        return;
      case net::ReplayCache::Admit::kInFlight:
        return;  // unreachable: sets execute synchronously
      case net::ReplayCache::Admit::kNew:
        break;
    }
    auto reply = std::make_shared<ConfigSetReplyMsg>();
    reply->request_id = set_msg->request_id;
    reply->version = set(set_msg->key, set_msg->value);
    replay_.complete(set_msg->reply_to, set_msg->type_id(), set_msg->request_id,
                     reply);
    send_any(set_msg->reply_to, std::move(reply));
    return;
  }
}

}  // namespace phoenix::kernel
