#include "kernel/config/configuration_service.h"

#include <memory>

#include "kernel/service_kind.h"

namespace phoenix::kernel {

ConfigurationService::ConfigurationService(cluster::Cluster& cluster,
                                           net::NodeId node, double cpu_share,
                                           ServiceDirectory* directory,
                                           const FtParams* params)
    : ServiceRuntime(cluster, "config", node, port_of(ServiceKind::kConfiguration),
                     directory, params,
                     Options{.kind = ServiceKind::kConfiguration}, cpu_share) {
  on<ConfigGetMsg>([this](const ConfigGetMsg& msg) {
    serve_idempotent(msg, [&] {
      auto reply = std::make_shared<ConfigGetReplyMsg>();
      reply->request_id = msg.request_id;
      reply->key = msg.key;
      if (auto v = get(msg.key)) {
        reply->found = true;
        reply->value = *v;
        reply->version = tree_.at(msg.key).version;
      }
      return reply;
    });
  });
  on<ConfigSetMsg>([this](const ConfigSetMsg& msg) {
    serve_mutating(msg, [&] {
      auto reply = std::make_shared<ConfigSetReplyMsg>();
      reply->request_id = msg.request_id;
      reply->version = set(msg.key, msg.value);
      return reply;
    });
  });
}

void ConfigurationService::introspect() {
  const auto& spec = cluster().spec();
  set("hardware/partitions", std::to_string(spec.partitions));
  set("hardware/nodes", std::to_string(spec.total_nodes()));
  set("hardware/networks", std::to_string(spec.networks));
  set("hardware/nodes_per_partition", std::to_string(spec.nodes_per_partition()));
  for (const auto& n : cluster().nodes()) {
    const std::string base = "hardware/node/" + std::to_string(n.id().value);
    set(base + "/role", std::string(cluster::to_string(n.role())));
    set(base + "/partition", std::to_string(n.partition().value));
    set(base + "/cpus", std::to_string(n.cpus()));
    set(base + "/arch", n.arch());
  }
}

std::optional<std::string> ConfigurationService::get(const std::string& key) const {
  auto it = tree_.find(key);
  if (it == tree_.end()) return std::nullopt;
  return it->second.value;
}

std::uint64_t ConfigurationService::set(const std::string& key, std::string value) {
  const std::uint64_t v = ++version_;
  tree_[key] = Entry{std::move(value), v};
  if (change_hook_) change_hook_(key, tree_[key].value, v);
  return v;
}

bool ConfigurationService::erase(const std::string& key) {
  return tree_.erase(key) > 0;
}

std::vector<std::string> ConfigurationService::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = tree_.lower_bound(prefix); it != tree_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

}  // namespace phoenix::kernel
