// Event service (paper §4.2, §4.4): the kernel's communication channel.
//
// One instance per partition (server node); instances form a federation.
// Suppliers register the event types they produce; consumers register the
// types they are interested in, optionally with attribute filters. The
// consumer registry is replicated across the federation, so publishing at
// any instance notifies every matching consumer cluster-wide — the single
// service access point of §4.4. The registry is checkpointed on every
// change; a restarted or migrated instance retrieves it from the checkpoint
// service, so consumers keep receiving events without re-registering.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/checkpoint/checkpoint_msgs.h"
#include "kernel/event/event.h"
#include "kernel/runtime/service_runtime.h"
#include "kernel/ft_params.h"
#include "kernel/service_kind.h"
#include "kernel/service_msgs.h"
#include "net/message.h"

namespace phoenix::kernel {

struct EsSubscribeMsg final : net::Message {
  Subscription subscription;
  bool remove = false;

  PHOENIX_MESSAGE_TYPE("es.subscribe")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 16;
    for (const auto& t : subscription.types) n += t.size() + 1;
    for (const auto& [k, v] : subscription.attr_filters) n += k.size() + v.size() + 2;
    return n;
  }
};

struct EsRegisterSupplierMsg final : net::Message {
  net::Address supplier;
  std::vector<std::string> types;
  bool remove = false;

  PHOENIX_MESSAGE_TYPE("es.register_supplier")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 16;
    for (const auto& t : types) n += t.size() + 1;
    return n;
  }
};

struct EsPublishMsg final : net::Message {
  Event event;

  PHOENIX_MESSAGE_TYPE("es.publish")
  std::size_t wire_size() const noexcept override { return event.wire_bytes(); }
};

struct EsNotifyMsg final : net::Message {
  Event event;

  PHOENIX_MESSAGE_TYPE("es.notify")
  std::size_t wire_size() const noexcept override { return event.wire_bytes(); }
};

/// A late subscriber asking for this instance's recent event history:
/// every buffered event matching `subscription` with seq > `after_seq` is
/// re-notified to the subscription's consumer (at-least-once; consumers
/// dedup by (origin_es, seq)).
struct EsReplayMsg final : net::Message {
  Subscription subscription;
  std::uint64_t after_seq = 0;

  PHOENIX_MESSAGE_TYPE("es.replay")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 24;
    for (const auto& t : subscription.types) n += t.size() + 1;
    return n;
  }
};

/// Federation replication of one registry change.
struct EsSyncMsg final : net::Message {
  Subscription subscription;
  bool remove = false;

  PHOENIX_MESSAGE_TYPE("es.sync")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 17;
    for (const auto& t : subscription.types) n += t.size() + 1;
    for (const auto& [k, v] : subscription.attr_filters) n += k.size() + v.size() + 2;
    return n;
  }
};

class EventService final : public ServiceRuntime {
 public:
  EventService(cluster::Cluster& cluster, net::NodeId node,
               net::PartitionId partition, const FtParams& params,
               ServiceDirectory* directory, double cpu_share = 0.0);

  net::PartitionId partition() const noexcept { return partition_; }

  // --- local API ----------------------------------------------------------

  void subscribe_local(Subscription sub, bool replicate = true);
  void unsubscribe_local(const net::Address& consumer, bool replicate = true);

  /// Assigns identity and fans the event out to matching consumers.
  void publish_local(Event event);

  std::size_t subscription_count() const noexcept { return subscriptions_.size(); }
  std::uint64_t published_count() const noexcept { return next_seq_ - 1; }

  /// Recent-event retention (per instance). 0 disables history/replay.
  void set_history_limit(std::size_t n);
  std::size_t history_size() const noexcept { return history_.size(); }

  /// Registry serialization (used for checkpointing; exposed for tests).
  std::string serialize_registry() const;
  void restore_registry(const std::string& data);

 private:
  /// Runtime lifecycle: the consumer registry is the checkpointed state.
  std::string snapshot() const override { return serialize_registry(); }
  void restore(const std::string& data) override { restore_registry(data); }

  // --- publish fan-out index ----------------------------------------------
  // publish_local used to scan every subscription per event. The index
  // splits consumers into (a) exact-type buckets — consulted with one hash
  // lookup on the published type — and (b) a small scan list for
  // subscriptions that need pattern evaluation ("*", "prefix.*", or an
  // empty type list meaning match-all). A consumer lives in exactly one of
  // the two structures, so no per-publish dedup is needed. Candidates still
  // go through Subscription::matches, preserving attribute-filter semantics
  // exactly; the index only prunes type mismatches.
  void index_insert(const Subscription& sub);
  void index_erase(const net::Address& consumer);
  void rebuild_index();
  void store_subscription(Subscription sub);
  bool drop_subscription(const net::Address& consumer);

  net::PartitionId partition_;
  std::unordered_map<net::Address, Subscription> subscriptions_;
  std::unordered_map<std::string, std::vector<net::Address>> exact_index_;
  std::vector<net::Address> pattern_subs_;
  std::unordered_map<net::Address, std::vector<std::string>> suppliers_;
  std::deque<Event> history_;
  std::size_t history_limit_ = 512;
  std::uint64_t next_seq_ = 1;
};

}  // namespace phoenix::kernel
