// Event model for the Phoenix event service.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/ids.h"
#include "sim/time.h"

namespace phoenix::kernel {

/// Well-known event types pushed by kernel services.
namespace event_types {
inline constexpr std::string_view kNodeFailed = "node.failed";
inline constexpr std::string_view kNodeRecovered = "node.recovered";
inline constexpr std::string_view kNetworkFailed = "network.failed";
inline constexpr std::string_view kNetworkRecovered = "network.recovered";
inline constexpr std::string_view kServiceFailed = "service.failed";
inline constexpr std::string_view kServiceRecovered = "service.recovered";
inline constexpr std::string_view kGsdMigrated = "gsd.migrated";
inline constexpr std::string_view kAppStarted = "app.started";
inline constexpr std::string_view kAppExited = "app.exited";
inline constexpr std::string_view kConfigChanged = "config.changed";
}  // namespace event_types

struct Event {
  std::string type;
  net::NodeId subject_node{};        // node the event is about (optional)
  net::PartitionId partition{};      // partition the event originated in
  sim::SimTime timestamp = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  // Identity assigned by the publishing event-service instance.
  std::uint32_t origin_es = 0;
  std::uint64_t seq = 0;

  /// Attribute lookup; empty string when absent.
  std::string attr(std::string_view key) const {
    for (const auto& [k, v] : attrs) {
      if (k == key) return v;
    }
    return {};
  }

  std::size_t wire_bytes() const noexcept {
    std::size_t n = type.size() + 32;
    for (const auto& [k, v] : attrs) n += k.size() + v.size() + 2;
    return n;
  }
};

/// A consumer's registration: which event types (empty = all) and which
/// attribute values (all listed pairs must match) it wants delivered.
/// A type entry ending in ".*" matches every type with that prefix (so
/// "node.*" covers node.failed and node.recovered); a lone "*" matches all.
struct Subscription {
  net::Address consumer;
  std::vector<std::string> types;                              // empty = all
  std::vector<std::pair<std::string, std::string>> attr_filters;

  static bool type_matches(std::string_view pattern, std::string_view type) {
    if (pattern == "*") return true;
    if (pattern.size() >= 2 && pattern.substr(pattern.size() - 2) == ".*") {
      const std::string_view prefix = pattern.substr(0, pattern.size() - 1);
      return type.size() >= prefix.size() && type.substr(0, prefix.size()) == prefix;
    }
    return pattern == type;
  }

  bool matches(const Event& e) const {
    if (!types.empty()) {
      bool hit = false;
      for (const auto& t : types) {
        if (type_matches(t, e.type)) {
          hit = true;
          break;
        }
      }
      if (!hit) return false;
    }
    for (const auto& [k, v] : attr_filters) {
      if (e.attr(k) != v) return false;
    }
    return true;
  }
};

}  // namespace phoenix::kernel
