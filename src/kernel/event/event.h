// Event model for the Phoenix event service.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/ids.h"
#include "net/symbol.h"
#include "sim/time.h"

namespace phoenix::kernel {

/// Well-known event types pushed by kernel services.
namespace event_types {
inline constexpr std::string_view kNodeFailed = "node.failed";
inline constexpr std::string_view kNodeRecovered = "node.recovered";
inline constexpr std::string_view kNetworkFailed = "network.failed";
inline constexpr std::string_view kNetworkRecovered = "network.recovered";
inline constexpr std::string_view kServiceFailed = "service.failed";
inline constexpr std::string_view kServiceRecovered = "service.recovered";
inline constexpr std::string_view kGsdMigrated = "gsd.migrated";
inline constexpr std::string_view kAppStarted = "app.started";
inline constexpr std::string_view kAppExited = "app.exited";
inline constexpr std::string_view kConfigChanged = "config.changed";
}  // namespace event_types

/// Pre-interned ids for the attribute keys hot producers attach every
/// event (the detector's app lifecycle events); one static lookup per
/// process instead of one hash per event.
namespace attr_keys {
inline net::SymbolId pid() {
  static const net::SymbolId id = net::intern_symbol("pid");
  return id;
}
inline net::SymbolId name() {
  static const net::SymbolId id = net::intern_symbol("name");
  return id;
}
inline net::SymbolId owner() {
  static const net::SymbolId id = net::intern_symbol("owner");
  return id;
}
inline net::SymbolId state() {
  static const net::SymbolId id = net::intern_symbol("state");
  return id;
}
inline net::SymbolId exit_code() {
  static const net::SymbolId id = net::intern_symbol("exit_code");
  return id;
}
}  // namespace attr_keys

/// One event attribute: an interned key plus a free-form value. The key is
/// compared as an integer on every subscription match; the string form is
/// resolved only for rendering and wire accounting. Constructible from a
/// (key, value) string pair so `e.attrs = {{"pid", "7"}}` keeps working, or
/// from a pre-interned key (attr_keys::*) on hot paths.
struct EventAttr {
  net::SymbolId key;
  std::string value;

  EventAttr() = default;
  EventAttr(std::string_view k, std::string v)
      : key(net::intern_symbol(k)), value(std::move(v)) {}
  EventAttr(net::SymbolId k, std::string v) : key(k), value(std::move(v)) {}

  std::string_view key_name() const { return net::symbol_name(key); }
};

struct Event {
  std::string type;
  net::NodeId subject_node{};        // node the event is about (optional)
  net::PartitionId partition{};      // partition the event originated in
  sim::SimTime timestamp = 0;
  std::vector<EventAttr> attrs;

  // Identity assigned by the publishing event-service instance.
  std::uint32_t origin_es = 0;
  std::uint64_t seq = 0;

  /// Value for an interned key; nullptr when absent (no allocation).
  const std::string* find_attr(net::SymbolId key) const {
    for (const auto& a : attrs) {
      if (a.key == key) return &a.value;
    }
    return nullptr;
  }

  /// Attribute lookup by name; empty string when absent.
  std::string attr(std::string_view key) const {
    const net::SymbolId k = net::find_symbol(key);
    if (!k.valid()) return {};
    const std::string* v = find_attr(k);
    return v == nullptr ? std::string() : *v;
  }

  /// Keys still travel as strings on the wire (no cross-process dictionary
  /// is negotiated), so accounting keeps the key's name length.
  std::size_t wire_bytes() const noexcept {
    std::size_t n = type.size() + 32;
    for (const auto& a : attrs) n += a.key_name().size() + a.value.size() + 2;
    return n;
  }
};

/// A consumer's registration: which event types (empty = all) and which
/// attribute values (all listed pairs must match) it wants delivered.
/// A type entry ending in ".*" matches every type with that prefix (so
/// "node.*" covers node.failed and node.recovered); a lone "*" matches all.
struct Subscription {
  net::Address consumer;
  std::vector<std::string> types;                              // empty = all
  std::vector<std::pair<std::string, std::string>> attr_filters;

  static bool type_matches(std::string_view pattern, std::string_view type) {
    if (pattern == "*") return true;
    if (pattern.size() >= 2 && pattern.substr(pattern.size() - 2) == ".*") {
      const std::string_view prefix = pattern.substr(0, pattern.size() - 1);
      return type.size() >= prefix.size() && type.substr(0, prefix.size()) == prefix;
    }
    return pattern == type;
  }

  bool matches(const Event& e) const {
    if (!types.empty()) {
      bool hit = false;
      for (const auto& t : types) {
        if (type_matches(t, e.type)) {
          hit = true;
          break;
        }
      }
      if (!hit) return false;
    }
    for (const auto& [k, v] : attr_filters) {
      const net::SymbolId key = net::find_symbol(k);
      const std::string* got = key.valid() ? e.find_attr(key) : nullptr;
      // An absent attribute compares equal to "" (historical semantics).
      if (got == nullptr ? !v.empty() : *got != v) return false;
    }
    return true;
  }
};

}  // namespace phoenix::kernel
