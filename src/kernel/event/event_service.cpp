#include "kernel/event/event_service.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace phoenix::kernel {

namespace {

/// True when the subscription cannot be served from the exact-type index:
/// empty type list (match-all) or any wildcard/prefix pattern.
bool needs_pattern_scan(const Subscription& sub) {
  if (sub.types.empty()) return true;
  for (const auto& t : sub.types) {
    if (t == "*") return true;
    if (t.size() >= 2 && t.compare(t.size() - 2, 2, ".*") == 0) return true;
  }
  return false;
}

std::string encode_address(const net::Address& a) {
  return std::to_string(a.node.value) + "," + std::to_string(a.port.value);
}

net::Address decode_address(const std::string& s) {
  const auto comma = s.find(',');
  if (comma == std::string::npos) return {};
  try {
    return {net::NodeId{static_cast<std::uint32_t>(std::stoul(s.substr(0, comma)))},
            net::PortId{static_cast<std::uint16_t>(std::stoul(s.substr(comma + 1)))}};
  } catch (const std::exception&) {
    return {};  // corrupted checkpoint entry
  }
}

}  // namespace

EventService::EventService(cluster::Cluster& cluster, net::NodeId node,
                           net::PartitionId partition, const FtParams& params,
                           ServiceDirectory* directory, double cpu_share)
    : ServiceRuntime(cluster, "es/" + std::to_string(partition.value), node,
                     port_of(ServiceKind::kEventService), directory, &params,
                     // On start the runtime recovers the consumer registry
                     // from the checkpoint service, then reports readiness to
                     // the partition's GSD. On a cold first start the load
                     // misses and the service comes up with an empty registry.
                     Options{.kind = ServiceKind::kEventService,
                             .partition = partition,
                             .checkpoint_namespace =
                                 "es/" + std::to_string(partition.value),
                             .checkpoint_key = "registry",
                             .announce_up = true,
                             .recover_on_start = true},
                     cpu_share),
      partition_(partition) {
  on<EsSubscribeMsg>([this](const EsSubscribeMsg& sub) {
    if (sub.remove) {
      unsubscribe_local(sub.subscription.consumer);
    } else {
      subscribe_local(sub.subscription);
    }
  });
  on<EsRegisterSupplierMsg>([this](const EsRegisterSupplierMsg& reg) {
    if (reg.remove) {
      suppliers_.erase(reg.supplier);
    } else {
      suppliers_[reg.supplier] = reg.types;
    }
  });
  on<EsPublishMsg>([this](const EsPublishMsg& pub) { publish_local(pub.event); });
  on<EsReplayMsg>([this](const EsReplayMsg& replay) {
    for (const Event& e : history_) {
      if (e.seq <= replay.after_seq) continue;
      if (!replay.subscription.matches(e)) continue;
      auto notify = std::make_shared<EsNotifyMsg>();
      notify->event = e;
      send_any(replay.subscription.consumer, std::move(notify));
    }
  });
  on<EsSyncMsg>([this](const EsSyncMsg& sync) {
    if (sync.remove) {
      drop_subscription(sync.subscription.consumer);
    } else {
      store_subscription(sync.subscription);
    }
    mark_dirty();
  });
}

void EventService::index_insert(const Subscription& sub) {
  if (needs_pattern_scan(sub)) {
    pattern_subs_.push_back(sub.consumer);
    return;
  }
  for (const auto& t : sub.types) {
    auto& bucket = exact_index_[t];
    // A subscription may list the same type twice; one bucket entry keeps
    // the old notify-once-per-consumer semantics.
    if (std::find(bucket.begin(), bucket.end(), sub.consumer) == bucket.end()) {
      bucket.push_back(sub.consumer);
    }
  }
}

void EventService::index_erase(const net::Address& consumer) {
  const auto it = subscriptions_.find(consumer);
  if (it == subscriptions_.end()) return;
  const Subscription& sub = it->second;
  if (needs_pattern_scan(sub)) {
    std::erase(pattern_subs_, consumer);
    return;
  }
  for (const auto& t : sub.types) {
    const auto bucket = exact_index_.find(t);
    if (bucket == exact_index_.end()) continue;
    std::erase(bucket->second, consumer);
    if (bucket->second.empty()) exact_index_.erase(bucket);
  }
}

void EventService::rebuild_index() {
  exact_index_.clear();
  pattern_subs_.clear();
  for (const auto& [addr, sub] : subscriptions_) index_insert(sub);
}

void EventService::store_subscription(Subscription sub) {
  index_erase(sub.consumer);  // replacing: drop the old subscription's entries
  const net::Address consumer = sub.consumer;
  Subscription& stored = subscriptions_[consumer];
  stored = std::move(sub);
  index_insert(stored);
}

bool EventService::drop_subscription(const net::Address& consumer) {
  index_erase(consumer);
  return subscriptions_.erase(consumer) > 0;
}

void EventService::subscribe_local(Subscription sub, bool replicate) {
  const net::Address consumer = sub.consumer;
  store_subscription(std::move(sub));
  mark_dirty();
  if (replicate && directory() != nullptr) {
    for (std::size_t p = 0; p < directory()->partition_count(); ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      if (pid == partition_) continue;
      auto sync = std::make_shared<EsSyncMsg>();
      sync->subscription = subscriptions_[consumer];
      send_any(directory()->service_address(ServiceKind::kEventService, pid),
               std::move(sync));
    }
  }
}

void EventService::unsubscribe_local(const net::Address& consumer, bool replicate) {
  if (!drop_subscription(consumer)) return;
  mark_dirty();
  if (replicate && directory() != nullptr) {
    for (std::size_t p = 0; p < directory()->partition_count(); ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      if (pid == partition_) continue;
      auto sync = std::make_shared<EsSyncMsg>();
      sync->subscription.consumer = consumer;
      sync->remove = true;
      send_any(directory()->service_address(ServiceKind::kEventService, pid),
               std::move(sync));
    }
  }
}

void EventService::set_history_limit(std::size_t n) {
  history_limit_ = n;
  while (history_.size() > history_limit_) history_.pop_front();
}

void EventService::publish_local(Event event) {
  event.origin_es = partition_.value;
  event.seq = next_seq_++;
  if (event.timestamp == 0) event.timestamp = now();
  const auto notify_if_match = [&](const net::Address& consumer) {
    const auto it = subscriptions_.find(consumer);
    if (it == subscriptions_.end() || !it->second.matches(event)) return;
    auto notify = std::make_shared<EsNotifyMsg>();
    notify->event = event;
    send_any(consumer, std::move(notify));
  };
  // Indexed fan-out: one hash lookup for exact-type subscribers, then the
  // (small) list of pattern/match-all subscribers. Consumers appear in
  // exactly one of the two, so nobody is notified twice.
  if (const auto bucket = exact_index_.find(event.type); bucket != exact_index_.end()) {
    for (const net::Address& consumer : bucket->second) notify_if_match(consumer);
  }
  for (const net::Address& consumer : pattern_subs_) notify_if_match(consumer);
  if (history_limit_ > 0) {
    history_.push_back(std::move(event));
    while (history_.size() > history_limit_) history_.pop_front();
  }
}

std::string EventService::serialize_registry() const {
  std::ostringstream out;
  for (const auto& [consumer, sub] : subscriptions_) {
    out << encode_address(consumer) << '|';
    for (std::size_t i = 0; i < sub.types.size(); ++i) {
      if (i > 0) out << ';';
      out << sub.types[i];
    }
    out << '|';
    for (std::size_t i = 0; i < sub.attr_filters.size(); ++i) {
      if (i > 0) out << ';';
      out << sub.attr_filters[i].first << '=' << sub.attr_filters[i].second;
    }
    out << '\n';
  }
  return out.str();
}

void EventService::restore_registry(const std::string& data) {
  subscriptions_.clear();  // index rebuilt below once all lines are parsed
  std::istringstream in(data);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto bar1 = line.find('|');
    const auto bar2 = line.find('|', bar1 + 1);
    if (bar1 == std::string::npos || bar2 == std::string::npos) continue;
    Subscription sub;
    sub.consumer = decode_address(line.substr(0, bar1));
    if (!sub.consumer.valid() ||
        sub.consumer.node.value >= cluster().node_count()) {
      continue;  // corrupted entry: drop it rather than poisoning delivery
    }

    std::istringstream types(line.substr(bar1 + 1, bar2 - bar1 - 1));
    std::string t;
    while (std::getline(types, t, ';')) {
      if (!t.empty()) sub.types.push_back(t);
    }

    std::istringstream filters(line.substr(bar2 + 1));
    std::string f;
    while (std::getline(filters, f, ';')) {
      const auto eq = f.find('=');
      if (eq != std::string::npos) {
        sub.attr_filters.emplace_back(f.substr(0, eq), f.substr(eq + 1));
      }
    }
    subscriptions_[sub.consumer] = std::move(sub);
  }
  rebuild_index();
}

}  // namespace phoenix::kernel
