#include "kernel/event/event_service.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace phoenix::kernel {

namespace {

/// True when the subscription cannot be served from the exact-type index:
/// empty type list (match-all) or any wildcard/prefix pattern.
bool needs_pattern_scan(const Subscription& sub) {
  if (sub.types.empty()) return true;
  for (const auto& t : sub.types) {
    if (t == "*") return true;
    if (t.size() >= 2 && t.compare(t.size() - 2, 2, ".*") == 0) return true;
  }
  return false;
}

std::string encode_address(const net::Address& a) {
  return std::to_string(a.node.value) + "," + std::to_string(a.port.value);
}

net::Address decode_address(const std::string& s) {
  const auto comma = s.find(',');
  if (comma == std::string::npos) return {};
  try {
    return {net::NodeId{static_cast<std::uint32_t>(std::stoul(s.substr(0, comma)))},
            net::PortId{static_cast<std::uint16_t>(std::stoul(s.substr(comma + 1)))}};
  } catch (const std::exception&) {
    return {};  // corrupted checkpoint entry
  }
}

}  // namespace

EventService::EventService(cluster::Cluster& cluster, net::NodeId node,
                           net::PartitionId partition, const FtParams& params,
                           ServiceDirectory* directory, double cpu_share)
    : Daemon(cluster, "es/" + std::to_string(partition.value), node,
             port_of(ServiceKind::kEventService), cpu_share),
      partition_(partition),
      params_(params),
      directory_(directory) {}

void EventService::on_start() {
  if (directory_ == nullptr) return;
  // Recover the consumer registry from the checkpoint service, then report
  // readiness to the partition's GSD. On a cold first start the load misses
  // and we come up with an empty registry.
  recovery_attempts_left_ = 5;
  attempt_recovery_load();
}

void EventService::attempt_recovery_load() {
  if (!alive()) return;
  if (recovery_attempts_left_ <= 0) {
    recovery_load_id_ = 0;
    announce_up();  // give up on recovery: come up empty
    return;
  }
  --recovery_attempts_left_;
  recovery_load_id_ = engine().rng().next() | 1;
  auto load = std::make_shared<CheckpointLoadMsg>();
  load->service = "es/" + std::to_string(partition_.value);
  load->key = "registry";
  load->reply_to = address();
  load->request_id = recovery_load_id_;
  const auto cs =
      directory_->service_address(ServiceKind::kCheckpointService, partition_);
  send_any(cs, std::move(load));
  // The checkpoint instance may itself still be starting (joint migration);
  // retry until it answers or attempts run out.
  const std::uint64_t this_try = recovery_load_id_;
  engine().schedule_after(2 * sim::kSecond + params_.checkpoint_federation_fetch,
                          [this, this_try] {
                            if (recovery_load_id_ == this_try) attempt_recovery_load();
                          });
}

void EventService::announce_up() {
  if (directory_ == nullptr) return;
  auto up = std::make_shared<ServiceUpMsg>();
  up->kind = ServiceKind::kEventService;
  up->partition = partition_;
  up->service = address();
  send_any(directory_->service_address(ServiceKind::kGroupService, partition_),
           std::move(up));
}

void EventService::index_insert(const Subscription& sub) {
  if (needs_pattern_scan(sub)) {
    pattern_subs_.push_back(sub.consumer);
    return;
  }
  for (const auto& t : sub.types) {
    auto& bucket = exact_index_[t];
    // A subscription may list the same type twice; one bucket entry keeps
    // the old notify-once-per-consumer semantics.
    if (std::find(bucket.begin(), bucket.end(), sub.consumer) == bucket.end()) {
      bucket.push_back(sub.consumer);
    }
  }
}

void EventService::index_erase(const net::Address& consumer) {
  const auto it = subscriptions_.find(consumer);
  if (it == subscriptions_.end()) return;
  const Subscription& sub = it->second;
  if (needs_pattern_scan(sub)) {
    std::erase(pattern_subs_, consumer);
    return;
  }
  for (const auto& t : sub.types) {
    const auto bucket = exact_index_.find(t);
    if (bucket == exact_index_.end()) continue;
    std::erase(bucket->second, consumer);
    if (bucket->second.empty()) exact_index_.erase(bucket);
  }
}

void EventService::rebuild_index() {
  exact_index_.clear();
  pattern_subs_.clear();
  for (const auto& [addr, sub] : subscriptions_) index_insert(sub);
}

void EventService::store_subscription(Subscription sub) {
  index_erase(sub.consumer);  // replacing: drop the old subscription's entries
  const net::Address consumer = sub.consumer;
  Subscription& stored = subscriptions_[consumer];
  stored = std::move(sub);
  index_insert(stored);
}

bool EventService::drop_subscription(const net::Address& consumer) {
  index_erase(consumer);
  return subscriptions_.erase(consumer) > 0;
}

void EventService::subscribe_local(Subscription sub, bool replicate) {
  const net::Address consumer = sub.consumer;
  store_subscription(std::move(sub));
  checkpoint_registry();
  if (replicate && directory_ != nullptr) {
    for (std::size_t p = 0; p < directory_->partition_count(); ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      if (pid == partition_) continue;
      auto sync = std::make_shared<EsSyncMsg>();
      sync->subscription = subscriptions_[consumer];
      send_any(directory_->service_address(ServiceKind::kEventService, pid),
               std::move(sync));
    }
  }
}

void EventService::unsubscribe_local(const net::Address& consumer, bool replicate) {
  if (!drop_subscription(consumer)) return;
  checkpoint_registry();
  if (replicate && directory_ != nullptr) {
    for (std::size_t p = 0; p < directory_->partition_count(); ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      if (pid == partition_) continue;
      auto sync = std::make_shared<EsSyncMsg>();
      sync->subscription.consumer = consumer;
      sync->remove = true;
      send_any(directory_->service_address(ServiceKind::kEventService, pid),
               std::move(sync));
    }
  }
}

void EventService::set_history_limit(std::size_t n) {
  history_limit_ = n;
  while (history_.size() > history_limit_) history_.pop_front();
}

void EventService::publish_local(Event event) {
  event.origin_es = partition_.value;
  event.seq = next_seq_++;
  if (event.timestamp == 0) event.timestamp = now();
  const auto notify_if_match = [&](const net::Address& consumer) {
    const auto it = subscriptions_.find(consumer);
    if (it == subscriptions_.end() || !it->second.matches(event)) return;
    auto notify = std::make_shared<EsNotifyMsg>();
    notify->event = event;
    send_any(consumer, std::move(notify));
  };
  // Indexed fan-out: one hash lookup for exact-type subscribers, then the
  // (small) list of pattern/match-all subscribers. Consumers appear in
  // exactly one of the two, so nobody is notified twice.
  if (const auto bucket = exact_index_.find(event.type); bucket != exact_index_.end()) {
    for (const net::Address& consumer : bucket->second) notify_if_match(consumer);
  }
  for (const net::Address& consumer : pattern_subs_) notify_if_match(consumer);
  if (history_limit_ > 0) {
    history_.push_back(std::move(event));
    while (history_.size() > history_limit_) history_.pop_front();
  }
}

std::string EventService::serialize_registry() const {
  std::ostringstream out;
  for (const auto& [consumer, sub] : subscriptions_) {
    out << encode_address(consumer) << '|';
    for (std::size_t i = 0; i < sub.types.size(); ++i) {
      if (i > 0) out << ';';
      out << sub.types[i];
    }
    out << '|';
    for (std::size_t i = 0; i < sub.attr_filters.size(); ++i) {
      if (i > 0) out << ';';
      out << sub.attr_filters[i].first << '=' << sub.attr_filters[i].second;
    }
    out << '\n';
  }
  return out.str();
}

void EventService::restore_registry(const std::string& data) {
  subscriptions_.clear();  // index rebuilt below once all lines are parsed
  std::istringstream in(data);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto bar1 = line.find('|');
    const auto bar2 = line.find('|', bar1 + 1);
    if (bar1 == std::string::npos || bar2 == std::string::npos) continue;
    Subscription sub;
    sub.consumer = decode_address(line.substr(0, bar1));
    if (!sub.consumer.valid() ||
        sub.consumer.node.value >= cluster().node_count()) {
      continue;  // corrupted entry: drop it rather than poisoning delivery
    }

    std::istringstream types(line.substr(bar1 + 1, bar2 - bar1 - 1));
    std::string t;
    while (std::getline(types, t, ';')) {
      if (!t.empty()) sub.types.push_back(t);
    }

    std::istringstream filters(line.substr(bar2 + 1));
    std::string f;
    while (std::getline(filters, f, ';')) {
      const auto eq = f.find('=');
      if (eq != std::string::npos) {
        sub.attr_filters.emplace_back(f.substr(0, eq), f.substr(eq + 1));
      }
    }
    subscriptions_[sub.consumer] = std::move(sub);
  }
  rebuild_index();
}

void EventService::checkpoint_registry() {
  if (directory_ == nullptr) return;
  auto save = std::make_shared<CheckpointSaveMsg>();
  save->service = "es/" + std::to_string(partition_.value);
  save->key = "registry";
  save->data = serialize_registry();
  send_any(directory_->service_address(ServiceKind::kCheckpointService, partition_),
           std::move(save));
}

void EventService::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;

  if (const auto* sub = net::message_cast<EsSubscribeMsg>(m)) {
    if (sub->remove) {
      unsubscribe_local(sub->subscription.consumer);
    } else {
      subscribe_local(sub->subscription);
    }
    return;
  }
  if (const auto* reg = net::message_cast<EsRegisterSupplierMsg>(m)) {
    if (reg->remove) {
      suppliers_.erase(reg->supplier);
    } else {
      suppliers_[reg->supplier] = reg->types;
    }
    return;
  }
  if (const auto* pub = net::message_cast<EsPublishMsg>(m)) {
    publish_local(pub->event);
    return;
  }
  if (const auto* replay = net::message_cast<EsReplayMsg>(m)) {
    for (const Event& e : history_) {
      if (e.seq <= replay->after_seq) continue;
      if (!replay->subscription.matches(e)) continue;
      auto notify = std::make_shared<EsNotifyMsg>();
      notify->event = e;
      send_any(replay->subscription.consumer, std::move(notify));
    }
    return;
  }
  if (const auto* sync = net::message_cast<EsSyncMsg>(m)) {
    if (sync->remove) {
      drop_subscription(sync->subscription.consumer);
    } else {
      store_subscription(sync->subscription);
    }
    checkpoint_registry();
    return;
  }
  if (const auto* lr = net::message_cast<CheckpointLoadReplyMsg>(m)) {
    if (lr->request_id != recovery_load_id_) return;
    recovery_load_id_ = 0;
    if (lr->found) restore_registry(lr->data);
    announce_up();
    // Establish a registry checkpoint immediately (even when empty), so the
    // next recovery's load hits the warm local segment instead of scanning
    // the federation.
    checkpoint_registry();
    return;
  }
}

}  // namespace phoenix::kernel
