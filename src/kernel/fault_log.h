// Fault-handling measurement log.
//
// Group service daemons append a record per handled fault with timestamps
// for each phase. The fault-injection benches (Tables 1-3) combine these
// with the known injection times to report detect / diagnose / recover
// durations exactly the way the paper does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ids.h"
#include "sim/time.h"

namespace phoenix::kernel {

enum class FaultKind : std::uint8_t {
  kProcessFailure,   // a daemon died, its node is fine
  kNodeFailure,      // the whole node is unreachable
  kNetworkFailure,   // one interface is down, the node is fine
};

std::string_view to_string(FaultKind kind) noexcept;

struct FaultRecord {
  std::string component;          // "WD", "GSD", "ES", "DB", "CS", extension name
  FaultKind kind;
  net::NodeId node;               // node the fault was located on
  net::PartitionId partition;     // partition the fault belongs to
  net::NetworkId network;         // valid for kNetworkFailure only
  sim::SimTime last_seen_at = 0;  // last sign of life before the anomaly
                                  // (the outage's estimated start; 0 = unknown)
  sim::SimTime detected_at = 0;   // anomaly first noticed
  sim::SimTime diagnosed_at = 0;  // classification complete
  sim::SimTime recovered_at = 0;  // service back up (== diagnosed_at when no recovery action)
  bool recovered = false;         // recovery phase completed
};

class FaultLog {
 public:
  void append(FaultRecord record) { records_.push_back(std::move(record)); }

  /// Marks the newest matching non-recovered record as recovered at `t`.
  /// Returns false when no matching record exists.
  bool mark_recovered(const std::string& component, net::NodeId node,
                      sim::SimTime t) {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      if (!it->recovered && it->component == component && it->node == node) {
        it->recovered = true;
        it->recovered_at = t;
        return true;
      }
    }
    return false;
  }

  /// Same, but matched by partition (used after migrations, where the
  /// recovered instance runs on a different node than the failed one).
  bool mark_recovered_partition(const std::string& component,
                                net::PartitionId partition, sim::SimTime t) {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      if (!it->recovered && it->component == component &&
          it->partition == partition) {
        it->recovered = true;
        it->recovered_at = t;
        return true;
      }
    }
    return false;
  }

  const std::vector<FaultRecord>& records() const noexcept { return records_; }
  void clear() { records_.clear(); }

  /// Newest record matching component (and kind, when given).
  std::optional<FaultRecord> last(const std::string& component,
                                  std::optional<FaultKind> kind = {}) const {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
      if (it->component == component && (!kind || it->kind == *kind)) return *it;
    }
    return std::nullopt;
  }

 private:
  std::vector<FaultRecord> records_;
};

}  // namespace phoenix::kernel
