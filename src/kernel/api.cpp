#include "kernel/api.h"

#include <utility>

namespace phoenix::kernel {

KernelApi::KernelApi(cluster::Cluster& cluster, net::NodeId node,
                     PhoenixKernel& kernel, net::PortId port)
    : Daemon(cluster, "api", node, port),
      kernel_(kernel),
      home_partition_(cluster.partition_of(node)),
      metrics_(&cluster.metrics()),
      spans_(&cluster.span_store()),
      call_latency_(cluster.metrics().histogram("api.call_latency_us")) {
  // Per-status call outcomes, published at snapshot time. With several
  // KernelApi instances on one cluster the last-registered probe wins the
  // shared gauge names — fine for the diagnostic use these serve.
  metrics_probe_ = metrics_->register_probe([this](obs::Registry& r) {
    r.gauge("api.pending_calls")->set(static_cast<double>(calls_.size()));
    r.gauge("api.completed_ok")->set(static_cast<double>(completed_ok_));
    r.gauge("api.retries_sent")->set(static_cast<double>(retries_));
    r.gauge("api.reroutes")->set(static_cast<double>(reroutes_));
    r.gauge("api.timeouts")->set(static_cast<double>(timeouts_));
    r.gauge("api.exhausted")->set(static_cast<double>(exhausted_));
    r.gauge("api.unreachable")->set(static_cast<double>(unreachable_));
    r.gauge("api.denied")->set(static_cast<double>(denied_));
    r.gauge("api.duplicate_replies")
        ->set(static_cast<double>(duplicate_replies_));
  });
  start();
}

KernelApi::~KernelApi() { metrics_->unregister_probe(metrics_probe_); }

// --- retry state machine -------------------------------------------------------

net::CallOptions KernelApi::resolve(net::CallOptions opts) const noexcept {
  if (opts.deadline == 0) opts.deadline = default_deadline_;
  if (opts.max_retries < 0) opts.max_retries = policy_.default_max_retries;
  if (!opts.idempotent) opts.max_retries = 0;
  return opts;
}

net::Address KernelApi::resolve_target(const Call& call, net::Address* home_out) {
  if (!call.use_directory) {
    if (home_out) *home_out = call.fixed_target;
    return call.fixed_target;
  }
  const net::PartitionId home_p =
      call.federated ? home_partition_ : net::PartitionId{0};
  const net::Address home = kernel_.service_address(call.service, home_p);
  if (home_out) *home_out = home;
  if (!call.federated) return home;
  // Federation failover: the home instance is preferred, but while its host
  // node is down (recovery not yet complete) any live peer instance is a
  // full access point — walk the partition ring and take the first one.
  const std::size_t parts = kernel_.partition_count();
  for (std::size_t i = 0; i < parts; ++i) {
    const net::PartitionId p{
        static_cast<std::uint32_t>((home_p.value + i) % parts)};
    const net::Address a = kernel_.service_address(call.service, p);
    if (cluster().node(a.node).alive()) return a;
  }
  return home;
}

void KernelApi::launch(std::uint64_t id, Call call, const char* op) {
  call.op = op;
  call.issued_at = now();
  if (spans_->enabled()) {
    // Root the call's trace here: the ctx's "parent" slot holds the root
    // span's own id, so attempts (and everything under them) link to it.
    call.ctx.trace_id = spans_->mint_id();
    call.ctx.parent_span_id = spans_->mint_id();
  }
  call.deadline_at = now() + call.opts.deadline;
  calls_.emplace(id, std::move(call));
  start_attempt(id);
}

void KernelApi::record_call_span(const Call& call, std::string_view outcome) {
  if (!call.ctx.active()) return;
  spans_->record(obs::Span{call.ctx.trace_id, call.ctx.parent_span_id, 0,
                           call.issued_at, now(), "api",
                           std::string("call:") + call.op,
                           std::string(outcome)});
}

void KernelApi::start_attempt(std::uint64_t id) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  Call& c = it->second;
  ++c.attempt;
  if (c.attempt_field != nullptr) {
    *c.attempt_field = static_cast<std::uint16_t>(c.attempt);
  }

  net::Address home;
  const net::Address target = resolve_target(c, &home);
  const net::Address prev = c.attempt == 1 ? home : c.last_target;
  const bool rerouted = target != prev;
  if (rerouted) {
    ++reroutes_;
    trace(sim::TraceLevel::kInfo,
          "reroute call=" + std::to_string(id) + " node=" +
              std::to_string(target.node.value));
  }
  c.last_target = target;
  if (c.attempt > 1) {
    ++retries_;
    trace(sim::TraceLevel::kInfo,
          "retry call=" + std::to_string(id) +
              " attempt=" + std::to_string(c.attempt));
  }

  // Under tracing each attempt gets its own span (child of the call root),
  // and the send runs inside its ContextScope so the fabric parents the
  // wire hop — and, through it, the server-side serve span — to this
  // attempt. The outcome distinguishes plain sends from retries/reroutes.
  const bool traced = c.ctx.active();
  std::uint64_t attempt_span = 0;
  std::optional<obs::ContextScope> scope;
  if (traced) {
    attempt_span = spans_->mint_id();
    scope.emplace(obs::TraceContext{c.ctx.trace_id, attempt_span});
  }
  const bool sent = target.valid() && send_any(target, c.request).valid();
  scope.reset();
  if (traced) {
    const char* outcome = !sent          ? "send_failed"
                          : rerouted     ? "reroute"
                          : c.attempt > 1 ? "retry"
                                          : "send";
    spans_->record(obs::Span{c.ctx.trace_id, attempt_span,
                             c.ctx.parent_span_id, now(), now(), "api",
                             "attempt:" + std::to_string(c.attempt), outcome});
  }
  if (sent) c.transmitted = true;

  if (c.one_way && sent) {
    // No reply will come; on the wire is as good as done. Not re-armed, so
    // a one-way is never duplicated by the retry machinery.
    Call done = std::move(c);
    calls_.erase(it);
    record_call_span(done, "ok");
    ++completed_ok_;
    if (metrics_->enabled()) call_latency_->record(now() - done.issued_at);
    if (done.fail) done.fail(Status::kOk);
    return;
  }

  // Jitter is drawn only when a retry actually happens, so fault-free runs
  // consume no randomness and stay bit-identical to the pre-retry client.
  sim::SimTime wait = policy_.rto_for(c.attempt);
  if (c.attempt > 1 && policy_.jitter_frac > 0.0) {
    wait = policy_.jittered(wait, engine().rng());
  }
  sim::SimTime fire_at = now() + wait;
  if (fire_at > c.deadline_at) fire_at = c.deadline_at;
  c.timer = engine().schedule_at(fire_at, [this, id] { on_attempt_timer(id); });
}

void KernelApi::on_attempt_timer(std::uint64_t id) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  Call& c = it->second;
  if (now() >= c.deadline_at) {
    fail_call(id, c.transmitted ? Status::kTimeout : Status::kUnreachable);
    return;
  }
  if (c.attempt > c.opts.max_retries) {
    fail_call(id, c.transmitted ? Status::kRetriesExhausted
                                : Status::kUnreachable);
    return;
  }
  start_attempt(id);
}

void KernelApi::fail_call(std::uint64_t id, Status status) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  Call c = std::move(it->second);
  calls_.erase(it);
  engine().cancel(c.timer);
  switch (status) {
    case Status::kTimeout: ++timeouts_; break;
    case Status::kRetriesExhausted: ++exhausted_; break;
    case Status::kUnreachable: ++unreachable_; break;
    default: break;
  }
  // A call that burned its whole retry budget is an operator-grade event:
  // every path to the service failed repeatedly.
  trace(status == Status::kRetriesExhausted ? sim::TraceLevel::kError
                                            : sim::TraceLevel::kWarn,
        "call " + std::to_string(id) + " failed: " +
            std::string(net::to_string(status)));
  record_call_span(c, net::to_string(status));
  if (metrics_->enabled()) call_latency_->record(now() - c.issued_at);
  if (c.fail) c.fail(status);
}

void KernelApi::finish(std::uint64_t id, const net::Message& msg) {
  auto it = calls_.find(id);
  if (it == calls_.end()) {
    ++duplicate_replies_;  // original answer won, or the call already failed
    if (spans_->enabled()) {
      const obs::TraceContext ctx = obs::current_context();
      if (ctx.active()) {
        spans_->record(obs::Span{ctx.trace_id, spans_->mint_id(),
                                 ctx.parent_span_id, now(), now(), "api",
                                 "duplicate_reply", "suppressed"});
      }
    }
    return;
  }
  Call c = std::move(it->second);
  calls_.erase(it);
  engine().cancel(c.timer);
  record_call_span(c, "ok");
  ++completed_ok_;
  if (metrics_->enabled()) call_latency_->record(now() - c.issued_at);
  if (c.complete) c.complete(msg);
}

// --- configuration -------------------------------------------------------------

void KernelApi::config_get(const std::string& key,
                           Callback<std::optional<std::string>> done,
                           CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<ConfigGetMsg>();
  msg->key = key;
  msg->reply_to = address();
  msg->request_id = id;
  Call c;
  c.complete = [done](const net::Message& m) {
    const auto* reply = net::message_cast<ConfigGetReplyMsg>(m);
    if (reply == nullptr || !done) return;
    using R = Result<std::optional<std::string>>;
    done(reply->found ? R::success(reply->value) : R::success(std::nullopt));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<std::optional<std::string>>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.service = ServiceKind::kConfiguration;
  c.opts = resolve(opts);
  launch(id, std::move(c), "config_get");
}

void KernelApi::config_set(const std::string& key, const std::string& value,
                           Callback<std::uint64_t> done, CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<ConfigSetMsg>();
  msg->key = key;
  msg->value = value;
  msg->reply_to = address();
  msg->request_id = id;
  Call c;
  c.complete = [done](const net::Message& m) {
    const auto* reply = net::message_cast<ConfigSetReplyMsg>(m);
    if (reply == nullptr || !done) return;
    done(Result<std::uint64_t>::success(reply->version));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<std::uint64_t>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.service = ServiceKind::kConfiguration;
  c.opts = resolve(opts);
  launch(id, std::move(c), "config_set");
}

// --- security -------------------------------------------------------------------

void KernelApi::authenticate(const std::string& user, const std::string& secret,
                             Callback<Token> done, CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<AuthRequestMsg>();
  msg->user = user;
  msg->secret = secret;
  msg->reply_to = address();
  msg->request_id = id;
  Call c;
  c.complete = [this, done](const net::Message& m) {
    const auto* reply = net::message_cast<AuthReplyMsg>(m);
    if (reply == nullptr) return;
    if (!reply->ok) {
      ++denied_;
      if (done) done(Result<Token>::failure(Status::kDenied));
      return;
    }
    if (done) done(Result<Token>::success(reply->token));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<Token>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.service = ServiceKind::kSecurity;
  c.opts = resolve(opts);
  launch(id, std::move(c), "authenticate");
}

void KernelApi::authorize(const Token& token, const std::string& action,
                          const std::string& resource, Callback<bool> done,
                          CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<AuthzRequestMsg>();
  msg->token = token;
  msg->action = action;
  msg->resource = resource;
  msg->reply_to = address();
  msg->request_id = id;
  Call c;
  c.complete = [this, done](const net::Message& m) {
    const auto* reply = net::message_cast<AuthzReplyMsg>(m);
    if (reply == nullptr) return;
    if (!reply->allowed) {
      ++denied_;
      if (done) done(Result<bool>::failure(Status::kDenied));
      return;
    }
    if (done) done(Result<bool>::success(true));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<bool>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.service = ServiceKind::kSecurity;
  c.opts = resolve(opts);
  launch(id, std::move(c), "authorize");
}

// --- checkpoint -----------------------------------------------------------------

void KernelApi::checkpoint_save(const std::string& service,
                                const std::string& key, std::string data,
                                Callback<std::uint64_t> done, CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<CheckpointSaveMsg>();
  msg->service = service;
  msg->key = key;
  msg->data = std::move(data);
  msg->reply_to = address();
  msg->request_id = id;
  Call c;
  c.complete = [done](const net::Message& m) {
    const auto* reply = net::message_cast<CheckpointSaveReplyMsg>(m);
    if (reply == nullptr || !done) return;
    done(Result<std::uint64_t>::success(reply->version));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<std::uint64_t>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.service = ServiceKind::kCheckpointService;
  c.federated = true;
  c.opts = resolve(opts);
  launch(id, std::move(c), "checkpoint_save");
}

void KernelApi::checkpoint_load(const std::string& service,
                                const std::string& key,
                                Callback<std::optional<std::string>> done,
                                CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<CheckpointLoadMsg>();
  msg->service = service;
  msg->key = key;
  msg->reply_to = address();
  msg->request_id = id;
  Call c;
  c.complete = [done](const net::Message& m) {
    const auto* reply = net::message_cast<CheckpointLoadReplyMsg>(m);
    if (reply == nullptr || !done) return;
    using R = Result<std::optional<std::string>>;
    done(reply->found ? R::success(reply->data) : R::success(std::nullopt));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<std::optional<std::string>>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.service = ServiceKind::kCheckpointService;
  c.federated = true;
  c.opts = resolve(opts);
  launch(id, std::move(c), "checkpoint_load");
}

// --- data bulletin --------------------------------------------------------------

void KernelApi::query(BulletinTable table, bool cluster_scope,
                      BulletinFilter filter, Callback<BulletinSnapshot> done,
                      CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<DbQueryMsg>();
  msg->table = table;
  msg->cluster_scope = cluster_scope;
  msg->filter = std::move(filter);
  msg->reply_to = address();
  msg->query_id = id;
  Call c;
  c.complete = [done](const net::Message& m) {
    const auto* reply = net::message_cast<DbQueryReplyMsg>(m);
    if (reply == nullptr || !done) return;
    BulletinSnapshot snap;
    snap.nodes = reply->node_rows;
    snap.apps = reply->app_rows;
    snap.partitions_included = reply->partitions_included;
    done(Result<BulletinSnapshot>::success(std::move(snap)));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<BulletinSnapshot>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.service = ServiceKind::kDataBulletin;
  c.federated = true;
  c.opts = resolve(opts);
  launch(id, std::move(c), "query");
}

void KernelApi::service_stats(Callback<std::vector<ServiceStatsRecord>> done,
                              CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<DbServiceStatsQueryMsg>();
  msg->reply_to = address();
  msg->query_id = id;
  Call c;
  c.complete = [done](const net::Message& m) {
    const auto* reply = net::message_cast<DbServiceStatsReplyMsg>(m);
    if (reply == nullptr || !done) return;
    done(Result<std::vector<ServiceStatsRecord>>::success(reply->rows));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<std::vector<ServiceStatsRecord>>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.service = ServiceKind::kDataBulletin;
  c.federated = true;
  c.opts = resolve(opts);
  launch(id, std::move(c), "service_stats");
}

// --- events ---------------------------------------------------------------------

void KernelApi::subscribe(std::vector<std::string> types, EventCallback on_event,
                          Callback<bool> done, CallOptions opts) {
  on_event_ = std::move(on_event);
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<EsSubscribeMsg>();
  msg->subscription.consumer = address();
  msg->subscription.types = std::move(types);
  Call c;
  c.fail = [done](Status s) {
    if (!done) return;
    done(s == Status::kOk ? Result<bool>::success(true)
                          : Result<bool>::failure(s));
  };
  c.request = std::move(msg);
  c.service = ServiceKind::kEventService;
  c.federated = true;
  c.one_way = true;
  c.opts = resolve(opts);
  launch(id, std::move(c), "subscribe");
}

void KernelApi::publish(Event event, Callback<bool> done, CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<EsPublishMsg>();
  msg->event = std::move(event);
  Call c;
  c.fail = [done](Status s) {
    if (!done) return;
    done(s == Status::kOk ? Result<bool>::success(true)
                          : Result<bool>::failure(s));
  };
  c.request = std::move(msg);
  c.service = ServiceKind::kEventService;
  c.federated = true;
  c.one_way = true;
  c.opts = resolve(opts);
  launch(id, std::move(c), "publish");
}

// --- ppm ------------------------------------------------------------------------

void KernelApi::spawn(net::NodeId node, ProcessSpec spec,
                      Callback<cluster::Pid> done,
                      std::function<void(cluster::Pid)> on_exit,
                      CallOptions opts) {
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<SpawnMsg>();
  msg->spec = std::move(spec);
  msg->reply_to = address();
  if (on_exit) msg->exit_notify = address();
  msg->request_id = id;
  Call c;
  c.complete = [this, done, on_exit](const net::Message& m) {
    const auto* reply = net::message_cast<SpawnReplyMsg>(m);
    if (reply == nullptr) return;
    if (!reply->ok) {
      ++denied_;
      if (done) done(Result<cluster::Pid>::failure(Status::kDenied));
      return;
    }
    if (on_exit) exit_watch_[reply->pid] = on_exit;
    if (done) done(Result<cluster::Pid>::success(reply->pid));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<cluster::Pid>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.use_directory = false;
  c.fixed_target = {node, port_of(ServiceKind::kProcessManager)};
  c.opts = resolve(opts);
  launch(id, std::move(c), "spawn");
}

void KernelApi::parallel_command(const std::string& command,
                                 std::vector<net::NodeId> nodes,
                                 std::size_t fanout,
                                 Callback<CommandOutcome> done,
                                 CallOptions opts) {
  if (nodes.empty()) {
    if (done) done(Result<CommandOutcome>::success({}));
    return;
  }
  const std::uint64_t id = next_id_++;
  auto msg = std::make_shared<ParallelCmdMsg>();
  msg->command = command;
  msg->nodes = std::move(nodes);
  msg->fanout = fanout;
  msg->reply_to = address();
  msg->request_id = id;
  const net::NodeId root = msg->nodes.front();
  Call c;
  c.complete = [done](const net::Message& m) {
    const auto* reply = net::message_cast<ParallelCmdReplyMsg>(m);
    if (reply == nullptr || !done) return;
    done(Result<CommandOutcome>::success(
        CommandOutcome{reply->succeeded, reply->failed}));
  };
  c.fail = [done](Status s) {
    if (done) done(Result<CommandOutcome>::failure(s));
  };
  c.attempt_field = &msg->attempt;
  c.request = std::move(msg);
  c.use_directory = false;
  c.fixed_target = {root, port_of(ServiceKind::kProcessManager)};
  c.opts = resolve(opts);
  launch(id, std::move(c), "parallel_command");
}

// --- dispatch -------------------------------------------------------------------

void KernelApi::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;

  if (const auto* notify = net::message_cast<EsNotifyMsg>(m)) {
    if (on_event_) on_event_(notify->event);
    return;
  }
  if (const auto* exited = net::message_cast<ExitNotifyMsg>(m)) {
    auto it = exit_watch_.find(exited->pid);
    if (it != exit_watch_.end()) {
      auto cb = std::move(it->second);
      exit_watch_.erase(it);
      cb(exited->pid);
    }
    return;
  }

  // Correlated replies: every protocol uses a request/query id field.
  if (const auto* r = net::message_cast<ConfigGetReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<ConfigSetReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<AuthReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<AuthzReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<CheckpointSaveReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<CheckpointLoadReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<DbQueryReplyMsg>(m)) return finish(r->query_id, m);
  if (const auto* r = net::message_cast<DbServiceStatsReplyMsg>(m)) return finish(r->query_id, m);
  if (const auto* r = net::message_cast<SpawnReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<ParallelCmdReplyMsg>(m)) return finish(r->request_id, m);
}

}  // namespace phoenix::kernel
