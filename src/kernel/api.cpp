#include "kernel/api.h"

namespace phoenix::kernel {

KernelApi::KernelApi(cluster::Cluster& cluster, net::NodeId node,
                     PhoenixKernel& kernel, net::PortId port)
    : Daemon(cluster, "api", node, port),
      kernel_(kernel),
      home_partition_(cluster.partition_of(node)) {
  start();
}

std::uint64_t KernelApi::issue(std::function<void(const net::Message&)> complete,
                               std::function<void()> expire) {
  const std::uint64_t id = next_id_++;
  pending_[id] = Pending{std::move(complete), std::move(expire)};
  engine().schedule_after(call_timeout_, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    Pending p = std::move(it->second);
    pending_.erase(it);
    ++timeouts_;
    if (p.expire) p.expire();
  });
  return id;
}

void KernelApi::finish(std::uint64_t id, const net::Message& msg) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.complete) p.complete(msg);
}

// --- configuration -------------------------------------------------------------

void KernelApi::config_get(const std::string& key, GetCallback done) {
  auto msg = std::make_shared<ConfigGetMsg>();
  msg->key = key;
  msg->reply_to = address();
  msg->request_id = issue(
      [done](const net::Message& m) {
        const auto* reply = net::message_cast<ConfigGetReplyMsg>(m);
        if (reply != nullptr && reply->found) {
          done(reply->value);
        } else {
          done(std::nullopt);
        }
      },
      [done] { done(std::nullopt); });
  send_any(kernel_.service_address(ServiceKind::kConfiguration, net::PartitionId{0}),
           std::move(msg));
}

void KernelApi::config_set(const std::string& key, const std::string& value,
                           SetCallback done) {
  auto msg = std::make_shared<ConfigSetMsg>();
  msg->key = key;
  msg->value = value;
  msg->reply_to = address();
  msg->request_id = issue(
      [done](const net::Message& m) {
        const auto* reply = net::message_cast<ConfigSetReplyMsg>(m);
        done(reply != nullptr, reply != nullptr ? reply->version : 0);
      },
      [done] { done(false, 0); });
  send_any(kernel_.service_address(ServiceKind::kConfiguration, net::PartitionId{0}),
           std::move(msg));
}

// --- security -------------------------------------------------------------------

void KernelApi::authenticate(const std::string& user, const std::string& secret,
                             AuthCallback done) {
  auto msg = std::make_shared<AuthRequestMsg>();
  msg->user = user;
  msg->secret = secret;
  msg->reply_to = address();
  msg->request_id = issue(
      [done](const net::Message& m) {
        const auto* reply = net::message_cast<AuthReplyMsg>(m);
        if (reply != nullptr && reply->ok) {
          done(reply->token);
        } else {
          done(std::nullopt);
        }
      },
      [done] { done(std::nullopt); });
  send_any(kernel_.service_address(ServiceKind::kSecurity, net::PartitionId{0}),
           std::move(msg));
}

void KernelApi::authorize(const Token& token, const std::string& action,
                          const std::string& resource, AuthzCallback done) {
  auto msg = std::make_shared<AuthzRequestMsg>();
  msg->token = token;
  msg->action = action;
  msg->resource = resource;
  msg->reply_to = address();
  msg->request_id = issue(
      [done](const net::Message& m) {
        const auto* reply = net::message_cast<AuthzReplyMsg>(m);
        done(reply != nullptr && reply->allowed);
      },
      [done] { done(false); });
  send_any(kernel_.service_address(ServiceKind::kSecurity, net::PartitionId{0}),
           std::move(msg));
}

// --- checkpoint -----------------------------------------------------------------

void KernelApi::checkpoint_save(const std::string& service, const std::string& key,
                                std::string data, SaveCallback done) {
  auto msg = std::make_shared<CheckpointSaveMsg>();
  msg->service = service;
  msg->key = key;
  msg->data = std::move(data);
  msg->reply_to = address();
  msg->request_id = issue(
      [done](const net::Message& m) {
        const auto* reply = net::message_cast<CheckpointSaveReplyMsg>(m);
        done(reply != nullptr, reply != nullptr ? reply->version : 0);
      },
      [done] { done(false, 0); });
  send_any(kernel_.service_address(ServiceKind::kCheckpointService, home_partition_),
           std::move(msg));
}

void KernelApi::checkpoint_load(const std::string& service, const std::string& key,
                                LoadCallback done) {
  auto msg = std::make_shared<CheckpointLoadMsg>();
  msg->service = service;
  msg->key = key;
  msg->reply_to = address();
  msg->request_id = issue(
      [done](const net::Message& m) {
        const auto* reply = net::message_cast<CheckpointLoadReplyMsg>(m);
        if (reply != nullptr && reply->found) {
          done(reply->data);
        } else {
          done(std::nullopt);
        }
      },
      [done] { done(std::nullopt); });
  send_any(kernel_.service_address(ServiceKind::kCheckpointService, home_partition_),
           std::move(msg));
}

// --- data bulletin --------------------------------------------------------------

void KernelApi::query(BulletinTable table, bool cluster_scope,
                      BulletinFilter filter, QueryCallback done) {
  auto msg = std::make_shared<DbQueryMsg>();
  msg->table = table;
  msg->cluster_scope = cluster_scope;
  msg->filter = std::move(filter);
  msg->reply_to = address();
  msg->query_id = issue(
      [done](const net::Message& m) {
        const auto* reply = net::message_cast<DbQueryReplyMsg>(m);
        if (reply != nullptr) {
          done(reply->node_rows, reply->app_rows);
        } else {
          done({}, {});
        }
      },
      [done] { done({}, {}); });
  send_any(kernel_.service_address(ServiceKind::kDataBulletin, home_partition_),
           std::move(msg));
}

// --- events ---------------------------------------------------------------------

void KernelApi::subscribe(std::vector<std::string> types, EventCallback on_event) {
  on_event_ = std::move(on_event);
  auto msg = std::make_shared<EsSubscribeMsg>();
  msg->subscription.consumer = address();
  msg->subscription.types = std::move(types);
  send_any(kernel_.service_address(ServiceKind::kEventService, home_partition_),
           std::move(msg));
}

void KernelApi::publish(Event event) {
  auto msg = std::make_shared<EsPublishMsg>();
  msg->event = std::move(event);
  send_any(kernel_.service_address(ServiceKind::kEventService, home_partition_),
           std::move(msg));
}

// --- ppm ------------------------------------------------------------------------

void KernelApi::spawn(net::NodeId node, ProcessSpec spec, SpawnCallback done,
                      std::function<void(cluster::Pid)> on_exit) {
  auto msg = std::make_shared<SpawnMsg>();
  msg->spec = std::move(spec);
  msg->reply_to = address();
  if (on_exit) msg->exit_notify = address();
  msg->request_id = issue(
      [this, done, on_exit](const net::Message& m) {
        const auto* reply = net::message_cast<SpawnReplyMsg>(m);
        if (reply != nullptr && reply->ok) {
          if (on_exit) exit_watch_[reply->pid] = on_exit;
          done(true, reply->pid);
        } else {
          done(false, 0);
        }
      },
      [done] { done(false, 0); });
  send_any({node, port_of(ServiceKind::kProcessManager)}, std::move(msg));
}

void KernelApi::parallel_command(const std::string& command,
                                 std::vector<net::NodeId> nodes,
                                 std::size_t fanout, CommandCallback done) {
  if (nodes.empty()) {
    done(0, 0);
    return;
  }
  auto msg = std::make_shared<ParallelCmdMsg>();
  msg->command = command;
  msg->nodes = std::move(nodes);
  msg->fanout = fanout;
  msg->reply_to = address();
  const net::Address root{msg->nodes.front(),
                          port_of(ServiceKind::kProcessManager)};
  msg->request_id = issue(
      [done](const net::Message& m) {
        const auto* reply = net::message_cast<ParallelCmdReplyMsg>(m);
        if (reply != nullptr) {
          done(reply->succeeded, reply->failed);
        } else {
          done(0, 0);
        }
      },
      [done] { done(0, 0); });
  send_any(root, std::move(msg));
}

// --- dispatch -------------------------------------------------------------------

void KernelApi::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;

  if (const auto* notify = net::message_cast<EsNotifyMsg>(m)) {
    if (on_event_) on_event_(notify->event);
    return;
  }
  if (const auto* exited = net::message_cast<ExitNotifyMsg>(m)) {
    auto it = exit_watch_.find(exited->pid);
    if (it != exit_watch_.end()) {
      auto cb = std::move(it->second);
      exit_watch_.erase(it);
      cb(exited->pid);
    }
    return;
  }

  // Correlated replies: every protocol uses a request/query id field.
  if (const auto* r = net::message_cast<ConfigGetReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<ConfigSetReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<AuthReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<AuthzReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<CheckpointSaveReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<CheckpointLoadReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<DbQueryReplyMsg>(m)) return finish(r->query_id, m);
  if (const auto* r = net::message_cast<SpawnReplyMsg>(m)) return finish(r->request_id, m);
  if (const auto* r = net::message_cast<ParallelCmdReplyMsg>(m)) return finish(r->request_id, m);
}

}  // namespace phoenix::kernel
