// ServiceRuntime — the shared substrate every kernel service runs on.
//
// The paper's kernel is a minimum set of cluster core functions whose
// services are uniformly checkpointed (§4.2) and uniformly failed over by
// the GSD ring (§4.3). This layer sits between cluster::Daemon and each
// service and owns the four things they previously hand-rolled:
//
//   1. Declarative typed dispatch — a service registers `on<MsgT>(handler)`
//      once at construction; handle() routes by interned message-type id
//      through a dense table (one array index, one indirect call) instead of
//      a per-service if/cast chain.
//   2. At-most-once serving — serve_mutating()/serve_idempotent() own the
//      ReplayCache begin/complete protocol, so a retried RPC replays its
//      original reply instead of being applied twice.
//   3. One lifecycle — snapshot()/restore() plus on_takeover() hooks; the
//      runtime issues the checkpoint saves (save_state/mark_dirty) and runs
//      the recover-on-start load loop, so checkpointing and group-service
//      failover drive every service through the same code path.
//   4. Uniform counters — messages by type, replays, restores, takeovers —
//      optionally published into the partition bulletin (ServiceStatsMsg)
//      for GridView-style monitors.
//
// See DESIGN.md §10 for the lifecycle diagram and a worked example of
// adding a new service in ~30 lines.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/ft_params.h"
#include "kernel/service_kind.h"
#include "kernel/service_msgs.h"
#include "net/message.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "obs/span_store.h"
#include "obs/trace_context.h"
#include "sim/engine.h"

namespace phoenix::kernel {

/// Uniform per-service counters maintained by the runtime.
struct RuntimeCounters {
  /// Delivered envelopes broken down by message type.
  net::TypeCounts messages_by_type;
  std::uint64_t messages_received = 0;
  /// Delivered envelopes with no registered handler.
  std::uint64_t messages_unhandled = 0;
  /// Checkpoint saves issued (save_state / coalesced mark_dirty flushes).
  std::uint64_t snapshots_saved = 0;
  /// Successful restore() invocations (recover-on-start hits).
  std::uint64_t restores = 0;
  /// Times this instance came up as a failover replacement.
  std::uint64_t takeovers = 0;
  /// Mutating requests rejected because they carried a stale (nonzero,
  /// below-watermark) meta-group epoch — a fenced ex-Leader knocking.
  std::uint64_t fenced_rejections = 0;
};

/// Periodic per-service health row published into the partition's bulletin
/// when FtParams::service_stats_interval > 0 (off by default).
struct ServiceStatsMsg final : net::Message {
  std::string service;  // daemon name, e.g. "es/0"
  ServiceKind kind = ServiceKind::kEventService;
  net::PartitionId partition;
  net::NodeId node;
  std::uint64_t messages_received = 0;
  std::uint64_t messages_unhandled = 0;
  std::uint64_t replays_served = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t snapshots_saved = 0;
  std::uint64_t restores = 0;
  std::uint64_t takeovers = 0;

  PHOENIX_MESSAGE_TYPE("runtime.service_stats")
  std::size_t wire_size() const noexcept override { return service.size() + 64; }
};

// Forward declaration: the generic recovery loop speaks the checkpoint wire
// protocol (kernel/checkpoint/checkpoint_msgs.h, included by the .cpp).
struct CheckpointLoadReplyMsg;

class ServiceRuntime : public cluster::Daemon {
 public:
  struct Options {
    ServiceKind kind = ServiceKind::kEventService;
    net::PartitionId partition{};
    /// Checkpoint namespace ("es/0"); empty means the service carries no
    /// checkpointed state — snapshot()/restore() are never invoked and
    /// save_state()/mark_dirty() are no-ops.
    std::string checkpoint_namespace{};
    std::string checkpoint_key = "state";
    /// Report ServiceUpMsg to the partition's GSD once the service is ready
    /// (immediately on start, or after recovery completes / gives up).
    bool announce_up = false;
    /// Load the snapshot back from the checkpoint federation before
    /// announcing (requires a directory, FtParams, and a namespace).
    bool recover_on_start = false;
    /// Load attempts before coming up empty-handed.
    int recovery_attempts = 5;
    /// Extension component name stamped into ServiceUpMsg (empty for the
    /// built-in kernel services).
    std::string extension{};
  };

  const RuntimeCounters& counters() const noexcept { return counters_; }

  /// The runtime-owned at-most-once filter. Exposed for tests and for the
  /// PPM's asynchronous parallel-command completion, which must begin and
  /// complete across separate simulation events.
  net::ReplayCache& replay_cache() noexcept { return replay_; }
  const net::ReplayCache& replay_cache() const noexcept { return replay_; }

  /// Marks the next start() as a failover takeover (called by the directory
  /// when it creates this instance as a replacement for a failed one).
  void mark_takeover() noexcept { pending_takeover_ = true; }

  /// Highest meta-group epoch this runtime has been fenced to
  /// (EpochFenceMsg) for the given ring scope. 0 until that ring's first
  /// quorum takeover broadcasts a fence; quorum views bootstrap at epoch 1,
  /// so that first fence already carries epoch >= 2 and outranks
  /// pre-takeover traffic. Scope 0 is the flat meta-group; under a zoned
  /// topology each zone ring and the top ring fence independently.
  std::uint64_t witnessed_epoch(std::uint32_t scope = 0) const noexcept;

 protected:
  /// `directory` and `params` may be null for standalone use in unit tests;
  /// announcement, recovery, checkpointing, and stats publishing all require
  /// them and degrade to no-ops when absent.
  ServiceRuntime(cluster::Cluster& cluster, std::string name, net::NodeId node,
                 net::PortId port, ServiceDirectory* directory,
                 const FtParams* params, Options opts, double cpu_share = 0.0);
  ~ServiceRuntime() override;

  ServiceDirectory* directory() const noexcept { return directory_; }
  const Options& options() const noexcept { return opts_; }

  // --- declarative dispatch -------------------------------------------------

  /// Registers `fn` for MsgT, keyed by the class's interned type id. The
  /// handler signature is either (const MsgT&) or (const MsgT&, const
  /// net::Envelope&) for handlers that need the source address or network.
  /// All message classes are final, so an id match makes the static_cast
  /// exact. Call once per type, at construction.
  template <typename MsgT, typename F>
  void on(F&& fn) {
    static_assert(std::is_base_of_v<net::Message, MsgT>);
    static_assert(std::is_final_v<MsgT>,
                  "dispatch casts by exact type id; MsgT must be final");
    const net::MessageTypeId id = MsgT::static_type_id();
    if (id.value >= table_.size()) table_.resize(id.value + std::size_t{1});
    table_[id.value] = [fn = std::forward<F>(fn)](const net::Envelope& env) {
      const auto& msg = static_cast<const MsgT&>(*env.message);
      if constexpr (std::is_invocable_v<const F&, const MsgT&,
                                        const net::Envelope&>) {
        fn(msg, env);
      } else {
        fn(msg);
      }
    };
  }

  // --- at-most-once serving -------------------------------------------------

  /// Runs `exec` under the ReplayCache begin/complete protocol. A retried
  /// request is answered from the cache without re-running `exec`; a request
  /// whose first execution is still in flight is dropped (its eventual reply
  /// serves the retry). `exec` returns the reply message, or nullptr for
  /// "executed, nothing to send" (the side effect still happened exactly
  /// once). The reply is only transmitted when `req.reply_to` is valid —
  /// requests without a reply address still execute.
  template <typename Req, typename Exec>
  void serve_mutating(const Req& req, Exec&& exec) {
    std::shared_ptr<const net::Message> replay;
    switch (replay_.begin(req.reply_to, req.type_id(), req.request_id, &replay)) {
      case net::ReplayCache::Admit::kReplay:
        // The replayed reply goes out under the current (serve-span) scope,
        // so the retry's trace shows the dedup hit, not a re-execution.
        serve_outcome_ = "replay";
        send_any(req.reply_to, std::move(replay));
        return;
      case net::ReplayCache::Admit::kInFlight:
        serve_outcome_ = "in_flight";
        return;
      case net::ReplayCache::Admit::kNew:
        break;
    }
    std::shared_ptr<const net::Message> reply = exec();
    if (reply == nullptr) return;
    replay_.complete(req.reply_to, req.type_id(), req.request_id, reply);
    if (req.reply_to.valid()) send_any(req.reply_to, std::move(reply));
  }

  /// For read-only requests: no dedup needed (re-executing is harmless), so
  /// this just runs `exec` and sends the reply (nullptr = nothing to send).
  template <typename Req, typename Exec>
  void serve_idempotent(const Req& req, Exec&& exec) {
    std::shared_ptr<const net::Message> reply = exec();
    if (reply == nullptr) return;
    send_any(req.reply_to, std::move(reply));
  }

  // --- lifecycle ------------------------------------------------------------

  /// Start-order hook for timers and service-specific boot work. Runs after
  /// takeover accounting, before recovery / announcement.
  virtual void on_service_start() {}
  virtual void on_service_stop() {}

  /// Invoked (before on_service_start) when this instance starts as a
  /// failover replacement created through the directory.
  virtual void on_takeover() {}

  /// Serialized service state for checkpointing. Paired with restore().
  virtual std::string snapshot() const { return {}; }
  virtual void restore(const std::string& data) { (void)data; }

  /// Delivered envelope with no registered handler (default: drop).
  virtual void on_unhandled(const net::Envelope& env) { (void)env; }

  /// Epoch fencing gate for mutating requests. Epoch 0 is legacy/unfenced
  /// traffic and always passes (the paper's unilateral policy never stamps
  /// epochs, so its behaviour is untouched). A nonzero epoch at or above the
  /// watermark is admitted; a stale one is rejected and counted — the caller
  /// must drop or fail the request. Admission is a pure check: only the
  /// meta-group's fence broadcast raises the watermark (see
  /// raise_epoch_watermark), so a request stamped with an inflated epoch
  /// cannot fence a runtime against legitimate traffic. Watermarks are kept
  /// per ring scope: a zone ring's takeover must not fence another zone's
  /// leader (scope 0 — the flat meta-group — is the fast path).
  bool admit_epoch(std::uint64_t epoch, std::uint32_t scope = 0);

  /// Raises the fencing watermark of `scope` to `epoch` (never lowers it).
  /// Invoked by the EpochFenceMsg handler. Trust assumption: the simulated
  /// fabric carries no sender authentication, so any fence received is taken
  /// to originate from the meta-group — only GSDs emit them in practice.
  void raise_epoch_watermark(std::uint64_t epoch, std::uint32_t scope = 0);

  /// Epoch this service stamps into its own mutating RPCs (checkpoint
  /// saves). 0 for every service except the GSD, which returns its
  /// meta-group epoch so a deposed instance's writes can be fenced.
  virtual std::uint64_t fence_epoch() const { return 0; }

  /// Ring scope fence_epoch() belongs to. 0 for every service except a GSD
  /// running under a zoned topology, which stamps its zone ring's scope.
  virtual std::uint32_t fence_scope() const { return 0; }

  /// Reports this instance up to the partition's GSD (closes open fault
  /// records). No-op without a directory.
  void announce_up();

  /// Saves snapshot() into the checkpoint federation immediately.
  void save_state();

  /// Checkpoint-on-change with per-tick coalescing: the first change in a
  /// simulation tick saves immediately (leading edge); further changes in
  /// the same tick are folded into one trailing flush at the end of the
  /// tick. Cuts the save traffic of burst updates (e.g. an EsSyncMsg batch)
  /// from O(changes) to at most two messages per tick.
  void mark_dirty();

 private:
  void handle(const net::Envelope& env) final;
  void on_start() final;
  void on_stop() final;

  /// Slow path of handle(): serve span + serve-latency histogram. Split out
  /// so the default path stays the dense-table dispatch plus one branch.
  void handle_observed(const net::Envelope& env, net::MessageTypeId id);
  void dispatch(const net::Envelope& env, net::MessageTypeId id);

  void attempt_recovery_load();
  void on_recovery_reply(const CheckpointLoadReplyMsg& reply);
  void publish_stats();

  ServiceDirectory* directory_;
  const FtParams* params_;
  Options opts_;
  std::vector<std::function<void(const net::Envelope&)>> table_;
  net::ReplayCache replay_;
  RuntimeCounters counters_;

  obs::Registry* metrics_;        // cluster-owned
  obs::SpanStore* spans_;         // cluster-owned
  obs::Histogram* serve_latency_ = nullptr;  // resolved on first observed serve
  /// Set by serve_mutating when the replay cache answered for it; read back
  /// by handle_observed as the serve span's outcome.
  const char* serve_outcome_ = nullptr;

  bool pending_takeover_ = false;
  /// Fencing watermark of scope 0 (the flat meta-group) — scalar fast path,
  /// the only scope that exists outside zoned topologies.
  std::uint64_t witnessed_epoch_ = 0;
  /// Watermarks of nonzero scopes (zone rings, top ring); allocated lazily.
  std::unordered_map<std::uint32_t, std::uint64_t> scoped_epochs_;

  // recover-on-start state (mirrors the original EventService protocol)
  int recovery_attempts_left_ = 0;
  std::uint64_t recovery_load_id_ = 0;

  // mark_dirty() coalescing state
  sim::SimTime last_save_time_ = 0;
  bool ever_saved_ = false;
  bool dirty_ = false;
  bool flush_scheduled_ = false;

  std::unique_ptr<sim::PeriodicTask> stats_task_;
};

}  // namespace phoenix::kernel
