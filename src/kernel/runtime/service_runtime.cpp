#include "kernel/runtime/service_runtime.h"

#include "kernel/checkpoint/checkpoint_msgs.h"

namespace phoenix::kernel {

ServiceRuntime::ServiceRuntime(cluster::Cluster& cluster, std::string name,
                               net::NodeId node, net::PortId port,
                               ServiceDirectory* directory,
                               const FtParams* params, Options opts,
                               double cpu_share)
    : cluster::Daemon(cluster, std::move(name), node, port, cpu_share),
      directory_(directory),
      params_(params),
      opts_(std::move(opts)),
      metrics_(&cluster.metrics()),
      spans_(&cluster.span_store()) {
  // Every runtime understands the fencing broadcast; under the unilateral
  // policy the message simply never arrives.
  on<EpochFenceMsg>([this](const EpochFenceMsg& fence) {
    raise_epoch_watermark(fence.epoch, fence.scope);
  });
  if (opts_.recover_on_start) {
    // The recovery loop is the only handler the runtime registers itself; a
    // service that needs CheckpointLoadReplyMsg for its own protocol (the
    // checkpoint federation, the GSD view fetch) keeps recover_on_start off
    // and owns the type.
    on<CheckpointLoadReplyMsg>([this](const CheckpointLoadReplyMsg& reply) {
      on_recovery_reply(reply);
    });
  }
}

ServiceRuntime::~ServiceRuntime() = default;

std::uint64_t ServiceRuntime::witnessed_epoch(std::uint32_t scope) const noexcept {
  if (scope == 0) return witnessed_epoch_;
  auto it = scoped_epochs_.find(scope);
  return it == scoped_epochs_.end() ? 0 : it->second;
}

bool ServiceRuntime::admit_epoch(std::uint64_t epoch, std::uint32_t scope) {
  if (epoch == 0) return true;  // legacy / unfenced traffic
  if (epoch >= witnessed_epoch(scope)) return true;
  ++counters_.fenced_rejections;
  return false;
}

void ServiceRuntime::raise_epoch_watermark(std::uint64_t epoch,
                                           std::uint32_t scope) {
  if (scope == 0) {
    if (epoch > witnessed_epoch_) witnessed_epoch_ = epoch;
    return;
  }
  auto& watermark = scoped_epochs_[scope];
  if (epoch > watermark) watermark = epoch;
}

void ServiceRuntime::handle(const net::Envelope& env) {
  const net::MessageTypeId id = env.message->type_id();
  ++counters_.messages_received;
  counters_.messages_by_type.slot(id) += 1;
  if (spans_->enabled() || metrics_->enabled()) {
    handle_observed(env, id);
    return;
  }
  dispatch(env, id);
}

void ServiceRuntime::dispatch(const net::Envelope& env, net::MessageTypeId id) {
  if (id.value < table_.size() && table_[id.value]) {
    table_[id.value](env);
    return;
  }
  ++counters_.messages_unhandled;
  on_unhandled(env);
}

void ServiceRuntime::handle_observed(const net::Envelope& env,
                                     net::MessageTypeId id) {
  if (metrics_->enabled()) {
    // Transport + queue latency, measurable only for envelopes that came
    // through a traced fabric delivery (the ambient frame carries the wire
    // send time); direct test deliveries have no frame and are skipped.
    const sim::SimTime sent_at = obs::current_delivery_sent_at();
    if (sent_at != 0) {
      if (serve_latency_ == nullptr) {
        serve_latency_ = metrics_->histogram("svc." + name() +
                                             ".serve_latency_us");
      }
      serve_latency_->record(now() - sent_at);
    }
  }
  const obs::TraceContext ctx = obs::current_context();
  if (spans_->enabled() && ctx.active()) {
    const bool handled = id.value < table_.size() && table_[id.value] != nullptr;
    const std::uint64_t span_id = spans_->mint_id();
    const sim::SimTime started = now();
    serve_outcome_ = nullptr;
    {
      // Handlers (and their replies) parent to this serve span; a dedup hit
      // in serve_mutating reports itself through serve_outcome_.
      obs::ContextScope scope(obs::TraceContext{ctx.trace_id, span_id});
      dispatch(env, id);
    }
    const char* outcome = serve_outcome_ != nullptr ? serve_outcome_
                          : handled                 ? "handled"
                                                    : "unhandled";
    serve_outcome_ = nullptr;
    spans_->record(obs::Span{ctx.trace_id, span_id, ctx.parent_span_id, started,
                             now(), name(),
                             "serve:" + std::string(env.message->type()),
                             outcome});
    return;
  }
  dispatch(env, id);
}

void ServiceRuntime::on_start() {
  if (pending_takeover_) {
    pending_takeover_ = false;
    ++counters_.takeovers;
    // A takeover means a server died and this instance is its failover
    // replacement — operator-grade, hence kError. It also roots a fresh
    // trace: the recovery work it triggers has no client call above it.
    trace(sim::TraceLevel::kError, "takeover: starting as failover replacement");
    if (spans_->enabled()) {
      const std::uint64_t trace_id = spans_->mint_id();
      spans_->record(obs::Span{trace_id, spans_->mint_id(), 0, now(), now(),
                               name(), "takeover", "takeover"});
    }
    on_takeover();
  }
  on_service_start();
  if (params_ != nullptr && params_->service_stats_interval > 0 &&
      directory_ != nullptr) {
    if (stats_task_ == nullptr) {
      stats_task_ = std::make_unique<sim::PeriodicTask>(
          engine(), params_->service_stats_interval, [this] { publish_stats(); });
    }
    stats_task_->set_period(params_->service_stats_interval);
    stats_task_->start();
  }
  if (directory_ == nullptr) return;
  if (opts_.recover_on_start && !opts_.checkpoint_namespace.empty() &&
      params_ != nullptr) {
    recovery_attempts_left_ = opts_.recovery_attempts;
    attempt_recovery_load();
  } else if (opts_.announce_up) {
    announce_up();
  }
}

void ServiceRuntime::on_stop() {
  if (stats_task_ != nullptr) stats_task_->stop();
  on_service_stop();
}

void ServiceRuntime::announce_up() {
  if (directory_ == nullptr) return;
  auto up = std::make_shared<ServiceUpMsg>();
  up->kind = opts_.kind;
  up->extension = opts_.extension;
  up->partition = opts_.partition;
  up->service = address();
  send_any(directory_->service_address(ServiceKind::kGroupService, opts_.partition),
           std::move(up));
}

void ServiceRuntime::save_state() {
  if (directory_ == nullptr || opts_.checkpoint_namespace.empty()) return;
  auto save = std::make_shared<CheckpointSaveMsg>();
  save->service = opts_.checkpoint_namespace;
  save->key = opts_.checkpoint_key;
  save->data = snapshot();
  save->epoch = fence_epoch();
  save->scope = fence_scope();
  ++counters_.snapshots_saved;
  last_save_time_ = now();
  ever_saved_ = true;
  dirty_ = false;
  send_any(
      directory_->service_address(ServiceKind::kCheckpointService, opts_.partition),
      std::move(save));
}

void ServiceRuntime::mark_dirty() {
  if (directory_ == nullptr || opts_.checkpoint_namespace.empty()) return;
  if (!ever_saved_ || last_save_time_ != now()) {
    // Leading edge: the first change in this tick checkpoints immediately
    // (identical wire behaviour to save-on-every-change when changes land
    // on distinct ticks, which is the steady-state case).
    save_state();
    return;
  }
  // Already saved at this instant; fold further same-tick changes into one
  // trailing flush at the end of the tick.
  dirty_ = true;
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  engine().schedule_after(0, [this] {
    flush_scheduled_ = false;
    if (dirty_ && alive()) save_state();
  });
}

void ServiceRuntime::attempt_recovery_load() {
  if (!alive()) return;
  if (recovery_attempts_left_ <= 0) {
    // Give up: come up empty-handed rather than never.
    recovery_load_id_ = 0;
    if (opts_.announce_up) announce_up();
    return;
  }
  --recovery_attempts_left_;
  recovery_load_id_ = engine().rng().next() | 1;  // never 0
  auto load = std::make_shared<CheckpointLoadMsg>();
  load->service = opts_.checkpoint_namespace;
  load->key = opts_.checkpoint_key;
  load->reply_to = address();
  load->request_id = recovery_load_id_;
  send_any(
      directory_->service_address(ServiceKind::kCheckpointService, opts_.partition),
      std::move(load));
  const std::uint64_t this_try = recovery_load_id_;
  engine().schedule_after(
      2 * sim::kSecond + params_->checkpoint_federation_fetch, [this, this_try] {
        if (recovery_load_id_ == this_try) attempt_recovery_load();
      });
}

void ServiceRuntime::on_recovery_reply(const CheckpointLoadReplyMsg& reply) {
  if (recovery_load_id_ == 0 || reply.request_id != recovery_load_id_) return;
  recovery_load_id_ = 0;
  if (reply.found) {
    restore(reply.data);
    ++counters_.restores;
  }
  if (opts_.announce_up) announce_up();
  // Re-seed the checkpoint immediately: a fresh instance on a new node must
  // not depend on the old node's federation entry staying reachable.
  save_state();
}

void ServiceRuntime::publish_stats() {
  if (!alive() || directory_ == nullptr) return;
  auto stats = std::make_shared<ServiceStatsMsg>();
  stats->service = name();
  stats->kind = opts_.kind;
  stats->partition = opts_.partition;
  stats->node = node_id();
  stats->messages_received = counters_.messages_received;
  stats->messages_unhandled = counters_.messages_unhandled;
  stats->replays_served = replay_.replays_served();
  stats->duplicates_suppressed = replay_.duplicates_suppressed();
  stats->snapshots_saved = counters_.snapshots_saved;
  stats->restores = counters_.restores;
  stats->takeovers = counters_.takeovers;
  send_any(directory_->service_address(ServiceKind::kDataBulletin, opts_.partition),
           std::move(stats));
}

}  // namespace phoenix::kernel
