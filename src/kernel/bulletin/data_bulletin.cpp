#include "kernel/bulletin/data_bulletin.h"

#include <algorithm>
#include <utility>

#include "kernel/service_msgs.h"

namespace phoenix::kernel {

UsageSummary summarize(const std::vector<NodeRecord>& nodes,
                       const std::vector<AppRecord>& apps) {
  UsageSummary s;
  s.node_count = nodes.size();
  s.app_count = apps.size();
  for (const auto& n : nodes) {
    if (n.alive) ++s.alive_count;
    s.avg_cpu_pct += n.usage.cpu_pct;
    s.avg_mem_pct += n.usage.mem_pct;
    s.avg_swap_pct += n.usage.swap_pct;
  }
  if (!nodes.empty()) {
    const double count = static_cast<double>(nodes.size());
    s.avg_cpu_pct /= count;
    s.avg_mem_pct /= count;
    s.avg_swap_pct /= count;
  }
  return s;
}

void merge_summary(UsageSummary& into, const UsageSummary& from) {
  const double total =
      static_cast<double>(into.node_count) + static_cast<double>(from.node_count);
  if (total > 0) {
    const double wi = static_cast<double>(into.node_count) / total;
    const double wf = static_cast<double>(from.node_count) / total;
    into.avg_cpu_pct = wi * into.avg_cpu_pct + wf * from.avg_cpu_pct;
    into.avg_mem_pct = wi * into.avg_mem_pct + wf * from.avg_mem_pct;
    into.avg_swap_pct = wi * into.avg_swap_pct + wf * from.avg_swap_pct;
  }
  into.node_count += from.node_count;
  into.alive_count += from.alive_count;
  into.app_count += from.app_count;
}

DataBulletin::DataBulletin(cluster::Cluster& cluster, net::NodeId node,
                           net::PartitionId partition, const FtParams& params,
                           ServiceDirectory* directory, double cpu_share)
    : ServiceRuntime(cluster, "db/" + std::to_string(partition.value), node,
                     port_of(ServiceKind::kDataBulletin), directory, &params,
                     // Bulletin state is soft (detectors repopulate it within
                     // one sampling period): announce readiness immediately,
                     // no recover_on_start.
                     Options{.kind = ServiceKind::kDataBulletin,
                             .partition = partition,
                             .announce_up = true},
                     cpu_share),
      partition_(partition),
      params_(params),
      staleness_horizon_(6 * params.detector_sample_interval),
      sweeper_(cluster.engine(), params.detector_sample_interval,
               [this] { sweep_stale(); }) {
  on<DbDeltaMsg>([this](const DbDeltaMsg& delta) { apply_delta(delta); });
  on<DbReportMsg>([this](const DbReportMsg& report, const net::Envelope& env) {
    if (env.message.use_count() == 1) {
      // Sole owner of the delivered snapshot: adopt its app rows directly.
      auto* mut = const_cast<DbReportMsg*>(&report);
      report_local(report.node_record, std::move(mut->apps), report.seq);
    } else {
      report_local(report.node_record, report.apps, report.seq);
    }
  });
  on<DbQueryMsg>([this](const DbQueryMsg& query) { handle_query(query); });
  on<DbPartitionQueryMsg>([this](const DbPartitionQueryMsg& pq) {
    auto reply = std::make_shared<DbQueryReplyMsg>();
    reply->query_id = pq.query_id;
    reply->aggregated = pq.aggregate_only;
    collect(pq.filter, pq.table, pq.aggregate_only, reply->node_rows,
            reply->app_rows, reply->summary);
    send_any(pq.reply_to, std::move(reply));
  });
  on<DbQueryReplyMsg>([this](const DbQueryReplyMsg& pr, const net::Envelope& env) {
    merge_query_reply(pr, env);
  });
  on<ServiceStatsMsg>([this](const ServiceStatsMsg& stats) {
    ServiceStatsRecord& rec = stats_rows_[stats.service];
    rec.row = stats;
    rec.updated_at = now();
  });
  on<DbServiceStatsQueryMsg>([this](const DbServiceStatsQueryMsg& q) {
    serve_idempotent(q, [&] {
      auto reply = std::make_shared<DbServiceStatsReplyMsg>();
      reply->query_id = q.query_id;
      reply->rows = service_stats();
      return reply;
    });
  });
}

void DataBulletin::set_staleness_horizon(sim::SimTime t) {
  staleness_horizon_ = t;
}

void DataBulletin::on_service_start() {
  if (staleness_horizon_ > 0) {
    sweeper_.set_period(params_.detector_sample_interval);
    sweeper_.start_after(staleness_horizon_);
  }
}

void DataBulletin::on_service_stop() { sweeper_.stop(); }

std::vector<ServiceStatsRecord> DataBulletin::service_stats() const {
  std::vector<ServiceStatsRecord> out;
  out.reserve(stats_rows_.size());
  for (const auto& [name, rec] : stats_rows_) out.push_back(rec);
  return out;
}

void DataBulletin::sweep_stale() {
  if (staleness_horizon_ == 0 || !alive()) return;
  const sim::SimTime now_t = now();
  for (std::size_t i = 0; i < slots_.size();) {
    NodeSlot& slot = slots_[i];
    const sim::SimTime age = now_t - slot.rec.updated_at;
    if (age > 2 * staleness_horizon_) {
      app_row_count_ -= slot.apps.size();
      index_.erase(slot.rec.node.value);
      if (i != slots_.size() - 1) {
        slot = std::move(slots_.back());
        index_[slot.rec.node.value] = static_cast<std::uint32_t>(i);
      }
      slots_.pop_back();
      continue;  // the swapped-in slot still needs its age check
    }
    if (age > staleness_horizon_) slot.rec.alive = false;
    ++i;
  }
}

DataBulletin::NodeSlot* DataBulletin::find_slot(net::NodeId node) {
  const auto it = index_.find(node.value);
  return it == index_.end() ? nullptr : &slots_[it->second];
}

void DataBulletin::report_local(const NodeRecord& record,
                                std::vector<AppRecord> apps,
                                std::uint64_t seq) {
  if (NodeSlot* slot = find_slot(record.node)) {
    app_row_count_ += apps.size();
    app_row_count_ -= slot->apps.size();
    slot->rec = record;
    slot->apps = std::move(apps);
    slot->seq = seq;
    return;
  }
  index_.emplace(record.node.value, static_cast<std::uint32_t>(slots_.size()));
  app_row_count_ += apps.size();
  slots_.push_back(NodeSlot{record, std::move(apps), seq});
}

bool DataBulletin::apply_delta(const DbDeltaMsg& delta) {
  NodeSlot* slot = find_slot(delta.node);
  if (slot == nullptr || slot->seq != delta.prev_seq) {
    ++deltas_dropped_;  // broken chain; the next full snapshot repairs it
    return false;
  }
  slot->seq = delta.seq;
  if (delta.has_usage) slot->rec.usage = delta.usage;
  slot->rec.alive = true;
  slot->rec.updated_at = delta.sampled_at;
  if (!delta.exited.empty()) {
    const auto dead = [&](const AppRecord& a) {
      return std::find(delta.exited.begin(), delta.exited.end(), a.pid) !=
             delta.exited.end();
    };
    app_row_count_ -= std::erase_if(slot->apps, dead);
  }
  slot->apps.insert(slot->apps.end(), delta.started.begin(), delta.started.end());
  app_row_count_ += delta.started.size();
  return true;
}

std::vector<NodeRecord> DataBulletin::node_rows() const {
  std::vector<NodeRecord> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) out.push_back(slot.rec);
  return out;
}

std::vector<AppRecord> DataBulletin::app_rows() const {
  std::vector<AppRecord> out;
  out.reserve(app_row_count_);
  for (const auto& slot : slots_) {
    out.insert(out.end(), slot.apps.begin(), slot.apps.end());
  }
  return out;
}

std::vector<NodeRecord> DataBulletin::node_rows(const BulletinFilter& filter) const {
  std::vector<NodeRecord> out;
  for (const auto& slot : slots_) {
    if (filter.matches(slot.rec)) out.push_back(slot.rec);
  }
  return out;
}

std::vector<AppRecord> DataBulletin::app_rows(const BulletinFilter& filter) const {
  std::vector<AppRecord> out;
  for (const auto& slot : slots_) {
    for (const auto& app : slot.apps) {
      if (filter.matches(app, partition_)) out.push_back(app);
    }
  }
  return out;
}

void DataBulletin::collect(const BulletinFilter& filter, BulletinTable table,
                           bool aggregate_only,
                           std::vector<NodeRecord>& nodes_out,
                           std::vector<AppRecord>& apps_out,
                           UsageSummary& summary) const {
  if (aggregate_only) {
    // Aggregation pushdown summarizes both tables regardless of `table`
    // (a summary is constant-size either way).
    for (const auto& slot : slots_) {
      if (filter.matches(slot.rec)) {
        ++summary.node_count;
        if (slot.rec.alive) ++summary.alive_count;
        summary.avg_cpu_pct += slot.rec.usage.cpu_pct;
        summary.avg_mem_pct += slot.rec.usage.mem_pct;
        summary.avg_swap_pct += slot.rec.usage.swap_pct;
      }
      for (const auto& app : slot.apps) {
        if (filter.matches(app, partition_)) ++summary.app_count;
      }
    }
    if (summary.node_count > 0) {
      const double count = static_cast<double>(summary.node_count);
      summary.avg_cpu_pct /= count;
      summary.avg_mem_pct /= count;
      summary.avg_swap_pct /= count;
    }
    return;
  }
  const bool want_nodes = table != BulletinTable::kApps;
  const bool want_apps = table != BulletinTable::kNodes;
  for (const auto& slot : slots_) {
    if (want_nodes && filter.matches(slot.rec)) nodes_out.push_back(slot.rec);
    if (want_apps) {
      for (const auto& app : slot.apps) {
        if (filter.matches(app, partition_)) apps_out.push_back(app);
      }
    }
  }
}

void DataBulletin::handle_query(const DbQueryMsg& q) {
  // A retransmission of a query whose fan-out is still pending is dropped:
  // the original's merged reply serves the retry as well. (No replay cache
  // here — queries are reads, and a fresh execution is always valid.)
  for (const auto& [id, p] : pending_) {
    if (!p.done && p.reply_to == q.reply_to && p.query_id == q.query_id) {
      ++duplicate_queries_;
      return;
    }
  }
  const std::uint64_t local_id = next_local_id_++;
  PendingQuery pending;
  pending.reply_to = q.reply_to;
  pending.query_id = q.query_id;
  pending.table = q.table;
  pending.aggregate_only = q.aggregate_only;
  collect(q.filter, q.table, q.aggregate_only, pending.node_rows,
          pending.app_rows, pending.summary);

  if (q.cluster_scope && directory() != nullptr) {
    for (std::size_t p = 0; p < directory()->partition_count(); ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      if (pid == partition_) continue;
      auto sub = std::make_shared<DbPartitionQueryMsg>();
      sub->query_id = local_id;
      sub->table = q.table;
      sub->aggregate_only = q.aggregate_only;
      sub->filter = q.filter;
      sub->reply_to = address();
      if (send_any(directory()->service_address(ServiceKind::kDataBulletin, pid),
                   std::move(sub))
              .valid()) {
        ++pending.awaiting;
      }
    }
  }

  pending_.emplace(local_id, std::move(pending));
  if (pending_.at(local_id).awaiting == 0) {
    finish_query(local_id);
    return;
  }
  // Answer with whatever arrived by the deadline; dead peers just reduce
  // partitions_included.
  engine().schedule_after(query_timeout_, [this, local_id] { finish_query(local_id); });
}

void DataBulletin::finish_query(std::uint64_t local_id) {
  auto it = pending_.find(local_id);
  if (it == pending_.end() || it->second.done) return;
  it->second.done = true;
  PendingQuery result = std::move(it->second);
  pending_.erase(it);
  if (!result.reply_to.valid() || !alive()) return;
  auto reply = std::make_shared<DbQueryReplyMsg>();
  reply->query_id = result.query_id;
  reply->node_rows = std::move(result.node_rows);
  reply->app_rows = std::move(result.app_rows);
  reply->aggregated = result.aggregate_only;
  reply->summary = result.summary;
  reply->partitions_included = result.partitions_included;
  send_any(result.reply_to, std::move(reply));
}

void DataBulletin::merge_query_reply(const DbQueryReplyMsg& pr,
                                     const net::Envelope& env) {
  auto it = pending_.find(pr.query_id);
  if (it == pending_.end() || it->second.done) return;
  PendingQuery& pending = it->second;
  if (pending.aggregate_only && pr.aggregated) {
    merge_summary(pending.summary, pr.summary);
  } else if (env.message.use_count() == 1) {
    // Sole owner of the delivered reply (the fabric's in-flight reference
    // dies when this handler returns): steal the row vectors instead of
    // copying every row a second time on the access-point merge.
    auto* mut = const_cast<DbQueryReplyMsg*>(&pr);
    if (pending.node_rows.empty()) {
      pending.node_rows = std::move(mut->node_rows);
    } else {
      pending.node_rows.insert(pending.node_rows.end(),
                               std::move_iterator(mut->node_rows.begin()),
                               std::move_iterator(mut->node_rows.end()));
    }
    if (pending.app_rows.empty()) {
      pending.app_rows = std::move(mut->app_rows);
    } else {
      pending.app_rows.insert(pending.app_rows.end(),
                              std::move_iterator(mut->app_rows.begin()),
                              std::move_iterator(mut->app_rows.end()));
    }
  } else {
    pending.node_rows.insert(pending.node_rows.end(), pr.node_rows.begin(),
                             pr.node_rows.end());
    pending.app_rows.insert(pending.app_rows.end(), pr.app_rows.begin(),
                            pr.app_rows.end());
  }
  pending.partitions_included += pr.partitions_included;
  if (--pending.awaiting == 0) finish_query(pr.query_id);
}

}  // namespace phoenix::kernel
