#include "kernel/bulletin/data_bulletin.h"

#include <utility>

#include "kernel/service_msgs.h"

namespace phoenix::kernel {

UsageSummary summarize(const std::vector<NodeRecord>& nodes,
                       const std::vector<AppRecord>& apps) {
  UsageSummary s;
  s.node_count = nodes.size();
  s.app_count = apps.size();
  for (const auto& n : nodes) {
    if (n.alive) ++s.alive_count;
    s.avg_cpu_pct += n.usage.cpu_pct;
    s.avg_mem_pct += n.usage.mem_pct;
    s.avg_swap_pct += n.usage.swap_pct;
  }
  if (!nodes.empty()) {
    const double count = static_cast<double>(nodes.size());
    s.avg_cpu_pct /= count;
    s.avg_mem_pct /= count;
    s.avg_swap_pct /= count;
  }
  return s;
}

void merge_summary(UsageSummary& into, const UsageSummary& from) {
  const double total =
      static_cast<double>(into.node_count) + static_cast<double>(from.node_count);
  if (total > 0) {
    const double wi = static_cast<double>(into.node_count) / total;
    const double wf = static_cast<double>(from.node_count) / total;
    into.avg_cpu_pct = wi * into.avg_cpu_pct + wf * from.avg_cpu_pct;
    into.avg_mem_pct = wi * into.avg_mem_pct + wf * from.avg_mem_pct;
    into.avg_swap_pct = wi * into.avg_swap_pct + wf * from.avg_swap_pct;
  }
  into.node_count += from.node_count;
  into.alive_count += from.alive_count;
  into.app_count += from.app_count;
}

DataBulletin::DataBulletin(cluster::Cluster& cluster, net::NodeId node,
                           net::PartitionId partition, const FtParams& params,
                           ServiceDirectory* directory, double cpu_share)
    : Daemon(cluster, "db/" + std::to_string(partition.value), node,
             port_of(ServiceKind::kDataBulletin), cpu_share),
      partition_(partition),
      params_(params),
      directory_(directory),
      staleness_horizon_(6 * params.detector_sample_interval),
      sweeper_(cluster.engine(), params.detector_sample_interval,
               [this] { sweep_stale(); }) {}

void DataBulletin::set_staleness_horizon(sim::SimTime t) {
  staleness_horizon_ = t;
}

void DataBulletin::on_start() {
  if (staleness_horizon_ > 0) {
    sweeper_.set_period(params_.detector_sample_interval);
    sweeper_.start_after(staleness_horizon_);
  }
  // Bulletin state is soft (detectors repopulate it within one sampling
  // period), so a restarted instance reports ready immediately.
  if (directory_ == nullptr) return;
  auto up = std::make_shared<ServiceUpMsg>();
  up->kind = ServiceKind::kDataBulletin;
  up->partition = partition_;
  up->service = address();
  send_any(directory_->service_address(ServiceKind::kGroupService, partition_),
           std::move(up));
}

void DataBulletin::on_stop() { sweeper_.stop(); }

void DataBulletin::sweep_stale() {
  if (staleness_horizon_ == 0 || !alive()) return;
  const sim::SimTime now_t = now();
  for (auto it = node_table_.begin(); it != node_table_.end();) {
    const sim::SimTime age = now_t - it->second.updated_at;
    if (age > 2 * staleness_horizon_) {
      app_table_.erase(it->first);
      it = node_table_.erase(it);
      continue;
    }
    if (age > staleness_horizon_) it->second.alive = false;
    ++it;
  }
}

void DataBulletin::report_local(const NodeRecord& record, std::vector<AppRecord> apps) {
  node_table_[record.node.value] = record;
  app_table_[record.node.value] = std::move(apps);
}

std::vector<NodeRecord> DataBulletin::node_rows() const {
  std::vector<NodeRecord> out;
  out.reserve(node_table_.size());
  for (const auto& [id, rec] : node_table_) out.push_back(rec);
  return out;
}

std::vector<AppRecord> DataBulletin::app_rows() const {
  std::vector<AppRecord> out;
  for (const auto& [id, apps] : app_table_) {
    out.insert(out.end(), apps.begin(), apps.end());
  }
  return out;
}

std::vector<NodeRecord> DataBulletin::node_rows(const BulletinFilter& filter) const {
  std::vector<NodeRecord> out;
  for (const auto& [id, rec] : node_table_) {
    if (filter.matches(rec)) out.push_back(rec);
  }
  return out;
}

std::vector<AppRecord> DataBulletin::app_rows(const BulletinFilter& filter) const {
  std::vector<AppRecord> out;
  for (const auto& [id, apps] : app_table_) {
    for (const auto& app : apps) {
      if (filter.matches(app, partition_)) out.push_back(app);
    }
  }
  return out;
}

void DataBulletin::handle_query(const DbQueryMsg& q) {
  const std::uint64_t local_id = next_local_id_++;
  PendingQuery pending;
  pending.reply_to = q.reply_to;
  pending.query_id = q.query_id;
  pending.table = q.table;
  pending.aggregate_only = q.aggregate_only;
  if (q.aggregate_only) {
    pending.summary = summarize(node_rows(q.filter), app_rows(q.filter));
  } else {
    if (q.table != BulletinTable::kApps) pending.node_rows = node_rows(q.filter);
    if (q.table != BulletinTable::kNodes) pending.app_rows = app_rows(q.filter);
  }

  if (q.cluster_scope && directory_ != nullptr) {
    for (std::size_t p = 0; p < directory_->partition_count(); ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      if (pid == partition_) continue;
      auto sub = std::make_shared<DbPartitionQueryMsg>();
      sub->query_id = local_id;
      sub->table = q.table;
      sub->aggregate_only = q.aggregate_only;
      sub->filter = q.filter;
      sub->reply_to = address();
      if (send_any(directory_->service_address(ServiceKind::kDataBulletin, pid),
                   std::move(sub))
              .valid()) {
        ++pending.awaiting;
      }
    }
  }

  pending_.emplace(local_id, std::move(pending));
  if (pending_.at(local_id).awaiting == 0) {
    finish_query(local_id);
    return;
  }
  // Answer with whatever arrived by the deadline; dead peers just reduce
  // partitions_included.
  engine().schedule_after(query_timeout_, [this, local_id] { finish_query(local_id); });
}

void DataBulletin::finish_query(std::uint64_t local_id) {
  auto it = pending_.find(local_id);
  if (it == pending_.end() || it->second.done) return;
  it->second.done = true;
  PendingQuery result = std::move(it->second);
  pending_.erase(it);
  if (!result.reply_to.valid() || !alive()) return;
  auto reply = std::make_shared<DbQueryReplyMsg>();
  reply->query_id = result.query_id;
  reply->node_rows = std::move(result.node_rows);
  reply->app_rows = std::move(result.app_rows);
  reply->aggregated = result.aggregate_only;
  reply->summary = result.summary;
  reply->partitions_included = result.partitions_included;
  send_any(result.reply_to, std::move(reply));
}

void DataBulletin::handle(const net::Envelope& env) {
  const net::Message& m = *env.message;

  if (const auto* report = net::message_cast<DbReportMsg>(m)) {
    report_local(report->node_record, report->apps);
    return;
  }
  if (const auto* query = net::message_cast<DbQueryMsg>(m)) {
    handle_query(*query);
    return;
  }
  if (const auto* pq = net::message_cast<DbPartitionQueryMsg>(m)) {
    auto reply = std::make_shared<DbQueryReplyMsg>();
    reply->query_id = pq->query_id;
    if (pq->aggregate_only) {
      reply->aggregated = true;
      reply->summary = summarize(node_rows(pq->filter), app_rows(pq->filter));
    } else {
      if (pq->table != BulletinTable::kApps) reply->node_rows = node_rows(pq->filter);
      if (pq->table != BulletinTable::kNodes) reply->app_rows = app_rows(pq->filter);
    }
    send_any(pq->reply_to, std::move(reply));
    return;
  }
  if (const auto* pr = net::message_cast<DbQueryReplyMsg>(m)) {
    auto it = pending_.find(pr->query_id);
    if (it == pending_.end() || it->second.done) return;
    PendingQuery& pending = it->second;
    if (pending.aggregate_only && pr->aggregated) {
      merge_summary(pending.summary, pr->summary);
    } else {
      pending.node_rows.insert(pending.node_rows.end(), pr->node_rows.begin(),
                               pr->node_rows.end());
      pending.app_rows.insert(pending.app_rows.end(), pr->app_rows.begin(),
                              pr->app_rows.end());
    }
    pending.partitions_included += pr->partitions_included;
    if (--pending.awaiting == 0) finish_query(pr->query_id);
    return;
  }
}

}  // namespace phoenix::kernel
