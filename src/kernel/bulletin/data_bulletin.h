// Data bulletin service (paper §4.2, §4.4): the in-memory database of
// cluster-wide physical-resource and application state.
//
// One instance per partition; detectors on each node export their state to
// the partition's instance. The instances form a complete-graph federation:
// a client may query ANY instance for cluster-wide data and that instance
// fans the query out to its peers and merges the answers — the single
// access point of §4.4. If one instance is down, only its partition's rows
// are missing from the merged answer (paper: "only the state of one
// partition can't be obtained").
//
// Data-plane layout (DESIGN.md §8): process identity strings are interned
// into dense SymbolIds (net/symbol.h), detectors ship compact deltas with a
// periodic full-snapshot resync, and the tables live in contiguous row
// storage so a query is answered in a single pass — filter, summarize, and
// reply-building all walk the slots once, copying each row at most once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "cluster/node.h"
#include "kernel/ft_params.h"
#include "kernel/runtime/service_runtime.h"
#include "kernel/service_kind.h"
#include "net/message.h"
#include "net/symbol.h"

namespace phoenix::kernel {

/// One node's gauge row in the bulletin.
struct NodeRecord {
  net::NodeId node;
  net::PartitionId partition;
  cluster::ResourceUsage usage;
  bool alive = true;
  sim::SimTime updated_at = 0;

  static constexpr std::size_t kWireBytes = cluster::ResourceUsage::kWireBytes + 24;

  friend bool operator==(const NodeRecord&, const NodeRecord&) = default;
};

/// One application process row in the bulletin. Identity strings are
/// interned: the row carries dense SymbolIds on the hot path; name()/owner()
/// resolve the strings at the edges (rendering, assertions).
struct AppRecord {
  net::NodeId node;
  cluster::Pid pid = 0;
  net::SymbolId name_id;
  net::SymbolId owner_id;
  cluster::ProcessState state = cluster::ProcessState::kRunning;
  double cpu_share = 0.0;
  sim::SimTime started_at = 0;

  std::string_view name() const { return net::symbol_name(name_id); }
  std::string_view owner() const { return net::symbol_name(owner_id); }

  /// Identity strings still travel on the wire when a row is shipped (no
  /// cross-process dictionary), so accounting keeps their lengths.
  std::size_t wire_bytes() const noexcept {
    return name().size() + owner().size() + 40;
  }

  friend bool operator==(const AppRecord&, const AppRecord&) = default;
};

enum class BulletinTable : std::uint8_t { kNodes, kApps, kBoth };

/// Row predicate evaluated AT each federation instance (filter pushdown:
/// only matching rows travel back to the access point).
struct BulletinFilter {
  bool has_partition = false;
  net::PartitionId partition;   // node+app rows: restrict to this partition
  net::SymbolId owner;          // app rows: exact owner match (invalid = any)
  double min_cpu_pct = -1.0;    // node rows: cpu_pct >= threshold (<0 = any)
  bool alive_only = false;      // node rows: reporting nodes only

  /// String edge for the owner predicate. An owner no process ever carried
  /// still interns (ids are cheap) and simply matches nothing.
  void set_owner(std::string_view name) { owner = net::intern_symbol(name); }
  std::string_view owner_name() const { return net::symbol_name(owner); }

  bool matches(const NodeRecord& row) const {
    if (has_partition && row.partition != partition) return false;
    if (min_cpu_pct >= 0.0 && row.usage.cpu_pct < min_cpu_pct) return false;
    if (alive_only && !row.alive) return false;
    return true;
  }
  bool matches(const AppRecord& row, net::PartitionId row_partition) const {
    if (has_partition && row_partition != partition) return false;
    if (owner.valid() && row.owner_id != owner) return false;
    return true;
  }
  std::size_t wire_bytes() const noexcept { return owner_name().size() + 16; }
};

/// Detector full-snapshot export: one node's physical + application state.
/// Sent on the first sample, after a detector restart, and every
/// FtParams::detector_resync_every samples as the delta stream's resync
/// point; DbDeltaMsg carries the steady state in between.
struct DbReportMsg final : net::Message {
  NodeRecord node_record;
  std::vector<AppRecord> apps;
  std::uint64_t seq = 0;  // per-detector report sequence this snapshot sets

  PHOENIX_MESSAGE_TYPE("db.report")
  std::size_t wire_size() const noexcept override {
    std::size_t n = NodeRecord::kWireBytes + 8;
    for (const auto& a : apps) n += a.wire_bytes();
    return n;
  }
};

/// Detector delta export: what changed since report `prev_seq` — gauges (if
/// they moved), apps that started, pids that exited. The bulletin applies
/// it only when its stored sequence for the node matches prev_seq;
/// otherwise the delta is dropped and the next full snapshot resyncs.
struct DbDeltaMsg final : net::Message {
  net::NodeId node;
  net::PartitionId partition;
  std::uint64_t prev_seq = 0;
  std::uint64_t seq = 0;
  bool has_usage = false;        // gauges unchanged since prev_seq if false
  cluster::ResourceUsage usage;  // valid when has_usage
  sim::SimTime sampled_at = 0;
  std::vector<AppRecord> started;
  std::vector<cluster::Pid> exited;

  PHOENIX_MESSAGE_TYPE("db.delta")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 33 + (has_usage ? cluster::ResourceUsage::kWireBytes : 0) +
                    exited.size() * sizeof(cluster::Pid);
    for (const auto& a : started) n += a.wire_bytes();
    return n;
  }
};

/// Cluster-wide usage aggregates (what GridView's Figure-6 dashboard shows).
struct UsageSummary {
  std::size_t node_count = 0;
  std::size_t alive_count = 0;
  double avg_cpu_pct = 0.0;
  double avg_mem_pct = 0.0;
  double avg_swap_pct = 0.0;
  std::size_t app_count = 0;
};

UsageSummary summarize(const std::vector<NodeRecord>& nodes,
                       const std::vector<AppRecord>& apps);

/// Merges `from` into `into` (weighted means; used when partition instances
/// aggregate locally and only summaries travel to the access point).
void merge_summary(UsageSummary& into, const UsageSummary& from);

struct DbQueryMsg final : net::Message {
  std::uint64_t query_id = 0;
  BulletinTable table = BulletinTable::kBoth;
  bool cluster_scope = true;  // false: this partition only
  /// Aggregation pushdown: every instance summarizes locally and only the
  /// UsageSummary travels back — constant-size replies at any cluster size.
  bool aggregate_only = false;
  BulletinFilter filter;
  net::Address reply_to;
  std::uint16_t attempt = 1;  // header-resident; excluded from wire_size()

  PHOENIX_MESSAGE_TYPE("db.query")
  std::size_t wire_size() const noexcept override {
    return 24 + filter.wire_bytes();
  }
};

/// Peer-to-peer leg of a cluster-scope query.
struct DbPartitionQueryMsg final : net::Message {
  std::uint64_t query_id = 0;
  BulletinTable table = BulletinTable::kBoth;
  bool aggregate_only = false;
  BulletinFilter filter;
  net::Address reply_to;

  PHOENIX_MESSAGE_TYPE("db.partition_query")
  std::size_t wire_size() const noexcept override {
    return 24 + filter.wire_bytes();
  }
};

struct DbQueryReplyMsg final : net::Message {
  std::uint64_t query_id = 0;
  std::vector<NodeRecord> node_rows;
  std::vector<AppRecord> app_rows;
  bool aggregated = false;
  UsageSummary summary;  // valid when aggregated
  std::uint32_t partitions_included = 1;

  PHOENIX_MESSAGE_TYPE("db.query_reply")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 24 + node_rows.size() * NodeRecord::kWireBytes;
    for (const auto& a : app_rows) n += a.wire_bytes();
    if (aggregated) n += 48;
    return n;
  }
};

/// Last counter row received from one ServiceRuntime daemon
/// (runtime.service_stats; published when FtParams::service_stats_interval
/// is enabled).
struct ServiceStatsRecord {
  ServiceStatsMsg row;
  sim::SimTime updated_at = 0;
};

/// Client request for the per-service runtime health rows this instance
/// holds (GridView-style service dashboards; KernelApi::service_stats).
struct DbServiceStatsQueryMsg final : net::Message {
  std::uint64_t query_id = 0;
  net::Address reply_to;
  std::uint16_t attempt = 1;  // header-resident; excluded from wire_size()

  PHOENIX_MESSAGE_TYPE("db.service_stats_query")
  std::size_t wire_size() const noexcept override { return 16; }
};

struct DbServiceStatsReplyMsg final : net::Message {
  std::uint64_t query_id = 0;
  std::vector<ServiceStatsRecord> rows;

  PHOENIX_MESSAGE_TYPE("db.service_stats_reply")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 8;
    for (const auto& r : rows) n += r.row.wire_size() + 8;
    return n;
  }
};

class DataBulletin final : public ServiceRuntime {
 public:
  DataBulletin(cluster::Cluster& cluster, net::NodeId node,
               net::PartitionId partition, const FtParams& params,
               ServiceDirectory* directory, double cpu_share = 0.0);

  net::PartitionId partition() const noexcept { return partition_; }

  /// How long a cluster-scope query waits for slow/dead peers.
  void set_query_timeout(sim::SimTime t) noexcept { query_timeout_ = t; }

  /// Rows not refreshed within this horizon are marked not-alive, and rows
  /// twice as old are evicted (a crashed node's detector stops reporting).
  /// 0 disables the sweep. Default: 6x the detector sampling interval.
  void set_staleness_horizon(sim::SimTime t);

  // --- local API ----------------------------------------------------------

  void report_local(const NodeRecord& record, std::vector<AppRecord> apps,
                    std::uint64_t seq = 0);

  /// Applies a detector delta; returns false (and counts a drop) when the
  /// node is unknown or the sequence chain is broken — the next full
  /// snapshot repairs the row.
  bool apply_delta(const DbDeltaMsg& delta);

  std::vector<NodeRecord> node_rows() const;
  std::vector<AppRecord> app_rows() const;
  std::vector<NodeRecord> node_rows(const BulletinFilter& filter) const;
  std::vector<AppRecord> app_rows(const BulletinFilter& filter) const;
  std::size_t node_row_count() const noexcept { return slots_.size(); }
  std::size_t app_row_count() const noexcept { return app_row_count_; }

  /// Deltas rejected because their base sequence no longer matched (lost
  /// report, detector restart, bulletin failover). Steady state: 0.
  std::uint64_t deltas_dropped() const noexcept { return deltas_dropped_; }

  /// Retransmitted queries dropped because the original fan-out is still in
  /// flight (its reply answers the retry too). Queries are reads, so they
  /// are not replay-cached — a later retry re-executes against fresh rows.
  std::uint64_t duplicate_queries() const noexcept { return duplicate_queries_; }

  /// Per-service health rows this instance has received (one per runtime
  /// daemon publishing into this partition), service-name order unspecified.
  std::vector<ServiceStatsRecord> service_stats() const;

  /// One staleness sweep now (also runs periodically while started).
  void sweep_stale();

 private:
  void on_service_start() override;
  void on_service_stop() override;
  void handle_query(const DbQueryMsg& q);
  void merge_query_reply(const DbQueryReplyMsg& pr, const net::Envelope& env);
  void finish_query(std::uint64_t local_id);

  /// One contiguous storage slot: a node's gauge row, its app rows, and the
  /// detector sequence the pair reflects.
  struct NodeSlot {
    NodeRecord rec;
    std::vector<AppRecord> apps;
    std::uint64_t seq = 0;
  };

  struct PendingQuery {
    net::Address reply_to;
    std::uint64_t query_id = 0;  // caller's id
    BulletinTable table = BulletinTable::kBoth;
    bool aggregate_only = false;
    std::vector<NodeRecord> node_rows;
    std::vector<AppRecord> app_rows;
    UsageSummary summary;
    std::uint32_t partitions_included = 1;
    std::size_t awaiting = 0;
    bool done = false;
  };

  NodeSlot* find_slot(net::NodeId node);

  /// The one-pass query core: walks the slots once, filtering node and app
  /// rows, either accumulating `summary` (aggregate pushdown) or appending
  /// matching rows to the output vectors (each row copied exactly once).
  void collect(const BulletinFilter& filter, BulletinTable table,
               bool aggregate_only, std::vector<NodeRecord>& nodes_out,
               std::vector<AppRecord>& apps_out, UsageSummary& summary) const;

  net::PartitionId partition_;
  const FtParams& params_;
  sim::SimTime query_timeout_ = 500 * sim::kMillisecond;
  sim::SimTime staleness_horizon_ = 0;  // set from params in constructor
  sim::PeriodicTask sweeper_;
  std::vector<NodeSlot> slots_;                           // contiguous rows
  std::unordered_map<std::uint32_t, std::uint32_t> index_;  // node id -> slot
  std::size_t app_row_count_ = 0;
  std::uint64_t deltas_dropped_ = 0;
  std::uint64_t duplicate_queries_ = 0;
  std::unordered_map<std::uint64_t, PendingQuery> pending_;
  std::uint64_t next_local_id_ = 1;
  std::unordered_map<std::string, ServiceStatsRecord> stats_rows_;
};

}  // namespace phoenix::kernel
