// Data bulletin service (paper §4.2, §4.4): the in-memory database of
// cluster-wide physical-resource and application state.
//
// One instance per partition; detectors on each node export their state to
// the partition's instance. The instances form a complete-graph federation:
// a client may query ANY instance for cluster-wide data and that instance
// fans the query out to its peers and merges the answers — the single
// access point of §4.4. If one instance is down, only its partition's rows
// are missing from the merged answer (paper: "only the state of one
// partition can't be obtained").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "cluster/node.h"
#include "kernel/ft_params.h"
#include "kernel/service_kind.h"
#include "net/message.h"

namespace phoenix::kernel {

/// One node's gauge row in the bulletin.
struct NodeRecord {
  net::NodeId node;
  net::PartitionId partition;
  cluster::ResourceUsage usage;
  bool alive = true;
  sim::SimTime updated_at = 0;

  static constexpr std::size_t kWireBytes = cluster::ResourceUsage::kWireBytes + 24;
};

/// One application process row in the bulletin.
struct AppRecord {
  net::NodeId node;
  cluster::Pid pid = 0;
  std::string name;
  std::string owner;
  cluster::ProcessState state = cluster::ProcessState::kRunning;
  double cpu_share = 0.0;
  sim::SimTime started_at = 0;

  std::size_t wire_bytes() const noexcept { return name.size() + owner.size() + 40; }
};

enum class BulletinTable : std::uint8_t { kNodes, kApps, kBoth };

/// Row predicate evaluated AT each federation instance (filter pushdown:
/// only matching rows travel back to the access point).
struct BulletinFilter {
  bool has_partition = false;
  net::PartitionId partition;   // node+app rows: restrict to this partition
  std::string owner;            // app rows: exact owner match ("" = any)
  double min_cpu_pct = -1.0;    // node rows: cpu_pct >= threshold (<0 = any)
  bool alive_only = false;      // node rows: reporting nodes only

  bool matches(const NodeRecord& row) const {
    if (has_partition && row.partition != partition) return false;
    if (min_cpu_pct >= 0.0 && row.usage.cpu_pct < min_cpu_pct) return false;
    if (alive_only && !row.alive) return false;
    return true;
  }
  bool matches(const AppRecord& row, net::PartitionId row_partition) const {
    if (has_partition && row_partition != partition) return false;
    if (!owner.empty() && row.owner != owner) return false;
    return true;
  }
  std::size_t wire_bytes() const noexcept { return owner.size() + 16; }
};

/// Detector export: one node's physical + application state.
struct DbReportMsg final : net::Message {
  NodeRecord node_record;
  std::vector<AppRecord> apps;

  PHOENIX_MESSAGE_TYPE("db.report")
  std::size_t wire_size() const noexcept override {
    std::size_t n = NodeRecord::kWireBytes;
    for (const auto& a : apps) n += a.wire_bytes();
    return n;
  }
};

/// Cluster-wide usage aggregates (what GridView's Figure-6 dashboard shows).
struct UsageSummary {
  std::size_t node_count = 0;
  std::size_t alive_count = 0;
  double avg_cpu_pct = 0.0;
  double avg_mem_pct = 0.0;
  double avg_swap_pct = 0.0;
  std::size_t app_count = 0;
};

UsageSummary summarize(const std::vector<NodeRecord>& nodes,
                       const std::vector<AppRecord>& apps);

/// Merges `from` into `into` (weighted means; used when partition instances
/// aggregate locally and only summaries travel to the access point).
void merge_summary(UsageSummary& into, const UsageSummary& from);

struct DbQueryMsg final : net::Message {
  std::uint64_t query_id = 0;
  BulletinTable table = BulletinTable::kBoth;
  bool cluster_scope = true;  // false: this partition only
  /// Aggregation pushdown: every instance summarizes locally and only the
  /// UsageSummary travels back — constant-size replies at any cluster size.
  bool aggregate_only = false;
  BulletinFilter filter;
  net::Address reply_to;

  PHOENIX_MESSAGE_TYPE("db.query")
  std::size_t wire_size() const noexcept override {
    return 24 + filter.wire_bytes();
  }
};

/// Peer-to-peer leg of a cluster-scope query.
struct DbPartitionQueryMsg final : net::Message {
  std::uint64_t query_id = 0;
  BulletinTable table = BulletinTable::kBoth;
  bool aggregate_only = false;
  BulletinFilter filter;
  net::Address reply_to;

  PHOENIX_MESSAGE_TYPE("db.partition_query")
  std::size_t wire_size() const noexcept override {
    return 24 + filter.wire_bytes();
  }
};

struct DbQueryReplyMsg final : net::Message {
  std::uint64_t query_id = 0;
  std::vector<NodeRecord> node_rows;
  std::vector<AppRecord> app_rows;
  bool aggregated = false;
  UsageSummary summary;  // valid when aggregated
  std::uint32_t partitions_included = 1;

  PHOENIX_MESSAGE_TYPE("db.query_reply")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 24 + node_rows.size() * NodeRecord::kWireBytes;
    for (const auto& a : app_rows) n += a.wire_bytes();
    if (aggregated) n += 48;
    return n;
  }
};

class DataBulletin final : public cluster::Daemon {
 public:
  DataBulletin(cluster::Cluster& cluster, net::NodeId node,
               net::PartitionId partition, const FtParams& params,
               ServiceDirectory* directory, double cpu_share = 0.0);

  net::PartitionId partition() const noexcept { return partition_; }

  /// How long a cluster-scope query waits for slow/dead peers.
  void set_query_timeout(sim::SimTime t) noexcept { query_timeout_ = t; }

  /// Rows not refreshed within this horizon are marked not-alive, and rows
  /// twice as old are evicted (a crashed node's detector stops reporting).
  /// 0 disables the sweep. Default: 6x the detector sampling interval.
  void set_staleness_horizon(sim::SimTime t);

  // --- local API ----------------------------------------------------------

  void report_local(const NodeRecord& record, std::vector<AppRecord> apps);
  std::vector<NodeRecord> node_rows() const;
  std::vector<AppRecord> app_rows() const;
  std::vector<NodeRecord> node_rows(const BulletinFilter& filter) const;
  std::vector<AppRecord> app_rows(const BulletinFilter& filter) const;
  std::size_t node_row_count() const noexcept { return node_table_.size(); }

  /// One staleness sweep now (also runs periodically while started).
  void sweep_stale();

 private:
  void handle(const net::Envelope& env) override;
  void on_start() override;
  void on_stop() override;
  void handle_query(const DbQueryMsg& q);
  void finish_query(std::uint64_t local_id);

  struct PendingQuery {
    net::Address reply_to;
    std::uint64_t query_id = 0;  // caller's id
    BulletinTable table = BulletinTable::kBoth;
    bool aggregate_only = false;
    std::vector<NodeRecord> node_rows;
    std::vector<AppRecord> app_rows;
    UsageSummary summary;
    std::uint32_t partitions_included = 1;
    std::size_t awaiting = 0;
    bool done = false;
  };

  net::PartitionId partition_;
  const FtParams& params_;
  ServiceDirectory* directory_;
  sim::SimTime query_timeout_ = 500 * sim::kMillisecond;
  sim::SimTime staleness_horizon_ = 0;  // set from params in constructor
  sim::PeriodicTask sweeper_;
  std::unordered_map<std::uint32_t, NodeRecord> node_table_;       // by node id
  std::unordered_map<std::uint32_t, std::vector<AppRecord>> app_table_;  // by node id
  std::unordered_map<std::uint64_t, PendingQuery> pending_;
  std::uint64_t next_local_id_ = 1;
};

}  // namespace phoenix::kernel
