#include "kernel/detector/detectors.h"

#include <utility>

#include "kernel/event/event_service.h"

namespace phoenix::kernel {

namespace {

constexpr std::string_view kKernelOwner = "kernel";

AppRecord app_record_of(net::NodeId node, const cluster::ProcessInfo& p) {
  return AppRecord{
      .node = node,
      .pid = p.pid,
      .name_id = net::intern_symbol(p.name),
      .owner_id = net::intern_symbol(p.owner),
      .state = p.state,
      .cpu_share = p.cpu_share,
      .started_at = p.started_at,
  };
}

}  // namespace

DetectorDaemon::DetectorDaemon(cluster::Cluster& cluster, net::NodeId node,
                               const FtParams& params, ServiceDirectory* directory,
                               double cpu_share)
    : ServiceRuntime(cluster, "detector", node, port_of(ServiceKind::kDetector),
                     directory, &params,
                     Options{.kind = ServiceKind::kDetector,
                             .partition = cluster.partition_of(node)},
                     cpu_share),
      params_(params),
      sampler_(cluster.engine(), params.detector_sample_interval, [this] { sample(); }),
      m_samples_(cluster.metrics().counter("detector.samples")),
      m_full_reports_(cluster.metrics().counter("detector.full_reports")),
      m_delta_reports_(cluster.metrics().counter("detector.delta_reports")) {}

void DetectorDaemon::on_service_start() {
  sampler_.set_period(params_.detector_sample_interval);
  // A (re)started detector cannot know what the bulletin still holds for
  // this node; the next sample ships a full snapshot to re-anchor the
  // delta chain. Event dedup state (last_states_) survives restarts so
  // already-running apps are not re-announced.
  need_full_report_ = true;
  // Stagger the first sample so a thousand detectors do not fire in the
  // same microsecond (self-synchronization would be unrealistic).
  sampler_.start_after(engine().rng().uniform_int(1, params_.detector_sample_interval));
}

void DetectorDaemon::on_service_stop() { sampler_.stop(); }

void DetectorDaemon::publish(Event event) {
  if (directory() == nullptr) return;
  auto pub = std::make_shared<EsPublishMsg>();
  pub->event = std::move(event);
  const auto partition = cluster().partition_of(node_id());
  send_any(directory()->service_address(ServiceKind::kEventService, partition),
           std::move(pub));
}

void DetectorDaemon::sample() {
  if (!alive()) return;
  ++samples_;
  if (cluster().metrics().enabled()) m_samples_->inc();
  const auto& node = cluster().node(node_id());
  const auto partition = cluster().partition_of(node_id());
  const sim::SimTime now_t = now();

  const bool full =
      !params_.detector_delta_reports || need_full_report_ ||
      (params_.detector_resync_every > 0 &&
       samples_since_resync_ + 1 >= params_.detector_resync_every);

  std::vector<AppRecord> snapshot_apps;  // full reports only
  std::vector<AppRecord> started;        // deltas only
  std::unordered_set<cluster::Pid> running_apps;
  std::unordered_map<cluster::Pid, cluster::ProcessState> current;
  for (const auto& [pid, p] : node.process_table()) {
    current[pid] = p.state;
    const bool is_app = p.owner != kKernelOwner;
    if (is_app && p.state == cluster::ProcessState::kRunning) {
      running_apps.insert(pid);
      if (full) {
        snapshot_apps.push_back(app_record_of(node_id(), p));
      } else if (!reported_apps_.contains(pid)) {
        started.push_back(app_record_of(node_id(), p));
      }
    }
    // Application state transitions -> events.
    const auto it = last_states_.find(pid);
    if (is_app) {
      if (it == last_states_.end() && p.state == cluster::ProcessState::kRunning) {
        Event e;
        e.type = std::string(event_types::kAppStarted);
        e.subject_node = node_id();
        e.partition = partition;
        e.attrs = {{attr_keys::pid(), std::to_string(pid)},
                   {attr_keys::name(), p.name},
                   {attr_keys::owner(), p.owner}};
        publish(std::move(e));
      } else if (it != last_states_.end() &&
                 it->second == cluster::ProcessState::kRunning &&
                 p.state != cluster::ProcessState::kRunning) {
        Event e;
        e.type = std::string(event_types::kAppExited);
        e.subject_node = node_id();
        e.partition = partition;
        e.attrs = {{attr_keys::pid(), std::to_string(pid)},
                   {attr_keys::name(), p.name},
                   {attr_keys::owner(), p.owner},
                   {attr_keys::state(), std::string(cluster::to_string(p.state))},
                   {attr_keys::exit_code(), std::to_string(p.exit_code)}};
        publish(std::move(e));
      }
    }
  }
  last_states_ = std::move(current);

  if (directory() == nullptr) {
    reported_apps_ = std::move(running_apps);
    last_usage_ = node.resources();
    return;
  }
  const auto bulletin =
      directory()->service_address(ServiceKind::kDataBulletin, partition);

  if (full) {
    NodeRecord record;
    record.node = node_id();
    record.partition = partition;
    record.usage = node.resources();
    record.alive = true;
    record.updated_at = now_t;

    auto report = std::make_shared<DbReportMsg>();
    report->node_record = record;
    report->apps = std::move(snapshot_apps);
    report->seq = ++report_seq_;
    send_any(bulletin, std::move(report));
    ++full_reports_;
    if (cluster().metrics().enabled()) m_full_reports_->inc();
    need_full_report_ = false;
    samples_since_resync_ = 0;
  } else {
    auto delta = std::make_shared<DbDeltaMsg>();
    delta->node = node_id();
    delta->partition = partition;
    delta->prev_seq = report_seq_;
    delta->seq = ++report_seq_;
    delta->sampled_at = now_t;
    if (node.resources() != last_usage_) {
      delta->has_usage = true;
      delta->usage = node.resources();
    }
    for (const cluster::Pid pid : reported_apps_) {
      if (!running_apps.contains(pid)) delta->exited.push_back(pid);
    }
    delta->started = std::move(started);
    send_any(bulletin, std::move(delta));
    ++delta_reports_;
    if (cluster().metrics().enabled()) m_delta_reports_->inc();
    ++samples_since_resync_;
  }
  reported_apps_ = std::move(running_apps);
  last_usage_ = node.resources();
}

}  // namespace phoenix::kernel
