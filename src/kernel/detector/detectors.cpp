#include "kernel/detector/detectors.h"

#include <utility>

#include "kernel/event/event_service.h"

namespace phoenix::kernel {

DetectorDaemon::DetectorDaemon(cluster::Cluster& cluster, net::NodeId node,
                               const FtParams& params, ServiceDirectory* directory,
                               double cpu_share)
    : Daemon(cluster, "detector", node, port_of(ServiceKind::kDetector), cpu_share),
      params_(params),
      directory_(directory),
      sampler_(cluster.engine(), params.detector_sample_interval, [this] { sample(); }) {}

void DetectorDaemon::on_start() {
  sampler_.set_period(params_.detector_sample_interval);
  // Stagger the first sample so a thousand detectors do not fire in the
  // same microsecond (self-synchronization would be unrealistic).
  sampler_.start_after(engine().rng().uniform_int(1, params_.detector_sample_interval));
}

void DetectorDaemon::on_stop() { sampler_.stop(); }

void DetectorDaemon::publish(Event event) {
  if (directory_ == nullptr) return;
  auto pub = std::make_shared<EsPublishMsg>();
  pub->event = std::move(event);
  const auto partition = cluster().partition_of(node_id());
  send_any(directory_->service_address(ServiceKind::kEventService, partition),
           std::move(pub));
}

void DetectorDaemon::sample() {
  if (!alive()) return;
  ++samples_;
  const auto& node = cluster().node(node_id());
  const auto partition = cluster().partition_of(node_id());

  NodeRecord record;
  record.node = node_id();
  record.partition = partition;
  record.usage = node.resources();
  record.alive = true;
  record.updated_at = now();

  std::vector<AppRecord> apps;
  std::unordered_map<cluster::Pid, cluster::ProcessState> current;
  for (const auto& p : node.processes()) {
    current[p.pid] = p.state;
    if (p.owner != "kernel" && p.state == cluster::ProcessState::kRunning) {
      apps.push_back(AppRecord{
          .node = node_id(),
          .pid = p.pid,
          .name = p.name,
          .owner = p.owner,
          .state = p.state,
          .cpu_share = p.cpu_share,
          .started_at = p.started_at,
      });
    }
    // Application state transitions -> events.
    const auto it = last_states_.find(p.pid);
    if (p.owner != "kernel") {
      if (it == last_states_.end() && p.state == cluster::ProcessState::kRunning) {
        Event e;
        e.type = std::string(event_types::kAppStarted);
        e.subject_node = node_id();
        e.partition = partition;
        e.attrs = {{"pid", std::to_string(p.pid)}, {"name", p.name}, {"owner", p.owner}};
        publish(std::move(e));
      } else if (it != last_states_.end() &&
                 it->second == cluster::ProcessState::kRunning &&
                 p.state != cluster::ProcessState::kRunning) {
        Event e;
        e.type = std::string(event_types::kAppExited);
        e.subject_node = node_id();
        e.partition = partition;
        e.attrs = {{"pid", std::to_string(p.pid)},
                   {"name", p.name},
                   {"owner", p.owner},
                   {"state", std::string(cluster::to_string(p.state))},
                   {"exit_code", std::to_string(p.exit_code)}};
        publish(std::move(e));
      }
    }
  }
  last_states_ = std::move(current);

  if (directory_ != nullptr) {
    auto report = std::make_shared<DbReportMsg>();
    report->node_record = record;
    report->apps = std::move(apps);
    send_any(directory_->service_address(ServiceKind::kDataBulletin, partition),
             std::move(report));
  }
}

void DetectorDaemon::handle(const net::Envelope& env) {
  (void)env;  // detectors are push-only
}

}  // namespace phoenix::kernel
