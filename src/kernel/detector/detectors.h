// Detector services (paper §4.2).
//
// One detector daemon per node hosting the four logical detectors:
//  - physical resource detector: samples CPU/memory/swap/disk/net gauges and
//    exports them to the partition's data bulletin (schedulers feed on this);
//  - application state detector: exports the process table and publishes
//    app.started / app.exited events (the business runtime and PWS feed on
//    this);
//  - node state and network state detection are realized on the GSD side by
//    analysing the watch daemon's per-network heartbeats (§4.3), so this
//    daemon carries no explicit logic for them.
//
// Exports are delta-based by default (FtParams::detector_delta_reports):
// the first sample after (re)start and every detector_resync_every-th
// sample ship a full DbReportMsg snapshot; samples in between ship a
// DbDeltaMsg carrying only moved gauges and app starts/exits, chained by a
// per-detector sequence number so the bulletin can detect a broken chain
// and wait for the next resync.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cluster/daemon.h"
#include "kernel/bulletin/data_bulletin.h"
#include "kernel/runtime/service_runtime.h"
#include "kernel/event/event.h"
#include "kernel/ft_params.h"
#include "kernel/service_kind.h"

namespace phoenix::kernel {

class DetectorDaemon final : public ServiceRuntime {
 public:
  DetectorDaemon(cluster::Cluster& cluster, net::NodeId node,
                 const FtParams& params, ServiceDirectory* directory,
                 double cpu_share = 0.0);

  /// Forces one sampling pass immediately (tests / benches).
  void sample_now() { sample(); }

  std::uint64_t samples_taken() const noexcept { return samples_; }

  /// Full snapshots vs deltas shipped so far (wire-accounting tests).
  std::uint64_t full_reports_sent() const noexcept { return full_reports_; }
  std::uint64_t delta_reports_sent() const noexcept { return delta_reports_; }

 private:
  void on_service_start() override;
  void on_service_stop() override;
  void sample();
  void publish(Event event);

  const FtParams& params_;
  sim::PeriodicTask sampler_;
  std::unordered_map<cluster::Pid, cluster::ProcessState> last_states_;
  /// Pids currently reported to the bulletin as running apps (delta base).
  std::unordered_set<cluster::Pid> reported_apps_;
  cluster::ResourceUsage last_usage_;
  std::uint64_t report_seq_ = 0;
  unsigned samples_since_resync_ = 0;
  bool need_full_report_ = true;  // first sample / after restart
  std::uint64_t samples_ = 0;
  std::uint64_t full_reports_ = 0;
  std::uint64_t delta_reports_ = 0;

  // Cluster-wide monitoring-plane counters, registry-owned (shared by every
  // detector instance) and bumped only while the registry is enabled.
  obs::Counter* m_samples_;
  obs::Counter* m_full_reports_;
  obs::Counter* m_delta_reports_;
};

}  // namespace phoenix::kernel
