// Security service (paper §4.2): authentication, authorization, encryption.
//
// One instance per cluster. Users authenticate with a shared secret and get
// a time-limited token; actions on resources are authorized against a
// role -> permission ACL table. "Encryption" is a keyed stream scrambler —
// a stand-in that exercises the encrypt/decrypt code path without claiming
// cryptographic strength (documented substitution; a deployment would slot
// in a real cipher behind the same interface).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/runtime/service_runtime.h"
#include "net/message.h"
#include "net/rpc.h"

namespace phoenix::kernel {

/// An opaque authentication token.
struct Token {
  std::string user;
  std::uint64_t mac = 0;        // keyed hash over user|nonce|expiry
  std::uint64_t nonce = 0;
  sim::SimTime expires_at = 0;

  friend bool operator==(const Token&, const Token&) = default;
};

struct AuthRequestMsg final : net::Message {
  std::string user;
  std::string secret;
  net::Address reply_to;
  std::uint64_t request_id = 0;
  std::uint16_t attempt = 1;  // header-resident; excluded from wire_size()

  PHOENIX_MESSAGE_TYPE("security.auth")
  std::size_t wire_size() const noexcept override {
    return user.size() + secret.size() + 16;
  }
};

struct AuthReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool ok = false;
  Token token;

  PHOENIX_MESSAGE_TYPE("security.auth_reply")
  std::size_t wire_size() const noexcept override { return token.user.size() + 40; }
};

struct AuthzRequestMsg final : net::Message {
  Token token;
  std::string action;    // e.g. "job.submit"
  std::string resource;  // e.g. "pool/batch"
  net::Address reply_to;
  std::uint64_t request_id = 0;
  std::uint16_t attempt = 1;  // header-resident; excluded from wire_size()

  PHOENIX_MESSAGE_TYPE("security.authz")
  std::size_t wire_size() const noexcept override {
    return token.user.size() + action.size() + resource.size() + 40;
  }
};

struct AuthzReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool allowed = false;
  std::string reason;

  PHOENIX_MESSAGE_TYPE("security.authz_reply")
  std::size_t wire_size() const noexcept override { return reason.size() + 17; }
};

/// Keyed stream scrambler used for payload obfuscation.
class StreamCipher {
 public:
  explicit StreamCipher(std::uint64_t key) noexcept : key_(key) {}

  /// Symmetric: applying twice with the same key restores the input.
  std::string apply(std::string_view data) const;

 private:
  std::uint64_t key_;
};

class SecurityService final : public ServiceRuntime {
 public:
  SecurityService(cluster::Cluster& cluster, net::NodeId node,
                  double cpu_share = 0.0, ServiceDirectory* directory = nullptr,
                  const FtParams* params = nullptr);

  // --- administration (local API) ----------------------------------------

  void add_user(const std::string& user, const std::string& secret,
                std::vector<std::string> roles);
  bool remove_user(const std::string& user);

  /// Grants `role` the right to perform `action` on resources matching
  /// `resource_prefix` (prefix match; empty prefix = everything).
  void grant(const std::string& role, const std::string& action,
             const std::string& resource_prefix);

  void set_token_lifetime(sim::SimTime lifetime) noexcept { token_lifetime_ = lifetime; }

  // --- core operations (local API; the message handlers call these) ------

  std::optional<Token> authenticate(const std::string& user,
                                    const std::string& secret);

  /// Validates the token (signature + expiry) and checks the ACL.
  bool authorize(const Token& token, const std::string& action,
                 const std::string& resource, std::string* reason = nullptr) const;

  /// True when the token is genuine and unexpired.
  bool validate(const Token& token) const;

 private:
  std::uint64_t sign(const std::string& user, std::uint64_t nonce,
                     sim::SimTime expires_at) const;

  struct UserEntry {
    std::string secret;
    std::vector<std::string> roles;
  };
  struct AclRule {
    std::string action;
    std::string resource_prefix;
  };

  std::unordered_map<std::string, UserEntry> users_;
  std::unordered_map<std::string, std::vector<AclRule>> acls_;  // role -> rules
  std::uint64_t signing_key_;
  std::uint64_t next_nonce_ = 1;
  sim::SimTime token_lifetime_ = 8 * sim::kHour;
};

}  // namespace phoenix::kernel
