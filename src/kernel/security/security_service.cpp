#include "kernel/security/security_service.h"

#include <memory>

#include "kernel/service_kind.h"

namespace phoenix::kernel {

namespace {

/// FNV-1a 64-bit over a byte string, mixed with a key. Deterministic and
/// collision-resistant enough for a simulated MAC.
std::uint64_t fnv1a(std::uint64_t seed, std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string StreamCipher::apply(std::string_view data) const {
  std::string out(data);
  std::uint64_t state = key_ ^ 0x9e3779b97f4a7c15ULL;
  for (char& c : out) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    c = static_cast<char>(static_cast<unsigned char>(c) ^
                          static_cast<unsigned char>(state >> 33));
  }
  return out;
}

SecurityService::SecurityService(cluster::Cluster& cluster, net::NodeId node,
                                 double cpu_share, ServiceDirectory* directory,
                                 const FtParams* params)
    : ServiceRuntime(cluster, "security", node, port_of(ServiceKind::kSecurity),
                     directory, params, Options{.kind = ServiceKind::kSecurity},
                     cpu_share),
      signing_key_(cluster.engine().rng().next()) {
  on<AuthRequestMsg>([this](const AuthRequestMsg& msg) {
    serve_mutating(msg, [&] {
      auto reply = std::make_shared<AuthReplyMsg>();
      reply->request_id = msg.request_id;
      if (auto token = authenticate(msg.user, msg.secret)) {
        reply->ok = true;
        reply->token = *token;
      }
      return reply;
    });
  });
  on<AuthzRequestMsg>([this](const AuthzRequestMsg& msg) {
    serve_mutating(msg, [&] {
      auto reply = std::make_shared<AuthzReplyMsg>();
      reply->request_id = msg.request_id;
      reply->allowed =
          authorize(msg.token, msg.action, msg.resource, &reply->reason);
      return reply;
    });
  });
}

void SecurityService::add_user(const std::string& user, const std::string& secret,
                               std::vector<std::string> roles) {
  users_[user] = UserEntry{secret, std::move(roles)};
}

bool SecurityService::remove_user(const std::string& user) {
  return users_.erase(user) > 0;
}

void SecurityService::grant(const std::string& role, const std::string& action,
                            const std::string& resource_prefix) {
  acls_[role].push_back(AclRule{action, resource_prefix});
}

std::uint64_t SecurityService::sign(const std::string& user, std::uint64_t nonce,
                                    sim::SimTime expires_at) const {
  std::string material = user;
  material += '\x1f';
  material += std::to_string(nonce);
  material += '\x1f';
  material += std::to_string(expires_at);
  return fnv1a(signing_key_, material);
}

std::optional<Token> SecurityService::authenticate(const std::string& user,
                                                   const std::string& secret) {
  auto it = users_.find(user);
  if (it == users_.end() || it->second.secret != secret) return std::nullopt;
  Token t;
  t.user = user;
  t.nonce = next_nonce_++;
  t.expires_at = now() + token_lifetime_;
  t.mac = sign(user, t.nonce, t.expires_at);
  return t;
}

bool SecurityService::validate(const Token& token) const {
  if (!users_.contains(token.user)) return false;
  if (token.expires_at <= now()) return false;
  return token.mac == sign(token.user, token.nonce, token.expires_at);
}

bool SecurityService::authorize(const Token& token, const std::string& action,
                                const std::string& resource,
                                std::string* reason) const {
  if (!validate(token)) {
    if (reason) *reason = "invalid or expired token";
    return false;
  }
  const auto user_it = users_.find(token.user);
  for (const std::string& role : user_it->second.roles) {
    const auto acl_it = acls_.find(role);
    if (acl_it == acls_.end()) continue;
    for (const AclRule& rule : acl_it->second) {
      if (rule.action != action && rule.action != "*") continue;
      if (resource.compare(0, rule.resource_prefix.size(), rule.resource_prefix) == 0) {
        return true;
      }
    }
  }
  if (reason) *reason = "no role grants '" + action + "' on '" + resource + "'";
  return false;
}

}  // namespace phoenix::kernel
