// Fault-tolerance tuning parameters.
//
// The paper's §5.1 evaluation fixes the heartbeat interval at 30 s and
// reports per-component detect / diagnose / recover times; all of those are
// functions of the protocol constants below. Everything is configurable —
// the paper explicitly notes "the interval for sending heartbeat can be
// configured as a system parameter" — and the benches sweep them.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace phoenix::kernel {

struct FtParams {
  using SimTime = sim::SimTime;

  /// How a meta-group member takes over a silent peer. The paper's protocol
  /// (§4.3) is unilateral: the Princess deposes a Leader on silence alone,
  /// which split-brains the moment an asymmetric network partition makes the
  /// Leader *look* dead from one side only. The quorum policy adds an
  /// MSCS-style regroup round — a majority of the current view must concur
  /// before any member is removed — plus epoch fencing so a deposed Leader's
  /// mutating kernel RPCs are rejected by every ServiceRuntime.
  struct FailoverPolicy {
    enum class Mode : std::uint8_t {
      kUnilateral,  // paper §4.3: ring successor takes over on silence alone
      kQuorum,      // regroup round: majority concurrence + epoch fencing
    };
    Mode mode = Mode::kUnilateral;

    /// One regroup round: solicitations go out, concurrence votes must be
    /// back within this window or the round aborts (and is retried).
    SimTime regroup_round_timeout = 900 * sim::kMillisecond;

    /// A solicited voter independently pings the suspect's GSD and votes
    /// "alive" if it answers within this window (its view of connectivity,
    /// not the initiator's — that is what defeats asymmetric partitions).
    SimTime regroup_probe_timeout = 280 * sim::kMillisecond;

    /// Delay before re-running a regroup that failed to assemble a quorum
    /// (e.g. this member sits on the minority side of a partition).
    SimTime regroup_retry_delay = 2 * sim::kSecond;

    /// Consecutive quorum-less rounds before the initiator journals
    /// meta.quorum_lost and gives up until the suspicion re-triggers.
    /// 0 = retry forever (availability returns when the partition heals).
    int max_regroup_rounds = 0;

    /// Stamp meta-group epochs into mutating kernel RPCs and reject stale
    /// ones (fencing). Only meaningful under kQuorum; epochs stay 0 — and
    /// every wire format stays byte-identical — under kUnilateral.
    bool fence_stale_epochs = true;

    /// The paper's §5.1 behaviour: unilateral Princess takeover.
    static constexpr FailoverPolicy paper() { return {}; }

    /// Quorum-safe takeover: regroup concurrence + epoch fencing.
    static constexpr FailoverPolicy quorum() {
      FailoverPolicy p;
      p.mode = Mode::kQuorum;
      return p;
    }
  };

  /// Shape of the GSD membership layer. The paper keeps every partition's
  /// GSD in ONE flat meta-group ring, so membership traffic and
  /// reconfiguration serialize at O(partitions). The zoned topology groups
  /// partitions into zone sub-rings (strided assignment: partition p is in
  /// zone p % num_zones, so consecutive partitions — and rack-adjacent
  /// failures — land in different zones) and forms a top ring out of the
  /// zone leaders; the top ring's Leader is the cluster GSD head. Failure
  /// events aggregate up through zone leaders and view changes fan out
  /// down, so a zone regroup never blocks the other zones. flat() preserves
  /// today's behaviour and wire bytes exactly.
  struct GroupTopology {
    enum class Mode : std::uint8_t {
      kFlat,   // paper §4.3: one ring over all partitions
      kZoned,  // zone sub-rings + top ring of zone leaders
    };
    Mode mode = Mode::kFlat;

    /// Target partitions per zone (kZoned only). The number of zones is
    /// ceil(partitions / zone_size); strided assignment keeps zone sizes
    /// within one of each other.
    std::uint32_t zone_size = 64;

    /// The paper's flat meta-group (every wire format byte-identical).
    static constexpr GroupTopology flat() { return {}; }

    /// Two-level hierarchy: zone sub-rings + a top ring of zone leaders.
    static constexpr GroupTopology zoned(std::uint32_t zone_size) {
      GroupTopology t;
      t.mode = Mode::kZoned;
      t.zone_size = zone_size == 0 ? 1 : zone_size;
      return t;
    }
  };

  /// WD -> GSD heartbeat period; also the GSD ring heartbeat period and the
  /// GSD local-service supervision period (paper uses 30 s for all).
  SimTime heartbeat_interval = 30 * sim::kSecond;

  /// Slack added on top of one period before a heartbeat counts as missed
  /// (absorbs network latency and scheduling jitter).
  SimTime heartbeat_grace = 200 * sim::kMillisecond;

  /// Cost of analysing per-network heartbeat arrival to pin a single-NIC
  /// failure (pure computation over the heartbeat table).
  SimTime network_analysis_time = 340 * sim::kMicrosecond;

  /// Consecutive missed heartbeats on ONE network before declaring that
  /// network failed (node-level silence always uses one interval). Raise
  /// this on lossy fabrics so a single dropped datagram is not flagged.
  unsigned network_miss_rounds = 1;

  /// Node-liveness probe (GSD -> PPM on the suspected node): attempts and
  /// per-attempt timeout. All attempts expiring => node declared dead
  /// (~attempts * timeout, the paper's 2 s node-diagnosis figure).
  int node_probe_attempts = 3;
  SimTime node_probe_timeout = 650 * sim::kMillisecond;

  /// After a probe response proves the node alive, one confirmation round
  /// before declaring a *process* failure (paper: 0.29 s total diagnosis).
  SimTime process_confirm_delay = 280 * sim::kMillisecond;

  /// Meta-group cross-check: a GSD that misses its predecessor's ring
  /// heartbeat probes the predecessor's node once with this short timeout
  /// (fast takeover matters more than certainty at this level).
  SimTime meta_probe_timeout = 280 * sim::kMillisecond;

  /// Local supervised-service liveness check (waitpid-style; §5.1 Table 3
  /// reports 12 us to diagnose a dead event-service process).
  SimTime local_diagnose_time = 12 * sim::kMicrosecond;

  /// fork/exec cost of restarting each daemon binary.
  SimTime wd_exec_time = 95 * sim::kMillisecond;
  SimTime gsd_exec_time = 1800 * sim::kMillisecond;
  SimTime service_exec_time = 100 * sim::kMillisecond;  // ES / DB / CS / extensions

  /// Recovering state from the checkpoint service: same-node fetch vs.
  /// cross-partition federation fetch (migration path).
  SimTime checkpoint_local_fetch = 20 * sim::kMillisecond;
  SimTime checkpoint_federation_fetch = 1000 * sim::kMillisecond;

  /// Choosing a migration target and updating the configuration.
  SimTime migration_select_time = 50 * sim::kMillisecond;

  /// Detector sampling period (physical + application state exports).
  SimTime detector_sample_interval = 5 * sim::kSecond;

  /// Detector export mode: when true, steady-state samples ship a compact
  /// DbDeltaMsg (changed gauges, started/exited apps) instead of the full
  /// process table, with a full DbReportMsg snapshot as a periodic resync
  /// point. False restores snapshot-every-sample (the delta-equivalence
  /// tests diff the two modes).
  bool detector_delta_reports = true;

  /// Samples between full-snapshot resyncs while delta reporting is on.
  /// Bounds how long a bulletin that missed a delta (lost report, failover
  /// repopulation) can stay stale.
  unsigned detector_resync_every = 12;

  /// Period for each ServiceRuntime daemon to publish its counter row
  /// (ServiceStatsMsg) into the partition bulletin. 0 disables publishing
  /// entirely (the default keeps the wire traffic of the paper experiments
  /// unchanged).
  SimTime service_stats_interval = 0;

  /// Meta-group takeover policy (defaults to the paper's unilateral
  /// protocol; FailoverPolicy::quorum() opts into regroup + fencing).
  FailoverPolicy failover{};

  /// Membership-layer shape (defaults to the paper's flat ring;
  /// GroupTopology::zoned(n) opts into the two-level hierarchy).
  GroupTopology topology{};

  /// Background CPU share each kernel daemon imposes on its node (fraction
  /// of one CPU). Drives the Linpack-overhead experiment.
  double wd_cpu_share = 0.002;
  double detector_cpu_share = 0.004;
  double ppm_cpu_share = 0.001;
  double server_daemon_cpu_share = 0.01;  // GSD/ES/CS/DB on server nodes
};

}  // namespace phoenix::kernel
