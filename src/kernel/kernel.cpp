#include "kernel/kernel.h"

#include <stdexcept>
#include <utility>

namespace phoenix::kernel {

std::string_view to_string(ServiceKind kind) noexcept {
  switch (kind) {
    case ServiceKind::kWatchDaemon: return "wd";
    case ServiceKind::kGroupService: return "gsd";
    case ServiceKind::kEventService: return "es";
    case ServiceKind::kCheckpointService: return "ckpt";
    case ServiceKind::kDataBulletin: return "db";
    case ServiceKind::kProcessManager: return "ppm";
    case ServiceKind::kConfiguration: return "config";
    case ServiceKind::kSecurity: return "security";
    case ServiceKind::kDetector: return "detector";
  }
  return "?";
}

net::PortId port_of(ServiceKind kind) noexcept {
  using cluster::ports::kCheckpointService;
  switch (kind) {
    case ServiceKind::kWatchDaemon: return cluster::ports::kWatchDaemon;
    case ServiceKind::kGroupService: return cluster::ports::kGroupService;
    case ServiceKind::kEventService: return cluster::ports::kEventService;
    case ServiceKind::kCheckpointService: return cluster::ports::kCheckpointService;
    case ServiceKind::kDataBulletin: return cluster::ports::kDataBulletin;
    case ServiceKind::kProcessManager: return cluster::ports::kProcessManager;
    case ServiceKind::kConfiguration: return cluster::ports::kConfiguration;
    case ServiceKind::kSecurity: return cluster::ports::kSecurity;
    case ServiceKind::kDetector: return cluster::ports::kDetector;
  }
  return net::PortId{};
}

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kProcessFailure: return "process";
    case FaultKind::kNodeFailure: return "node";
    case FaultKind::kNetworkFailure: return "network";
  }
  return "?";
}

PhoenixKernel::PhoenixKernel(cluster::Cluster& cluster, FtParams params)
    : cluster_(cluster), params_(params) {}

PhoenixKernel::~PhoenixKernel() {
  if (metrics_probe_id_ != 0) cluster_.metrics().unregister_probe(metrics_probe_id_);
}

std::vector<SupervisedSpec> PhoenixKernel::default_supervised() const {
  return {
      SupervisedSpec{"CS", ServiceKind::kCheckpointService, "",
                     port_of(ServiceKind::kCheckpointService)},
      SupervisedSpec{"ES", ServiceKind::kEventService, "",
                     port_of(ServiceKind::kEventService)},
      SupervisedSpec{"DB", ServiceKind::kDataBulletin, "",
                     port_of(ServiceKind::kDataBulletin)},
  };
}

void PhoenixKernel::create_daemons() {
  if (created_) throw std::logic_error("PhoenixKernel daemons already created");
  created_ = true;

  const auto& spec = cluster_.spec();
  const std::size_t parts = spec.partitions;

  // Directory: every per-partition service starts on its server node;
  // configuration and security live on partition 0's server node.
  for (ServiceKind kind :
       {ServiceKind::kGroupService, ServiceKind::kEventService,
        ServiceKind::kCheckpointService, ServiceKind::kDataBulletin,
        ServiceKind::kConfiguration, ServiceKind::kSecurity}) {
    auto& table = service_nodes_[kind];
    table.resize(parts);
    for (std::size_t p = 0; p < parts; ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      table[p] = (kind == ServiceKind::kConfiguration ||
                  kind == ServiceKind::kSecurity)
                     ? cluster_.server_node(net::PartitionId{0})
                     : cluster_.server_node(pid);
    }
  }

  // Cluster-wide singletons.
  const net::NodeId head = cluster_.server_node(net::PartitionId{0});
  config_ = std::make_unique<ConfigurationService>(
      cluster_, head, params_.server_daemon_cpu_share, this, &params_);
  security_ = std::make_unique<SecurityService>(
      cluster_, head, params_.server_daemon_cpu_share, this, &params_);

  // Dynamic reconfiguration notifications: every successful set() becomes a
  // "config.changed" event through partition 0's event service.
  config_->set_change_hook([this](const std::string& key, const std::string& value,
                                  std::uint64_t version) {
    auto& es = *ess_[0];
    if (!es.alive()) return;
    Event e;
    e.type = std::string(event_types::kConfigChanged);
    e.partition = net::PartitionId{0};
    e.attrs = {{"key", key}, {"value", value}, {"version", std::to_string(version)}};
    es.publish_local(std::move(e));
  });

  // Per-node daemons.
  wds_.resize(cluster_.node_count());
  detectors_.resize(cluster_.node_count());
  ppms_.resize(cluster_.node_count());
  for (const auto& node : cluster_.nodes()) {
    const net::NodeId id = node.id();
    ppms_[id.value] = std::make_unique<ProcessManager>(cluster_, id, params_, this,
                                                       params_.ppm_cpu_share);
    detectors_[id.value] = std::make_unique<DetectorDaemon>(
        cluster_, id, params_, this, params_.detector_cpu_share);
    wds_[id.value] = std::make_unique<WatchDaemon>(cluster_, id, params_, this,
                                                   params_.wd_cpu_share);
  }

  // Per-partition services on server nodes.
  gsds_.resize(parts);
  ess_.resize(parts);
  css_.resize(parts);
  dbs_.resize(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    const net::PartitionId pid{static_cast<std::uint32_t>(p)};
    const net::NodeId server = cluster_.server_node(pid);
    css_[p] = std::make_unique<CheckpointService>(cluster_, server, pid, params_,
                                                  this, params_.server_daemon_cpu_share);
    ess_[p] = std::make_unique<EventService>(cluster_, server, pid, params_, this,
                                             params_.server_daemon_cpu_share);
    dbs_[p] = std::make_unique<DataBulletin>(cluster_, server, pid, params_, this,
                                             params_.server_daemon_cpu_share);
    gsds_[p] = std::make_unique<GroupServiceDaemon>(
        cluster_, server, pid, params_, this, &log_, default_supervised(),
        params_.server_daemon_cpu_share);
  }

  if (params_.topology.mode == FtParams::GroupTopology::Mode::kZoned) {
    // Hierarchy health gauges, sampled at metrics collection time from the
    // current top leader's view (gsds_ entries are replaced on migration,
    // so the probe must re-resolve instances on every sample).
    metrics_probe_id_ =
        cluster_.metrics().register_probe([this](obs::Registry& r) {
          double top_size = 0;
          for (const auto& gsd : gsds_) {
            if (gsd != nullptr && gsd->alive() && gsd->is_top_leader()) {
              top_size = static_cast<double>(gsd->top_view().members.size());
              break;
            }
          }
          r.gauge("meta.top.ring_size")->set(top_size);
        });
  }
}

void PhoenixKernel::start_core_services() {
  config_->start();
  config_->introspect();
  security_->start();
}

void PhoenixKernel::start_node_daemons(net::NodeId node) {
  ppms_.at(node.value)->start();
  detectors_.at(node.value)->start();
  wds_.at(node.value)->start();
}

void PhoenixKernel::start_partition_services(net::PartitionId p, bool found_ring) {
  css_.at(p.value)->start();
  ess_.at(p.value)->start();
  dbs_.at(p.value)->start();
  auto& gsd = gsds_.at(p.value);
  if (params_.topology.mode == FtParams::GroupTopology::Mode::kZoned) {
    // Staged construction under a zoned topology: rings are per zone, so
    // the FIRST partition started in each zone founds its zone sub-ring
    // (the caller's cluster-wide found_ring flag doesn't know about zones).
    const ZoneTopology zones =
        ZoneTopology::from(params_.topology, partition_count());
    if (founded_zones_.insert(zones.zone_of(p)).second) gsd->request_bootstrap();
  } else if (found_ring) {
    gsd->request_bootstrap();
  }
  gsd->start();
}

void PhoenixKernel::boot() {
  if (booted_) throw std::logic_error("PhoenixKernel::boot called twice");
  booted_ = true;
  if (!created_) create_daemons();

  // Seed the membership layer, incarnation 0 (boot).
  const std::size_t parts = cluster_.spec().partitions;
  if (params_.topology.mode == FtParams::GroupTopology::Mode::kZoned) {
    // Zoned: each partition gets its ZONE's sub-ring view, and each zone's
    // boot-time leader (its first partition) gets the top-ring view of all
    // zone leaders — so both levels form without a join storm.
    const ZoneTopology zones = ZoneTopology::from(params_.topology, parts);
    for (std::uint32_t z = 0; z < zones.num_zones; ++z) {
      MetaView zone_view;
      zone_view.view_id = 1;
      for (net::PartitionId pid : zones.zone_members(z)) {
        zone_view.members.push_back(
            MetaMember{pid, gsds_[pid.value]->address(), /*incarnation=*/0});
      }
      for (net::PartitionId pid : zones.zone_members(z)) {
        gsds_[pid.value]->set_initial_view(zone_view);
      }
    }
    MetaView top;
    top.view_id = 1;
    for (std::uint32_t z = 0; z < zones.num_zones; ++z) {
      const net::PartitionId lead = zones.first_of(z);
      top.members.push_back(
          MetaMember{lead, gsds_[lead.value]->address(), /*incarnation=*/0});
    }
    for (std::uint32_t z = 0; z < zones.num_zones; ++z) {
      gsds_[zones.first_of(z).value]->seed_top_view(top);
    }
  } else {
    // Flat meta-group (paper §4.3): all partitions in order.
    MetaView initial;
    initial.view_id = 1;
    for (std::size_t p = 0; p < parts; ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      initial.members.push_back(
          MetaMember{pid, gsds_[p]->address(), /*incarnation=*/0});
    }
    for (auto& gsd : gsds_) gsd->set_initial_view(initial);
  }

  // Start everything. Dependencies are loose because all starts happen
  // before the engine delivers any message, but keep a sensible order:
  // PPM first (probe targets), checkpoint before its clients.
  start_core_services();
  for (auto& d : ppms_) d->start();
  for (auto& d : css_) d->start();
  for (auto& d : ess_) d->start();
  for (auto& d : dbs_) d->start();
  for (auto& d : detectors_) d->start();
  for (auto& d : wds_) d->start();
  for (auto& d : gsds_) d->start();
}

void PhoenixKernel::register_extension(const std::string& name,
                                       ExtensionFactory factory) {
  extension_factories_[name] = std::move(factory);
}

cluster::Daemon* PhoenixKernel::extension(const std::string& name) const {
  auto it = extension_instances_.find(name);
  return it == extension_instances_.end() ? nullptr : it->second.get();
}

net::NodeId PhoenixKernel::service_node(ServiceKind kind, net::PartitionId p) const {
  auto it = service_nodes_.find(kind);
  if (it == service_nodes_.end() || p.value >= it->second.size()) return net::NodeId{};
  return it->second[p.value];
}

void PhoenixKernel::set_service_node(ServiceKind kind, net::PartitionId p,
                                     net::NodeId node) {
  auto it = service_nodes_.find(kind);
  if (it == service_nodes_.end() || p.value >= it->second.size()) return;
  it->second[p.value] = node;
  if (config_ != nullptr && config_->running()) {
    config_->set("services/" + std::string(to_string(kind)) + "/" +
                     std::to_string(p.value) + "/node",
                 std::to_string(node.value));
  }
}

cluster::Daemon* PhoenixKernel::create_service(ServiceKind kind, net::PartitionId p,
                                               net::NodeId node) {
  if (p.value >= partition_count()) return nullptr;

  auto retire = [this](std::unique_ptr<cluster::Daemon> old) {
    if (old == nullptr) return;
    // The old instance keeps existing (its scheduled callbacks may still
    // fire, guarded by alive()), but frees its address for the successor.
    old->kill();
    old->unbind();
    graveyard_.push_back(std::move(old));
  };

  cluster::Daemon* created = nullptr;
  switch (kind) {
    case ServiceKind::kGroupService: {
      retire(std::move(gsds_[p.value]));
      auto fresh = std::make_unique<GroupServiceDaemon>(
          cluster_, node, p, params_, this, &log_, default_supervised(),
          params_.server_daemon_cpu_share);
      created = fresh.get();
      gsds_[p.value] = std::move(fresh);
      break;
    }
    case ServiceKind::kEventService: {
      retire(std::move(ess_[p.value]));
      auto fresh = std::make_unique<EventService>(cluster_, node, p, params_, this,
                                                  params_.server_daemon_cpu_share);
      created = fresh.get();
      ess_[p.value] = std::move(fresh);
      break;
    }
    case ServiceKind::kCheckpointService: {
      retire(std::move(css_[p.value]));
      auto fresh = std::make_unique<CheckpointService>(
          cluster_, node, p, params_, this, params_.server_daemon_cpu_share);
      created = fresh.get();
      css_[p.value] = std::move(fresh);
      break;
    }
    case ServiceKind::kDataBulletin: {
      retire(std::move(dbs_[p.value]));
      auto fresh = std::make_unique<DataBulletin>(cluster_, node, p, params_, this,
                                                  params_.server_daemon_cpu_share);
      created = fresh.get();
      dbs_[p.value] = std::move(fresh);
      break;
    }
    default:
      return nullptr;  // per-node and singleton services do not migrate
  }
  // A service created through this path replaces a failed instance; let the
  // runtime account the takeover and fire the on_takeover() hook at start().
  static_cast<ServiceRuntime*>(created)->mark_takeover();
  set_service_node(kind, p, node);
  return created;
}

cluster::Daemon* PhoenixKernel::create_extension(const std::string& name,
                                                 net::NodeId node) {
  auto factory = extension_factories_.find(name);
  if (factory == extension_factories_.end()) return nullptr;
  auto old = extension_instances_.find(name);
  if (old != extension_instances_.end() && old->second != nullptr) {
    old->second->kill();
    old->second->unbind();
    graveyard_.push_back(std::move(old->second));
  }
  auto fresh = factory->second(node);
  cluster::Daemon* created = fresh.get();
  // Extensions built on the service runtime get the same failover accounting
  // as kernel services; plain daemons opt out by not inheriting it.
  if (old != extension_instances_.end()) {
    if (auto* rt = dynamic_cast<ServiceRuntime*>(created)) rt->mark_takeover();
  }
  extension_instances_[name] = std::move(fresh);
  return created;
}

std::vector<net::NodeId> PhoenixKernel::migration_targets(net::PartitionId p) const {
  std::vector<net::NodeId> out;
  for (net::NodeId n : cluster_.backup_nodes(p)) {
    if (cluster_.node(n).alive()) out.push_back(n);
  }
  // Degraded mode: with every backup down, a compute node can carry the
  // partition services.
  for (net::NodeId n : cluster_.compute_nodes(p)) {
    if (cluster_.node(n).alive()) out.push_back(n);
  }
  return out;
}

}  // namespace phoenix::kernel
