// Checkpoint service (paper §4.2, §4.4).
//
// One instance per partition, on the partition's server node; the instances
// form a federation. Upper-layer services save their own state here and
// retrieve it after a restart or migration. Writes replicate to the next
// `replication_factor - 1` partitions in ring order, so a service migrated
// to a different node — even a different partition's checkpoint instance —
// can recover its state by asking the federation.
//
// Serving a load costs a disk-read delay (local) or a replicated-segment
// scan delay (federation fetch); both are FtParams knobs calibrated to the
// paper's measured recovery constants.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/checkpoint/checkpoint_msgs.h"
#include "kernel/ft_params.h"
#include "kernel/runtime/service_runtime.h"
#include "kernel/service_kind.h"
#include "kernel/service_msgs.h"
#include "net/message.h"
#include "net/rpc.h"

namespace phoenix::kernel {

class CheckpointService final : public ServiceRuntime {
 public:
  CheckpointService(cluster::Cluster& cluster, net::NodeId node,
                    net::PartitionId partition, const FtParams& params,
                    ServiceDirectory* directory, double cpu_share = 0.0);

  net::PartitionId partition() const noexcept { return partition_; }

  /// Writes replicate to this many instances total (including this one).
  void set_replication_factor(std::size_t r) noexcept { replication_factor_ = r; }

  // --- local API ----------------------------------------------------------

  std::uint64_t save_local(const std::string& service, const std::string& key,
                           std::string data, bool replicate = true);
  std::optional<std::string> load_local(const std::string& service,
                                        const std::string& key) const;
  bool delete_local(const std::string& service, const std::string& key,
                    bool replicate = true);
  std::size_t entry_count() const noexcept { return store_.size(); }

  /// Keys a service has saved at this instance, sorted.
  std::vector<std::string> list_keys(const std::string& service) const;

  /// Deletes every key of a service ("deleting system state", paper §4.2),
  /// replicated across the federation. Returns the local count removed.
  std::size_t delete_namespace(const std::string& service, bool replicate = true);

 private:
  void handle_load(const CheckpointLoadMsg& load, const net::Envelope& env);
  void replicate(const std::string& service, const std::string& key,
                 const std::string& data, std::uint64_t version, bool deleted);
  std::vector<net::Address> federation_peers() const;

  struct Entry {
    std::string data;
    std::uint64_t version = 0;
  };

  struct PendingLoad {
    net::Address reply_to;
    std::uint64_t request_id = 0;
    std::size_t awaiting = 0;
    bool answered = false;
  };
  void finish_load(std::uint64_t fetch_id);

  net::PartitionId partition_;
  const FtParams& params_;
  std::size_t replication_factor_ = 2;
  std::map<std::pair<std::string, std::string>, Entry> store_;
  std::uint64_t next_version_ = 1;
  std::unordered_map<std::uint64_t, PendingLoad> pending_loads_;
  std::uint64_t next_fetch_id_ = 1;
};

}  // namespace phoenix::kernel
