#include "kernel/checkpoint/checkpoint_service.h"

#include <utility>

namespace phoenix::kernel {

CheckpointService::CheckpointService(cluster::Cluster& cluster, net::NodeId node,
                                     net::PartitionId partition,
                                     const FtParams& params,
                                     ServiceDirectory* directory, double cpu_share)
    : ServiceRuntime(cluster, "ckpt/" + std::to_string(partition.value), node,
                     port_of(ServiceKind::kCheckpointService), directory, &params,
                     // The store is disk-backed in a real deployment, so a
                     // restart needs no state recovery: announce readiness to
                     // the partition's GSD immediately, no recover_on_start.
                     Options{.kind = ServiceKind::kCheckpointService,
                             .partition = partition,
                             .announce_up = true},
                     cpu_share),
      partition_(partition),
      params_(params) {
  on<CheckpointSaveMsg>([this](const CheckpointSaveMsg& save) {
    // Fencing: silently drop writes stamped with a pre-takeover epoch (no
    // reply — to the deposed writer this store is simply gone).
    if (!admit_epoch(save.epoch, save.scope)) return;
    serve_mutating(save, [&] {
      const std::uint64_t version = save_local(save.service, save.key, save.data);
      auto reply = std::make_shared<CheckpointSaveReplyMsg>();
      reply->request_id = save.request_id;
      reply->version = version;
      return reply;
    });
  });

  on<CheckpointReplicateMsg>([this](const CheckpointReplicateMsg& rep) {
    auto it = store_.find({rep.service, rep.key});
    if (rep.deleted) {
      if (it != store_.end() && it->second.version < rep.version) store_.erase(it);
    } else if (it == store_.end() || it->second.version < rep.version) {
      store_[{rep.service, rep.key}] = Entry{rep.data, rep.version};
    }
  });

  on<CheckpointLoadMsg>(
      [this](const CheckpointLoadMsg& load, const net::Envelope& env) {
        handle_load(load, env);
      });

  on<CheckpointFetchMsg>([this](const CheckpointFetchMsg& fetch) {
    // Peer fetch: scanning replicated segments costs the federation delay.
    auto data = load_local(fetch.service, fetch.key);
    engine().schedule_after(
        params_.checkpoint_federation_fetch,
        [this, reply_to = fetch.reply_to, request_id = fetch.request_id,
         data = std::move(data)] {
          if (!alive()) return;
          auto reply = std::make_shared<CheckpointLoadReplyMsg>();
          reply->request_id = request_id;
          if (data) {
            reply->found = true;
            reply->data = *data;
          }
          send_any(reply_to, std::move(reply));
        });
  });

  on<CheckpointLoadReplyMsg>([this](const CheckpointLoadReplyMsg& lr) {
    auto it = pending_loads_.find(lr.request_id);
    if (it == pending_loads_.end()) return;
    PendingLoad& pending = it->second;
    --pending.awaiting;
    if (lr.found && !pending.answered) {
      pending.answered = true;
      auto reply = std::make_shared<CheckpointLoadReplyMsg>();
      reply->request_id = pending.request_id;
      reply->found = true;
      reply->data = lr.data;
      reply->version = lr.version;
      send_any(pending.reply_to, std::move(reply));
    }
    if (pending.awaiting == 0) finish_load(lr.request_id);
  });

  on<CheckpointListMsg>([this](const CheckpointListMsg& list) {
    serve_idempotent(list, [&] {
      auto reply = std::make_shared<CheckpointListReplyMsg>();
      reply->request_id = list.request_id;
      reply->keys = list_keys(list.service);
      return reply;
    });
  });

  on<CheckpointDeleteNamespaceMsg>([this](const CheckpointDeleteNamespaceMsg& delns) {
    serve_mutating(delns, [&] {
      auto reply = std::make_shared<CheckpointDeleteNamespaceReplyMsg>();
      reply->request_id = delns.request_id;
      reply->removed = delete_namespace(delns.service);
      return reply;
    });
  });

  on<CheckpointDeleteMsg>([this](const CheckpointDeleteMsg& del) {
    serve_mutating(del, [&] {
      const bool existed = delete_local(del.service, del.key);
      auto reply = std::make_shared<CheckpointDeleteReplyMsg>();
      reply->request_id = del.request_id;
      reply->existed = existed;
      return reply;
    });
  });
}

void CheckpointService::handle_load(const CheckpointLoadMsg& load,
                                    const net::Envelope& env) {
  if (auto data = load_local(load.service, load.key)) {
    // Hit in this instance's store. A requester from our own partition is
    // served from the warm local segment; a cross-partition requester
    // (recovery after migration) pays the cold replicated-segment scan.
    const bool same_partition =
        cluster().partition_of(env.from.node) == partition_;
    engine().schedule_after(
        same_partition ? params_.checkpoint_local_fetch
                       : params_.checkpoint_federation_fetch,
        [this, reply_to = load.reply_to, request_id = load.request_id,
         data = std::move(*data)] {
          if (!alive()) return;
          auto reply = std::make_shared<CheckpointLoadReplyMsg>();
          reply->request_id = request_id;
          reply->found = true;
          reply->data = data;
          send_any(reply_to, std::move(reply));
        });
    return;
  }
  // Miss: ask every federation peer; first positive answer wins.
  const std::uint64_t fetch_id = next_fetch_id_++;
  PendingLoad pending{load.reply_to, load.request_id, 0, false};
  for (const net::Address& peer : federation_peers()) {
    auto fetch = std::make_shared<CheckpointFetchMsg>();
    fetch->service = load.service;
    fetch->key = load.key;
    fetch->reply_to = address();
    fetch->request_id = fetch_id;
    if (send_any(peer, std::move(fetch)).valid()) ++pending.awaiting;
  }
  if (pending.awaiting == 0) {
    auto reply = std::make_shared<CheckpointLoadReplyMsg>();
    reply->request_id = load.request_id;
    send_any(load.reply_to, std::move(reply));
    return;
  }
  pending_loads_.emplace(fetch_id, std::move(pending));
  // Dead peers never answer; close the load as not-found after a bounded
  // wait so recovering services are not stuck behind a half-down
  // federation (e.g. during staged cluster construction).
  engine().schedule_after(params_.checkpoint_federation_fetch + 2 * sim::kSecond,
                          [this, fetch_id] { finish_load(fetch_id); });
}

std::vector<net::Address> CheckpointService::federation_peers() const {
  std::vector<net::Address> peers;
  if (directory() == nullptr) return peers;
  for (std::size_t p = 0; p < directory()->partition_count(); ++p) {
    const net::PartitionId pid{static_cast<std::uint32_t>(p)};
    if (pid == partition_) continue;
    peers.push_back(directory()->service_address(ServiceKind::kCheckpointService, pid));
  }
  return peers;
}

std::uint64_t CheckpointService::save_local(const std::string& service,
                                            const std::string& key,
                                            std::string data, bool do_replicate) {
  const std::uint64_t version = next_version_++;
  store_[{service, key}] = Entry{std::move(data), version};
  if (do_replicate) {
    const Entry& e = store_[{service, key}];
    replicate(service, key, e.data, version, /*deleted=*/false);
  }
  return version;
}

std::optional<std::string> CheckpointService::load_local(const std::string& service,
                                                         const std::string& key) const {
  auto it = store_.find({service, key});
  if (it == store_.end()) return std::nullopt;
  return it->second.data;
}

bool CheckpointService::delete_local(const std::string& service,
                                     const std::string& key, bool do_replicate) {
  const bool existed = store_.erase({service, key}) > 0;
  if (do_replicate) replicate(service, key, "", next_version_++, /*deleted=*/true);
  return existed;
}

std::vector<std::string> CheckpointService::list_keys(
    const std::string& service) const {
  std::vector<std::string> out;
  for (auto it = store_.lower_bound({service, std::string()});
       it != store_.end() && it->first.first == service; ++it) {
    out.push_back(it->first.second);
  }
  return out;
}

std::size_t CheckpointService::delete_namespace(const std::string& service,
                                                bool do_replicate) {
  std::size_t removed = 0;
  for (const std::string& key : list_keys(service)) {
    store_.erase({service, key});
    ++removed;
    if (do_replicate) replicate(service, key, "", next_version_++, /*deleted=*/true);
  }
  return removed;
}

void CheckpointService::finish_load(std::uint64_t fetch_id) {
  auto it = pending_loads_.find(fetch_id);
  if (it == pending_loads_.end()) return;
  const PendingLoad pending = it->second;
  pending_loads_.erase(it);
  if (!pending.answered && alive()) {
    auto reply = std::make_shared<CheckpointLoadReplyMsg>();
    reply->request_id = pending.request_id;
    send_any(pending.reply_to, std::move(reply));
  }
}

void CheckpointService::replicate(const std::string& service, const std::string& key,
                                  const std::string& data, std::uint64_t version,
                                  bool deleted) {
  if (directory() == nullptr || replication_factor_ <= 1) return;
  const std::size_t parts = directory()->partition_count();
  if (parts <= 1) return;
  // Replicas live on the next (replication_factor - 1) partitions ring-wise.
  for (std::size_t i = 1; i < replication_factor_ && i < parts; ++i) {
    const net::PartitionId target{
        static_cast<std::uint32_t>((partition_.value + i) % parts)};
    auto msg = std::make_shared<CheckpointReplicateMsg>();
    msg->service = service;
    msg->key = key;
    msg->data = data;
    msg->version = version;
    msg->deleted = deleted;
    send_any(directory()->service_address(ServiceKind::kCheckpointService, target),
             std::move(msg));
  }
}

}  // namespace phoenix::kernel
