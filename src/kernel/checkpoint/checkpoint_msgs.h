// Checkpoint federation wire protocol (paper §4.2, §4.4).
//
// Split from checkpoint_service.h so layers below the service — notably
// kernel/runtime/service_runtime.h, whose generic recovery path issues
// CheckpointLoadMsg and CheckpointSaveMsg on behalf of every stateful
// service — can speak the protocol without depending on the service class
// itself (CheckpointService is built *on* the runtime).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ids.h"
#include "net/message.h"

namespace phoenix::kernel {

struct CheckpointSaveMsg final : net::Message {
  std::string service;  // owning service, e.g. "es/3"
  std::string key;
  std::string data;
  net::Address reply_to;
  std::uint64_t request_id = 0;
  std::uint16_t attempt = 1;  // header-resident; excluded from wire_size()
  /// Writer's meta-group epoch (fencing): a save stamped below the target's
  /// watermark is dropped, so a deposed GSD cannot clobber the view its
  /// successor checkpointed. 0 = unfenced (every service but the GSD, and
  /// the GSD itself under the paper's unilateral policy — wire unchanged).
  std::uint64_t epoch = 0;
  /// Ring scope the epoch belongs to (0 = the flat meta-group; zone rings
  /// fence independently under a zoned topology). Adds bytes only when set.
  std::uint32_t scope = 0;

  PHOENIX_MESSAGE_TYPE("ckpt.save")
  std::size_t wire_size() const noexcept override {
    return service.size() + key.size() + data.size() + 16 +
           (epoch != 0 ? 8 : 0) + (scope != 0 ? 4 : 0);
  }
};

struct CheckpointSaveReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::uint64_t version = 0;

  PHOENIX_MESSAGE_TYPE("ckpt.save_reply")
  std::size_t wire_size() const noexcept override { return 16; }
};

struct CheckpointReplicateMsg final : net::Message {
  std::string service;
  std::string key;
  std::string data;
  std::uint64_t version = 0;
  bool deleted = false;

  PHOENIX_MESSAGE_TYPE("ckpt.replicate")
  std::size_t wire_size() const noexcept override {
    return service.size() + key.size() + data.size() + 17;
  }
};

struct CheckpointLoadMsg final : net::Message {
  std::string service;
  std::string key;
  net::Address reply_to;
  std::uint64_t request_id = 0;
  std::uint16_t attempt = 1;  // header-resident; excluded from wire_size()

  PHOENIX_MESSAGE_TYPE("ckpt.load")
  std::size_t wire_size() const noexcept override {
    return service.size() + key.size() + 16;
  }
};

struct CheckpointLoadReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool found = false;
  std::string data;
  std::uint64_t version = 0;

  PHOENIX_MESSAGE_TYPE("ckpt.load_reply")
  std::size_t wire_size() const noexcept override { return data.size() + 25; }
};

/// Peer-to-peer fetch inside the federation (a load that missed locally).
struct CheckpointFetchMsg final : net::Message {
  std::string service;
  std::string key;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("ckpt.fetch")
  std::size_t wire_size() const noexcept override {
    return service.size() + key.size() + 16;
  }
};

struct CheckpointDeleteMsg final : net::Message {
  std::string service;
  std::string key;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("ckpt.delete")
  std::size_t wire_size() const noexcept override {
    return service.size() + key.size() + 16;
  }
};

struct CheckpointDeleteReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool existed = false;

  PHOENIX_MESSAGE_TYPE("ckpt.delete_reply")
  std::size_t wire_size() const noexcept override { return 9; }
};

/// Lists the keys a service has saved at this instance.
struct CheckpointListMsg final : net::Message {
  std::string service;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("ckpt.list")
  std::size_t wire_size() const noexcept override { return service.size() + 16; }
};

struct CheckpointListReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::vector<std::string> keys;

  PHOENIX_MESSAGE_TYPE("ckpt.list_reply")
  std::size_t wire_size() const noexcept override {
    std::size_t n = 16;
    for (const auto& k : keys) n += k.size() + 1;
    return n;
  }
};

/// Deletes a service's entire namespace ("deleting system state", §4.2).
struct CheckpointDeleteNamespaceMsg final : net::Message {
  std::string service;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("ckpt.delete_ns")
  std::size_t wire_size() const noexcept override { return service.size() + 16; }
};

struct CheckpointDeleteNamespaceReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::uint64_t removed = 0;

  PHOENIX_MESSAGE_TYPE("ckpt.delete_ns_reply")
  std::size_t wire_size() const noexcept override { return 16; }
};

}  // namespace phoenix::kernel
