// Parallel process management service (paper §4.2).
//
// One PPM daemon per node. It loads and deletes remote jobs, cleans up
// terminated process entries, answers liveness probes (the group service's
// node-vs-process diagnosis hinges on this), restarts or instantiates kernel
// service daemons on request (the recovery/migration path), and executes
// parallel commands across node sets with tree fan-out.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/ft_params.h"
#include "kernel/runtime/service_runtime.h"
#include "kernel/service_kind.h"
#include "net/message.h"
#include "net/rpc.h"

namespace phoenix::kernel {

// --- messages ---------------------------------------------------------------

struct ProbeMsg final : net::Message {
  net::Address reply_to;
  std::uint64_t probe_id = 0;

  PHOENIX_MESSAGE_TYPE("ppm.probe")
  std::size_t wire_size() const noexcept override { return 16; }
};

struct ProbeReplyMsg final : net::Message {
  std::uint64_t probe_id = 0;
  net::NodeId node;
  /// ps-style liveness of the node's watch daemon and GSD, so the prober
  /// can tell "your heartbeats got lost" from "the daemon is dead".
  bool wd_running = false;
  bool gsd_running = false;

  PHOENIX_MESSAGE_TYPE("ppm.probe_reply")
  std::size_t wire_size() const noexcept override { return 18; }
};

/// Specification of a remote job process.
struct ProcessSpec {
  std::string name;
  std::string owner;
  double cpu_share = 1.0;            // CPUs consumed while running
  sim::SimTime duration = 0;         // 0 = runs until killed
  std::size_t image_bytes = 4 << 20; // binary+input shipped at load time
};

struct SpawnMsg final : net::Message {
  ProcessSpec spec;
  net::Address reply_to;       // SpawnReplyMsg destination (invalid = none)
  net::Address exit_notify;    // ExitNotifyMsg destination (invalid = none)
  std::uint64_t request_id = 0;
  std::uint16_t attempt = 1;   // header-resident; excluded from wire_size()

  PHOENIX_MESSAGE_TYPE("ppm.spawn")
  std::size_t wire_size() const noexcept override {
    return spec.name.size() + spec.owner.size() + spec.image_bytes / 1024 + 32;
  }
};

struct SpawnReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool ok = false;
  cluster::Pid pid = 0;
  net::NodeId node;

  PHOENIX_MESSAGE_TYPE("ppm.spawn_reply")
  std::size_t wire_size() const noexcept override { return 24; }
};

struct ExitNotifyMsg final : net::Message {
  cluster::Pid pid = 0;
  net::NodeId node;
  std::string name;
  int exit_code = 0;

  PHOENIX_MESSAGE_TYPE("ppm.exit_notify")
  std::size_t wire_size() const noexcept override { return name.size() + 24; }
};

struct KillMsg final : net::Message {
  cluster::Pid pid = 0;
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("ppm.kill")
  std::size_t wire_size() const noexcept override { return 24; }
};

struct KillReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool ok = false;

  PHOENIX_MESSAGE_TYPE("ppm.kill_reply")
  std::size_t wire_size() const noexcept override { return 9; }
};

/// Reaps terminated process-table entries ("resource cleaning up").
struct CleanupMsg final : net::Message {
  net::Address reply_to;
  std::uint64_t request_id = 0;

  PHOENIX_MESSAGE_TYPE("ppm.cleanup")
  std::size_t wire_size() const noexcept override { return 16; }
};

struct CleanupReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::uint64_t reaped = 0;

  PHOENIX_MESSAGE_TYPE("ppm.cleanup_reply")
  std::size_t wire_size() const noexcept override { return 16; }
};

/// Restart a kernel service instance on this node (recovery), or create and
/// start one here (migration). `extension` names a registered extension
/// service instead of a kernel ServiceKind when non-empty.
struct StartServiceMsg final : net::Message {
  ServiceKind kind = ServiceKind::kWatchDaemon;
  std::string extension;
  net::PortId extension_port;  // mailbox of the extension instance (restarts)
  net::PartitionId partition;
  bool create = false;  // false: restart existing instance object on this node
  net::Address reply_to;
  std::uint64_t request_id = 0;
  /// Sender's meta-group epoch (fencing). 0 = unfenced legacy traffic: the
  /// paper's unilateral policy never stamps it, keeping the wire identical.
  std::uint64_t epoch = 0;
  /// Ring scope the epoch belongs to (0 = the flat meta-group; zone rings
  /// fence independently under a zoned topology). Adds bytes only when set.
  std::uint32_t scope = 0;

  PHOENIX_MESSAGE_TYPE("ppm.start_service")
  std::size_t wire_size() const noexcept override {
    return extension.size() + 24 + (epoch != 0 ? 8 : 0) + (scope != 0 ? 4 : 0);
  }
};

struct StartServiceReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  bool ok = false;
  /// Rejected by the epoch fence: the requester's epoch predates a quorum
  /// takeover this node has already witnessed.
  bool fenced = false;
  net::Address service;

  PHOENIX_MESSAGE_TYPE("ppm.start_service_reply")
  std::size_t wire_size() const noexcept override { return 24 + (fenced ? 1 : 0); }
};

/// Parallel command over a node set, executed with tree fan-out.
struct ParallelCmdMsg final : net::Message {
  std::string command;
  std::vector<net::NodeId> nodes;  // nodes still to cover (first = executor)
  std::size_t fanout = 4;
  net::Address reply_to;
  std::uint64_t request_id = 0;
  std::uint16_t attempt = 1;  // header-resident; excluded from wire_size()

  PHOENIX_MESSAGE_TYPE("ppm.parallel_cmd")
  std::size_t wire_size() const noexcept override {
    return command.size() + nodes.size() * 4 + 24;
  }
};

struct ParallelCmdReplyMsg final : net::Message {
  std::uint64_t request_id = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;

  PHOENIX_MESSAGE_TYPE("ppm.parallel_cmd_reply")
  std::size_t wire_size() const noexcept override { return 24; }
};

// --- daemon -----------------------------------------------------------------

class ProcessManager final : public ServiceRuntime {
 public:
  ProcessManager(cluster::Cluster& cluster, net::NodeId node,
                 const FtParams& params, ServiceDirectory* directory,
                 double cpu_share = 0.0);

  /// Local spawn used by in-process callers (PWS scheduler tests etc.).
  cluster::Pid spawn_local(const ProcessSpec& spec, net::Address exit_notify = {});

  /// Local command execution cost (per node, per command).
  static constexpr sim::SimTime kCommandExecTime = 5 * sim::kMillisecond;

 private:
  void handle_start_service(const StartServiceMsg& msg);
  void handle_parallel_cmd(const ParallelCmdMsg& msg);
  void process_exited(cluster::Pid pid, net::Address notify);
  sim::SimTime exec_time_for(ServiceKind kind, bool extension) const;

  const FtParams& params_;

  /// In-flight parallel command aggregation state. The fan-out completes
  /// asynchronously, so the at-most-once protocol uses the runtime's
  /// replay_cache() begin/complete directly instead of serve_mutating().
  struct PendingCmd {
    net::Address reply_to;
    std::uint64_t request_id = 0;
    std::uint64_t succeeded = 0;
    std::uint64_t failed = 0;
    std::size_t awaiting = 0;  // child replies still outstanding
  };
  std::unordered_map<std::uint64_t, PendingCmd> pending_cmds_;
  std::uint64_t next_cmd_id_ = 1;
};

}  // namespace phoenix::kernel
