#include "kernel/ppm/process_manager.h"

#include <algorithm>
#include <utility>

namespace phoenix::kernel {

namespace {
/// Give up on a parallel-command subtree after this long.
constexpr sim::SimTime kCmdTimeout = 5 * sim::kSecond;
}  // namespace

ProcessManager::ProcessManager(cluster::Cluster& cluster, net::NodeId node,
                               const FtParams& params, ServiceDirectory* directory,
                               double cpu_share)
    : ServiceRuntime(cluster, "ppm", node, port_of(ServiceKind::kProcessManager),
                     directory, &params,
                     Options{.kind = ServiceKind::kProcessManager,
                             .partition = cluster.partition_of(node)},
                     cpu_share),
      params_(params) {
  on<ProbeMsg>([this](const ProbeMsg& probe, const net::Envelope& env) {
    auto reply = std::make_shared<ProbeReplyMsg>();
    reply->probe_id = probe.probe_id;
    reply->node = node_id();
    const auto* wd = this->cluster().daemon_at(
        {node_id(), port_of(ServiceKind::kWatchDaemon)});
    reply->wd_running = wd != nullptr && wd->alive();
    const auto* gsd = this->cluster().daemon_at(
        {node_id(), port_of(ServiceKind::kGroupService)});
    reply->gsd_running = gsd != nullptr && gsd->alive();
    // Answer on the same network the probe arrived on: the prober is
    // checking reachability of this node, not of a particular path.
    send(probe.reply_to, env.network, std::move(reply));
  });
  on<SpawnMsg>([this](const SpawnMsg& msg) {
    serve_mutating(msg, [&]() -> std::shared_ptr<const net::Message> {
      const cluster::Pid pid = spawn_local(msg.spec, msg.exit_notify);
      auto reply = std::make_shared<SpawnReplyMsg>();
      reply->request_id = msg.request_id;
      reply->ok = true;
      reply->pid = pid;
      reply->node = node_id();
      return reply;
    });
  });
  on<KillMsg>([this](const KillMsg& msg) {
    serve_idempotent(msg, [&] {
      auto& node = this->cluster().node(node_id());
      const bool ok =
          node.terminate_process(msg.pid, cluster::ProcessState::kKilled, now());
      auto reply = std::make_shared<KillReplyMsg>();
      reply->request_id = msg.request_id;
      reply->ok = ok;
      return reply;
    });
  });
  on<CleanupMsg>([this](const CleanupMsg& msg) {
    serve_idempotent(msg, [&] {
      const std::size_t reaped = this->cluster().node(node_id()).reap();
      auto reply = std::make_shared<CleanupReplyMsg>();
      reply->request_id = msg.request_id;
      reply->reaped = reaped;
      return reply;
    });
  });
  on<StartServiceMsg>([this](const StartServiceMsg& msg) {
    handle_start_service(msg);
  });
  on<ParallelCmdMsg>([this](const ParallelCmdMsg& msg) {
    handle_parallel_cmd(msg);
  });
  on<ParallelCmdReplyMsg>([this](const ParallelCmdReplyMsg& creply) {
    auto it = pending_cmds_.find(creply.request_id);
    if (it == pending_cmds_.end()) return;
    it->second.succeeded += creply.succeeded;
    it->second.failed += creply.failed;
    if (--it->second.awaiting == 0) {
      PendingCmd done = it->second;
      pending_cmds_.erase(it);
      if (done.reply_to.valid()) {
        auto reply = std::make_shared<ParallelCmdReplyMsg>();
        reply->request_id = done.request_id;
        reply->succeeded = done.succeeded;
        reply->failed = done.failed;
        replay_cache().complete(done.reply_to, ParallelCmdMsg::static_type_id(),
                                done.request_id, reply);
        send_any(done.reply_to, std::move(reply));
      }
    }
  });
}

cluster::Pid ProcessManager::spawn_local(const ProcessSpec& spec,
                                         net::Address exit_notify) {
  auto& node = cluster().node(node_id());
  const cluster::Pid pid = cluster().next_pid();
  node.add_process(cluster::ProcessInfo{
      .pid = pid,
      .name = spec.name,
      .owner = spec.owner,
      .state = cluster::ProcessState::kRunning,
      .cpu_share = spec.cpu_share,
      .started_at = now(),
  });
  if (spec.duration > 0) {
    engine().schedule_after(spec.duration, [this, pid, exit_notify] {
      process_exited(pid, exit_notify);
    });
  }
  return pid;
}

void ProcessManager::process_exited(cluster::Pid pid, net::Address notify) {
  auto& node = cluster().node(node_id());
  if (!node.alive()) return;  // the node died first; nothing exits cleanly
  if (!node.terminate_process(pid, cluster::ProcessState::kExited, now())) return;
  if (notify.valid() && alive()) {
    auto msg = std::make_shared<ExitNotifyMsg>();
    msg->pid = pid;
    msg->node = node_id();
    const cluster::ProcessInfo* info = node.find_process(pid);
    if (info != nullptr) msg->name = info->name;
    send_any(notify, std::move(msg));
  }
}

sim::SimTime ProcessManager::exec_time_for(ServiceKind kind, bool extension) const {
  if (extension) return params_.service_exec_time;
  switch (kind) {
    case ServiceKind::kWatchDaemon: return params_.wd_exec_time;
    case ServiceKind::kGroupService: return params_.gsd_exec_time;
    default: return params_.service_exec_time;
  }
}

void ProcessManager::handle_start_service(const StartServiceMsg& msg) {
  auto reply = std::make_shared<StartServiceReplyMsg>();
  reply->request_id = msg.request_id;

  if (!admit_epoch(msg.epoch, msg.scope)) {
    // A deposed meta-group member ordering restarts/migrations with its
    // pre-takeover epoch: refuse, or it could resurrect services the new
    // Leader is already recovering elsewhere.
    reply->fenced = true;
    if (msg.reply_to.valid()) send_any(msg.reply_to, std::move(reply));
    return;
  }

  cluster::Daemon* target = nullptr;
  if (msg.create) {
    if (directory() != nullptr) {
      target = msg.extension.empty()
                   ? directory()->create_service(msg.kind, msg.partition, node_id())
                   : directory()->create_extension(msg.extension, node_id());
    }
  } else {
    // Restart the existing (dead) instance object bound on this node.
    const net::PortId port =
        msg.extension.empty() ? port_of(msg.kind) : msg.extension_port;
    target = cluster().daemon_at({node_id(), port});
  }

  if (target == nullptr) {
    if (msg.reply_to.valid()) send_any(msg.reply_to, std::move(reply));
    return;
  }

  const sim::SimTime exec = exec_time_for(msg.kind, !msg.extension.empty());
  const net::Address service_addr = target->address();
  engine().schedule_after(exec, [this, target, service_addr, reply_to = msg.reply_to,
                                 request_id = msg.request_id] {
    if (!cluster().node(node_id()).alive()) return;
    target->start();
    if (reply_to.valid() && alive()) {
      auto r = std::make_shared<StartServiceReplyMsg>();
      r->request_id = request_id;
      r->ok = true;
      r->service = service_addr;
      send_any(reply_to, std::move(r));
    }
  });
}

void ProcessManager::handle_parallel_cmd(const ParallelCmdMsg& msg) {
  // At-most-once: a retransmission while the fan-out is still running is
  // dropped (the original's reply answers it); one arriving after completion
  // replays the aggregated reply without re-executing the command tree.
  std::shared_ptr<const net::Message> replay;
  switch (replay_cache().begin(msg.reply_to, msg.type_id(), msg.request_id,
                               &replay)) {
    case net::ReplayCache::Admit::kReplay:
      send_any(msg.reply_to, std::move(replay));
      return;
    case net::ReplayCache::Admit::kInFlight:
      return;
    case net::ReplayCache::Admit::kNew:
      break;
  }

  // Execute locally, then fan the remaining nodes out to up to `fanout`
  // children; each child covers a contiguous chunk of the node list.
  std::vector<net::NodeId> rest;
  for (net::NodeId n : msg.nodes) {
    if (n != node_id()) rest.push_back(n);
  }

  const std::uint64_t cmd_id = next_cmd_id_++;
  PendingCmd pending;
  pending.reply_to = msg.reply_to;
  pending.request_id = msg.request_id;
  pending.succeeded = 1;  // local execution (accounted below after exec time)

  const std::size_t fanout = std::max<std::size_t>(1, msg.fanout);
  const std::size_t chunks = std::min(fanout, rest.size());
  for (std::size_t i = 0; i < chunks; ++i) {
    // Chunk i takes elements [i*len, (i+1)*len) with remainder spread left.
    const std::size_t base = rest.size() / chunks;
    const std::size_t extra = rest.size() % chunks;
    const std::size_t begin = i * base + std::min(i, extra);
    const std::size_t end = begin + base + (i < extra ? 1 : 0);
    if (begin >= end) continue;

    auto sub = std::make_shared<ParallelCmdMsg>();
    sub->command = msg.command;
    sub->nodes.assign(rest.begin() + static_cast<std::ptrdiff_t>(begin),
                      rest.begin() + static_cast<std::ptrdiff_t>(end));
    sub->fanout = fanout;
    sub->reply_to = address();
    sub->request_id = cmd_id;
    const net::Address child{sub->nodes.front(), port_of(ServiceKind::kProcessManager)};
    const std::size_t chunk_size = end - begin;
    if (send_any(child, std::move(sub)).valid()) {
      ++pending.awaiting;
    } else {
      pending.failed += chunk_size;  // unreachable chunk head: whole chunk lost
    }
  }

  ++pending.awaiting;  // one slot for the local execution below
  pending_cmds_.emplace(cmd_id, pending);

  // Local execution cost; completes the subtree if all children are done.
  engine().schedule_after(kCommandExecTime, [this, cmd_id] {
    auto it = pending_cmds_.find(cmd_id);
    if (it == pending_cmds_.end()) return;
    if (--it->second.awaiting == 0) {
      PendingCmd done = it->second;
      pending_cmds_.erase(it);
      if (done.reply_to.valid() && alive()) {
        auto reply = std::make_shared<ParallelCmdReplyMsg>();
        reply->request_id = done.request_id;
        reply->succeeded = done.succeeded;
        reply->failed = done.failed;
        replay_cache().complete(done.reply_to, ParallelCmdMsg::static_type_id(),
                                done.request_id, reply);
        send_any(done.reply_to, std::move(reply));
      }
    }
  });

  // Subtree timeout: whatever has not replied by then counts as failed.
  engine().schedule_after(kCmdTimeout, [this, cmd_id] {
    auto it = pending_cmds_.find(cmd_id);
    if (it == pending_cmds_.end()) return;
    PendingCmd done = it->second;
    pending_cmds_.erase(it);
    if (done.reply_to.valid() && alive()) {
      auto reply = std::make_shared<ParallelCmdReplyMsg>();
      reply->request_id = done.request_id;
      reply->succeeded = done.succeeded;
      reply->failed = done.failed + done.awaiting;  // lost subtrees
      replay_cache().complete(done.reply_to, ParallelCmdMsg::static_type_id(),
                              done.request_id, reply);
      send_any(done.reply_to, std::move(reply));
    }
  });
}

}  // namespace phoenix::kernel
