// Cross-service control messages.
#pragma once

#include <string>

#include "kernel/service_kind.h"
#include "net/ids.h"
#include "net/message.h"

namespace phoenix::kernel {

/// Sent by a service instance to its partition's GSD when it has finished
/// starting (including any checkpoint-based state recovery). The GSD uses
/// it to close open fault records; reports with no open record are ignored.
struct ServiceUpMsg final : net::Message {
  ServiceKind kind = ServiceKind::kEventService;
  std::string extension;  // non-empty for extension services
  net::PartitionId partition;
  net::Address service;

  PHOENIX_MESSAGE_TYPE("service.up")
  std::size_t wire_size() const noexcept override { return extension.size() + 24; }
};

}  // namespace phoenix::kernel
