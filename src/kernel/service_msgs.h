// Cross-service control messages.
#pragma once

#include <string>

#include "kernel/service_kind.h"
#include "net/ids.h"
#include "net/message.h"

namespace phoenix::kernel {

/// Sent by a service instance to its partition's GSD when it has finished
/// starting (including any checkpoint-based state recovery). The GSD uses
/// it to close open fault records; reports with no open record are ignored.
struct ServiceUpMsg final : net::Message {
  ServiceKind kind = ServiceKind::kEventService;
  std::string extension;  // non-empty for extension services
  net::PartitionId partition;
  net::Address service;

  PHOENIX_MESSAGE_TYPE("service.up")
  std::size_t wire_size() const noexcept override { return extension.size() + 24; }
};

/// Broadcast by a quorum takeover initiator after it bumps the meta-group
/// epoch: every ServiceRuntime that hears it raises its fencing high-water
/// mark, so mutating kernel RPCs still stamped with the deposed member's
/// older epoch are rejected. Never sent under the paper's unilateral
/// failover policy (epochs stay 0 there and fencing is inert).
struct EpochFenceMsg final : net::Message {
  std::uint64_t epoch = 0;
  /// Ring scope the epoch belongs to (0 = the flat meta-group). Under a
  /// zoned topology each ring fences independently, so a zone takeover
  /// cannot invalidate another zone's in-flight recoveries. Zero is
  /// omitted from the wire (flat mode stays byte-identical).
  std::uint32_t scope = 0;

  PHOENIX_MESSAGE_TYPE("runtime.epoch_fence")
  std::size_t wire_size() const noexcept override {
    return 8 + (scope != 0 ? 4 : 0);
  }
};

}  // namespace phoenix::kernel
