#include "kernel/group/group_service.h"

#include <algorithm>
#include <utility>

#include "kernel/checkpoint/checkpoint_service.h"
#include "kernel/event/event_service.h"
#include "kernel/ppm/process_manager.h"

namespace phoenix::kernel {

namespace {
constexpr sim::SimTime kJoinRetryPeriod = 2 * sim::kSecond;
}  // namespace

GroupServiceDaemon::GroupServiceDaemon(cluster::Cluster& cluster, net::NodeId node,
                                       net::PartitionId partition,
                                       const FtParams& params,
                                       ServiceDirectory* directory, FaultLog* log,
                                       std::vector<SupervisedSpec> default_supervised,
                                       double cpu_share)
    : ServiceRuntime(cluster, "gsd/" + std::to_string(partition.value), node,
                     port_of(ServiceKind::kGroupService), directory, &params,
                     Options{.kind = ServiceKind::kGroupService,
                             .partition = partition,
                             .checkpoint_namespace =
                                 "gsd/" + std::to_string(partition.value),
                             .checkpoint_key = "view"},
                     cpu_share),
      partition_(partition),
      params_(params),
      log_(log),
      supervised_(std::move(default_supervised)),
      partition_checker_(cluster.engine(), params.heartbeat_interval,
                         [this] { check_partition(); }),
      meta_checker_(cluster.engine(), params.heartbeat_interval,
                    [this] { check_meta(); }),
      service_checker_(cluster.engine(), params.heartbeat_interval,
                       [this] { check_services(); }),
      ring_beater_(cluster.engine(), params.heartbeat_interval,
                   [this] { send_ring_heartbeat(); }),
      join_retrier_(cluster.engine(), kJoinRetryPeriod, [this] { try_rejoin(); }) {
  on<HeartbeatMsg>([this](const HeartbeatMsg& hb, const net::Envelope& env) {
    handle_heartbeat(hb, env.network);
  });
  on<RingHeartbeatMsg>([this](const RingHeartbeatMsg& ring, const net::Envelope& env) {
    handle_ring_heartbeat(ring, env);
  });
  on<ProbeReplyMsg>([this](const ProbeReplyMsg& reply) { handle_probe_reply(reply); });
  on<ViewChangeMsg>([this](const ViewChangeMsg& msg) { apply_view(msg.view); });
  on<MetaJoinMsg>([this](const MetaJoinMsg& join) { handle_join(join); });
  on<RegroupProposeMsg>([this](const RegroupProposeMsg& proposal) {
    handle_regroup_propose(proposal);
  });
  on<RegroupVoteMsg>([this](const RegroupVoteMsg& vote) {
    handle_regroup_vote(vote);
  });
  on<ServiceUpMsg>([this](const ServiceUpMsg& up) { handle_service_up(up); });
  on<StartServiceReplyMsg>([this](const StartServiceReplyMsg& reply) {
    handle_start_service_reply(reply);
  });
  // Recovery here is fetch_state_and_join (view merge + ring rejoin), not the
  // runtime's generic restore loop, so this daemon owns the reply type.
  on<CheckpointLoadReplyMsg>([this](const CheckpointLoadReplyMsg& reply) {
    handle_state_load_reply(reply);
  });
}

std::uint64_t GroupServiceDaemon::epoch_floor() const noexcept {
  return params_.failover.mode == FtParams::FailoverPolicy::Mode::kQuorum &&
                 params_.failover.fence_stale_epochs
             ? 1
             : 0;
}

void GroupServiceDaemon::set_initial_view(MetaView view) {
  view_ = std::move(view);
  view_.epoch = std::max(view_.epoch, epoch_floor());
  joined_ = view_.contains(partition_);
  booted_with_view_ = true;
  pred_partition_ = net::PartitionId{};
}

bool GroupServiceDaemon::is_leader() const {
  auto l = view_.leader();
  return l && l->partition == partition_ && joined_;
}

bool GroupServiceDaemon::is_princess() const {
  auto p = view_.princess();
  return p && p->partition == partition_ && joined_;
}

void GroupServiceDaemon::supervise(SupervisedSpec spec) {
  for (auto& existing : supervised_) {
    if (existing.component == spec.component) {
      existing = std::move(spec);
      return;
    }
  }
  supervised_.push_back(std::move(spec));
}

GroupServiceDaemon::NodeStatus GroupServiceDaemon::node_status(net::NodeId node) const {
  auto it = watches_.find(node.value);
  return it == watches_.end() ? NodeStatus::kHealthy : it->second.status;
}

void GroupServiceDaemon::on_service_start() {
  // Members seeded at cluster boot carry incarnation 0; every restart or
  // migration gets a strictly larger one so tombstones can tell them apart.
  incarnation_ = booted_with_view_ ? 0 : std::max<std::uint64_t>(now(), 1);

  // Fresh watch table: give every partition node a full grace period.
  watches_.clear();
  const std::size_t nets = cluster().fabric().network_count();
  for (net::NodeId n : cluster().partition_nodes(partition_)) {
    NodeWatch watch;
    watch.last_per_net.assign(nets, now());
    watch.net_failed.assign(nets, false);
    watches_.emplace(n.value, std::move(watch));
  }
  pred_last_per_net_.assign(nets, now());
  pred_net_failed_.assign(nets, false);
  pred_diagnosing_ = false;
  probes_.clear();
  pending_recoveries_.clear();
  service_recovering_.clear();
  regroup_.reset();
  vote_probes_.clear();
  answered_rounds_.clear();

  const sim::SimTime interval = params_.heartbeat_interval;
  // Heartbeat staleness is judged against interval + grace, but the SCAN
  // runs at grace granularity so a missed heartbeat is noticed promptly
  // (paper §5.1: detection time ~= the heartbeat interval, not a multiple
  // of it). Supervision of local services stays at the full interval — the
  // paper's Table 3 measures a 30 s detection for a dead event service.
  const sim::SimTime scan =
      std::max<sim::SimTime>(params_.heartbeat_grace, 50 * sim::kMillisecond);
  partition_checker_.set_period(scan);
  meta_checker_.set_period(scan);
  service_checker_.set_period(interval);
  ring_beater_.set_period(interval);
  partition_checker_.start_after(interval + params_.heartbeat_grace +
                                 1 * sim::kMillisecond);
  meta_checker_.start_after(interval + params_.heartbeat_grace +
                            2 * sim::kMillisecond);
  service_checker_.start_after(interval + 3 * sim::kMillisecond);
  ring_beater_.start_after(engine().rng().uniform_int(1, 10 * sim::kMillisecond));

  announce_to_partition();

  futile_join_attempts_ = 0;
  if (booted_with_view_ && !started_before_) {
    // Cluster boot: the kernel seeded the full view; nothing to recover.
    // Persist it so a later in-place restart recovers from the warm local
    // checkpoint segment instead of scanning the federation.
    booted_with_view_ = false;
    save_state();
  } else if (bootstrap_requested_ && !started_before_) {
    // Ring founder (staged construction): start a singleton meta-group.
    bootstrap_requested_ = false;
    MetaView v;
    v.view_id = 1;
    v.epoch = std::max(view_.epoch, epoch_floor());
    v.members = {MetaMember{partition_, address(), incarnation_}};
    view_ = std::move(v);
    joined_ = true;
    save_state();
  } else {
    // Restart or migration: recover the last view, then rejoin the ring.
    booted_with_view_ = false;
    joined_ = false;
    fetch_state_and_join();
  }
  started_before_ = true;
}

void GroupServiceDaemon::on_service_stop() {
  partition_checker_.stop();
  meta_checker_.stop();
  service_checker_.stop();
  ring_beater_.stop();
  join_retrier_.stop();
}

void GroupServiceDaemon::publish(Event e) {
  if (directory() == nullptr) return;
  e.partition = partition_;
  auto msg = std::make_shared<EsPublishMsg>();
  msg->event = std::move(e);
  send_any(directory()->service_address(ServiceKind::kEventService, partition_),
           std::move(msg));
}

void GroupServiceDaemon::announce_to_partition() {
  // Every WD re-points its heartbeats — including the one on our own node,
  // which matters after a migration (it was beating the dead server).
  for (net::NodeId n : cluster().partition_nodes(partition_)) {
    auto announce = std::make_shared<GsdAnnounceMsg>();
    announce->gsd = address();
    announce->partition = partition_;
    send_any({n, port_of(ServiceKind::kWatchDaemon)}, std::move(announce));
  }
}

// --- partition (WD) monitoring ----------------------------------------------

void GroupServiceDaemon::handle_heartbeat(const HeartbeatMsg& hb,
                                          net::NetworkId network) {
  ++heartbeats_received_;
  auto it = watches_.find(hb.node.value);
  if (it == watches_.end()) return;  // not one of ours
  NodeWatch& watch = it->second;
  if (network.value >= watch.last_per_net.size()) return;
  watch.last_per_net[network.value] = now();

  if (watch.net_failed[network.value]) {
    watch.net_failed[network.value] = false;
    Event e;
    e.type = std::string(event_types::kNetworkRecovered);
    e.subject_node = hb.node;
    e.attrs = {{"network", std::to_string(network.value)}};
    publish(std::move(e));
  }
  if (watch.status == NodeStatus::kNodeFailed) {
    watch.status = NodeStatus::kHealthy;
    Event e;
    e.type = std::string(event_types::kNodeRecovered);
    e.subject_node = hb.node;
    publish(std::move(e));
  } else if (watch.status == NodeStatus::kProcessFailed) {
    // The restarted WD is beating again.
    watch.status = NodeStatus::kHealthy;
    if (log_ != nullptr && log_->mark_recovered("WD", hb.node, now())) {
      Event e;
      e.type = std::string(event_types::kServiceRecovered);
      e.subject_node = hb.node;
      e.attrs = {{"service", "WD"}};
      publish(std::move(e));
    }
  }
}

void GroupServiceDaemon::check_partition() {
  if (!alive()) return;
  const sim::SimTime threshold = params_.heartbeat_interval + params_.heartbeat_grace;
  // Single-network classification may require several consecutive misses
  // (lossy-fabric tolerance); node-level silence always uses one interval.
  const sim::SimTime net_threshold =
      params_.network_miss_rounds * params_.heartbeat_interval +
      params_.heartbeat_grace;
  for (auto& [node_value, watch] : watches_) {
    const net::NodeId node{node_value};
    if (watch.diagnosing || watch.status == NodeStatus::kNodeFailed ||
        watch.status == NodeStatus::kProcessFailed) {
      continue;
    }
    std::size_t fresh = 0;
    for (sim::SimTime last : watch.last_per_net) {
      if (now() - last <= threshold) ++fresh;
    }
    if (fresh == watch.last_per_net.size()) continue;

    if (fresh == 0) {
      begin_node_diagnosis(node);
      continue;
    }
    // Some interfaces deliver and some do not: single-network failures.
    for (std::size_t n = 0; n < watch.last_per_net.size(); ++n) {
      if (now() - watch.last_per_net[n] > net_threshold && !watch.net_failed[n]) {
        watch.net_failed[n] = true;
        diagnose_network_failure(node, net::NetworkId{static_cast<std::uint8_t>(n)},
                                 now(), "WD", watch.last_per_net[n]);
      }
    }
  }
}

void GroupServiceDaemon::diagnose_network_failure(net::NodeId node,
                                                  net::NetworkId network,
                                                  sim::SimTime detected_at,
                                                  const char* component,
                                                  sim::SimTime last_seen_at) {
  // Diagnosis is pure analysis of the per-network arrival table.
  engine().schedule_after(
      params_.network_analysis_time,
      [this, node, network, detected_at, component, last_seen_at] {
        if (!alive()) return;
        if (log_ != nullptr) {
          log_->append(FaultRecord{
              .component = component,
              .kind = FaultKind::kNetworkFailure,
              .node = node,
              .partition = cluster().partition_of(node),
              .network = network,
              .last_seen_at = last_seen_at,
              .detected_at = detected_at,
              .diagnosed_at = now(),
              .recovered_at = now(),  // one of three networks: nothing to repair
              .recovered = true,
          });
        }
        Event e;
        e.type = std::string(event_types::kNetworkFailed);
        e.subject_node = node;
        e.attrs = {{"network", std::to_string(network.value)},
                   {"component", component}};
        publish(std::move(e));
      });
}

void GroupServiceDaemon::begin_node_diagnosis(net::NodeId node) {
  trace(sim::TraceLevel::kWarn,
        "node " + std::to_string(node.value) + " silent on every network; probing");
  NodeWatch& watch = watches_.at(node.value);
  watch.status = NodeStatus::kSuspect;
  watch.diagnosing = true;
  const std::uint64_t id = next_probe_id_++;
  Probe probe;
  probe.node = node;
  probe.attempts_left = params_.node_probe_attempts;
  probe.meta = false;
  probe.detected_at = now();
  probe.started_at = now();
  probe.last_seen_at =
      *std::max_element(watch.last_per_net.begin(), watch.last_per_net.end());
  probes_.emplace(id, probe);
  probe_attempt(id);
}

void GroupServiceDaemon::probe_attempt(std::uint64_t probe_id) {
  if (!alive()) return;
  auto it = probes_.find(probe_id);
  if (it == probes_.end() || it->second.answered) return;
  Probe& probe = it->second;

  if (probe.attempts_left == 0) {
    // Every attempt timed out: the node is dead.
    if (probe.meta) {
      const MetaMember member = probe.meta_member;
      const sim::SimTime detected = probe.detected_at;
      const sim::SimTime last_seen = probe.last_seen_at;
      probes_.erase(it);
      conclude_meta_failure(member, /*node_dead=*/true, detected, last_seen);
    } else {
      const net::NodeId node = probe.node;
      const sim::SimTime detected = probe.detected_at;
      const sim::SimTime last_seen = probe.last_seen_at;
      probes_.erase(it);
      conclude_node_failure(node, detected, last_seen);
    }
    return;
  }

  --probe.attempts_left;
  auto msg = std::make_shared<ProbeMsg>();
  msg->reply_to = address();
  msg->probe_id = probe_id;
  send_all_networks(ppm_at(probe.node), std::move(msg));
  const sim::SimTime timeout =
      probe.meta ? params_.meta_probe_timeout : params_.node_probe_timeout;
  engine().schedule_after(timeout, [this, probe_id] { probe_attempt(probe_id); });
}

void GroupServiceDaemon::conclude_wd_process_failure(net::NodeId node,
                                                     sim::SimTime detected_at,
                                                     sim::SimTime last_seen_at) {
  if (!alive()) return;
  trace(sim::TraceLevel::kWarn,
        "diagnosed WD process failure on node " + std::to_string(node.value) +
            "; restarting via PPM");
  auto wit = watches_.find(node.value);
  if (wit != watches_.end()) {
    wit->second.status = NodeStatus::kProcessFailed;
    wit->second.diagnosing = false;
  }
  if (log_ != nullptr) {
    log_->append(FaultRecord{
        .component = "WD",
        .kind = FaultKind::kProcessFailure,
        .node = node,
        .partition = partition_,
        .network = net::NetworkId{},
        .last_seen_at = last_seen_at,
        .detected_at = detected_at,
        .diagnosed_at = now(),
    });
  }
  Event e;
  e.type = std::string(event_types::kServiceFailed);
  e.subject_node = node;
  e.attrs = {{"service", "WD"}};
  publish(std::move(e));

  // Recovery: have the node's PPM restart the watch daemon.
  const std::uint64_t rid = next_request_id_++;
  pending_recoveries_[rid] = PendingRecovery{"WD", node};
  auto restart = std::make_shared<StartServiceMsg>();
  restart->kind = ServiceKind::kWatchDaemon;
  restart->partition = partition_;
  restart->create = false;
  restart->reply_to = address();
  restart->request_id = rid;
  restart->epoch = view_.epoch;
  send_any(ppm_at(node), std::move(restart));
}

void GroupServiceDaemon::conclude_node_failure(net::NodeId node,
                                               sim::SimTime detected_at,
                                               sim::SimTime last_seen_at) {
  if (!alive()) return;
  trace(sim::TraceLevel::kWarn,
        "diagnosed node failure: node " + std::to_string(node.value));
  auto wit = watches_.find(node.value);
  if (wit != watches_.end()) {
    wit->second.status = NodeStatus::kNodeFailed;
    wit->second.diagnosing = false;
  }
  if (log_ != nullptr) {
    // The WD is the node's representative: with the node gone there is
    // nothing to migrate, so recovery is complete at diagnosis (paper §5.1).
    log_->append(FaultRecord{
        .component = "WD",
        .kind = FaultKind::kNodeFailure,
        .node = node,
        .partition = partition_,
        .network = net::NetworkId{},
        .last_seen_at = last_seen_at,
        .detected_at = detected_at,
        .diagnosed_at = now(),
        .recovered_at = now(),
        .recovered = true,
    });
  }
  Event e;
  e.type = std::string(event_types::kNodeFailed);
  e.subject_node = node;
  publish(std::move(e));
}

// --- meta-group ---------------------------------------------------------------

void GroupServiceDaemon::send_ring_heartbeat() {
  if (!alive() || !joined_ || view_.members.size() < 2) return;
  auto succ = view_.successor_of(partition_);
  if (!succ) return;
  auto hb = std::make_shared<RingHeartbeatMsg>();
  hb->from_partition = partition_;
  hb->view_id = view_.view_id;
  hb->seq = ++ring_seq_;
  send_all_networks(succ->gsd, std::move(hb));
}

void GroupServiceDaemon::check_meta() {
  if (!alive() || !joined_ || view_.members.size() < 2 || pred_diagnosing_ ||
      regroup_.has_value()) {
    return;
  }
  auto pred = view_.predecessor_of(partition_);
  if (!pred) return;
  if (pred->partition != pred_partition_) {
    // Predecessor changed since the last check; restart the grace window.
    pred_partition_ = pred->partition;
    std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
    std::fill(pred_net_failed_.begin(), pred_net_failed_.end(), false);
    return;
  }
  const sim::SimTime threshold = params_.heartbeat_interval + params_.heartbeat_grace;
  std::size_t fresh = 0;
  for (sim::SimTime last : pred_last_per_net_) {
    if (now() - last <= threshold) ++fresh;
  }
  if (fresh == pred_last_per_net_.size()) return;

  if (fresh == 0) {
    // Every network silent at once is exactly the asymmetric-partition shape
    // that can split-brain a Princess takeover — flag it before probing.
    trace(sim::TraceLevel::kError,
          "meta predecessor partition " + std::to_string(pred->partition.value) +
              " silent on all networks; split-brain suspect, probing");
    pred_diagnosing_ = true;
    const std::uint64_t id = next_probe_id_++;
    Probe probe;
    probe.node = pred->gsd.node;
    probe.attempts_left = 1;
    probe.meta = true;
    probe.detected_at = now();
    probe.started_at = now();
    probe.last_seen_at =
        *std::max_element(pred_last_per_net_.begin(), pred_last_per_net_.end());
    probe.meta_member = *pred;
    probes_.emplace(id, probe);
    probe_attempt(id);
    return;
  }
  const sim::SimTime net_threshold =
      params_.network_miss_rounds * params_.heartbeat_interval +
      params_.heartbeat_grace;
  for (std::size_t n = 0; n < pred_last_per_net_.size(); ++n) {
    if (now() - pred_last_per_net_[n] > net_threshold && !pred_net_failed_[n]) {
      pred_net_failed_[n] = true;
      diagnose_network_failure(pred->gsd.node,
                               net::NetworkId{static_cast<std::uint8_t>(n)}, now(),
                               "GSD", pred_last_per_net_[n]);
    }
  }
}

void GroupServiceDaemon::conclude_meta_failure(const MetaMember& pred, bool node_dead,
                                               sim::SimTime detected_at,
                                               sim::SimTime last_seen_at) {
  if (!alive()) return;
  pred_diagnosing_ = false;
  // Only remove the exact member we diagnosed: if the partition's entry was
  // replaced in the meantime (planned handover, concurrent recovery), the
  // stale diagnosis must not expel the new instance.
  const auto diagnosed_idx = view_.index_of(pred.partition);
  if (!diagnosed_idx || !(view_.members[*diagnosed_idx] == pred)) return;
  if (!node_dead && pred.partition == pred_partition_) {
    // Confirmation round: a ring heartbeat since detection exonerates it.
    for (sim::SimTime last : pred_last_per_net_) {
      if (last > detected_at) return;
    }
  }

  if (params_.failover.mode == FtParams::FailoverPolicy::Mode::kQuorum) {
    // Silence alone is not grounds for removal under the quorum policy: a
    // majority of the view must concur first (regroup round). The removal —
    // if it happens — continues in commit_member_removal.
    begin_regroup(pred, node_dead, detected_at, last_seen_at);
    return;
  }
  commit_member_removal(pred, node_dead, detected_at, last_seen_at);
}

void GroupServiceDaemon::commit_member_removal(const MetaMember& pred,
                                               bool node_dead,
                                               sim::SimTime detected_at,
                                               sim::SimTime last_seen_at) {
  if (!alive()) return;
  // Re-checked here because a regroup round may have elapsed since the
  // diagnosis (no-op on the unilateral path, which enters synchronously).
  const auto idx = view_.index_of(pred.partition);
  if (!idx || !(view_.members[*idx] == pred)) return;
  const sim::SimTime diagnosed_at = now();
  const FaultKind kind =
      node_dead ? FaultKind::kNodeFailure : FaultKind::kProcessFailure;
  if (log_ != nullptr) {
    log_->append(FaultRecord{
        .component = "GSD",
        .kind = kind,
        .node = pred.gsd.node,
        .partition = pred.partition,
        .network = net::NetworkId{},
        .last_seen_at = last_seen_at,
        .detected_at = detected_at,
        .diagnosed_at = diagnosed_at,
    });
    if (node_dead) {
      // The server node carried the partition's kernel services too.
      for (const char* component : {"ES", "DB", "CS"}) {
        log_->append(FaultRecord{
            .component = component,
            .kind = FaultKind::kNodeFailure,
            .node = pred.gsd.node,
            .partition = pred.partition,
            .network = net::NetworkId{},
            .last_seen_at = last_seen_at,
            .detected_at = detected_at,
            .diagnosed_at = diagnosed_at,
        });
      }
    }
  }
  {
    Event e;
    e.type = std::string(node_dead ? event_types::kNodeFailed
                                   : event_types::kServiceFailed);
    e.subject_node = pred.gsd.node;
    e.attrs = {{"service", "GSD"},
               {"failed_partition", std::to_string(pred.partition.value)}};
    publish(std::move(e));
  }

  // View change: drop the failed member and tell the survivors.
  tombstones_[pred.partition.value] =
      std::max(tombstones_[pred.partition.value], pred.incarnation);
  const bool fence =
      params_.failover.mode == FtParams::FailoverPolicy::Mode::kQuorum &&
      params_.failover.fence_stale_epochs;
  MetaView next = view_;
  next.remove(pred.partition);
  ++next.view_id;
  if (fence) ++next.epoch;  // quorum takeover: new fencing epoch
  apply_view(next);
  broadcast_view();
  if (fence) {
    send_fence();
    // Tell the deposed member directly (it is no longer in the broadcast
    // set): a merely-slow suspect that was legitimately removed steps down
    // the moment this arrives and rejoins at the tail.
    auto stale = std::make_shared<ViewChangeMsg>();
    stale->view = view_;
    send_any(pred.gsd, std::move(stale));
  }

  // Recovery of the failed partition.
  if (!node_dead) {
    auto restart = std::make_shared<StartServiceMsg>();
    restart->kind = ServiceKind::kGroupService;
    restart->partition = pred.partition;
    restart->create = false;
    restart->request_id = next_request_id_++;
    restart->epoch = view_.epoch;
    send_any(ppm_at(pred.gsd.node), std::move(restart));
  } else {
    migrate_partition(pred);
  }
}

void GroupServiceDaemon::migrate_partition(const MetaMember& failed) {
  engine().schedule_after(params_.migration_select_time, [this, failed] {
    if (!alive() || directory() == nullptr) return;
    const auto targets = directory()->migration_targets(failed.partition);
    if (targets.empty()) {
      Event e;
      e.type = "partition.lost";
      e.attrs = {{"partition", std::to_string(failed.partition.value)}};
      publish(std::move(e));
      return;
    }
    // A partition takeover relocates every kernel service of the dead
    // server — the heaviest recovery action the GSD can take.
    trace(sim::TraceLevel::kError,
          "migrating partition " + std::to_string(failed.partition.value) +
              " services from node " + std::to_string(failed.gsd.node.value) +
              " to node " + std::to_string(targets.front().value));
    auto start = std::make_shared<StartServiceMsg>();
    start->kind = ServiceKind::kGroupService;
    start->partition = failed.partition;
    start->create = true;
    start->request_id = next_request_id_++;
    start->epoch = view_.epoch;
    send_any(ppm_at(targets.front()), std::move(start));
    Event e;
    e.type = std::string(event_types::kGsdMigrated);
    e.subject_node = targets.front();
    e.attrs = {{"partition", std::to_string(failed.partition.value)},
               {"from_node", std::to_string(failed.gsd.node.value)},
               {"to_node", std::to_string(targets.front().value)}};
    publish(std::move(e));
  });
}

// --- quorum regroup (FailoverPolicy::quorum()) --------------------------------
//
// MSCS-style concurrence before removal: the initiator solicits every other
// live view member; each voter probes the suspect over its OWN links and
// votes "concur" only if the suspect is silent from its side too. Majority
// is floor(n/2)+1 of the view including the suspect, counting the
// initiator's own observation — so a 2-member view can never depose (no
// quorum exists), and a member on the minority side of a partition retries
// until the partition heals instead of split-braining.

void GroupServiceDaemon::begin_regroup(const MetaMember& suspect, bool node_dead,
                                       sim::SimTime detected_at,
                                       sim::SimTime last_seen_at) {
  if (regroup_) return;  // one suspicion resolved at a time
  Regroup r;
  r.suspect = suspect;
  r.node_dead = node_dead;
  r.detected_at = detected_at;
  r.last_seen_at = last_seen_at;
  regroup_ = std::move(r);
  trace(sim::TraceLevel::kWarn,
        "regroup: soliciting concurrence to remove partition " +
            std::to_string(suspect.partition.value));
  solicit_regroup_round();
}

void GroupServiceDaemon::solicit_regroup_round() {
  if (!alive() || !regroup_) return;
  Regroup& r = *regroup_;
  // The suspect may have been removed or replaced while we waited (another
  // member's view change, a completed rejoin): drop the stale regroup.
  const auto idx = view_.index_of(r.suspect.partition);
  if (!idx || !(view_.members[*idx] == r.suspect)) {
    regroup_.reset();
    return;
  }

  r.round_id = next_round_id_++;
  r.view_size = view_.members.size();
  r.concur = 1;  // our own observation of silence
  r.dissent = 0;
  r.done = false;
  r.voters.clear();
  ++r.rounds_run;
  ++regroup_rounds_;

  for (const MetaMember& m : view_.members) {
    if (m.partition == partition_ || m.partition == r.suspect.partition) continue;
    auto msg = std::make_shared<RegroupProposeMsg>();
    msg->initiator = partition_;
    msg->suspect = r.suspect.partition;
    msg->suspect_incarnation = r.suspect.incarnation;
    msg->view_id = view_.view_id;
    msg->round_id = r.round_id;
    msg->reply_to = address();
    send_all_networks(m.gsd, std::move(msg));
  }

  const std::uint64_t round = r.round_id;
  engine().schedule_after(params_.failover.regroup_round_timeout, [this, round] {
    if (alive() && regroup_ && regroup_->round_id == round && !regroup_->done) {
      evaluate_regroup(/*round_over=*/true);
    }
  });
  // A 2-member view settles immediately: quorum needs 2, we alone have 1.
  evaluate_regroup(/*round_over=*/false);
}

void GroupServiceDaemon::evaluate_regroup(bool round_over) {
  if (!regroup_ || regroup_->done) return;
  Regroup& r = *regroup_;
  if (r.dissent > 0) {
    // Someone can still reach the suspect: our silence is a partition on
    // OUR side, exactly the split-brain the paper's protocol would act on.
    // One dissent vetoes the removal outright — even a majority of
    // concurrences only proves the suspect is cut off from SOME members,
    // not dead (docs/PROTOCOLS.md: "one dissent cancels the regroup").
    cancel_regroup(/*exonerated=*/true);
    return;
  }
  const int needed = static_cast<int>(r.view_size / 2 + 1);
  const int solicited = static_cast<int>(r.view_size) - 2;  // minus us + suspect
  const int received = (r.concur - 1) + r.dissent;
  const int outstanding = round_over ? 0 : solicited - received;

  if (r.concur >= needed) {
    // Unanimous-so-far majority concurrence: the removal is safe against
    // any single asymmetric partition. Commit and fence.
    r.done = true;
    const Regroup done = r;
    regroup_.reset();
    trace(sim::TraceLevel::kWarn,
          "regroup: quorum reached (" + std::to_string(done.concur) + "/" +
              std::to_string(needed) + "), removing partition " +
              std::to_string(done.suspect.partition.value));
    commit_member_removal(done.suspect, done.node_dead, done.detected_at,
                          done.last_seen_at);
    return;
  }
  if (r.concur + outstanding < needed) {
    // Not enough reachable voters (minority side / 2-member view).
    regroup_quorum_lost();
  }
}

void GroupServiceDaemon::regroup_quorum_lost() {
  if (!regroup_) return;
  Regroup& r = *regroup_;
  r.done = true;
  ++quorum_losses_;
  trace(sim::TraceLevel::kError,
        "regroup: quorum lost (round " + std::to_string(r.rounds_run) +
            "); suspect partition " + std::to_string(r.suspect.partition.value) +
            " not removed");
  Event e;
  e.type = "meta.quorum_lost";
  e.subject_node = r.suspect.gsd.node;
  e.attrs = {{"suspect_partition", std::to_string(r.suspect.partition.value)},
             {"round", std::to_string(r.rounds_run)}};
  publish(std::move(e));

  if (params_.failover.max_regroup_rounds > 0 &&
      r.rounds_run >= params_.failover.max_regroup_rounds) {
    // Give up until the suspicion re-triggers from a fresh silence period.
    regroup_.reset();
    std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
    return;
  }
  engine().schedule_after(params_.failover.regroup_retry_delay,
                          [this, round = r.round_id] {
                            if (alive() && regroup_ &&
                                regroup_->round_id == round) {
                              solicit_regroup_round();
                            }
                          });
}

void GroupServiceDaemon::cancel_regroup(bool exonerated) {
  if (!regroup_) return;
  const MetaMember suspect = regroup_->suspect;
  regroup_.reset();
  if (exonerated) {
    trace(sim::TraceLevel::kInfo,
          "regroup: suspect partition " + std::to_string(suspect.partition.value) +
              " exonerated");
    if (suspect.partition == pred_partition_) {
      // Fresh grace window: the suspect must go silent for a full period
      // again before another regroup starts.
      std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
      std::fill(pred_net_failed_.begin(), pred_net_failed_.end(), false);
    }
  }
}

void GroupServiceDaemon::handle_regroup_propose(const RegroupProposeMsg& proposal) {
  // The solicitation travels over every network; answer each round once.
  auto& last_round = answered_rounds_[proposal.initiator.value];
  if (proposal.round_id == last_round) return;
  last_round = proposal.round_id;

  if (proposal.suspect == partition_) {
    // We are the suspect and evidently alive: dissent.
    cast_vote(proposal.reply_to, proposal.round_id, false);
    return;
  }
  const auto idx = view_.index_of(proposal.suspect);
  if (!idx || view_.members[*idx].incarnation != proposal.suspect_incarnation) {
    // Our view already dropped (or replaced) that member: concur.
    cast_vote(proposal.reply_to, proposal.round_id, true);
    return;
  }
  const MetaMember suspect = view_.members[*idx];

  // Fresh first-hand evidence: if the suspect is our own ring predecessor
  // and its heartbeats are current, it is alive — no probe needed.
  if (suspect.partition == pred_partition_) {
    const sim::SimTime threshold =
        params_.heartbeat_interval + params_.heartbeat_grace;
    for (sim::SimTime seen : pred_last_per_net_) {
      if (now() - seen <= threshold) {
        cast_vote(proposal.reply_to, proposal.round_id, false);
        return;
      }
    }
  }

  // Independent probe over OUR links — the initiator may sit behind a
  // one-way blackhole that we do not.
  const std::uint64_t id = next_probe_id_++;
  vote_probes_.emplace(id, PendingVote{proposal.reply_to, proposal.suspect,
                                       proposal.round_id});
  auto probe = std::make_shared<ProbeMsg>();
  probe->reply_to = address();
  probe->probe_id = id;
  send_all_networks(ppm_at(suspect.gsd.node), std::move(probe));
  engine().schedule_after(params_.failover.regroup_probe_timeout, [this, id] {
    auto it = vote_probes_.find(id);
    if (it == vote_probes_.end()) return;  // reply beat the timeout
    const PendingVote pending = it->second;
    vote_probes_.erase(it);
    if (!alive()) return;
    // Silent from our side too: concur with the removal.
    cast_vote(pending.reply_to, pending.round_id, true);
  });
}

void GroupServiceDaemon::cast_vote(net::Address reply_to, std::uint64_t round_id,
                                   bool concur) {
  if (!alive()) return;
  ++regroup_votes_cast_;
  auto vote = std::make_shared<RegroupVoteMsg>();
  vote->voter = partition_;
  vote->round_id = round_id;
  vote->concur = concur;
  send_any(reply_to, std::move(vote));
}

void GroupServiceDaemon::handle_regroup_vote(const RegroupVoteMsg& vote) {
  if (!regroup_ || regroup_->done || regroup_->round_id != vote.round_id) return;
  Regroup& r = *regroup_;
  // One counted vote per current view member per round: neither we nor the
  // suspect were solicited, a non-member has no say, and a retried or
  // multi-path duplicate must not be double-counted toward quorum.
  if (vote.voter == partition_ || vote.voter == r.suspect.partition) return;
  if (!view_.index_of(vote.voter)) return;
  if (std::find(r.voters.begin(), r.voters.end(), vote.voter.value) !=
      r.voters.end()) {
    return;
  }
  r.voters.push_back(vote.voter.value);
  if (vote.concur) {
    ++r.concur;
  } else {
    ++r.dissent;
  }
  evaluate_regroup(/*round_over=*/false);
}

void GroupServiceDaemon::send_fence() {
  if (view_.epoch == 0) return;
  // Raise the fencing watermark everywhere a deposed member could mutate
  // state: every node's PPM (service starts) and every partition's
  // checkpoint instance (view/state saves).
  auto fence = std::make_shared<EpochFenceMsg>();
  fence->epoch = view_.epoch;
  for (const auto& node : cluster().nodes()) {
    send_any(ppm_at(node.id()), fence);
  }
  if (directory() != nullptr) {
    for (std::size_t p = 0; p < directory()->partition_count(); ++p) {
      send_any(directory()->service_address(
                   ServiceKind::kCheckpointService,
                   net::PartitionId{static_cast<std::uint32_t>(p)}),
               fence);
    }
  }
}

void GroupServiceDaemon::apply_view(MetaView incoming) {
  // Epoch ordering comes first: a quorum takeover's view beats any view_id
  // a deposed member can offer, and a stale-epoch view is discarded unseen
  // (fencing on the membership plane). Both epochs are 0 under the paper's
  // unilateral policy, so this reduces to the original view_id ordering.
  if (incoming.epoch < view_.epoch) return;
  if (incoming.epoch == view_.epoch) {
    if (incoming.view_id < view_.view_id) return;
    if (incoming.view_id == view_.view_id) {
      const std::string mine = view_.serialize();
      const std::string theirs = incoming.serialize();
      if (theirs == mine) return;
      // Equal-id conflict (e.g. two concurrent ring founders): pick a
      // deterministic winner — more members first, then serialization order —
      // so every member converges on the same view.
      if (incoming.members.size() < view_.members.size()) return;
      if (incoming.members.size() == view_.members.size() && theirs > mine) return;
    }
  }

  // Drop members our tombstones say are dead (stale entries from slow views).
  std::erase_if(incoming.members, [this](const MetaMember& m) {
    auto it = tombstones_.find(m.partition.value);
    return it != tombstones_.end() && m.incarnation <= it->second;
  });

  trace(sim::TraceLevel::kInfo,
        "applying view " + std::to_string(incoming.view_id) + " with " +
            std::to_string(incoming.members.size()) + " members");
  const MetaView old = std::exchange(view_, std::move(incoming));

  joined_ = false;
  for (const MetaMember& m : view_.members) {
    if (m.partition == partition_ && m.incarnation == incarnation_) joined_ = true;
  }
  if (joined_) {
    join_retrier_.stop();
  } else if (running()) {
    // Expelled by someone's view change (e.g. a stale diagnosis): get back
    // in rather than silently running outside the ring.
    join_retrier_.start_after(kJoinRetryPeriod);
  }

  // Predecessor may have changed; reset its grace window if so.
  auto pred = view_.predecessor_of(partition_);
  const net::PartitionId new_pred = pred ? pred->partition : net::PartitionId{};
  if (new_pred != pred_partition_) {
    pred_partition_ = new_pred;
    std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
    std::fill(pred_net_failed_.begin(), pred_net_failed_.end(), false);
    pred_diagnosing_ = false;
  }

  // A member that is new or re-incarnated relative to the old view means a
  // GSD recovery completed; close its fault record (first applier wins).
  for (const MetaMember& m : view_.members) {
    auto old_idx = old.index_of(m.partition);
    const bool changed =
        !old_idx || !(old.members[*old_idx].gsd == m.gsd &&
                      old.members[*old_idx].incarnation == m.incarnation);
    if (changed && log_ != nullptr &&
        log_->mark_recovered_partition("GSD", m.partition, now())) {
      Event e;
      e.type = std::string(event_types::kServiceRecovered);
      e.subject_node = m.gsd.node;
      e.attrs = {{"service", "GSD"},
                 {"partition", std::to_string(m.partition.value)}};
      publish(std::move(e));
    }
  }

  save_state();
}

void GroupServiceDaemon::broadcast_view() {
  for (const MetaMember& m : view_.members) {
    if (m.partition == partition_) continue;
    auto msg = std::make_shared<ViewChangeMsg>();
    msg->view = view_;
    send_any(m.gsd, std::move(msg));
  }
}

void GroupServiceDaemon::handle_join(const MetaJoinMsg& join) {
  const MetaMember& member = join.member;
  if (member.partition == partition_) return;

  if (!is_leader()) {
    // Forward to the current leader.
    auto leader = view_.leader();
    if (leader && leader->partition != partition_) {
      auto fwd = std::make_shared<MetaJoinMsg>();
      fwd->member = member;
      send_any(leader->gsd, std::move(fwd));
    }
    return;
  }

  auto tomb = tombstones_.find(member.partition.value);
  if (tomb != tombstones_.end() && member.incarnation <= tomb->second) return;

  auto existing = view_.index_of(member.partition);
  if (existing) {
    const MetaMember& cur = view_.members[*existing];
    if (cur.incarnation >= member.incarnation) {
      // Duplicate join: re-send the current view so the joiner learns it.
      auto msg = std::make_shared<ViewChangeMsg>();
      msg->view = view_;
      send_any(member.gsd, std::move(msg));
      return;
    }
  }

  MetaView next = view_;
  next.remove(member.partition);
  next.members.push_back(member);  // rejoiners go to the tail (paper's order)
  ++next.view_id;
  apply_view(next);
  broadcast_view();
  // The joiner may not be in our broadcast path if apply_view dropped it;
  // send the view directly too.
  auto msg = std::make_shared<ViewChangeMsg>();
  msg->view = view_;
  send_any(member.gsd, std::move(msg));
}

void GroupServiceDaemon::try_rejoin() {
  if (!alive() || joined_ || directory() == nullptr) return;
  if (++futile_join_attempts_ > 10) {
    // Nobody answered ten rounds of joins: the ring is gone (or we are the
    // first GSD up). Found a fresh singleton group; others will join it.
    futile_join_attempts_ = 0;
    join_retrier_.stop();
    MetaView v;
    v.view_id = view_.view_id + 1;
    // Keep the fencing epoch across re-founding (floored: a migrated fresh
    // instance that never recovered a view must still stamp nonzero epochs
    // under quorum fencing).
    v.epoch = std::max(view_.epoch, epoch_floor());
    v.members = {MetaMember{partition_, address(), incarnation_}};
    view_ = std::move(v);
    joined_ = true;
    save_state();
    return;
  }
  auto join = std::make_shared<MetaJoinMsg>();
  join->member = MetaMember{partition_, address(), incarnation_};
  for (std::size_t p = 0; p < directory()->partition_count(); ++p) {
    const net::PartitionId pid{static_cast<std::uint32_t>(p)};
    if (pid == partition_) continue;
    send_any(directory()->service_address(ServiceKind::kGroupService, pid), join);
  }
}

void GroupServiceDaemon::fetch_state_and_join() {
  if (directory() == nullptr) {
    joined_ = true;
    return;
  }
  if (directory()->partition_count() == 1) {
    // Nothing to rejoin; adopt a singleton view.
    MetaView v;
    v.view_id = view_.view_id + 1;
    v.epoch = std::max(view_.epoch, epoch_floor());
    v.members = {MetaMember{partition_, address(), incarnation_}};
    view_ = v;
    joined_ = true;
    check_services();
    return;
  }

  // Ask both our own partition's checkpoint instance (fast path after an
  // in-place restart) and the ring replica (survives server-node death).
  const std::uint64_t load_id = engine().rng().next() | 1;
  auto send_load = [this, load_id](net::PartitionId target) {
    auto load = std::make_shared<CheckpointLoadMsg>();
    load->service = "gsd/" + std::to_string(partition_.value);
    load->key = "view";
    load->reply_to = address();
    load->request_id = load_id;
    send_any(directory()->service_address(ServiceKind::kCheckpointService, target),
             std::move(load));
  };
  send_load(partition_);
  send_load(net::PartitionId{static_cast<std::uint32_t>(
      (partition_.value + 1) % directory()->partition_count())});
  state_load_id_ = load_id;

  // Whether or not the state fetch answers, keep trying to join; and bring
  // local services back regardless.
  join_retrier_.start_after(params_.checkpoint_federation_fetch +
                            500 * sim::kMillisecond);
}

void GroupServiceDaemon::check_services() {
  if (!alive() || directory() == nullptr) return;
  bool created_cs_this_pass = false;

  // Checkpoint entries first: every other service recovers its state
  // through the checkpoint service, so it must come back before them.
  std::vector<const SupervisedSpec*> ordered;
  for (const auto& s : supervised_) {
    if (s.kind == ServiceKind::kCheckpointService) ordered.push_back(&s);
  }
  for (const auto& s : supervised_) {
    if (s.kind != ServiceKind::kCheckpointService) ordered.push_back(&s);
  }

  for (const SupervisedSpec* spec : ordered) {
    const net::Address addr{node_id(), spec->port};
    cluster::Daemon* d = cluster().daemon_at(addr);
    if (d != nullptr && d->alive()) continue;
    if (service_recovering_[spec->component]) continue;

    const bool create = (d == nullptr);  // no instance here: migrated partition
    if (create && spec->kind != ServiceKind::kCheckpointService &&
        created_cs_this_pass) {
      continue;  // wait until the new checkpoint instance reports up
    }

    const sim::SimTime detected_at = now();
    service_recovering_[spec->component] = true;
    engine().schedule_after(
        params_.local_diagnose_time,
        [this, spec = *spec, detected_at, create] {
          if (!alive()) return;
          if (log_ != nullptr && !create) {
            // In-place restarts are process failures; created instances
            // belong to a node-failure record already logged by the
            // migration initiator.
            log_->append(FaultRecord{
                .component = spec.component,
                .kind = FaultKind::kProcessFailure,
                .node = node_id(),
                .partition = partition_,
                .network = net::NetworkId{},
                // Death happened between supervision checks; the previous
                // check is the last confirmed sign of life.
                .last_seen_at = detected_at > params_.heartbeat_interval
                                    ? detected_at - params_.heartbeat_interval
                                    : 0,
                .detected_at = detected_at,
                .diagnosed_at = now(),
            });
          }
          Event e;
          e.type = std::string(event_types::kServiceFailed);
          e.subject_node = node_id();
          e.attrs = {{"service", spec.component}};
          publish(std::move(e));

          auto start = std::make_shared<StartServiceMsg>();
          start->kind = spec.kind;
          start->extension = spec.extension;
          start->extension_port = spec.port;
          start->partition = partition_;
          start->create = create;
          start->request_id = next_request_id_++;
          start->epoch = view_.epoch;
          send_any(ppm_at(node_id()), std::move(start));
        });
    if (create && spec->kind == ServiceKind::kCheckpointService) {
      created_cs_this_pass = true;
    }
  }
}

void GroupServiceDaemon::handle_service_up(const ServiceUpMsg& up) {
  std::string component = up.extension;
  if (component.empty()) {
    switch (up.kind) {
      case ServiceKind::kEventService: component = "ES"; break;
      case ServiceKind::kDataBulletin: component = "DB"; break;
      case ServiceKind::kCheckpointService: component = "CS"; break;
      default: component = std::string(to_string(up.kind)); break;
    }
  }
  service_recovering_[component] = false;
  if (log_ != nullptr &&
      log_->mark_recovered_partition(component, partition_, now())) {
    Event e;
    e.type = std::string(event_types::kServiceRecovered);
    e.subject_node = up.service.node;
    e.attrs = {{"service", component}};
    publish(std::move(e));
  }
  if (up.kind == ServiceKind::kCheckpointService) {
    // The checkpoint instance is back: bring up services waiting on it.
    check_services();
  }
}

// --- message handlers ---------------------------------------------------------

void GroupServiceDaemon::handle_ring_heartbeat(const RingHeartbeatMsg& ring,
                                               const net::Envelope& env) {
  if (ring.from_partition != pred_partition_ ||
      env.network.value >= pred_last_per_net_.size()) {
    return;
  }
  pred_last_per_net_[env.network.value] = now();
  if (pred_diagnosing_) {
    // A live predecessor cancels any suspicion, including probes in flight.
    pred_diagnosing_ = false;
    std::erase_if(probes_, [&](const auto& kv) {
      return kv.second.meta &&
             kv.second.meta_member.partition == ring.from_partition;
    });
  }
  if (regroup_ && regroup_->suspect.partition == ring.from_partition) {
    // Direct proof of life mid-regroup: exonerate without waiting for votes.
    cancel_regroup(/*exonerated=*/true);
  }
  if (pred_net_failed_[env.network.value]) {
    pred_net_failed_[env.network.value] = false;
    Event e;
    e.type = std::string(event_types::kNetworkRecovered);
    e.subject_node = env.from.node;
    e.attrs = {{"network", std::to_string(env.network.value)},
               {"component", "GSD"}};
    publish(std::move(e));
  }
}

void GroupServiceDaemon::handle_probe_reply(const ProbeReplyMsg& reply) {
  // Voter-side regroup probe: our own reachability check of a solicited
  // suspect. Alive GSD => dissent; node up but GSD dead => concur.
  auto vit = vote_probes_.find(reply.probe_id);
  if (vit != vote_probes_.end()) {
    const PendingVote pending = vit->second;
    vote_probes_.erase(vit);
    cast_vote(pending.reply_to, pending.round_id, !reply.gsd_running);
    return;
  }

  auto it = probes_.find(reply.probe_id);
  if (it == probes_.end() || it->second.answered) return;
  it->second.answered = true;
  const Probe probe = it->second;
  probes_.erase(it);
  if (probe.meta) {
    if (reply.gsd_running) {
      // The GSD process is alive on its node: the ring heartbeats were
      // lost in transit, not a failure. Reset the grace window.
      pred_diagnosing_ = false;
      if (probe.meta_member.partition == pred_partition_) {
        std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
      }
      return;
    }
    // The node answered but its GSD is dead: one confirmation round
    // before declaring the GSD process dead and reforming the ring.
    engine().schedule_after(params_.process_confirm_delay, [this, probe] {
      conclude_meta_failure(probe.meta_member, /*node_dead=*/false,
                            probe.detected_at, probe.last_seen_at);
    });
  } else {
    if (reply.wd_running) {
      // False alarm (lost heartbeats): the WD process is alive.
      auto wit = watches_.find(probe.node.value);
      if (wit != watches_.end()) {
        wit->second.diagnosing = false;
        wit->second.status = NodeStatus::kHealthy;
        std::fill(wit->second.last_per_net.begin(),
                  wit->second.last_per_net.end(), now());
      }
      return;
    }
    // The node answered and its WD is dead. One more confirmation round
    // before declaring it.
    engine().schedule_after(params_.process_confirm_delay,
                            [this, probe] {
                              conclude_wd_process_failure(
                                  probe.node, probe.detected_at,
                                  probe.last_seen_at);
                            });
  }
}

void GroupServiceDaemon::handle_start_service_reply(
    const StartServiceReplyMsg& reply) {
  auto it = pending_recoveries_.find(reply.request_id);
  if (it == pending_recoveries_.end()) return;
  const PendingRecovery rec = it->second;
  pending_recoveries_.erase(it);
  if (!reply.ok) return;
  if (log_ != nullptr && log_->mark_recovered(rec.component, rec.node, now())) {
    Event e;
    e.type = std::string(event_types::kServiceRecovered);
    e.subject_node = rec.node;
    e.attrs = {{"service", rec.component}};
    publish(std::move(e));
  }
  if (rec.component == "WD") {
    auto wit = watches_.find(rec.node.value);
    if (wit != watches_.end() && wit->second.status == NodeStatus::kProcessFailed) {
      wit->second.status = NodeStatus::kHealthy;
    }
  }
}

void GroupServiceDaemon::handle_state_load_reply(
    const CheckpointLoadReplyMsg& reply) {
  if (reply.request_id != state_load_id_ || state_load_id_ == 0) return;
  state_load_id_ = 0;
  if (reply.found) {
    MetaView recovered = MetaView::deserialize(reply.data);
    // The recovered view predates our death; adopt it as a hint for the
    // membership we are rejoining (addresses of live members).
    if (recovered.view_id >= view_.view_id) {
      recovered.remove(partition_);  // our old entry is stale
      view_ = std::move(recovered);
      // A checkpoint written before quorum fencing was enabled may carry
      // epoch 0; re-apply the floor so our stamps stay nonzero.
      view_.epoch = std::max(view_.epoch, epoch_floor());
    }
  }
  try_rejoin();
  join_retrier_.start_after(kJoinRetryPeriod);
  check_services();
}

}  // namespace phoenix::kernel
