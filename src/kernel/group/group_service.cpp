#include "kernel/group/group_service.h"

#include <algorithm>
#include <utility>

#include "kernel/checkpoint/checkpoint_service.h"
#include "kernel/event/event_service.h"
#include "kernel/ppm/process_manager.h"

namespace phoenix::kernel {

GroupServiceDaemon::GroupServiceDaemon(cluster::Cluster& cluster, net::NodeId node,
                                       net::PartitionId partition,
                                       const FtParams& params,
                                       ServiceDirectory* directory, FaultLog* log,
                                       std::vector<SupervisedSpec> default_supervised,
                                       double cpu_share)
    : ServiceRuntime(cluster, "gsd/" + std::to_string(partition.value), node,
                     port_of(ServiceKind::kGroupService), directory, &params,
                     Options{.kind = ServiceKind::kGroupService,
                             .partition = partition,
                             .checkpoint_namespace =
                                 "gsd/" + std::to_string(partition.value),
                             .checkpoint_key = "view"},
                     cpu_share),
      partition_(partition),
      params_(params),
      log_(log),
      supervised_(std::move(default_supervised)),
      partition_checker_(cluster.engine(), params.heartbeat_interval,
                         [this] { check_partition(); }),
      service_checker_(cluster.engine(), params.heartbeat_interval,
                       [this] { check_services(); }),
      census_checker_(cluster.engine(), params.heartbeat_interval,
                      [this] { run_census(); }) {
  zoned_ = params.topology.mode == FtParams::GroupTopology::Mode::kZoned;
  zones_ = ZoneTopology::from(
      params.topology, directory != nullptr ? directory->partition_count() : 1);
  zone_ = zones_.zone_of(partition_);

  MembershipRing::Config primary_cfg;
  if (zoned_) {
    primary_cfg.scope = zones_.zone_scope(zone_);
    primary_cfg.label = "zone";
  }
  primary_ring_ = std::make_unique<MembershipRing>(*this, cluster, params,
                                                   primary_cfg);
  if (zoned_) {
    MembershipRing::Config top_cfg;
    top_cfg.scope = kTopRingScope;
    top_cfg.label = "top";
    top_cfg.recovers_partitions = false;
    top_cfg.persists_view = false;
    top_cfg.displaces_same_zone = true;
    top_ring_ = std::make_unique<MembershipRing>(*this, cluster, params, top_cfg);
    churn_ = std::make_unique<ZoneChurnAggregator>(
        cluster.engine(), params.heartbeat_interval, [this](Event e) {
          if (!alive()) return;
          e.attrs.emplace_back("zone", std::to_string(zone_));
          publish(std::move(e));
        });
  }

  on<HeartbeatMsg>([this](const HeartbeatMsg& hb, const net::Envelope& env) {
    handle_heartbeat(hb, env.network);
  });
  on<RingHeartbeatMsg>([this](const RingHeartbeatMsg& ring, const net::Envelope& env) {
    if (MembershipRing* r = ring_for(ring.scope)) r->handle_ring_heartbeat(ring, env);
  });
  on<ProbeReplyMsg>([this](const ProbeReplyMsg& reply) { handle_probe_reply(reply); });
  on<ViewChangeMsg>([this](const ViewChangeMsg& msg) {
    if (MembershipRing* r = ring_for(msg.scope)) r->apply_view(msg.view);
  });
  on<MetaJoinMsg>([this](const MetaJoinMsg& join) {
    if (MembershipRing* r = ring_for(join.scope)) r->handle_join(join);
  });
  on<RegroupProposeMsg>([this](const RegroupProposeMsg& proposal) {
    if (MembershipRing* r = ring_for(proposal.scope)) {
      r->handle_regroup_propose(proposal);
    }
  });
  on<RegroupVoteMsg>([this](const RegroupVoteMsg& vote) {
    if (MembershipRing* r = ring_for(vote.scope)) r->handle_regroup_vote(vote);
  });
  on<ServiceUpMsg>([this](const ServiceUpMsg& up) { handle_service_up(up); });
  on<StartServiceReplyMsg>([this](const StartServiceReplyMsg& reply) {
    handle_start_service_reply(reply);
  });
  // Recovery here is fetch_state_and_join (view merge + ring rejoin), not the
  // runtime's generic restore loop, so this daemon owns the reply type.
  on<CheckpointLoadReplyMsg>([this](const CheckpointLoadReplyMsg& reply) {
    handle_state_load_reply(reply);
  });
}

MembershipRing* GroupServiceDaemon::ring_for(std::uint32_t scope) {
  if (scope == primary_ring_->scope()) return primary_ring_.get();
  if (top_ring_ != nullptr && scope == top_ring_->scope()) return top_ring_.get();
  return nullptr;
}

void GroupServiceDaemon::set_initial_view(MetaView view) {
  primary_ring_->seed_view(std::move(view));
  booted_with_view_ = true;
}

void GroupServiceDaemon::seed_top_view(MetaView view) {
  if (top_ring_ == nullptr) return;
  has_seeded_top_view_ = true;
  seeded_top_view_ = std::move(view);
}

void GroupServiceDaemon::supervise(SupervisedSpec spec) {
  for (auto& existing : supervised_) {
    if (existing.component == spec.component) {
      existing = std::move(spec);
      return;
    }
  }
  supervised_.push_back(std::move(spec));
}

GroupServiceDaemon::NodeStatus GroupServiceDaemon::node_status(net::NodeId node) const {
  auto it = watches_.find(node.value);
  return it == watches_.end() ? NodeStatus::kHealthy : it->second.status;
}

void GroupServiceDaemon::on_service_start() {
  // Members seeded at cluster boot carry incarnation 0; every restart or
  // migration gets a strictly larger one so tombstones can tell them apart.
  incarnation_ = booted_with_view_ ? 0 : std::max<std::uint64_t>(now(), 1);

  // Fresh watch table: give every partition node a full grace period.
  watches_.clear();
  const std::size_t nets = cluster().fabric().network_count();
  for (net::NodeId n : cluster().partition_nodes(partition_)) {
    NodeWatch watch;
    watch.last_per_net.assign(nets, now());
    watch.net_failed.assign(nets, false);
    watches_.emplace(n.value, std::move(watch));
  }
  primary_ring_->reset_runtime_state(nets);
  probes_.clear();
  pending_recoveries_.clear();
  service_recovering_.clear();
  if (top_ring_ != nullptr) {
    top_ring_->reset_runtime_state(nets);
    top_ring_->stop();
    top_active_ = false;
    was_zone_leader_ = false;
  }

  const sim::SimTime interval = params_.heartbeat_interval;
  // Heartbeat staleness is judged against interval + grace, but the SCAN
  // runs at grace granularity so a missed heartbeat is noticed promptly
  // (paper §5.1: detection time ~= the heartbeat interval, not a multiple
  // of it). Supervision of local services stays at the full interval — the
  // paper's Table 3 measures a 30 s detection for a dead event service.
  const sim::SimTime scan =
      std::max<sim::SimTime>(params_.heartbeat_grace, 50 * sim::kMillisecond);
  partition_checker_.set_period(scan);
  partition_checker_.start_after(interval + params_.heartbeat_grace +
                                 1 * sim::kMillisecond);
  primary_ring_->arm(scan,
                     interval + params_.heartbeat_grace + 2 * sim::kMillisecond,
                     interval);
  service_checker_.set_period(interval);
  service_checker_.start_after(interval + 3 * sim::kMillisecond);

  announce_to_partition();

  if (booted_with_view_ && !started_before_) {
    // Cluster boot: the kernel seeded the full view; nothing to recover.
    // Persist it so a later in-place restart recovers from the warm local
    // checkpoint segment instead of scanning the federation.
    booted_with_view_ = false;
    save_state();
  } else if (bootstrap_requested_ && !started_before_) {
    // Ring founder (staged construction): start a singleton group.
    bootstrap_requested_ = false;
    primary_ring_->found(1, /*persist=*/true);
  } else {
    // Restart or migration: recover the last view, then rejoin the ring.
    booted_with_view_ = false;
    primary_ring_->mark_unjoined();
    fetch_state_and_join();
  }
  started_before_ = true;

  if (zoned_ && directory() != nullptr) {
    // Hierarchy repair loop: first pass only after everything had a chance
    // to boot and beat (2 intervals + a distinct offset).
    census_checker_.set_period(interval);
    census_checker_.start_after(2 * interval + 5 * sim::kMillisecond);
    // Seed/boot paths set the zone view without going through apply_view;
    // reconcile the role explicitly.
    update_zone_role(primary_ring_->view());
  }
}

void GroupServiceDaemon::on_service_stop() {
  partition_checker_.stop();
  service_checker_.stop();
  census_checker_.stop();
  primary_ring_->stop();
  if (top_ring_ != nullptr) top_ring_->stop();
}

void GroupServiceDaemon::publish(Event e) {
  if (directory() == nullptr) return;
  e.partition = partition_;
  auto msg = std::make_shared<EsPublishMsg>();
  msg->event = std::move(e);
  send_any(directory()->service_address(ServiceKind::kEventService, partition_),
           std::move(msg));
}

void GroupServiceDaemon::announce_to_partition() {
  // Every WD re-points its heartbeats — including the one on our own node,
  // which matters after a migration (it was beating the dead server).
  for (net::NodeId n : cluster().partition_nodes(partition_)) {
    auto announce = std::make_shared<GsdAnnounceMsg>();
    announce->gsd = address();
    announce->partition = partition_;
    send_any({n, port_of(ServiceKind::kWatchDaemon)}, std::move(announce));
  }
}

// --- MembershipRing::Host -----------------------------------------------------

void GroupServiceDaemon::ring_trace(sim::TraceLevel level, const std::string& text) {
  trace(level, text);
}

void GroupServiceDaemon::ring_publish(Event e) { publish(std::move(e)); }

void GroupServiceDaemon::ring_send_any(net::Address to,
                                       std::shared_ptr<const net::Message> msg) {
  send_any(to, std::move(msg));
}

void GroupServiceDaemon::ring_send_all_networks(
    net::Address to, std::shared_ptr<const net::Message> msg) {
  send_all_networks(to, std::move(msg));
}

void GroupServiceDaemon::ring_save_state(MembershipRing& ring) {
  if (&ring == primary_ring_.get()) save_state();
}

std::vector<net::Address> GroupServiceDaemon::ring_join_targets(
    MembershipRing& ring) {
  std::vector<net::Address> targets;
  if (directory() == nullptr) return targets;
  if (&ring == top_ring_.get()) {
    // The top ring's membership is not statically known (any partition may
    // lead its zone), so solicit every GSD: current top members forward the
    // join to the top Leader, everyone else drops it.
    for (std::size_t p = 0; p < directory()->partition_count(); ++p) {
      const net::PartitionId pid{static_cast<std::uint32_t>(p)};
      if (pid == partition_) continue;
      targets.push_back(
          directory()->service_address(ServiceKind::kGroupService, pid));
    }
    return targets;
  }
  if (zoned_) {
    for (net::PartitionId pid : zones_.zone_members(zone_)) {
      if (pid == partition_) continue;
      targets.push_back(
          directory()->service_address(ServiceKind::kGroupService, pid));
    }
    return targets;
  }
  for (std::size_t p = 0; p < directory()->partition_count(); ++p) {
    const net::PartitionId pid{static_cast<std::uint32_t>(p)};
    if (pid == partition_) continue;
    targets.push_back(
        directory()->service_address(ServiceKind::kGroupService, pid));
  }
  return targets;
}

void GroupServiceDaemon::ring_log_member_failure(
    MembershipRing& ring, const MetaMember& member, bool node_dead,
    sim::SimTime last_seen_at, sim::SimTime detected_at,
    sim::SimTime diagnosed_at) {
  (void)ring;
  if (log_ == nullptr) return;
  const FaultKind kind =
      node_dead ? FaultKind::kNodeFailure : FaultKind::kProcessFailure;
  log_->append(FaultRecord{
      .component = "GSD",
      .kind = kind,
      .node = member.gsd.node,
      .partition = member.partition,
      .network = net::NetworkId{},
      .last_seen_at = last_seen_at,
      .detected_at = detected_at,
      .diagnosed_at = diagnosed_at,
  });
  if (node_dead) {
    // The server node carried the partition's kernel services too.
    for (const char* component : {"ES", "DB", "CS"}) {
      log_->append(FaultRecord{
          .component = component,
          .kind = FaultKind::kNodeFailure,
          .node = member.gsd.node,
          .partition = member.partition,
          .network = net::NetworkId{},
          .last_seen_at = last_seen_at,
          .detected_at = detected_at,
          .diagnosed_at = diagnosed_at,
      });
    }
  }
}

void GroupServiceDaemon::ring_member_removed(MembershipRing& ring,
                                             const MetaMember& member,
                                             bool node_dead) {
  if (&ring == top_ring_.get()) {
    // A zone lost its representative (leader death or displacement race).
    // The zone's own Princess promotion brings the replacement; the census
    // catches the whole-zone-death case.
    trace(sim::TraceLevel::kInfo,
          "top ring: zone " + std::to_string(zones_.zone_of(member.partition)) +
              " leader (partition " + std::to_string(member.partition.value) +
              ") lost");
    Event e;
    e.type = "meta.zone.leader_lost";
    e.subject_node = member.gsd.node;
    e.attrs = {{"zone", std::to_string(zones_.zone_of(member.partition))},
               {"partition", std::to_string(member.partition.value)}};
    publish(std::move(e));
    return;
  }
  Event e;
  e.type = std::string(node_dead ? event_types::kNodeFailed
                                 : event_types::kServiceFailed);
  e.subject_node = member.gsd.node;
  e.attrs = {{"service", "GSD"},
             {"failed_partition", std::to_string(member.partition.value)}};
  publish(std::move(e));
}

void GroupServiceDaemon::ring_recover_member(MembershipRing& ring,
                                             const MetaMember& member,
                                             bool node_dead) {
  if (!node_dead) {
    auto restart = std::make_shared<StartServiceMsg>();
    restart->kind = ServiceKind::kGroupService;
    restart->partition = member.partition;
    restart->create = false;
    restart->request_id = next_request_id_++;
    restart->epoch = ring.view().epoch;
    restart->scope = ring.scope();
    send_any(ppm_at(member.gsd.node), std::move(restart));
  } else {
    migrate_partition(member, ring);
  }
}

void GroupServiceDaemon::ring_member_recovered(MembershipRing& ring,
                                               const MetaMember& member) {
  if (&ring == top_ring_.get()) {
    trace(sim::TraceLevel::kInfo,
          "top ring: zone " + std::to_string(zones_.zone_of(member.partition)) +
              " represented by partition " +
              std::to_string(member.partition.value));
    return;
  }
  if (log_ != nullptr &&
      log_->mark_recovered_partition("GSD", member.partition, now())) {
    Event e;
    e.type = std::string(event_types::kServiceRecovered);
    e.subject_node = member.gsd.node;
    e.attrs = {{"service", "GSD"},
               {"partition", std::to_string(member.partition.value)}};
    publish(std::move(e));
  }
}

void GroupServiceDaemon::ring_diagnose_network_failure(
    MembershipRing& ring, net::NodeId node, net::NetworkId network,
    sim::SimTime detected_at, sim::SimTime last_seen_at) {
  (void)ring;
  diagnose_network_failure(node, network, detected_at, "GSD", last_seen_at);
}

void GroupServiceDaemon::ring_regroup_round(MembershipRing& ring) {
  if (!zoned_ || !cluster().metrics().enabled()) return;
  cluster().metrics().counter(&ring == top_ring_.get() ? "meta.top.regroups"
                                                       : "meta.zone.regroups")
      ->inc();
}

void GroupServiceDaemon::ring_view_changed(MembershipRing& ring,
                                           const MetaView& old_view) {
  if (!zoned_) return;  // flat mode: nothing layered on top of the ring

  if (&ring == top_ring_.get()) {
    auto old_leader = old_view.leader();
    auto new_leader = ring.view().leader();
    if (new_leader &&
        (!old_leader || !(old_leader->partition == new_leader->partition))) {
      trace(sim::TraceLevel::kInfo,
            "top ring: leader is now partition " +
                std::to_string(new_leader->partition.value) + " (view " +
                std::to_string(ring.view().view_id) + ")");
    }
    // A deposed zone leader must not linger in (or rejoin) the top ring.
    if (!primary_ring_->is_ring_leader()) suspend_top_ring();
    return;
  }

  // Primary (zone) ring. Zone leaders summarize member churn into one
  // aggregated event per window instead of flooding per-member events up.
  if (primary_ring_->is_ring_leader() && churn_ != nullptr) {
    std::vector<net::PartitionId> removed;
    std::vector<net::PartitionId> added;
    for (const MetaMember& m : old_view.members) {
      if (!ring.view().index_of(m.partition)) removed.push_back(m.partition);
    }
    for (const MetaMember& m : ring.view().members) {
      if (!old_view.index_of(m.partition)) added.push_back(m.partition);
    }
    churn_->record(removed, added);
  }
  update_zone_role(old_view);
}

// --- zone hierarchy -----------------------------------------------------------

void GroupServiceDaemon::update_zone_role(const MetaView& old_view) {
  if (!zoned_ || top_ring_ == nullptr) return;
  const bool leader_now = primary_ring_->is_ring_leader();
  if (leader_now && !was_zone_leader_) {
    was_zone_leader_ = true;
    auto old_leader = old_view.leader();
    const bool promotion =
        old_leader && !(old_leader->partition == partition_);
    trace(sim::TraceLevel::kInfo,
          std::string("zone ") + std::to_string(zone_) + ": partition " +
              std::to_string(partition_.value) +
              (promotion ? " promoted to zone leader" : " elected zone leader"));
    if (promotion && cluster().metrics().enabled()) {
      cluster().metrics().counter("meta.zone.promotions")->inc();
    }
    ensure_top_ring_active();
  } else if (!leader_now && was_zone_leader_) {
    was_zone_leader_ = false;
    trace(sim::TraceLevel::kInfo,
          "zone " + std::to_string(zone_) + ": partition " +
              std::to_string(partition_.value) + " ceded zone leadership");
    suspend_top_ring();
  }
}

void GroupServiceDaemon::ensure_top_ring_active() {
  if (top_ring_ == nullptr || top_active_) return;
  top_active_ = true;
  const sim::SimTime interval = params_.heartbeat_interval;
  const sim::SimTime scan =
      std::max<sim::SimTime>(params_.heartbeat_grace, 50 * sim::kMillisecond);
  top_ring_->arm(scan, interval + params_.heartbeat_grace + 4 * sim::kMillisecond,
                 interval);
  if (has_seeded_top_view_) {
    // Cluster boot: the kernel seeded the zone leaders directly.
    has_seeded_top_view_ = false;
    top_ring_->seed_view(std::move(seeded_top_view_));
    seeded_top_view_ = MetaView{};
    if (top_ring_->joined()) return;
  }
  // Promotion (or re-activation): join the live top ring. If nobody
  // answers — every other zone leader is gone too — the futile-join path
  // self-founds a fresh top ring and the census rebuilds the rest.
  top_ring_->rejoin_now();
  top_ring_->begin_join_search(MembershipRing::kJoinRetryPeriod);
}

void GroupServiceDaemon::suspend_top_ring() {
  if (top_ring_ == nullptr || !top_active_) return;
  top_active_ = false;
  top_ring_->stop();
  // Drop the stale view: if this member is promoted again later, its old
  // view ids must not outrank the ring it is rejoining.
  top_ring_->forget_membership();
}

void GroupServiceDaemon::run_census() {
  if (!alive() || !zoned_ || directory() == nullptr) return;
  // Zone-member census (zone leader): every statically-assigned member of
  // our zone must be in the zone view; absentees are probed and recovered.
  if (primary_ring_->is_ring_leader()) {
    for (net::PartitionId q : zones_.zone_members(zone_)) {
      if (q == partition_) continue;
      if (primary_ring_->view().contains(q)) continue;
      census_probe(q, /*top=*/false);
    }
  }
  // Orphan-zone census (top leader only — a single actor, so two survivors
  // never race duplicate migrations): every zone must have a top-ring
  // representative; for an orphaned zone, probe its first partition.
  if (top_ring_ != nullptr && top_ring_->is_ring_leader()) {
    for (std::uint32_t z = 0; z < zones_.num_zones; ++z) {
      if (z == zone_) continue;  // we represent our own zone
      bool represented = false;
      for (const MetaMember& m : top_ring_->view().members) {
        if (zones_.zone_of(m.partition) == z) {
          represented = true;
          break;
        }
      }
      if (!represented) census_probe(zones_.first_of(z), /*top=*/true);
    }
  }
}

void GroupServiceDaemon::census_probe(net::PartitionId target, bool top) {
  // Backoff: a recovery takes exec + state fetch + several join rounds;
  // re-probing sooner would double-start the same partition.
  auto& next_ok = census_backoff_[target.value];
  if (now() < next_ok) return;
  next_ok = now() + params_.gsd_exec_time + params_.checkpoint_federation_fetch +
            12 * MembershipRing::kJoinRetryPeriod;
  const net::NodeId node =
      directory()->service_node(ServiceKind::kGroupService, target);
  trace(sim::TraceLevel::kInfo,
        std::string(top ? "orphan-zone census" : "zone census") +
            ": probing partition " + std::to_string(target.value) + " on node " +
            std::to_string(node.value));
  const std::uint64_t id = next_probe_id_++;
  Probe probe;
  probe.node = node;
  probe.attempts_left = 2;
  probe.detected_at = now();
  probe.started_at = now();
  probe.last_seen_at = now();
  probe.census = true;
  probe.census_partition = target;
  probe.census_top = top;
  probes_.emplace(id, probe);
  probe_attempt(id);
}

// --- partition (WD) monitoring ----------------------------------------------

void GroupServiceDaemon::handle_heartbeat(const HeartbeatMsg& hb,
                                          net::NetworkId network) {
  ++heartbeats_received_;
  auto it = watches_.find(hb.node.value);
  if (it == watches_.end()) return;  // not one of ours
  NodeWatch& watch = it->second;
  if (network.value >= watch.last_per_net.size()) return;
  watch.last_per_net[network.value] = now();

  if (watch.net_failed[network.value]) {
    watch.net_failed[network.value] = false;
    Event e;
    e.type = std::string(event_types::kNetworkRecovered);
    e.subject_node = hb.node;
    e.attrs = {{"network", std::to_string(network.value)}};
    publish(std::move(e));
  }
  if (watch.status == NodeStatus::kNodeFailed) {
    watch.status = NodeStatus::kHealthy;
    Event e;
    e.type = std::string(event_types::kNodeRecovered);
    e.subject_node = hb.node;
    publish(std::move(e));
  } else if (watch.status == NodeStatus::kProcessFailed) {
    // The restarted WD is beating again.
    watch.status = NodeStatus::kHealthy;
    if (log_ != nullptr && log_->mark_recovered("WD", hb.node, now())) {
      Event e;
      e.type = std::string(event_types::kServiceRecovered);
      e.subject_node = hb.node;
      e.attrs = {{"service", "WD"}};
      publish(std::move(e));
    }
  }
}

void GroupServiceDaemon::check_partition() {
  if (!alive()) return;
  const sim::SimTime threshold = params_.heartbeat_interval + params_.heartbeat_grace;
  // Single-network classification may require several consecutive misses
  // (lossy-fabric tolerance); node-level silence always uses one interval.
  const sim::SimTime net_threshold =
      params_.network_miss_rounds * params_.heartbeat_interval +
      params_.heartbeat_grace;
  for (auto& [node_value, watch] : watches_) {
    const net::NodeId node{node_value};
    if (watch.diagnosing || watch.status == NodeStatus::kNodeFailed ||
        watch.status == NodeStatus::kProcessFailed) {
      continue;
    }
    std::size_t fresh = 0;
    for (sim::SimTime last : watch.last_per_net) {
      if (now() - last <= threshold) ++fresh;
    }
    if (fresh == watch.last_per_net.size()) continue;

    if (fresh == 0) {
      begin_node_diagnosis(node);
      continue;
    }
    // Some interfaces deliver and some do not: single-network failures.
    for (std::size_t n = 0; n < watch.last_per_net.size(); ++n) {
      if (now() - watch.last_per_net[n] > net_threshold && !watch.net_failed[n]) {
        watch.net_failed[n] = true;
        diagnose_network_failure(node, net::NetworkId{static_cast<std::uint8_t>(n)},
                                 now(), "WD", watch.last_per_net[n]);
      }
    }
  }
}

void GroupServiceDaemon::diagnose_network_failure(net::NodeId node,
                                                  net::NetworkId network,
                                                  sim::SimTime detected_at,
                                                  const char* component,
                                                  sim::SimTime last_seen_at) {
  // Diagnosis is pure analysis of the per-network arrival table.
  engine().schedule_after(
      params_.network_analysis_time,
      [this, node, network, detected_at, component, last_seen_at] {
        if (!alive()) return;
        if (log_ != nullptr) {
          log_->append(FaultRecord{
              .component = component,
              .kind = FaultKind::kNetworkFailure,
              .node = node,
              .partition = cluster().partition_of(node),
              .network = network,
              .last_seen_at = last_seen_at,
              .detected_at = detected_at,
              .diagnosed_at = now(),
              .recovered_at = now(),  // one of three networks: nothing to repair
              .recovered = true,
          });
        }
        Event e;
        e.type = std::string(event_types::kNetworkFailed);
        e.subject_node = node;
        e.attrs = {{"network", std::to_string(network.value)},
                   {"component", component}};
        publish(std::move(e));
      });
}

void GroupServiceDaemon::begin_node_diagnosis(net::NodeId node) {
  trace(sim::TraceLevel::kWarn,
        "node " + std::to_string(node.value) + " silent on every network; probing");
  NodeWatch& watch = watches_.at(node.value);
  watch.status = NodeStatus::kSuspect;
  watch.diagnosing = true;
  const std::uint64_t id = next_probe_id_++;
  Probe probe;
  probe.node = node;
  probe.attempts_left = params_.node_probe_attempts;
  probe.detected_at = now();
  probe.started_at = now();
  probe.last_seen_at =
      *std::max_element(watch.last_per_net.begin(), watch.last_per_net.end());
  probes_.emplace(id, probe);
  probe_attempt(id);
}

void GroupServiceDaemon::probe_attempt(std::uint64_t probe_id) {
  if (!alive()) return;
  auto it = probes_.find(probe_id);
  if (it == probes_.end() || it->second.answered) return;
  Probe& probe = it->second;

  if (probe.attempts_left == 0) {
    // Every attempt timed out: the node is dead.
    const Probe dead = probe;
    probes_.erase(it);
    if (dead.census) {
      // Census target unreachable: migrate the partition on behalf of the
      // ring that missed it (its epoch/scope stamp the migration order).
      MembershipRing& ring =
          dead.census_top && top_ring_ != nullptr ? *top_ring_ : *primary_ring_;
      migrate_partition(
          MetaMember{dead.census_partition,
                     {dead.node, port_of(ServiceKind::kGroupService)},
                     0},
          ring);
    } else {
      conclude_node_failure(dead.node, dead.detected_at, dead.last_seen_at);
    }
    return;
  }

  --probe.attempts_left;
  auto msg = std::make_shared<ProbeMsg>();
  msg->reply_to = address();
  msg->probe_id = probe_id;
  send_all_networks(ppm_at(probe.node), std::move(msg));
  engine().schedule_after(params_.node_probe_timeout,
                          [this, probe_id] { probe_attempt(probe_id); });
}

void GroupServiceDaemon::conclude_wd_process_failure(net::NodeId node,
                                                     sim::SimTime detected_at,
                                                     sim::SimTime last_seen_at) {
  if (!alive()) return;
  trace(sim::TraceLevel::kWarn,
        "diagnosed WD process failure on node " + std::to_string(node.value) +
            "; restarting via PPM");
  auto wit = watches_.find(node.value);
  if (wit != watches_.end()) {
    wit->second.status = NodeStatus::kProcessFailed;
    wit->second.diagnosing = false;
  }
  if (log_ != nullptr) {
    log_->append(FaultRecord{
        .component = "WD",
        .kind = FaultKind::kProcessFailure,
        .node = node,
        .partition = partition_,
        .network = net::NetworkId{},
        .last_seen_at = last_seen_at,
        .detected_at = detected_at,
        .diagnosed_at = now(),
    });
  }
  Event e;
  e.type = std::string(event_types::kServiceFailed);
  e.subject_node = node;
  e.attrs = {{"service", "WD"}};
  publish(std::move(e));

  // Recovery: have the node's PPM restart the watch daemon.
  const std::uint64_t rid = next_request_id_++;
  pending_recoveries_[rid] = PendingRecovery{"WD", node};
  auto restart = std::make_shared<StartServiceMsg>();
  restart->kind = ServiceKind::kWatchDaemon;
  restart->partition = partition_;
  restart->create = false;
  restart->reply_to = address();
  restart->request_id = rid;
  restart->epoch = primary_ring_->view().epoch;
  restart->scope = primary_ring_->scope();
  send_any(ppm_at(node), std::move(restart));
}

void GroupServiceDaemon::conclude_node_failure(net::NodeId node,
                                               sim::SimTime detected_at,
                                               sim::SimTime last_seen_at) {
  if (!alive()) return;
  trace(sim::TraceLevel::kWarn,
        "diagnosed node failure: node " + std::to_string(node.value));
  auto wit = watches_.find(node.value);
  if (wit != watches_.end()) {
    wit->second.status = NodeStatus::kNodeFailed;
    wit->second.diagnosing = false;
  }
  if (log_ != nullptr) {
    // The WD is the node's representative: with the node gone there is
    // nothing to migrate, so recovery is complete at diagnosis (paper §5.1).
    log_->append(FaultRecord{
        .component = "WD",
        .kind = FaultKind::kNodeFailure,
        .node = node,
        .partition = partition_,
        .network = net::NetworkId{},
        .last_seen_at = last_seen_at,
        .detected_at = detected_at,
        .diagnosed_at = now(),
        .recovered_at = now(),
        .recovered = true,
    });
  }
  Event e;
  e.type = std::string(event_types::kNodeFailed);
  e.subject_node = node;
  publish(std::move(e));
}

// --- membership plumbing ------------------------------------------------------

void GroupServiceDaemon::migrate_partition(const MetaMember& failed,
                                           MembershipRing& ring) {
  MembershipRing* r = &ring;  // rings live as long as this daemon
  engine().schedule_after(params_.migration_select_time, [this, failed, r] {
    if (!alive() || directory() == nullptr) return;
    const auto targets = directory()->migration_targets(failed.partition);
    if (targets.empty()) {
      Event e;
      e.type = "partition.lost";
      e.attrs = {{"partition", std::to_string(failed.partition.value)}};
      publish(std::move(e));
      return;
    }
    // A partition takeover relocates every kernel service of the dead
    // server — the heaviest recovery action the GSD can take.
    trace(sim::TraceLevel::kError,
          "migrating partition " + std::to_string(failed.partition.value) +
              " services from node " + std::to_string(failed.gsd.node.value) +
              " to node " + std::to_string(targets.front().value));
    auto start = std::make_shared<StartServiceMsg>();
    start->kind = ServiceKind::kGroupService;
    start->partition = failed.partition;
    start->create = true;
    start->request_id = next_request_id_++;
    start->epoch = r->view().epoch;
    start->scope = r->scope();
    send_any(ppm_at(targets.front()), std::move(start));
    Event e;
    e.type = std::string(event_types::kGsdMigrated);
    e.subject_node = targets.front();
    e.attrs = {{"partition", std::to_string(failed.partition.value)},
               {"from_node", std::to_string(failed.gsd.node.value)},
               {"to_node", std::to_string(targets.front().value)}};
    publish(std::move(e));
  });
}

void GroupServiceDaemon::fetch_state_and_join() {
  if (directory() == nullptr) {
    primary_ring_->mark_joined();
    return;
  }
  const bool singleton =
      zoned_ ? zones_.zone_members(zone_).size() == 1
             : directory()->partition_count() == 1;
  if (singleton) {
    // Nothing to rejoin; adopt a singleton view.
    primary_ring_->found(primary_ring_->view().view_id + 1, /*persist=*/false);
    check_services();
    return;
  }

  // Ask both our own partition's checkpoint instance (fast path after an
  // in-place restart) and the ring replica (survives server-node death).
  const std::uint64_t load_id = engine().rng().next() | 1;
  auto send_load = [this, load_id](net::PartitionId target) {
    auto load = std::make_shared<CheckpointLoadMsg>();
    load->service = "gsd/" + std::to_string(partition_.value);
    load->key = "view";
    load->reply_to = address();
    load->request_id = load_id;
    send_any(directory()->service_address(ServiceKind::kCheckpointService, target),
             std::move(load));
  };
  send_load(partition_);
  // Replica target: the ring successor — (p+1) mod partitions on the flat
  // ring, the next member of our zone under a zoned topology.
  send_load(zoned_ ? zones_.next_in_zone(partition_)
                   : net::PartitionId{static_cast<std::uint32_t>(
                         (partition_.value + 1) % directory()->partition_count())});
  state_load_id_ = load_id;

  // Whether or not the state fetch answers, keep trying to join; and bring
  // local services back regardless.
  primary_ring_->begin_join_search(params_.checkpoint_federation_fetch +
                                   500 * sim::kMillisecond);
}

void GroupServiceDaemon::check_services() {
  if (!alive() || directory() == nullptr) return;
  bool created_cs_this_pass = false;

  // Checkpoint entries first: every other service recovers its state
  // through the checkpoint service, so it must come back before them.
  std::vector<const SupervisedSpec*> ordered;
  for (const auto& s : supervised_) {
    if (s.kind == ServiceKind::kCheckpointService) ordered.push_back(&s);
  }
  for (const auto& s : supervised_) {
    if (s.kind != ServiceKind::kCheckpointService) ordered.push_back(&s);
  }

  for (const SupervisedSpec* spec : ordered) {
    const net::Address addr{node_id(), spec->port};
    cluster::Daemon* d = cluster().daemon_at(addr);
    if (d != nullptr && d->alive()) continue;
    if (service_recovering_[spec->component]) continue;

    const bool create = (d == nullptr);  // no instance here: migrated partition
    if (create && spec->kind != ServiceKind::kCheckpointService &&
        created_cs_this_pass) {
      continue;  // wait until the new checkpoint instance reports up
    }

    const sim::SimTime detected_at = now();
    service_recovering_[spec->component] = true;
    engine().schedule_after(
        params_.local_diagnose_time,
        [this, spec = *spec, detected_at, create] {
          if (!alive()) return;
          if (log_ != nullptr && !create) {
            // In-place restarts are process failures; created instances
            // belong to a node-failure record already logged by the
            // migration initiator.
            log_->append(FaultRecord{
                .component = spec.component,
                .kind = FaultKind::kProcessFailure,
                .node = node_id(),
                .partition = partition_,
                .network = net::NetworkId{},
                // Death happened between supervision checks; the previous
                // check is the last confirmed sign of life.
                .last_seen_at = detected_at > params_.heartbeat_interval
                                    ? detected_at - params_.heartbeat_interval
                                    : 0,
                .detected_at = detected_at,
                .diagnosed_at = now(),
            });
          }
          Event e;
          e.type = std::string(event_types::kServiceFailed);
          e.subject_node = node_id();
          e.attrs = {{"service", spec.component}};
          publish(std::move(e));

          auto start = std::make_shared<StartServiceMsg>();
          start->kind = spec.kind;
          start->extension = spec.extension;
          start->extension_port = spec.port;
          start->partition = partition_;
          start->create = create;
          start->request_id = next_request_id_++;
          start->epoch = primary_ring_->view().epoch;
          start->scope = primary_ring_->scope();
          send_any(ppm_at(node_id()), std::move(start));
        });
    if (create && spec->kind == ServiceKind::kCheckpointService) {
      created_cs_this_pass = true;
    }
  }
}

void GroupServiceDaemon::handle_service_up(const ServiceUpMsg& up) {
  std::string component = up.extension;
  if (component.empty()) {
    switch (up.kind) {
      case ServiceKind::kEventService: component = "ES"; break;
      case ServiceKind::kDataBulletin: component = "DB"; break;
      case ServiceKind::kCheckpointService: component = "CS"; break;
      default: component = std::string(to_string(up.kind)); break;
    }
  }
  service_recovering_[component] = false;
  if (log_ != nullptr &&
      log_->mark_recovered_partition(component, partition_, now())) {
    Event e;
    e.type = std::string(event_types::kServiceRecovered);
    e.subject_node = up.service.node;
    e.attrs = {{"service", component}};
    publish(std::move(e));
  }
  if (up.kind == ServiceKind::kCheckpointService) {
    // The checkpoint instance is back: bring up services waiting on it.
    check_services();
  }
}

// --- message handlers ---------------------------------------------------------

void GroupServiceDaemon::handle_probe_reply(const ProbeReplyMsg& reply) {
  // Probe ids are globally unique across the rings' tables and ours, so the
  // reply matches exactly one owner; route rings first (vote probes, then
  // predecessor-diagnosis probes).
  if (primary_ring_->consume_probe_reply(reply)) return;
  if (top_ring_ != nullptr && top_ring_->consume_probe_reply(reply)) return;

  auto it = probes_.find(reply.probe_id);
  if (it == probes_.end() || it->second.answered) return;
  it->second.answered = true;
  const Probe probe = it->second;
  probes_.erase(it);
  if (probe.census) {
    MembershipRing& ring =
        probe.census_top && top_ring_ != nullptr ? *top_ring_ : *primary_ring_;
    if (reply.gsd_running) {
      // Alive but absent from the ring: a stale believer (e.g. an isolated
      // ex-leader still holding its old view). Re-invite it by sending the
      // ring's current view — a higher view id dislodges its stale one and
      // its rejoin logic does the rest.
      auto msg = std::make_shared<ViewChangeMsg>();
      msg->view = ring.view();
      msg->scope = ring.scope();
      send_any(directory()->service_address(ServiceKind::kGroupService,
                                            probe.census_partition),
               std::move(msg));
      return;
    }
    // Node alive, GSD process dead: restart it in place under the ring's
    // current epoch.
    trace(sim::TraceLevel::kInfo,
          "census: restarting dead GSD of partition " +
              std::to_string(probe.census_partition.value));
    auto restart = std::make_shared<StartServiceMsg>();
    restart->kind = ServiceKind::kGroupService;
    restart->partition = probe.census_partition;
    restart->create = false;
    restart->request_id = next_request_id_++;
    restart->epoch = ring.view().epoch;
    restart->scope = ring.scope();
    send_any(ppm_at(probe.node), std::move(restart));
    return;
  }
  if (reply.wd_running) {
    // False alarm (lost heartbeats): the WD process is alive.
    auto wit = watches_.find(probe.node.value);
    if (wit != watches_.end()) {
      wit->second.diagnosing = false;
      wit->second.status = NodeStatus::kHealthy;
      std::fill(wit->second.last_per_net.begin(), wit->second.last_per_net.end(),
                now());
    }
    return;
  }
  // The node answered and its WD is dead. One more confirmation round
  // before declaring it.
  engine().schedule_after(params_.process_confirm_delay,
                          [this, probe] {
                            conclude_wd_process_failure(
                                probe.node, probe.detected_at,
                                probe.last_seen_at);
                          });
}

void GroupServiceDaemon::handle_start_service_reply(
    const StartServiceReplyMsg& reply) {
  auto it = pending_recoveries_.find(reply.request_id);
  if (it == pending_recoveries_.end()) return;
  const PendingRecovery rec = it->second;
  pending_recoveries_.erase(it);
  if (!reply.ok) return;
  if (log_ != nullptr && log_->mark_recovered(rec.component, rec.node, now())) {
    Event e;
    e.type = std::string(event_types::kServiceRecovered);
    e.subject_node = rec.node;
    e.attrs = {{"service", rec.component}};
    publish(std::move(e));
  }
  if (rec.component == "WD") {
    auto wit = watches_.find(rec.node.value);
    if (wit != watches_.end() && wit->second.status == NodeStatus::kProcessFailed) {
      wit->second.status = NodeStatus::kHealthy;
    }
  }
}

void GroupServiceDaemon::handle_state_load_reply(
    const CheckpointLoadReplyMsg& reply) {
  if (reply.request_id != state_load_id_ || state_load_id_ == 0) return;
  state_load_id_ = 0;
  if (reply.found) {
    primary_ring_->adopt_recovered_view(MetaView::deserialize(reply.data));
  }
  primary_ring_->rejoin_now();
  primary_ring_->begin_join_search(MembershipRing::kJoinRetryPeriod);
  check_services();
}

}  // namespace phoenix::kernel
