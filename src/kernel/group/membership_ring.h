// Reusable ring-membership protocol, extracted from the GSD.
//
// One MembershipRing instance runs the paper's §4.3 meta-group protocol
// for ONE ring: members kept in join order ([0]=Leader, [1]=Princess),
// ring heartbeats to the successor over all networks, predecessor
// monitoring with probe-based diagnosis, view dissemination, tail rejoin,
// and — under FailoverPolicy::quorum() — regroup concurrence rounds and
// per-ring epoch fencing.
//
// The flat paper topology is exactly one ring at scope 0; the zoned
// topology (zone_ring.h) instantiates one ring per zone plus a top ring of
// zone leaders. Everything environment-specific — who hosts the ring, how
// a removed member's partition is recovered, where fault records and
// events go, which peers to solicit when rejoining — is behind the Host
// interface, implemented by GroupServiceDaemon. The protocol itself
// (message order, timer cadence, RNG draws) is a verbatim extraction of
// the original GSD code, so a scope-0 ring is byte-identical on the wire
// to the pre-refactor implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "kernel/event/event.h"
#include "kernel/ft_params.h"
#include "kernel/group/meta_group.h"
#include "kernel/service_kind.h"
#include "net/message.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace phoenix::kernel {

struct ProbeReplyMsg;  // kernel/ppm/process_manager.h (included by the .cpp)

class MembershipRing {
 public:
  /// Retry cadence for (re)join solicitations; after 10 futile rounds the
  /// member founds a fresh singleton ring.
  static constexpr sim::SimTime kJoinRetryPeriod = 2 * sim::kSecond;

  struct Config {
    /// Wire scope tag (0 = the legacy flat meta-group; zone rings use
    /// zone + 1; the top ring uses kTopRingScope).
    std::uint32_t scope = 0;
    /// Trace prefix; "meta" reproduces the flat-mode trace text verbatim.
    std::string label = "meta";
    /// Whether a removal recovers the failed member's partition (restart in
    /// place / migrate) and journals GSD+ES/DB/CS fault records. True for
    /// the flat ring and zone rings; false for the membership-only top ring.
    bool recovers_partitions = true;
    /// Whether view changes are checkpointed through the host. The top
    /// ring's view is reconstructible from the zone leaders, so only the
    /// primary ring persists.
    bool persists_view = true;
    /// Leader-side join rule: a joiner displaces any stale member from the
    /// same zone (top ring only — one representative per zone).
    bool displaces_same_zone = false;
  };

  /// Environment the ring runs in, implemented by the GSD. The ring_ name
  /// prefix keeps these distinct from the daemon's own protected API.
  class Host {
   public:
    virtual ~Host() = default;
    virtual cluster::Cluster& ring_cluster() = 0;
    virtual bool ring_alive() const = 0;
    virtual bool ring_running() const = 0;
    virtual net::Address ring_address() const = 0;
    virtual net::PartitionId ring_partition() const = 0;
    virtual ServiceDirectory* ring_directory() = 0;
    virtual std::uint64_t ring_incarnation() const = 0;
    /// Probe ids are drawn from the host's single counter so replies can be
    /// routed across every ring and the host's own probe tables by bare id.
    virtual std::uint64_t ring_next_probe_id() = 0;
    virtual void ring_trace(sim::TraceLevel level, const std::string& text) = 0;
    virtual void ring_publish(Event e) = 0;
    virtual void ring_send_any(net::Address to,
                               std::shared_ptr<const net::Message> msg) = 0;
    virtual void ring_send_all_networks(net::Address to,
                                        std::shared_ptr<const net::Message> msg) = 0;
    /// Persist the ring's view (primary ring: the runtime checkpoint path).
    virtual void ring_save_state(MembershipRing& ring) = 0;
    /// Peers to solicit with MetaJoinMsg when rejoining this ring.
    virtual std::vector<net::Address> ring_join_targets(MembershipRing& ring) = 0;
    virtual std::uint32_t ring_zone_of(net::PartitionId p) const = 0;
    /// Journal the fault records for a removed member (GSD record, plus
    /// ES/DB/CS records when the server node died).
    virtual void ring_log_member_failure(MembershipRing& ring,
                                         const MetaMember& member, bool node_dead,
                                         sim::SimTime last_seen_at,
                                         sim::SimTime detected_at,
                                         sim::SimTime diagnosed_at) = 0;
    /// Publish the removal event (flat/zone: kNodeFailed / kServiceFailed
    /// with the GSD attrs; top ring: the aggregated zone-leader-lost event).
    virtual void ring_member_removed(MembershipRing& ring,
                                     const MetaMember& member, bool node_dead) = 0;
    /// Recover the removed member's partition (restart in place or migrate).
    /// Called only when Config::recovers_partitions is set.
    virtual void ring_recover_member(MembershipRing& ring,
                                     const MetaMember& member, bool node_dead) = 0;
    /// A view change introduced a new/re-incarnated member: close its fault
    /// record (first applier wins) and publish the recovery event.
    virtual void ring_member_recovered(MembershipRing& ring,
                                       const MetaMember& member) = 0;
    /// Per-network silence diagnosis delegated to the host's shared
    /// analysis path (logs the GSD network-failure record).
    virtual void ring_diagnose_network_failure(MembershipRing& ring,
                                               net::NodeId node,
                                               net::NetworkId network,
                                               sim::SimTime detected_at,
                                               sim::SimTime last_seen_at) = 0;
    /// The view changed (applied, founded or adopted). Hook for the zone
    /// layer: leadership transitions, churn aggregation, metrics.
    virtual void ring_view_changed(MembershipRing& ring,
                                   const MetaView& old_view) = 0;
    /// A regroup solicitation round started (metrics hook).
    virtual void ring_regroup_round(MembershipRing& ring) = 0;
  };

  MembershipRing(Host& host, cluster::Cluster& cluster, const FtParams& params,
                 Config config);

  MembershipRing(const MembershipRing&) = delete;
  MembershipRing& operator=(const MembershipRing&) = delete;

  // -- lifecycle (driven by the host daemon) --
  /// Adopt a boot-time view seeded by the kernel (no join storm).
  void seed_view(MetaView view);
  /// Found a fresh singleton ring at the given view id (keeps the fencing
  /// epoch, floored). `persist` mirrors the original call sites: bootstrap
  /// and futile-rejoin refounding checkpoint the view, the single-partition
  /// shortcut does not.
  void found(std::uint64_t view_id, bool persist);
  /// Directoryless host: nothing to rejoin, just mark membership.
  void mark_joined() { joined_ = true; }
  /// Restart/migration path: membership must be re-earned by rejoining.
  void mark_unjoined() { joined_ = false; }
  /// Drop stale membership knowledge (members + view id), keeping the
  /// fencing epoch. Used when a suspended top-ring participant re-activates
  /// later: its old view ids must not outrank the current ring's.
  void forget_membership() {
    view_.members.clear();
    view_.view_id = 0;
    joined_ = false;
  }
  /// Merge a checkpoint-recovered view (restart/migration path).
  void adopt_recovered_view(MetaView recovered);
  /// Clear per-incarnation runtime state (restart path).
  void reset_runtime_state(std::size_t network_count);
  /// Arm the predecessor checker and ring beater. Draws the beater's start
  /// jitter from the engine RNG — at the same sequence position as the
  /// original GSD code.
  void arm(sim::SimTime scan_period, sim::SimTime checker_delay,
           sim::SimTime beat_period);
  /// Start the periodic join solicitation after the given delay.
  void begin_join_search(sim::SimTime delay);
  /// Send one join solicitation immediately.
  void rejoin_now() { try_rejoin(); }
  void stop();

  // -- wire entry points (host routes by message scope) --
  void handle_ring_heartbeat(const RingHeartbeatMsg& ring, const net::Envelope& env);
  void apply_view(MetaView incoming);
  void handle_join(const MetaJoinMsg& join);
  void handle_regroup_propose(const RegroupProposeMsg& proposal);
  void handle_regroup_vote(const RegroupVoteMsg& vote);
  /// True if the reply answered one of this ring's probes (vote probes
  /// first, then predecessor-diagnosis probes), consuming it.
  bool consume_probe_reply(const ProbeReplyMsg& reply);

  // -- observers --
  const Config& config() const noexcept { return config_; }
  std::uint32_t scope() const noexcept { return config_.scope; }
  const MetaView& view() const noexcept { return view_; }
  bool joined() const noexcept { return joined_; }
  bool is_ring_leader() const;
  bool is_ring_princess() const;
  bool regroup_active() const noexcept { return regroup_.has_value(); }
  std::uint64_t regroup_rounds() const noexcept { return regroup_rounds_; }
  std::uint64_t quorum_losses() const noexcept { return quorum_losses_; }
  std::uint64_t regroup_votes_cast() const noexcept { return regroup_votes_cast_; }
  /// Floor for the fencing epoch: 1 under quorum fencing, 0 otherwise.
  std::uint64_t epoch_floor() const noexcept;

 private:
  void send_ring_heartbeat();
  void check_meta();
  void probe_attempt(std::uint64_t probe_id);
  void conclude_meta_failure(const MetaMember& pred, bool node_dead,
                             sim::SimTime detected_at, sim::SimTime last_seen_at);
  void commit_member_removal(const MetaMember& pred, bool node_dead,
                             sim::SimTime detected_at, sim::SimTime last_seen_at);
  void broadcast_view();
  void try_rejoin();

  // -- quorum regroup (FailoverPolicy::quorum()) --
  void begin_regroup(const MetaMember& suspect, bool node_dead,
                     sim::SimTime detected_at, sim::SimTime last_seen_at);
  void solicit_regroup_round();
  void evaluate_regroup(bool round_over);
  void regroup_quorum_lost();
  void cancel_regroup(bool exonerated);
  void cast_vote(net::Address reply_to, std::uint64_t round_id, bool concur);
  void send_fence();

  sim::SimTime now() const { return cluster_.engine().now(); }
  net::Address ppm_at(net::NodeId node) const;
  /// Publish with the ring scope attached (scope 0 adds nothing, keeping
  /// every flat-mode event byte-identical).
  void publish_scoped(Event e);

  Host& host_;
  cluster::Cluster& cluster_;
  const FtParams& params_;
  const Config config_;

  MetaView view_;
  std::uint64_t ring_seq_ = 0;
  std::vector<sim::SimTime> pred_last_per_net_;
  std::vector<bool> pred_net_failed_;
  net::PartitionId pred_partition_{};
  bool pred_diagnosing_ = false;
  std::unordered_map<std::uint32_t, std::uint64_t> tombstones_;  // partition -> incarnation

  // Predecessor-diagnosis probes in flight (ids from the host counter).
  struct MetaProbe {
    MetaMember member;
    int attempts_left = 0;
    sim::SimTime detected_at = 0;
    sim::SimTime last_seen_at = 0;
    bool answered = false;
  };
  std::unordered_map<std::uint64_t, MetaProbe> probes_;

  // Quorum regroup state (initiator side). One regroup at a time: the view
  // change it commits re-evaluates every other suspicion anyway.
  struct Regroup {
    MetaMember suspect;
    bool node_dead = false;
    sim::SimTime detected_at = 0;
    sim::SimTime last_seen_at = 0;
    std::uint64_t round_id = 0;
    std::size_t view_size = 0;  // members at solicitation, incl. us + suspect
    int concur = 0;             // incl. our own observation
    int dissent = 0;
    int rounds_run = 0;
    bool done = false;  // round settled; ignore stragglers
    /// Partitions whose vote was counted this round: a duplicated or
    /// replayed RegroupVoteMsg must not be double-counted toward quorum.
    std::vector<std::uint32_t> voters;
  };
  std::optional<Regroup> regroup_;
  std::uint64_t next_round_id_ = 1;
  std::uint64_t regroup_rounds_ = 0;
  std::uint64_t quorum_losses_ = 0;
  std::uint64_t regroup_votes_cast_ = 0;

  // Voter side: independent suspect probes in flight, keyed by probe id.
  struct PendingVote {
    net::Address reply_to;
    net::PartitionId suspect;
    std::uint64_t round_id = 0;
  };
  std::unordered_map<std::uint64_t, PendingVote> vote_probes_;
  // Initiator partition -> last round answered (dedups the multi-network
  // delivery of RegroupProposeMsg so each round gets exactly one vote).
  std::unordered_map<std::uint32_t, std::uint64_t> answered_rounds_;

  bool joined_ = false;
  int futile_join_attempts_ = 0;

  sim::PeriodicTask meta_checker_;
  sim::PeriodicTask ring_beater_;
  sim::PeriodicTask join_retrier_;
};

}  // namespace phoenix::kernel
