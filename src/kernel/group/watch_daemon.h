// Watch daemon (paper §4.3).
//
// One WD per node. Every heartbeat interval it sends a heartbeat — carrying
// the node's current resource gauges — to its partition's GSD through ALL
// network interfaces of the node. The GSD tells nodes from links apart by
// which interfaces the heartbeat arrived on. The WD is "the representative
// of the hosting node": if the node dies the WD dies with it and migrating
// it would be meaningless (paper, Table 1 discussion).
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/daemon.h"
#include "cluster/node.h"
#include "kernel/ft_params.h"
#include "kernel/runtime/service_runtime.h"
#include "kernel/service_kind.h"
#include "net/message.h"

namespace phoenix::kernel {

struct HeartbeatMsg final : net::Message {
  net::NodeId node;
  std::uint64_t seq = 0;
  cluster::ResourceUsage usage;
  sim::SimTime sent_at = 0;

  PHOENIX_MESSAGE_TYPE("group.heartbeat")
  std::size_t wire_size() const noexcept override {
    return cluster::ResourceUsage::kWireBytes + 24;
  }
};

/// Announcement a (re)started or migrated GSD broadcasts to its partition so
/// every WD re-points its heartbeats.
struct GsdAnnounceMsg final : net::Message {
  net::Address gsd;
  net::PartitionId partition;

  PHOENIX_MESSAGE_TYPE("group.gsd_announce")
  std::size_t wire_size() const noexcept override { return 16; }
};

class WatchDaemon final : public ServiceRuntime {
 public:
  WatchDaemon(cluster::Cluster& cluster, net::NodeId node, const FtParams& params,
              ServiceDirectory* directory, double cpu_share = 0.0);

  /// Time the most recent heartbeat was sent (0 if none yet). The fault
  /// benches inject failures right after a heartbeat, as the paper did.
  sim::SimTime last_sent_at() const noexcept { return last_sent_at_; }
  std::uint64_t heartbeats_sent() const noexcept { return seq_; }

  net::Address gsd_address() const noexcept { return gsd_; }

 private:
  void on_service_start() override;
  void on_service_stop() override;
  void beat();

  const FtParams& params_;
  sim::PeriodicTask beater_;
  net::Address gsd_;
  std::uint64_t seq_ = 0;
  sim::SimTime last_sent_at_ = 0;
};

}  // namespace phoenix::kernel
