#include "kernel/group/meta_group.h"

#include <sstream>

namespace phoenix::kernel {

std::string MetaView::serialize() const {
  std::ostringstream out;
  out << view_id;
  // The epoch token is emitted only when nonzero so pre-quorum views (and
  // everything the paper experiments checkpoint) keep their legacy bytes.
  if (epoch != 0) out << "|@" << epoch;
  for (const auto& m : members) {
    out << '|' << m.partition.value << ',' << m.gsd.node.value << ','
        << m.gsd.port.value << ',' << m.incarnation;
  }
  return out.str();
}

MetaView MetaView::deserialize(const std::string& data) {
  MetaView view;
  std::istringstream in(data);
  std::string field;
  if (!std::getline(in, field, '|')) return view;
  try {
    view.view_id = std::stoull(field);
  } catch (const std::exception&) {
    return view;
  }
  while (std::getline(in, field, '|')) {
    if (!field.empty() && field.front() == '@') {
      try {
        view.epoch = std::stoull(field.substr(1));
      } catch (const std::exception&) {
        // Malformed epoch token: leave it at 0 (unfenced).
      }
      continue;
    }
    std::istringstream member(field);
    std::string part, node, port, inc;
    if (std::getline(member, part, ',') && std::getline(member, node, ',') &&
        std::getline(member, port, ',') && std::getline(member, inc, ',')) {
      try {
        view.members.push_back(MetaMember{
            net::PartitionId{static_cast<std::uint32_t>(std::stoul(part))},
            net::Address{net::NodeId{static_cast<std::uint32_t>(std::stoul(node))},
                         net::PortId{static_cast<std::uint16_t>(std::stoul(port))}},
            std::stoull(inc)});
      } catch (const std::exception&) {
        // Skip malformed member entries rather than failing recovery.
      }
    }
  }
  return view;
}

}  // namespace phoenix::kernel
