// Group Service Daemon — GSD (paper §4.3, §4.4).
//
// One GSD per partition, hosted on the partition's server node. It is the
// kernel component that solves scalability and high availability at once:
//
//  * Partition monitoring: receives the watch daemons' per-network
//    heartbeats and classifies anomalies into process / node / network
//    failures by probing the suspected node's PPM daemon. Recoveries are
//    ordered through PPM (restart WD in place; nothing to do for a dead
//    compute node; single-NIC failures are only reported — each node has
//    three networks, so one loss is not fatal).
//
//  * Meta-group membership: the GSDs form a ring (join order; Leader is
//    the first member, Princess the second). Each member ring-heartbeats
//    its successor over all networks and monitors its predecessor. The
//    member next to a failed member removes it from the view, broadcasts
//    the new view, and recovers the failed partition: restart the GSD in
//    place (process death) or migrate it — and the partition's ES/CS/DB —
//    to a backup node (server-node death).
//
//  * Service supervision: kernel services (and registered extension
//    services such as the PWS scheduler) on the GSD's node are liveness-
//    checked every heartbeat interval; dead ones are restarted through PPM
//    and recover their state from the checkpoint service.
//
// All fault handling is journaled into the shared FaultLog with detection /
// diagnosis / recovery timestamps — the raw data behind Tables 1-3.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/event/event.h"
#include "kernel/fault_log.h"
#include "kernel/ft_params.h"
#include "kernel/group/meta_group.h"
#include "kernel/group/watch_daemon.h"
#include "kernel/runtime/service_runtime.h"
#include "kernel/service_kind.h"
#include "kernel/service_msgs.h"

namespace phoenix::kernel {

// Declared in kernel/ppm/process_manager.h (included by the .cpp).
struct ProbeReplyMsg;
struct StartServiceReplyMsg;

/// A service the GSD supervises on its own node.
struct SupervisedSpec {
  std::string component;   // fault-log label: "ES", "DB", "CS", extension name
  ServiceKind kind = ServiceKind::kEventService;
  std::string extension;   // non-empty: extension service (port from spec)
  net::PortId port;        // mailbox port of the supervised instance
};

class GroupServiceDaemon final : public ServiceRuntime {
 public:
  enum class NodeStatus : std::uint8_t {
    kHealthy,
    kSuspect,        // all-network silence, diagnosis in progress
    kProcessFailed,  // WD dead, node alive, restart in flight
    kNodeFailed,
  };

  GroupServiceDaemon(cluster::Cluster& cluster, net::NodeId node,
                     net::PartitionId partition, const FtParams& params,
                     ServiceDirectory* directory, FaultLog* log,
                     std::vector<SupervisedSpec> default_supervised = {},
                     double cpu_share = 0.0);

  net::PartitionId partition() const noexcept { return partition_; }

  /// Seeds the initial meta-group view (used at cluster boot so the ring
  /// forms without a join storm).
  void set_initial_view(MetaView view);

  /// Marks this GSD as the ring founder: on start it forms a singleton view
  /// immediately instead of searching for peers. Used by the system
  /// construction tool's staged boot; later GSDs join incrementally.
  void request_bootstrap() noexcept { bootstrap_requested_ = true; }

  bool joined() const noexcept { return joined_; }

  const MetaView& view() const noexcept { return view_; }
  bool is_leader() const;
  bool is_princess() const;
  std::uint64_t incarnation() const noexcept { return incarnation_; }

  /// Current meta-group fencing epoch. Always 0 under the paper's unilateral
  /// policy; under quorum fencing, views bootstrap at epoch 1 (epoch_floor)
  /// so even the FIRST takeover — which bumps to 2 — outranks the deposed
  /// member's stamped traffic.
  std::uint64_t meta_epoch() const noexcept { return view_.epoch; }
  /// True while a regroup round (quorum solicitation) is in flight.
  bool regroup_active() const noexcept { return regroup_.has_value(); }
  /// Regroup rounds this member has initiated / rounds that ended without a
  /// quorum (minority side of a partition, or a 2-member view).
  std::uint64_t regroup_rounds() const noexcept { return regroup_rounds_; }
  std::uint64_t quorum_losses() const noexcept { return quorum_losses_; }
  /// Concurrence votes this member cast as a solicited voter.
  std::uint64_t regroup_votes_cast() const noexcept { return regroup_votes_cast_; }

  /// Registers an extension service on this node for supervision.
  void supervise(SupervisedSpec spec);

  NodeStatus node_status(net::NodeId node) const;

  /// Heartbeats received per node (tests).
  std::uint64_t heartbeats_received() const noexcept { return heartbeats_received_; }

 private:
  void on_service_start() override;
  void on_service_stop() override;
  /// The checkpointed state is the meta-group view (paired with the custom
  /// CheckpointLoadReplyMsg handler — recovery here is fetch_state_and_join,
  /// not the runtime's generic restore-then-announce loop).
  std::string snapshot() const override { return view_.serialize(); }
  /// GSD checkpoint saves are stamped with the meta-group epoch so a deposed
  /// instance cannot overwrite its successor's view (0 under unilateral).
  std::uint64_t fence_epoch() const override { return view_.epoch; }

  // -- partition monitoring --
  void handle_heartbeat(const HeartbeatMsg& hb, net::NetworkId network);
  void handle_ring_heartbeat(const RingHeartbeatMsg& ring, const net::Envelope& env);
  void handle_probe_reply(const ProbeReplyMsg& reply);
  void handle_start_service_reply(const StartServiceReplyMsg& reply);
  void handle_state_load_reply(const CheckpointLoadReplyMsg& reply);
  void check_partition();
  void begin_node_diagnosis(net::NodeId node);
  void probe_attempt(std::uint64_t probe_id);
  void conclude_wd_process_failure(net::NodeId node, sim::SimTime detected_at,
                                   sim::SimTime last_seen_at);
  void conclude_node_failure(net::NodeId node, sim::SimTime detected_at,
                             sim::SimTime last_seen_at);
  void diagnose_network_failure(net::NodeId node, net::NetworkId network,
                                sim::SimTime detected_at, const char* component,
                                sim::SimTime last_seen_at);

  // -- meta-group --
  void send_ring_heartbeat();
  void check_meta();
  void conclude_meta_failure(const MetaMember& pred, bool node_dead,
                             sim::SimTime detected_at, sim::SimTime last_seen_at);
  void commit_member_removal(const MetaMember& pred, bool node_dead,
                             sim::SimTime detected_at, sim::SimTime last_seen_at);
  void apply_view(MetaView incoming);
  void broadcast_view();
  void handle_join(const MetaJoinMsg& join);
  void try_rejoin();
  void fetch_state_and_join();
  void migrate_partition(const MetaMember& failed);

  // -- quorum regroup (FailoverPolicy::quorum()) --
  void begin_regroup(const MetaMember& suspect, bool node_dead,
                     sim::SimTime detected_at, sim::SimTime last_seen_at);
  void solicit_regroup_round();
  void evaluate_regroup(bool round_over);
  void regroup_quorum_lost();
  void cancel_regroup(bool exonerated);
  void handle_regroup_propose(const RegroupProposeMsg& proposal);
  void handle_regroup_vote(const RegroupVoteMsg& vote);
  void cast_vote(net::Address reply_to, std::uint64_t round_id, bool concur);
  void send_fence();
  /// Floor for the meta-view fencing epoch: 1 under quorum fencing (so a
  /// GSD's mutating RPCs are never stamped with the unconditionally-admitted
  /// epoch 0, and the first takeover can already fence its predecessor),
  /// 0 otherwise (keeps every paper-policy wire format byte-identical).
  std::uint64_t epoch_floor() const noexcept;

  // -- supervision --
  void check_services();
  void handle_service_up(const ServiceUpMsg& up);

  // -- helpers --
  void publish(Event e);
  net::Address ppm_at(net::NodeId node) const {
    return {node, port_of(ServiceKind::kProcessManager)};
  }
  void announce_to_partition();

  net::PartitionId partition_;
  const FtParams& params_;
  FaultLog* log_;
  std::uint64_t incarnation_ = 0;

  // Partition (WD) monitoring state.
  struct NodeWatch {
    std::vector<sim::SimTime> last_per_net;  // last heartbeat per network
    std::vector<bool> net_failed;            // per-network failure latched
    NodeStatus status = NodeStatus::kHealthy;
    bool diagnosing = false;
  };
  std::unordered_map<std::uint32_t, NodeWatch> watches_;
  std::uint64_t heartbeats_received_ = 0;

  // Probe bookkeeping (both WD diagnosis and meta-group cross-checks).
  struct Probe {
    net::NodeId node;
    int attempts_left = 0;
    bool meta = false;
    sim::SimTime detected_at = 0;
    sim::SimTime started_at = 0;
    sim::SimTime last_seen_at = 0;
    bool answered = false;
    MetaMember meta_member;  // valid when meta
  };
  std::unordered_map<std::uint64_t, Probe> probes_;
  std::uint64_t next_probe_id_ = 1;

  // Recovery actions in flight, keyed by StartService request id.
  struct PendingRecovery {
    std::string component;
    net::NodeId node;
  };
  std::unordered_map<std::uint64_t, PendingRecovery> pending_recoveries_;
  std::uint64_t next_request_id_ = 1;

  // Meta-group state.
  MetaView view_;
  std::uint64_t ring_seq_ = 0;
  std::vector<sim::SimTime> pred_last_per_net_;
  std::vector<bool> pred_net_failed_;
  net::PartitionId pred_partition_{};
  bool pred_diagnosing_ = false;
  std::unordered_map<std::uint32_t, std::uint64_t> tombstones_;  // partition -> incarnation

  // Quorum regroup state (initiator side). One regroup at a time: the view
  // change it commits re-evaluates every other suspicion anyway.
  struct Regroup {
    MetaMember suspect;
    bool node_dead = false;
    sim::SimTime detected_at = 0;
    sim::SimTime last_seen_at = 0;
    std::uint64_t round_id = 0;
    std::size_t view_size = 0;  // members at solicitation, incl. us + suspect
    int concur = 0;             // incl. our own observation
    int dissent = 0;
    int rounds_run = 0;
    bool done = false;          // round settled; ignore stragglers
    /// Partitions whose vote was counted this round: a duplicated or
    /// replayed RegroupVoteMsg must not be double-counted toward quorum.
    std::vector<std::uint32_t> voters;
  };
  std::optional<Regroup> regroup_;
  std::uint64_t next_round_id_ = 1;
  std::uint64_t regroup_rounds_ = 0;
  std::uint64_t quorum_losses_ = 0;
  std::uint64_t regroup_votes_cast_ = 0;

  // Voter side: independent suspect probes in flight, keyed by probe id.
  struct PendingVote {
    net::Address reply_to;
    net::PartitionId suspect;
    std::uint64_t round_id = 0;
  };
  std::unordered_map<std::uint64_t, PendingVote> vote_probes_;
  // Initiator partition -> last round answered (dedups the multi-network
  // delivery of RegroupProposeMsg so each round gets exactly one vote).
  std::unordered_map<std::uint32_t, std::uint64_t> answered_rounds_;

  bool joined_ = false;
  bool booted_with_view_ = false;
  bool bootstrap_requested_ = false;
  bool started_before_ = false;
  std::uint64_t state_load_id_ = 0;
  int futile_join_attempts_ = 0;

  // Supervised services.
  std::vector<SupervisedSpec> supervised_;
  std::unordered_map<std::string, bool> service_recovering_;  // by component

  // Timers.
  sim::PeriodicTask partition_checker_;
  sim::PeriodicTask meta_checker_;
  sim::PeriodicTask service_checker_;
  sim::PeriodicTask ring_beater_;
  sim::PeriodicTask join_retrier_;
};

}  // namespace phoenix::kernel
