// Group Service Daemon — GSD (paper §4.3, §4.4).
//
// One GSD per partition, hosted on the partition's server node. It is the
// kernel component that solves scalability and high availability at once:
//
//  * Partition monitoring: receives the watch daemons' per-network
//    heartbeats and classifies anomalies into process / node / network
//    failures by probing the suspected node's PPM daemon. Recoveries are
//    ordered through PPM (restart WD in place; nothing to do for a dead
//    compute node; single-NIC failures are only reported — each node has
//    three networks, so one loss is not fatal).
//
//  * Membership: the ring protocol itself (join order, Leader/Princess,
//    ring heartbeats, regroup, fencing) lives in MembershipRing; the GSD
//    hosts one or two instances of it depending on FtParams::GroupTopology:
//
//      - flat() (the paper's §4.3 shape): ONE ring at scope 0 spanning
//        every partition's GSD — byte-identical on the wire to the
//        pre-refactor implementation.
//      - zoned(n): the partition's ZONE sub-ring (scope = zone + 1), which
//        owns fault logging and partition recovery for its members, plus —
//        while this GSD leads its zone — the TOP RING of zone leaders
//        (scope = kTopRingScope, membership-only, never checkpointed).
//        Zone churn aggregates up through the zone leader as one summarized
//        event per window; a periodic census run by zone leaders (zone
//        members) and the top leader (orphaned zones) re-invites stale
//        members and migrates unreachable ones, so even whole-zone death
//        heals without a flat view of the cluster.
//
//  * Service supervision: kernel services (and registered extension
//    services such as the PWS scheduler) on the GSD's node are liveness-
//    checked every heartbeat interval; dead ones are restarted through PPM
//    and recover their state from the checkpoint service.
//
// All fault handling is journaled into the shared FaultLog with detection /
// diagnosis / recovery timestamps — the raw data behind Tables 1-3.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/daemon.h"
#include "kernel/event/event.h"
#include "kernel/fault_log.h"
#include "kernel/ft_params.h"
#include "kernel/group/membership_ring.h"
#include "kernel/group/meta_group.h"
#include "kernel/group/watch_daemon.h"
#include "kernel/group/zone_ring.h"
#include "kernel/runtime/service_runtime.h"
#include "kernel/service_kind.h"
#include "kernel/service_msgs.h"

namespace phoenix::kernel {

// Declared in kernel/ppm/process_manager.h (included by the .cpp).
struct ProbeReplyMsg;
struct StartServiceReplyMsg;

/// A service the GSD supervises on its own node.
struct SupervisedSpec {
  std::string component;   // fault-log label: "ES", "DB", "CS", extension name
  ServiceKind kind = ServiceKind::kEventService;
  std::string extension;   // non-empty: extension service (port from spec)
  net::PortId port;        // mailbox port of the supervised instance
};

class GroupServiceDaemon final : public ServiceRuntime,
                                 public MembershipRing::Host {
 public:
  enum class NodeStatus : std::uint8_t {
    kHealthy,
    kSuspect,        // all-network silence, diagnosis in progress
    kProcessFailed,  // WD dead, node alive, restart in flight
    kNodeFailed,
  };

  GroupServiceDaemon(cluster::Cluster& cluster, net::NodeId node,
                     net::PartitionId partition, const FtParams& params,
                     ServiceDirectory* directory, FaultLog* log,
                     std::vector<SupervisedSpec> default_supervised = {},
                     double cpu_share = 0.0);

  net::PartitionId partition() const noexcept { return partition_; }

  /// Seeds the initial view of this GSD's primary ring — the flat
  /// meta-group, or the partition's zone sub-ring under a zoned topology
  /// (used at cluster boot so the ring forms without a join storm).
  void set_initial_view(MetaView view);

  /// Seeds the initial top-ring view (zoned boot: the zone leaders). Adopted
  /// when this GSD first becomes its zone's leader; ignored in flat mode.
  void seed_top_view(MetaView view);

  /// Marks this GSD as a ring founder: on start it forms a singleton view
  /// immediately instead of searching for peers. Used by the system
  /// construction tool's staged boot; later GSDs join incrementally.
  void request_bootstrap() noexcept { bootstrap_requested_ = true; }

  bool joined() const noexcept { return primary_ring_->joined(); }

  /// Primary-ring view: the flat meta-group, or this partition's zone
  /// sub-ring under a zoned topology.
  const MetaView& view() const noexcept { return primary_ring_->view(); }
  bool is_leader() const { return primary_ring_->is_ring_leader(); }
  bool is_princess() const { return primary_ring_->is_ring_princess(); }
  std::uint64_t incarnation() const noexcept { return incarnation_; }

  /// Current fencing epoch of the primary ring. Always 0 under the paper's
  /// unilateral policy; under quorum fencing, views bootstrap at epoch 1
  /// (epoch_floor) so even the FIRST takeover — which bumps to 2 — outranks
  /// the deposed member's stamped traffic.
  std::uint64_t meta_epoch() const noexcept { return primary_ring_->view().epoch; }
  /// True while a regroup round (quorum solicitation) is in flight on the
  /// primary ring.
  bool regroup_active() const noexcept { return primary_ring_->regroup_active(); }
  /// Regroup rounds this member has initiated / rounds that ended without a
  /// quorum (minority side of a partition, or a 2-member view).
  std::uint64_t regroup_rounds() const noexcept {
    return primary_ring_->regroup_rounds();
  }
  std::uint64_t quorum_losses() const noexcept {
    return primary_ring_->quorum_losses();
  }
  /// Concurrence votes this member cast as a solicited voter.
  std::uint64_t regroup_votes_cast() const noexcept {
    return primary_ring_->regroup_votes_cast();
  }

  // -- zoned-topology observers (flat mode: aliases of the flat ring) --
  bool zoned() const noexcept { return zoned_; }
  const ZoneTopology& zones() const noexcept { return zones_; }
  std::uint32_t zone() const noexcept { return zone_; }
  std::uint32_t zone_count() const noexcept { return zones_.num_zones; }
  /// Top-ring membership/leadership. In flat mode the single ring IS the
  /// top ring, so these alias the flat accessors (keeps monitors uniform).
  bool is_top_member() const noexcept {
    return zoned_ ? top_ring_ != nullptr && top_ring_->joined() : joined();
  }
  bool is_top_leader() const noexcept {
    return zoned_ ? top_ring_ != nullptr && top_ring_->is_ring_leader()
                  : is_leader();
  }
  std::uint64_t top_epoch() const noexcept {
    return zoned_ && top_ring_ != nullptr ? top_ring_->view().epoch
                                          : meta_epoch();
  }
  const MetaView& top_view() const noexcept {
    return zoned_ && top_ring_ != nullptr ? top_ring_->view()
                                          : primary_ring_->view();
  }
  /// Aggregated zone-churn events this zone leader has emitted.
  std::uint64_t zone_churn_events() const noexcept {
    return churn_ != nullptr ? churn_->events_emitted() : 0;
  }

  /// Registers an extension service on this node for supervision.
  void supervise(SupervisedSpec spec);

  NodeStatus node_status(net::NodeId node) const;

  /// Heartbeats received per node (tests).
  std::uint64_t heartbeats_received() const noexcept { return heartbeats_received_; }

  // -- MembershipRing::Host --------------------------------------------------
  cluster::Cluster& ring_cluster() override { return cluster(); }
  bool ring_alive() const override { return alive(); }
  bool ring_running() const override { return running(); }
  net::Address ring_address() const override { return address(); }
  net::PartitionId ring_partition() const override { return partition_; }
  ServiceDirectory* ring_directory() override { return directory(); }
  std::uint64_t ring_incarnation() const override { return incarnation_; }
  std::uint64_t ring_next_probe_id() override { return next_probe_id_++; }
  void ring_trace(sim::TraceLevel level, const std::string& text) override;
  void ring_publish(Event e) override;
  void ring_send_any(net::Address to,
                     std::shared_ptr<const net::Message> msg) override;
  void ring_send_all_networks(net::Address to,
                              std::shared_ptr<const net::Message> msg) override;
  void ring_save_state(MembershipRing& ring) override;
  std::vector<net::Address> ring_join_targets(MembershipRing& ring) override;
  std::uint32_t ring_zone_of(net::PartitionId p) const override {
    return zones_.zone_of(p);
  }
  void ring_log_member_failure(MembershipRing& ring, const MetaMember& member,
                               bool node_dead, sim::SimTime last_seen_at,
                               sim::SimTime detected_at,
                               sim::SimTime diagnosed_at) override;
  void ring_member_removed(MembershipRing& ring, const MetaMember& member,
                           bool node_dead) override;
  void ring_recover_member(MembershipRing& ring, const MetaMember& member,
                           bool node_dead) override;
  void ring_member_recovered(MembershipRing& ring,
                             const MetaMember& member) override;
  void ring_diagnose_network_failure(MembershipRing& ring, net::NodeId node,
                                     net::NetworkId network,
                                     sim::SimTime detected_at,
                                     sim::SimTime last_seen_at) override;
  void ring_view_changed(MembershipRing& ring, const MetaView& old_view) override;
  void ring_regroup_round(MembershipRing& ring) override;

 private:
  void on_service_start() override;
  void on_service_stop() override;
  /// The checkpointed state is the primary ring's view (paired with the
  /// custom CheckpointLoadReplyMsg handler — recovery here is
  /// fetch_state_and_join, not the runtime's generic restore loop).
  std::string snapshot() const override { return primary_ring_->view().serialize(); }
  /// GSD checkpoint saves are stamped with the primary ring's epoch so a
  /// deposed instance cannot overwrite its successor's view (0 under
  /// unilateral).
  std::uint64_t fence_epoch() const override { return primary_ring_->view().epoch; }
  /// ... and with the primary ring's scope, so zone rings fence
  /// independently (0 in flat mode — wire unchanged).
  std::uint32_t fence_scope() const override { return primary_ring_->scope(); }

  // -- partition monitoring --
  void handle_heartbeat(const HeartbeatMsg& hb, net::NetworkId network);
  void handle_probe_reply(const ProbeReplyMsg& reply);
  void handle_start_service_reply(const StartServiceReplyMsg& reply);
  void handle_state_load_reply(const CheckpointLoadReplyMsg& reply);
  void check_partition();
  void begin_node_diagnosis(net::NodeId node);
  void probe_attempt(std::uint64_t probe_id);
  void conclude_wd_process_failure(net::NodeId node, sim::SimTime detected_at,
                                   sim::SimTime last_seen_at);
  void conclude_node_failure(net::NodeId node, sim::SimTime detected_at,
                             sim::SimTime last_seen_at);
  void diagnose_network_failure(net::NodeId node, net::NetworkId network,
                                sim::SimTime detected_at, const char* component,
                                sim::SimTime last_seen_at);

  // -- membership plumbing --
  MembershipRing* ring_for(std::uint32_t scope);
  void fetch_state_and_join();
  void migrate_partition(const MetaMember& failed, MembershipRing& ring);

  // -- zone hierarchy --
  /// Reconciles this GSD's role after a primary-ring view change: a newly
  /// elected/promoted zone leader activates its top-ring membership; a
  /// deposed one suspends it. No-op in flat mode.
  void update_zone_role(const MetaView& old_view);
  void ensure_top_ring_active();
  void suspend_top_ring();
  /// Periodic census (zoned only): as zone leader, probe-and-recover
  /// statically-assigned zone members missing from the zone view; as top
  /// leader, probe-and-recover the first partition of any zone with no top
  /// ring representative (whole-zone death / stale believers).
  void run_census();
  void census_probe(net::PartitionId target, bool top);

  // -- supervision --
  void check_services();
  void handle_service_up(const ServiceUpMsg& up);

  // -- helpers --
  void publish(Event e);
  net::Address ppm_at(net::NodeId node) const {
    return {node, port_of(ServiceKind::kProcessManager)};
  }
  void announce_to_partition();

  net::PartitionId partition_;
  const FtParams& params_;
  FaultLog* log_;
  std::uint64_t incarnation_ = 0;

  // Zone decomposition (flat mode: one zone covering everything).
  bool zoned_ = false;
  ZoneTopology zones_;
  std::uint32_t zone_ = 0;

  // Partition (WD) monitoring state.
  struct NodeWatch {
    std::vector<sim::SimTime> last_per_net;  // last heartbeat per network
    std::vector<bool> net_failed;            // per-network failure latched
    NodeStatus status = NodeStatus::kHealthy;
    bool diagnosing = false;
  };
  std::unordered_map<std::uint32_t, NodeWatch> watches_;
  std::uint64_t heartbeats_received_ = 0;

  // Probe bookkeeping (WD diagnosis + census probes; the rings keep their
  // own probe tables, all drawing ids from the shared counter below).
  struct Probe {
    net::NodeId node;
    int attempts_left = 0;
    sim::SimTime detected_at = 0;
    sim::SimTime started_at = 0;
    sim::SimTime last_seen_at = 0;
    bool answered = false;
    bool census = false;              // census probe (zoned hierarchy repair)
    net::PartitionId census_partition;  // partition under census
    bool census_top = false;          // repair on behalf of the top ring
  };
  std::unordered_map<std::uint64_t, Probe> probes_;
  std::uint64_t next_probe_id_ = 1;

  // Recovery actions in flight, keyed by StartService request id.
  struct PendingRecovery {
    std::string component;
    net::NodeId node;
  };
  std::unordered_map<std::uint64_t, PendingRecovery> pending_recoveries_;
  std::uint64_t next_request_id_ = 1;

  // Membership rings. primary_ring_ always exists (scope 0 flat, or the
  // partition's zone sub-ring); top_ring_ exists only under zoned().
  std::unique_ptr<MembershipRing> primary_ring_;
  std::unique_ptr<MembershipRing> top_ring_;
  bool top_active_ = false;
  bool was_zone_leader_ = false;
  bool has_seeded_top_view_ = false;
  MetaView seeded_top_view_;
  std::unique_ptr<ZoneChurnAggregator> churn_;
  // Per-partition census backoff: next time a census probe may be sent.
  std::unordered_map<std::uint32_t, sim::SimTime> census_backoff_;

  bool booted_with_view_ = false;
  bool bootstrap_requested_ = false;
  bool started_before_ = false;
  std::uint64_t state_load_id_ = 0;

  // Supervised services.
  std::vector<SupervisedSpec> supervised_;
  std::unordered_map<std::string, bool> service_recovering_;  // by component

  // Timers (the rings own their checker/beater/retrier timers).
  sim::PeriodicTask partition_checker_;
  sim::PeriodicTask service_checker_;
  sim::PeriodicTask census_checker_;
};

}  // namespace phoenix::kernel
