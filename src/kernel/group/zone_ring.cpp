#include "kernel/group/zone_ring.h"

#include <algorithm>
#include <string>
#include <utility>

namespace phoenix::kernel {

ZoneTopology ZoneTopology::from(const FtParams::GroupTopology& topology,
                                std::size_t partition_count) {
  ZoneTopology t;
  t.partitions = static_cast<std::uint32_t>(partition_count);
  if (topology.mode == FtParams::GroupTopology::Mode::kFlat ||
      t.partitions == 0) {
    t.num_zones = 1;
    return t;
  }
  const std::uint32_t size = std::max<std::uint32_t>(topology.zone_size, 1);
  t.num_zones = (t.partitions + size - 1) / size;
  if (t.num_zones == 0) t.num_zones = 1;
  if (t.num_zones > t.partitions) t.num_zones = t.partitions;
  return t;
}

std::vector<net::PartitionId> ZoneTopology::zone_members(
    std::uint32_t zone) const {
  std::vector<net::PartitionId> members;
  for (std::uint32_t p = zone; p < partitions; p += num_zones) {
    members.push_back(net::PartitionId{p});
  }
  return members;
}

net::PartitionId ZoneTopology::next_in_zone(net::PartitionId p) const noexcept {
  const std::uint32_t next = p.value + num_zones;
  if (next < partitions) return net::PartitionId{next};
  return net::PartitionId{zone_of(p)};  // wrap to the zone's first partition
}

ZoneChurnAggregator::ZoneChurnAggregator(sim::Engine& engine, sim::SimTime window,
                                         std::function<void(Event)> emit)
    : engine_(engine), window_(window), emit_(std::move(emit)) {}

void ZoneChurnAggregator::record(const std::vector<net::PartitionId>& removed,
                                 const std::vector<net::PartitionId>& added) {
  if (removed.empty() && added.empty()) return;
  ++view_changes_;
  for (net::PartitionId p : removed) removed_.push_back(p.value);
  for (net::PartitionId p : added) added_.push_back(p.value);
  if (flush_pending_) return;
  flush_pending_ = true;
  engine_.schedule_after(window_, [this] { flush(); });
}

void ZoneChurnAggregator::flush() {
  flush_pending_ = false;
  if (removed_.empty() && added_.empty()) return;
  auto join = [](const std::vector<std::uint32_t>& ids) {
    std::string out;
    for (std::uint32_t id : ids) {
      if (!out.empty()) out += ',';
      out += std::to_string(id);
    }
    return out;
  };
  Event e;
  e.type = "meta.zone.churn";
  e.attrs = {{"removed", join(removed_)},
             {"added", join(added_)},
             {"view_changes", std::to_string(view_changes_)}};
  removed_.clear();
  added_.clear();
  view_changes_ = 0;
  ++events_emitted_;
  emit_(std::move(e));
}

}  // namespace phoenix::kernel
