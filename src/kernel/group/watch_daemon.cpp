#include "kernel/group/watch_daemon.h"

namespace phoenix::kernel {

WatchDaemon::WatchDaemon(cluster::Cluster& cluster, net::NodeId node,
                         const FtParams& params, ServiceDirectory* directory,
                         double cpu_share)
    : ServiceRuntime(cluster, "wd", node, port_of(ServiceKind::kWatchDaemon),
                     directory, &params,
                     Options{.kind = ServiceKind::kWatchDaemon,
                             .partition = cluster.partition_of(node)},
                     cpu_share),
      params_(params),
      beater_(cluster.engine(), params.heartbeat_interval, [this] { beat(); }) {
  on<GsdAnnounceMsg>([this](const GsdAnnounceMsg& announce) {
    gsd_ = announce.gsd;
    // Heartbeat the new GSD promptly so it sees this node as healthy.
    beat();
  });
}

void WatchDaemon::on_service_start() {
  if (directory() != nullptr) {
    gsd_ = directory()->service_address(ServiceKind::kGroupService,
                                        cluster().partition_of(node_id()));
  }
  beater_.set_period(params_.heartbeat_interval);
  // First heartbeat goes out almost immediately so a restarted WD announces
  // itself to the GSD without waiting a full period.
  beater_.start_after(engine().rng().uniform_int(1, 10 * sim::kMillisecond));
}

void WatchDaemon::on_service_stop() { beater_.stop(); }

void WatchDaemon::beat() {
  if (!alive() || !gsd_.valid()) return;
  auto hb = std::make_shared<HeartbeatMsg>();
  hb->node = node_id();
  hb->seq = ++seq_;
  hb->usage = cluster().node(node_id()).resources();
  hb->sent_at = now();
  last_sent_at_ = now();
  send_all_networks(gsd_, std::move(hb));
}

}  // namespace phoenix::kernel
