#include "kernel/group/membership_ring.h"

#include <algorithm>
#include <utility>

#include "kernel/ppm/process_manager.h"

namespace phoenix::kernel {

MembershipRing::MembershipRing(Host& host, cluster::Cluster& cluster,
                               const FtParams& params, Config config)
    : host_(host),
      cluster_(cluster),
      params_(params),
      config_(std::move(config)),
      meta_checker_(cluster.engine(), params.heartbeat_interval,
                    [this] { check_meta(); }),
      ring_beater_(cluster.engine(), params.heartbeat_interval,
                   [this] { send_ring_heartbeat(); }),
      join_retrier_(cluster.engine(), kJoinRetryPeriod, [this] { try_rejoin(); }) {}

std::uint64_t MembershipRing::epoch_floor() const noexcept {
  return params_.failover.mode == FtParams::FailoverPolicy::Mode::kQuorum &&
                 params_.failover.fence_stale_epochs
             ? 1
             : 0;
}

net::Address MembershipRing::ppm_at(net::NodeId node) const {
  return {node, port_of(ServiceKind::kProcessManager)};
}

void MembershipRing::publish_scoped(Event e) {
  if (config_.scope != 0) {
    e.attrs.emplace_back("scope", std::to_string(config_.scope));
  }
  host_.ring_publish(std::move(e));
}

bool MembershipRing::is_ring_leader() const {
  auto l = view_.leader();
  return l && l->partition == host_.ring_partition() && joined_;
}

bool MembershipRing::is_ring_princess() const {
  auto p = view_.princess();
  return p && p->partition == host_.ring_partition() && joined_;
}

// --- lifecycle ---------------------------------------------------------------

void MembershipRing::seed_view(MetaView view) {
  view_ = std::move(view);
  view_.epoch = std::max(view_.epoch, epoch_floor());
  joined_ = view_.contains(host_.ring_partition());
  pred_partition_ = net::PartitionId{};
}

void MembershipRing::found(std::uint64_t view_id, bool persist) {
  futile_join_attempts_ = 0;
  join_retrier_.stop();
  MetaView v;
  v.view_id = view_id;
  // Keep the fencing epoch across re-founding (floored: a migrated fresh
  // instance that never recovered a view must still stamp nonzero epochs
  // under quorum fencing).
  v.epoch = std::max(view_.epoch, epoch_floor());
  v.members = {MetaMember{host_.ring_partition(), host_.ring_address(),
                          host_.ring_incarnation()}};
  const MetaView old = std::exchange(view_, std::move(v));
  joined_ = true;
  if (persist && config_.persists_view) host_.ring_save_state(*this);
  host_.ring_view_changed(*this, old);
}

void MembershipRing::adopt_recovered_view(MetaView recovered) {
  // The recovered view predates our death; adopt it as a hint for the
  // membership we are rejoining (addresses of live members).
  if (recovered.view_id >= view_.view_id) {
    recovered.remove(host_.ring_partition());  // our old entry is stale
    view_ = std::move(recovered);
    // A checkpoint written before quorum fencing was enabled may carry
    // epoch 0; re-apply the floor so our stamps stay nonzero.
    view_.epoch = std::max(view_.epoch, epoch_floor());
  }
}

void MembershipRing::reset_runtime_state(std::size_t network_count) {
  pred_last_per_net_.assign(network_count, now());
  pred_net_failed_.assign(network_count, false);
  pred_diagnosing_ = false;
  probes_.clear();
  regroup_.reset();
  vote_probes_.clear();
  answered_rounds_.clear();
  futile_join_attempts_ = 0;
}

void MembershipRing::arm(sim::SimTime scan_period, sim::SimTime checker_delay,
                         sim::SimTime beat_period) {
  meta_checker_.set_period(scan_period);
  ring_beater_.set_period(beat_period);
  meta_checker_.start_after(checker_delay);
  // Jittered first beat so co-booted members do not phase-lock their ring
  // traffic (same RNG draw position as the original GSD start sequence).
  ring_beater_.start_after(
      cluster_.engine().rng().uniform_int(1, 10 * sim::kMillisecond));
}

void MembershipRing::begin_join_search(sim::SimTime delay) {
  join_retrier_.start_after(delay);
}

void MembershipRing::stop() {
  meta_checker_.stop();
  ring_beater_.stop();
  join_retrier_.stop();
}

// --- ring heartbeats and predecessor monitoring ------------------------------

void MembershipRing::send_ring_heartbeat() {
  if (!host_.ring_alive() || !joined_ || view_.members.size() < 2) return;
  auto succ = view_.successor_of(host_.ring_partition());
  if (!succ) return;
  auto hb = std::make_shared<RingHeartbeatMsg>();
  hb->from_partition = host_.ring_partition();
  hb->view_id = view_.view_id;
  hb->seq = ++ring_seq_;
  hb->scope = config_.scope;
  host_.ring_send_all_networks(succ->gsd, std::move(hb));
}

void MembershipRing::check_meta() {
  if (!host_.ring_alive() || !joined_ || view_.members.size() < 2 ||
      pred_diagnosing_ || regroup_.has_value()) {
    return;
  }
  auto pred = view_.predecessor_of(host_.ring_partition());
  if (!pred) return;
  if (pred->partition != pred_partition_) {
    // Predecessor changed since the last check; restart the grace window.
    pred_partition_ = pred->partition;
    std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
    std::fill(pred_net_failed_.begin(), pred_net_failed_.end(), false);
    return;
  }
  const sim::SimTime threshold = params_.heartbeat_interval + params_.heartbeat_grace;
  std::size_t fresh = 0;
  for (sim::SimTime last : pred_last_per_net_) {
    if (now() - last <= threshold) ++fresh;
  }
  if (fresh == pred_last_per_net_.size()) return;

  if (fresh == 0) {
    // Every network silent at once is exactly the asymmetric-partition shape
    // that can split-brain a Princess takeover — flag it before probing.
    host_.ring_trace(
        sim::TraceLevel::kError,
        config_.label + " predecessor partition " +
            std::to_string(pred->partition.value) +
            " silent on all networks; split-brain suspect, probing");
    pred_diagnosing_ = true;
    const std::uint64_t id = host_.ring_next_probe_id();
    MetaProbe probe;
    probe.member = *pred;
    probe.attempts_left = 1;
    probe.detected_at = now();
    probe.last_seen_at =
        *std::max_element(pred_last_per_net_.begin(), pred_last_per_net_.end());
    probes_.emplace(id, probe);
    probe_attempt(id);
    return;
  }
  const sim::SimTime net_threshold =
      params_.network_miss_rounds * params_.heartbeat_interval +
      params_.heartbeat_grace;
  for (std::size_t n = 0; n < pred_last_per_net_.size(); ++n) {
    if (now() - pred_last_per_net_[n] > net_threshold && !pred_net_failed_[n]) {
      pred_net_failed_[n] = true;
      host_.ring_diagnose_network_failure(
          *this, pred->gsd.node, net::NetworkId{static_cast<std::uint8_t>(n)},
          now(), pred_last_per_net_[n]);
    }
  }
}

void MembershipRing::probe_attempt(std::uint64_t probe_id) {
  if (!host_.ring_alive()) return;
  auto it = probes_.find(probe_id);
  if (it == probes_.end() || it->second.answered) return;
  MetaProbe& probe = it->second;

  if (probe.attempts_left == 0) {
    // Every attempt timed out: the node is dead.
    const MetaMember member = probe.member;
    const sim::SimTime detected = probe.detected_at;
    const sim::SimTime last_seen = probe.last_seen_at;
    probes_.erase(it);
    conclude_meta_failure(member, /*node_dead=*/true, detected, last_seen);
    return;
  }

  --probe.attempts_left;
  auto msg = std::make_shared<ProbeMsg>();
  msg->reply_to = host_.ring_address();
  msg->probe_id = probe_id;
  host_.ring_send_all_networks(ppm_at(probe.member.gsd.node), std::move(msg));
  cluster_.engine().schedule_after(params_.meta_probe_timeout,
                                   [this, probe_id] { probe_attempt(probe_id); });
}

bool MembershipRing::consume_probe_reply(const ProbeReplyMsg& reply) {
  // Voter-side regroup probe: our own reachability check of a solicited
  // suspect. Alive GSD => dissent; node up but GSD dead => concur.
  auto vit = vote_probes_.find(reply.probe_id);
  if (vit != vote_probes_.end()) {
    const PendingVote pending = vit->second;
    vote_probes_.erase(vit);
    cast_vote(pending.reply_to, pending.round_id, !reply.gsd_running);
    return true;
  }

  auto it = probes_.find(reply.probe_id);
  if (it == probes_.end()) return false;
  if (it->second.answered) return true;
  it->second.answered = true;
  const MetaProbe probe = it->second;
  probes_.erase(it);
  if (reply.gsd_running) {
    // The GSD process is alive on its node: the ring heartbeats were
    // lost in transit, not a failure. Reset the grace window.
    pred_diagnosing_ = false;
    if (probe.member.partition == pred_partition_) {
      std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
    }
    return true;
  }
  // The node answered but its GSD is dead: one confirmation round
  // before declaring the GSD process dead and reforming the ring.
  cluster_.engine().schedule_after(params_.process_confirm_delay, [this, probe] {
    conclude_meta_failure(probe.member, /*node_dead=*/false, probe.detected_at,
                          probe.last_seen_at);
  });
  return true;
}

void MembershipRing::handle_ring_heartbeat(const RingHeartbeatMsg& ring,
                                           const net::Envelope& env) {
  if (ring.from_partition != pred_partition_ ||
      env.network.value >= pred_last_per_net_.size()) {
    return;
  }
  pred_last_per_net_[env.network.value] = now();
  if (pred_diagnosing_) {
    // A live predecessor cancels any suspicion, including probes in flight.
    pred_diagnosing_ = false;
    std::erase_if(probes_, [&](const auto& kv) {
      return kv.second.member.partition == ring.from_partition;
    });
  }
  if (regroup_ && regroup_->suspect.partition == ring.from_partition) {
    // Direct proof of life mid-regroup: exonerate without waiting for votes.
    cancel_regroup(/*exonerated=*/true);
  }
  if (pred_net_failed_[env.network.value]) {
    pred_net_failed_[env.network.value] = false;
    Event e;
    e.type = std::string(event_types::kNetworkRecovered);
    e.subject_node = env.from.node;
    e.attrs = {{"network", std::to_string(env.network.value)},
               {"component", "GSD"}};
    publish_scoped(std::move(e));
  }
}

// --- removal and recovery -----------------------------------------------------

void MembershipRing::conclude_meta_failure(const MetaMember& pred, bool node_dead,
                                           sim::SimTime detected_at,
                                           sim::SimTime last_seen_at) {
  if (!host_.ring_alive()) return;
  pred_diagnosing_ = false;
  // Only remove the exact member we diagnosed: if the partition's entry was
  // replaced in the meantime (planned handover, concurrent recovery), the
  // stale diagnosis must not expel the new instance.
  const auto diagnosed_idx = view_.index_of(pred.partition);
  if (!diagnosed_idx || !(view_.members[*diagnosed_idx] == pred)) return;
  if (!node_dead && pred.partition == pred_partition_) {
    // Confirmation round: a ring heartbeat since detection exonerates it.
    for (sim::SimTime last : pred_last_per_net_) {
      if (last > detected_at) return;
    }
  }

  if (params_.failover.mode == FtParams::FailoverPolicy::Mode::kQuorum) {
    // Silence alone is not grounds for removal under the quorum policy: a
    // majority of the view must concur first (regroup round). The removal —
    // if it happens — continues in commit_member_removal.
    begin_regroup(pred, node_dead, detected_at, last_seen_at);
    return;
  }
  commit_member_removal(pred, node_dead, detected_at, last_seen_at);
}

void MembershipRing::commit_member_removal(const MetaMember& pred, bool node_dead,
                                           sim::SimTime detected_at,
                                           sim::SimTime last_seen_at) {
  if (!host_.ring_alive()) return;
  // Re-checked here because a regroup round may have elapsed since the
  // diagnosis (no-op on the unilateral path, which enters synchronously).
  const auto idx = view_.index_of(pred.partition);
  if (!idx || !(view_.members[*idx] == pred)) return;
  const sim::SimTime diagnosed_at = now();
  if (config_.recovers_partitions) {
    host_.ring_log_member_failure(*this, pred, node_dead, last_seen_at,
                                  detected_at, diagnosed_at);
  }
  host_.ring_member_removed(*this, pred, node_dead);

  // View change: drop the failed member and tell the survivors.
  tombstones_[pred.partition.value] =
      std::max(tombstones_[pred.partition.value], pred.incarnation);
  const bool fence =
      params_.failover.mode == FtParams::FailoverPolicy::Mode::kQuorum &&
      params_.failover.fence_stale_epochs;
  MetaView next = view_;
  next.remove(pred.partition);
  ++next.view_id;
  if (fence) ++next.epoch;  // quorum takeover: new fencing epoch
  apply_view(next);
  broadcast_view();
  if (fence) {
    send_fence();
    // Tell the deposed member directly (it is no longer in the broadcast
    // set): a merely-slow suspect that was legitimately removed steps down
    // the moment this arrives and rejoins at the tail.
    auto stale = std::make_shared<ViewChangeMsg>();
    stale->view = view_;
    stale->scope = config_.scope;
    host_.ring_send_any(pred.gsd, std::move(stale));
  }

  // Recovery of the failed partition (membership-only rings leave this to
  // the zone layer's census).
  if (config_.recovers_partitions) {
    host_.ring_recover_member(*this, pred, node_dead);
  }
}

// --- quorum regroup (FailoverPolicy::quorum()) --------------------------------
//
// MSCS-style concurrence before removal: the initiator solicits every other
// live view member; each voter probes the suspect over its OWN links and
// votes "concur" only if the suspect is silent from its side too. Majority
// is floor(n/2)+1 of the view including the suspect, counting the
// initiator's own observation — so a 2-member view can never depose (no
// quorum exists), and a member on the minority side of a partition retries
// until the partition heals instead of split-braining.

void MembershipRing::begin_regroup(const MetaMember& suspect, bool node_dead,
                                   sim::SimTime detected_at,
                                   sim::SimTime last_seen_at) {
  if (regroup_) return;  // one suspicion resolved at a time
  Regroup r;
  r.suspect = suspect;
  r.node_dead = node_dead;
  r.detected_at = detected_at;
  r.last_seen_at = last_seen_at;
  regroup_ = std::move(r);
  host_.ring_trace(sim::TraceLevel::kWarn,
                   "regroup: soliciting concurrence to remove partition " +
                       std::to_string(suspect.partition.value));
  solicit_regroup_round();
}

void MembershipRing::solicit_regroup_round() {
  if (!host_.ring_alive() || !regroup_) return;
  Regroup& r = *regroup_;
  // The suspect may have been removed or replaced while we waited (another
  // member's view change, a completed rejoin): drop the stale regroup.
  const auto idx = view_.index_of(r.suspect.partition);
  if (!idx || !(view_.members[*idx] == r.suspect)) {
    regroup_.reset();
    return;
  }

  r.round_id = next_round_id_++;
  r.view_size = view_.members.size();
  r.concur = 1;  // our own observation of silence
  r.dissent = 0;
  r.done = false;
  r.voters.clear();
  ++r.rounds_run;
  ++regroup_rounds_;
  host_.ring_regroup_round(*this);

  for (const MetaMember& m : view_.members) {
    if (m.partition == host_.ring_partition() ||
        m.partition == r.suspect.partition) {
      continue;
    }
    auto msg = std::make_shared<RegroupProposeMsg>();
    msg->initiator = host_.ring_partition();
    msg->suspect = r.suspect.partition;
    msg->suspect_incarnation = r.suspect.incarnation;
    msg->view_id = view_.view_id;
    msg->round_id = r.round_id;
    msg->reply_to = host_.ring_address();
    msg->scope = config_.scope;
    host_.ring_send_all_networks(m.gsd, std::move(msg));
  }

  const std::uint64_t round = r.round_id;
  cluster_.engine().schedule_after(
      params_.failover.regroup_round_timeout, [this, round] {
        if (host_.ring_alive() && regroup_ && regroup_->round_id == round &&
            !regroup_->done) {
          evaluate_regroup(/*round_over=*/true);
        }
      });
  // A 2-member view settles immediately: quorum needs 2, we alone have 1.
  evaluate_regroup(/*round_over=*/false);
}

void MembershipRing::evaluate_regroup(bool round_over) {
  if (!regroup_ || regroup_->done) return;
  Regroup& r = *regroup_;
  if (r.dissent > 0) {
    // Someone can still reach the suspect: our silence is a partition on
    // OUR side, exactly the split-brain the paper's protocol would act on.
    // One dissent vetoes the removal outright — even a majority of
    // concurrences only proves the suspect is cut off from SOME members,
    // not dead (docs/PROTOCOLS.md: "one dissent cancels the regroup").
    cancel_regroup(/*exonerated=*/true);
    return;
  }
  const int needed = static_cast<int>(r.view_size / 2 + 1);
  const int solicited = static_cast<int>(r.view_size) - 2;  // minus us + suspect
  const int received = (r.concur - 1) + r.dissent;
  const int outstanding = round_over ? 0 : solicited - received;

  if (r.concur >= needed) {
    // Unanimous-so-far majority concurrence: the removal is safe against
    // any single asymmetric partition. Commit and fence.
    r.done = true;
    const Regroup done = r;
    regroup_.reset();
    host_.ring_trace(sim::TraceLevel::kWarn,
                     "regroup: quorum reached (" + std::to_string(done.concur) +
                         "/" + std::to_string(needed) + "), removing partition " +
                         std::to_string(done.suspect.partition.value));
    commit_member_removal(done.suspect, done.node_dead, done.detected_at,
                          done.last_seen_at);
    return;
  }
  if (r.concur + outstanding < needed) {
    // Not enough reachable voters (minority side / 2-member view).
    regroup_quorum_lost();
  }
}

void MembershipRing::regroup_quorum_lost() {
  if (!regroup_) return;
  Regroup& r = *regroup_;
  r.done = true;
  ++quorum_losses_;
  host_.ring_trace(
      sim::TraceLevel::kError,
      "regroup: quorum lost (round " + std::to_string(r.rounds_run) +
          "); suspect partition " + std::to_string(r.suspect.partition.value) +
          " not removed");
  Event e;
  e.type = "meta.quorum_lost";
  e.subject_node = r.suspect.gsd.node;
  e.attrs = {{"suspect_partition", std::to_string(r.suspect.partition.value)},
             {"round", std::to_string(r.rounds_run)}};
  publish_scoped(std::move(e));

  if (params_.failover.max_regroup_rounds > 0 &&
      r.rounds_run >= params_.failover.max_regroup_rounds) {
    // Give up until the suspicion re-triggers from a fresh silence period.
    regroup_.reset();
    std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
    return;
  }
  cluster_.engine().schedule_after(params_.failover.regroup_retry_delay,
                                   [this, round = r.round_id] {
                                     if (host_.ring_alive() && regroup_ &&
                                         regroup_->round_id == round) {
                                       solicit_regroup_round();
                                     }
                                   });
}

void MembershipRing::cancel_regroup(bool exonerated) {
  if (!regroup_) return;
  const MetaMember suspect = regroup_->suspect;
  regroup_.reset();
  if (exonerated) {
    host_.ring_trace(sim::TraceLevel::kInfo,
                     "regroup: suspect partition " +
                         std::to_string(suspect.partition.value) + " exonerated");
    if (suspect.partition == pred_partition_) {
      // Fresh grace window: the suspect must go silent for a full period
      // again before another regroup starts.
      std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
      std::fill(pred_net_failed_.begin(), pred_net_failed_.end(), false);
    }
  }
}

void MembershipRing::handle_regroup_propose(const RegroupProposeMsg& proposal) {
  // The solicitation travels over every network; answer each round once.
  auto& last_round = answered_rounds_[proposal.initiator.value];
  if (proposal.round_id == last_round) return;
  last_round = proposal.round_id;

  if (proposal.suspect == host_.ring_partition()) {
    // We are the suspect and evidently alive: dissent.
    cast_vote(proposal.reply_to, proposal.round_id, false);
    return;
  }
  const auto idx = view_.index_of(proposal.suspect);
  if (!idx || view_.members[*idx].incarnation != proposal.suspect_incarnation) {
    // Our view already dropped (or replaced) that member: concur.
    cast_vote(proposal.reply_to, proposal.round_id, true);
    return;
  }
  const MetaMember suspect = view_.members[*idx];

  // Fresh first-hand evidence: if the suspect is our own ring predecessor
  // and its heartbeats are current, it is alive — no probe needed.
  if (suspect.partition == pred_partition_) {
    const sim::SimTime threshold =
        params_.heartbeat_interval + params_.heartbeat_grace;
    for (sim::SimTime seen : pred_last_per_net_) {
      if (now() - seen <= threshold) {
        cast_vote(proposal.reply_to, proposal.round_id, false);
        return;
      }
    }
  }

  // Independent probe over OUR links — the initiator may sit behind a
  // one-way blackhole that we do not.
  const std::uint64_t id = host_.ring_next_probe_id();
  vote_probes_.emplace(id, PendingVote{proposal.reply_to, proposal.suspect,
                                       proposal.round_id});
  auto probe = std::make_shared<ProbeMsg>();
  probe->reply_to = host_.ring_address();
  probe->probe_id = id;
  host_.ring_send_all_networks(ppm_at(suspect.gsd.node), std::move(probe));
  cluster_.engine().schedule_after(
      params_.failover.regroup_probe_timeout, [this, id] {
        auto it = vote_probes_.find(id);
        if (it == vote_probes_.end()) return;  // reply beat the timeout
        const PendingVote pending = it->second;
        vote_probes_.erase(it);
        if (!host_.ring_alive()) return;
        // Silent from our side too: concur with the removal.
        cast_vote(pending.reply_to, pending.round_id, true);
      });
}

void MembershipRing::cast_vote(net::Address reply_to, std::uint64_t round_id,
                               bool concur) {
  if (!host_.ring_alive()) return;
  ++regroup_votes_cast_;
  auto vote = std::make_shared<RegroupVoteMsg>();
  vote->voter = host_.ring_partition();
  vote->round_id = round_id;
  vote->concur = concur;
  vote->scope = config_.scope;
  host_.ring_send_any(reply_to, std::move(vote));
}

void MembershipRing::handle_regroup_vote(const RegroupVoteMsg& vote) {
  if (!regroup_ || regroup_->done || regroup_->round_id != vote.round_id) return;
  Regroup& r = *regroup_;
  // One counted vote per current view member per round: neither we nor the
  // suspect were solicited, a non-member has no say, and a retried or
  // multi-path duplicate must not be double-counted toward quorum.
  if (vote.voter == host_.ring_partition() ||
      vote.voter == r.suspect.partition) {
    return;
  }
  if (!view_.index_of(vote.voter)) return;
  if (std::find(r.voters.begin(), r.voters.end(), vote.voter.value) !=
      r.voters.end()) {
    return;
  }
  r.voters.push_back(vote.voter.value);
  if (vote.concur) {
    ++r.concur;
  } else {
    ++r.dissent;
  }
  evaluate_regroup(/*round_over=*/false);
}

void MembershipRing::send_fence() {
  if (view_.epoch == 0) return;
  // Raise the fencing watermark everywhere a deposed member could mutate
  // state: every node's PPM (service starts) and every partition's
  // checkpoint instance (view/state saves). The scope tag keeps each
  // ring's watermark independent under a zoned topology.
  auto fence = std::make_shared<EpochFenceMsg>();
  fence->epoch = view_.epoch;
  fence->scope = config_.scope;
  for (const auto& node : cluster_.nodes()) {
    host_.ring_send_any(ppm_at(node.id()), fence);
  }
  if (host_.ring_directory() != nullptr) {
    for (std::size_t p = 0; p < host_.ring_directory()->partition_count(); ++p) {
      host_.ring_send_any(
          host_.ring_directory()->service_address(
              ServiceKind::kCheckpointService,
              net::PartitionId{static_cast<std::uint32_t>(p)}),
          fence);
    }
  }
}

// --- views and joins ----------------------------------------------------------

void MembershipRing::apply_view(MetaView incoming) {
  // Epoch ordering comes first: a quorum takeover's view beats any view_id
  // a deposed member can offer, and a stale-epoch view is discarded unseen
  // (fencing on the membership plane). Both epochs are 0 under the paper's
  // unilateral policy, so this reduces to the original view_id ordering.
  if (incoming.epoch < view_.epoch) return;
  if (incoming.epoch == view_.epoch) {
    if (incoming.view_id < view_.view_id) return;
    if (incoming.view_id == view_.view_id) {
      const std::string mine = view_.serialize();
      const std::string theirs = incoming.serialize();
      if (theirs == mine) return;
      // Equal-id conflict (e.g. two concurrent ring founders): pick a
      // deterministic winner — more members first, then serialization order —
      // so every member converges on the same view.
      if (incoming.members.size() < view_.members.size()) return;
      if (incoming.members.size() == view_.members.size() && theirs > mine) return;
    }
  }

  // Drop members our tombstones say are dead (stale entries from slow views).
  std::erase_if(incoming.members, [this](const MetaMember& m) {
    auto it = tombstones_.find(m.partition.value);
    return it != tombstones_.end() && m.incarnation <= it->second;
  });

  host_.ring_trace(sim::TraceLevel::kInfo,
                   (config_.scope != 0 ? config_.label + ": " : "") +
                       "applying view " + std::to_string(incoming.view_id) +
                       " with " + std::to_string(incoming.members.size()) +
                       " members");
  const MetaView old = std::exchange(view_, std::move(incoming));

  joined_ = false;
  for (const MetaMember& m : view_.members) {
    if (m.partition == host_.ring_partition() &&
        m.incarnation == host_.ring_incarnation()) {
      joined_ = true;
    }
  }
  if (joined_) {
    join_retrier_.stop();
  } else if (host_.ring_running()) {
    // Expelled by someone's view change (e.g. a stale diagnosis): get back
    // in rather than silently running outside the ring.
    join_retrier_.start_after(kJoinRetryPeriod);
  }

  // Predecessor may have changed; reset its grace window if so.
  auto pred = view_.predecessor_of(host_.ring_partition());
  const net::PartitionId new_pred = pred ? pred->partition : net::PartitionId{};
  if (new_pred != pred_partition_) {
    pred_partition_ = new_pred;
    std::fill(pred_last_per_net_.begin(), pred_last_per_net_.end(), now());
    std::fill(pred_net_failed_.begin(), pred_net_failed_.end(), false);
    pred_diagnosing_ = false;
  }

  // A member that is new or re-incarnated relative to the old view means a
  // recovery completed; let the host close its fault record.
  for (const MetaMember& m : view_.members) {
    auto old_idx = old.index_of(m.partition);
    const bool changed =
        !old_idx || !(old.members[*old_idx].gsd == m.gsd &&
                      old.members[*old_idx].incarnation == m.incarnation);
    if (changed) host_.ring_member_recovered(*this, m);
  }

  if (config_.persists_view) host_.ring_save_state(*this);
  host_.ring_view_changed(*this, old);
}

void MembershipRing::broadcast_view() {
  for (const MetaMember& m : view_.members) {
    if (m.partition == host_.ring_partition()) continue;
    auto msg = std::make_shared<ViewChangeMsg>();
    msg->view = view_;
    msg->scope = config_.scope;
    host_.ring_send_any(m.gsd, std::move(msg));
  }
}

void MembershipRing::handle_join(const MetaJoinMsg& join) {
  const MetaMember& member = join.member;
  if (member.partition == host_.ring_partition()) return;

  if (!is_ring_leader()) {
    // Forward to the current leader.
    auto leader = view_.leader();
    if (leader && leader->partition != host_.ring_partition()) {
      auto fwd = std::make_shared<MetaJoinMsg>();
      fwd->member = member;
      fwd->scope = config_.scope;
      host_.ring_send_any(leader->gsd, std::move(fwd));
    }
    return;
  }

  auto tomb = tombstones_.find(member.partition.value);
  if (tomb != tombstones_.end() && member.incarnation <= tomb->second) return;

  auto existing = view_.index_of(member.partition);
  if (existing) {
    const MetaMember& cur = view_.members[*existing];
    if (cur.incarnation >= member.incarnation) {
      // Duplicate join: re-send the current view so the joiner learns it.
      auto msg = std::make_shared<ViewChangeMsg>();
      msg->view = view_;
      msg->scope = config_.scope;
      host_.ring_send_any(member.gsd, std::move(msg));
      return;
    }
  }

  MetaView next = view_;
  next.remove(member.partition);
  // Top ring: one representative per zone. A newly promoted zone leader
  // displaces its zone's stale entry; the displaced member is told
  // directly so it stops acting as the zone's representative.
  std::vector<MetaMember> displaced;
  if (config_.displaces_same_zone) {
    const std::uint32_t zone = host_.ring_zone_of(member.partition);
    for (const MetaMember& m : next.members) {
      if (host_.ring_zone_of(m.partition) == zone) displaced.push_back(m);
    }
    for (const MetaMember& m : displaced) next.remove(m.partition);
  }
  next.members.push_back(member);  // rejoiners go to the tail (paper's order)
  ++next.view_id;
  apply_view(next);
  broadcast_view();
  // The joiner may not be in our broadcast path if apply_view dropped it;
  // send the view directly too.
  auto msg = std::make_shared<ViewChangeMsg>();
  msg->view = view_;
  msg->scope = config_.scope;
  host_.ring_send_any(member.gsd, msg);
  for (const MetaMember& m : displaced) {
    host_.ring_send_any(m.gsd, msg);
  }
}

void MembershipRing::try_rejoin() {
  if (!host_.ring_alive() || joined_ || host_.ring_directory() == nullptr) return;
  if (++futile_join_attempts_ > 10) {
    // Nobody answered ten rounds of joins: the ring is gone (or we are the
    // first member up). Found a fresh singleton group; others will join it.
    found(view_.view_id + 1, /*persist=*/true);
    return;
  }
  auto join = std::make_shared<MetaJoinMsg>();
  join->member = MetaMember{host_.ring_partition(), host_.ring_address(),
                            host_.ring_incarnation()};
  join->scope = config_.scope;
  for (const net::Address& target : host_.ring_join_targets(*this)) {
    host_.ring_send_any(target, join);
  }
}

}  // namespace phoenix::kernel
