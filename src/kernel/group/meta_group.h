// Meta-group membership types (paper §4.3, Figure 3).
//
// The GSDs of all partitions form a meta-group arranged as a ring. The
// member list is kept in JOIN order: the first member is the Leader, the
// second the Princess. Each member sends ring heartbeats to its successor
// and monitors its predecessor; the member next to a failed member takes
// over (initiates the view change and the recovery of that partition).
// A failed-and-recovered member rejoins at the tail, so leadership moves
// exactly as the paper describes: Princess takes over a failed Leader, the
// member next to a failed Princess becomes Princess, and so on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ids.h"
#include "net/message.h"

namespace phoenix::kernel {

struct MetaMember {
  net::PartitionId partition;
  net::Address gsd;
  /// Start timestamp of the GSD instance; lets the membership protocol tell
  /// a rejoined member from a stale view entry (tombstone comparison).
  std::uint64_t incarnation = 0;

  friend bool operator==(const MetaMember&, const MetaMember&) = default;
};

struct MetaView {
  std::uint64_t view_id = 0;
  /// Fencing epoch, bumped once per quorum takeover (FailoverPolicy::quorum()
  /// with fence_stale_epochs). Stays 0 forever under the paper's unilateral
  /// policy, and a zero epoch is omitted from the serialized form, so legacy
  /// views are byte-identical. Under quorum fencing the GSD bootstraps views
  /// at epoch 1, so a member deposed by the FIRST takeover (epoch 2) is
  /// already stamping rejectable traffic — epoch 0 would be admitted
  /// unconditionally as legacy. A view with a higher epoch beats any
  /// view_id; a stale-epoch view is discarded unseen.
  std::uint64_t epoch = 0;
  std::vector<MetaMember> members;  // join order; [0]=Leader, [1]=Princess

  std::optional<std::size_t> index_of(net::PartitionId p) const {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].partition == p) return i;
    }
    return std::nullopt;
  }

  bool contains(net::PartitionId p) const { return index_of(p).has_value(); }

  /// Successor / predecessor in ring order (list order, wrapping).
  std::optional<MetaMember> successor_of(net::PartitionId p) const {
    auto i = index_of(p);
    if (!i || members.size() < 2) return std::nullopt;
    return members[(*i + 1) % members.size()];
  }
  std::optional<MetaMember> predecessor_of(net::PartitionId p) const {
    auto i = index_of(p);
    if (!i || members.size() < 2) return std::nullopt;
    return members[(*i + members.size() - 1) % members.size()];
  }

  std::optional<MetaMember> leader() const {
    if (members.empty()) return std::nullopt;
    return members.front();
  }
  std::optional<MetaMember> princess() const {
    if (members.size() < 2) return std::nullopt;
    return members[1];
  }

  bool remove(net::PartitionId p) {
    auto i = index_of(p);
    if (!i) return false;
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(*i));
    return true;
  }

  std::string serialize() const;
  static MetaView deserialize(const std::string& data);
};

/// Ring scope tag carried by every membership message. Scope 0 is the
/// legacy flat meta-group; a zoned topology (FtParams::GroupTopology)
/// runs one ring per zone (scope = zone + 1) plus a top ring of zone
/// leaders (scope = kTopRingScope in zone_ring.h). A zero scope is omitted
/// from the wire, so every flat-mode message stays byte-identical to the
/// paper-mode format.
struct RingHeartbeatMsg final : net::Message {
  net::PartitionId from_partition;
  std::uint64_t view_id = 0;
  std::uint64_t seq = 0;
  std::uint32_t scope = 0;

  PHOENIX_MESSAGE_TYPE("meta.ring_heartbeat")
  std::size_t wire_size() const noexcept override {
    return 24 + (scope != 0 ? 4 : 0);
  }
};

/// View dissemination (initiator or leader -> all members).
struct ViewChangeMsg final : net::Message {
  MetaView view;
  std::uint32_t scope = 0;

  PHOENIX_MESSAGE_TYPE("meta.view_change")
  std::size_t wire_size() const noexcept override {
    return 16 + view.members.size() * 12 + (view.epoch != 0 ? 8 : 0) +
           (scope != 0 ? 4 : 0);
  }
};

/// A restarted / migrated GSD asking to (re)join the meta-group.
struct MetaJoinMsg final : net::Message {
  MetaMember member;
  std::uint32_t scope = 0;

  PHOENIX_MESSAGE_TYPE("meta.join")
  std::size_t wire_size() const noexcept override {
    return 16 + (scope != 0 ? 4 : 0);
  }
};

/// Quorum regroup solicitation (FailoverPolicy::quorum() only; never on the
/// wire under the paper's unilateral policy). The initiator — the member
/// next to a silent predecessor — asks every other live view member to
/// concur with the removal before acting on its own suspicion.
struct RegroupProposeMsg final : net::Message {
  net::PartitionId initiator;
  net::PartitionId suspect;
  std::uint64_t suspect_incarnation = 0;
  std::uint64_t view_id = 0;
  std::uint64_t round_id = 0;
  net::Address reply_to;
  std::uint32_t scope = 0;

  PHOENIX_MESSAGE_TYPE("meta.regroup_propose")
  std::size_t wire_size() const noexcept override {
    return 40 + (scope != 0 ? 4 : 0);
  }
};

/// A voter's answer: `concur` when the suspect looks dead from the voter's
/// side too (its own connectivity, probed independently — that is what
/// defeats one-directional partitions fooling the initiator).
struct RegroupVoteMsg final : net::Message {
  net::PartitionId voter;
  std::uint64_t round_id = 0;
  bool concur = false;
  std::uint32_t scope = 0;

  PHOENIX_MESSAGE_TYPE("meta.regroup_vote")
  std::size_t wire_size() const noexcept override {
    return 16 + (scope != 0 ? 4 : 0);
  }
};

}  // namespace phoenix::kernel
