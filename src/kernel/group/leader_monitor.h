// Split-brain invariant monitor.
//
// Samples every partition's current GSD on a fixed period and checks the
// property the quorum failover policy exists to guarantee: at no instant may
// two distinct partitions both claim leadership of the SAME ring at the SAME
// fencing epoch. A deposed Leader briefly claiming leadership at a STALE
// epoch is permitted — that is exactly the state epoch fencing neutralises
// (its mutating RPCs bounce off every ServiceRuntime's watermark).
//
// Under the zoned topology the invariant is checked per ring: leadership
// claims are keyed by (ring scope, epoch), so two zone Leaders in DIFFERENT
// zones at the same epoch are fine, while two Leaders of one zone — or two
// top-ring Leaders — at one epoch is a violation. In flat mode every claim
// lands on scope 0 and the check reduces to the original meta-group one.
//
// Used by the fault-matrix bench and the regroup tests; header-only so the
// harnesses can instantiate it next to any PhoenixKernel.
#pragma once

#include <algorithm>
#include <unordered_map>

#include "kernel/kernel.h"
#include "sim/engine.h"

namespace phoenix::kernel {

class LeaderInvariantMonitor {
 public:
  /// Starts sampling immediately; keep the monitor alive for the whole run.
  explicit LeaderInvariantMonitor(PhoenixKernel& kernel,
                                  sim::SimTime period = 10 * sim::kMillisecond)
      : kernel_(kernel),
        engine_(kernel.cluster().engine()),
        sampler_(engine_, period, [this] { sample(); }) {
    sampler_.start_after(0);
  }

  std::uint64_t samples() const noexcept { return samples_; }
  /// Samples at which >= 2 partitions led ONE ring with the same epoch.
  std::uint64_t violations() const noexcept { return violations_; }
  /// Samples at which a zone (or the flat meta) ring was double-led.
  std::uint64_t ring_violations() const noexcept { return ring_violations_; }
  /// Samples at which the top ring was double-led (zoned topology only).
  std::uint64_t top_violations() const noexcept { return top_violations_; }
  /// Worst simultaneous same-ring same-epoch leader count ever observed.
  int max_same_epoch_leaders() const noexcept { return max_leaders_; }
  sim::SimTime first_violation_at() const noexcept { return first_violation_at_; }
  /// Longest observed stretch with NO live cluster head at all (flat: the
  /// meta Leader; zoned: the top-ring Leader) — the group layer's
  /// unavailability window during a takeover (quantised to the period).
  sim::SimTime max_leaderless() const noexcept { return max_leaderless_; }

 private:
  void sample() {
    ++samples_;
    claims_.clear();
    int worst_ring = 0;
    int worst_top = 0;
    bool any_head = false;
    for (std::size_t p = 0; p < kernel_.partition_count(); ++p) {
      auto& gsd = kernel_.gsd(net::PartitionId{static_cast<std::uint32_t>(p)});
      if (!gsd.alive()) continue;
      if (gsd.is_leader()) {
        const std::uint64_t scope = gsd.zoned() ? gsd.zone() + 1 : 0;
        worst_ring = std::max(
            worst_ring, ++claims_[(scope << 32) | (gsd.meta_epoch() & 0xffffffffu)]);
        if (!gsd.zoned()) any_head = true;
      }
      if (gsd.zoned() && gsd.is_top_leader()) {
        any_head = true;
        worst_top = std::max(
            worst_top, ++claims_[(std::uint64_t{kTopRingScope} << 32) |
                                 (gsd.top_epoch() & 0xffffffffu)]);
      }
    }
    const int worst = std::max(worst_ring, worst_top);
    max_leaders_ = std::max(max_leaders_, worst);
    if (any_head) {
      leaderless_ = false;
    } else {
      if (!leaderless_) {
        leaderless_ = true;
        leaderless_since_ = engine_.now();
      }
      max_leaderless_ =
          std::max(max_leaderless_, engine_.now() - leaderless_since_);
    }
    if (worst_ring >= 2) ++ring_violations_;
    if (worst_top >= 2) ++top_violations_;
    if (worst >= 2) {
      if (violations_ == 0) first_violation_at_ = engine_.now();
      ++violations_;
    }
  }

  PhoenixKernel& kernel_;
  sim::Engine& engine_;
  std::unordered_map<std::uint64_t, int> claims_;  // (scope, epoch) -> leaders
  std::uint64_t samples_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t ring_violations_ = 0;
  std::uint64_t top_violations_ = 0;
  int max_leaders_ = 0;
  sim::SimTime first_violation_at_ = 0;
  bool leaderless_ = false;
  sim::SimTime leaderless_since_ = 0;
  sim::SimTime max_leaderless_ = 0;
  sim::PeriodicTask sampler_;
};

}  // namespace phoenix::kernel
