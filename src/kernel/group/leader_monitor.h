// Split-brain invariant monitor.
//
// Samples every partition's current GSD on a fixed period and checks the
// property the quorum failover policy exists to guarantee: at no instant may
// two distinct partitions both claim meta-group leadership at the SAME
// fencing epoch. A deposed Leader briefly claiming leadership at a STALE
// epoch is permitted — that is exactly the state epoch fencing neutralises
// (its mutating RPCs bounce off every ServiceRuntime's watermark).
//
// Used by the fault-matrix bench and the regroup tests; header-only so the
// harnesses can instantiate it next to any PhoenixKernel.
#pragma once

#include <algorithm>
#include <unordered_map>

#include "kernel/kernel.h"
#include "sim/engine.h"

namespace phoenix::kernel {

class LeaderInvariantMonitor {
 public:
  /// Starts sampling immediately; keep the monitor alive for the whole run.
  explicit LeaderInvariantMonitor(PhoenixKernel& kernel,
                                  sim::SimTime period = 10 * sim::kMillisecond)
      : kernel_(kernel),
        engine_(kernel.cluster().engine()),
        sampler_(engine_, period, [this] { sample(); }) {
    sampler_.start_after(0);
  }

  std::uint64_t samples() const noexcept { return samples_; }
  /// Samples at which >= 2 partitions led with the same epoch.
  std::uint64_t violations() const noexcept { return violations_; }
  /// Worst simultaneous same-epoch leader count ever observed.
  int max_same_epoch_leaders() const noexcept { return max_leaders_; }
  sim::SimTime first_violation_at() const noexcept { return first_violation_at_; }
  /// Longest observed stretch with NO live leader at all — the meta-group's
  /// unavailability window during a takeover (quantised to the period).
  sim::SimTime max_leaderless() const noexcept { return max_leaderless_; }

 private:
  void sample() {
    ++samples_;
    claims_.clear();
    int worst = 0;
    bool any_leader = false;
    for (std::size_t p = 0; p < kernel_.partition_count(); ++p) {
      auto& gsd = kernel_.gsd(net::PartitionId{static_cast<std::uint32_t>(p)});
      if (!gsd.alive() || !gsd.is_leader()) continue;
      any_leader = true;
      worst = std::max(worst, ++claims_[gsd.meta_epoch()]);
    }
    max_leaders_ = std::max(max_leaders_, worst);
    if (any_leader) {
      leaderless_ = false;
    } else {
      if (!leaderless_) {
        leaderless_ = true;
        leaderless_since_ = engine_.now();
      }
      max_leaderless_ =
          std::max(max_leaderless_, engine_.now() - leaderless_since_);
    }
    if (worst >= 2) {
      if (violations_ == 0) first_violation_at_ = engine_.now();
      ++violations_;
    }
  }

  PhoenixKernel& kernel_;
  sim::Engine& engine_;
  std::unordered_map<std::uint64_t, int> claims_;  // epoch -> leader count
  std::uint64_t samples_ = 0;
  std::uint64_t violations_ = 0;
  int max_leaders_ = 0;
  sim::SimTime first_violation_at_ = 0;
  bool leaderless_ = false;
  sim::SimTime leaderless_since_ = 0;
  sim::SimTime max_leaderless_ = 0;
  sim::PeriodicTask sampler_;
};

}  // namespace phoenix::kernel
