// Zone decomposition of the GSD membership layer.
//
// Under FtParams::GroupTopology::zoned(n) the flat meta-group is replaced
// by a two-level hierarchy:
//
//  * Every partition belongs to exactly one ZONE. Assignment is strided —
//    partition p is in zone p % num_zones — so consecutive partitions (and
//    with them rack-adjacent failure bursts) land in DIFFERENT zones and
//    their detections run in parallel instead of serializing around one
//    flat ring.
//
//  * The partitions of a zone form a zone sub-ring: the same join-order
//    ring, Leader/Princess succession, regroup and fencing protocol as the
//    paper's flat meta-group, scoped to the zone (MembershipRing with
//    scope = zone + 1). The zone ring owns fault logging, tombstones and
//    partition recovery for its members.
//
//  * Each zone's Leader joins the TOP RING (scope = kTopRingScope), whose
//    Leader is the cluster GSD head. The top ring is membership-only: it
//    carries no partition recovery of its own, its view is reconstructible
//    from the zone leaders and is never checkpointed, and a newly elected
//    zone leader displaces its zone's stale entry on join. Member churn
//    inside a zone is summarized by the zone leader into one aggregated
//    event per window (ZoneChurnAggregator) instead of flooding every
//    partition with per-member view traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "kernel/event/event.h"
#include "kernel/ft_params.h"
#include "net/ids.h"
#include "sim/engine.h"

namespace phoenix::kernel {

/// Scope tag of the top ring (zone rings use zone + 1; 0 is the flat ring).
inline constexpr std::uint32_t kTopRingScope = 0x80000000u;

/// Static partition->zone map derived from the topology parameters. The
/// assignment is a pure function of (partitions, zone_size), so every node
/// computes the same map with no coordination.
struct ZoneTopology {
  std::uint32_t partitions = 0;
  std::uint32_t num_zones = 1;

  static ZoneTopology from(const FtParams::GroupTopology& topology,
                           std::size_t partition_count);

  std::uint32_t zone_of(net::PartitionId p) const noexcept {
    return num_zones == 0 ? 0 : p.value % num_zones;
  }

  /// Wire scope of a zone's sub-ring. Zone 0 maps to scope 1: scope 0 is
  /// reserved for the flat ring so legacy messages stay scope-free.
  std::uint32_t zone_scope(std::uint32_t zone) const noexcept {
    return zone + 1;
  }

  /// The zone's boot-time leader (lowest partition id in the zone). With
  /// strided assignment that is simply partition `zone`, so the top ring
  /// seeds as partitions 0..num_zones-1 and partition 0 — the paper's GSD
  /// head — leads it.
  net::PartitionId first_of(std::uint32_t zone) const noexcept {
    return net::PartitionId{zone};
  }

  std::vector<net::PartitionId> zone_members(std::uint32_t zone) const;

  /// Ring successor of p inside its own zone (wraps). Used as the
  /// checkpoint replica target on the zoned recovery path, mirroring the
  /// flat protocol's (p+1) % partitions.
  net::PartitionId next_in_zone(net::PartitionId p) const noexcept;
};

/// Collects the member churn a zone leader observes in its zone ring and
/// flushes it as ONE summarized event per aggregation window — the "up"
/// half of the hierarchy's event flow. The emit callback stamps the zone
/// and hands the event to the indexed event service.
class ZoneChurnAggregator {
 public:
  ZoneChurnAggregator(sim::Engine& engine, sim::SimTime window,
                      std::function<void(Event)> emit);

  /// Diffs two consecutive zone views and accumulates the delta.
  void record(const std::vector<net::PartitionId>& removed,
              const std::vector<net::PartitionId>& added);

  std::uint64_t events_emitted() const noexcept { return events_emitted_; }

 private:
  void flush();

  sim::Engine& engine_;
  sim::SimTime window_;
  std::function<void(Event)> emit_;
  std::vector<std::uint32_t> removed_;
  std::vector<std::uint32_t> added_;
  std::uint64_t view_changes_ = 0;
  std::uint64_t events_emitted_ = 0;
  bool flush_pending_ = false;
};

}  // namespace phoenix::kernel
