// PhoenixKernel: the public facade of the Fire Phoenix kernel.
//
// Owns every kernel daemon, implements the ServiceDirectory used for
// locating / creating / migrating per-partition service instances, and
// boots the whole stack on a simulated cluster:
//
//   per node:       watch daemon, detector daemon, process manager
//   per partition:  GSD, event service, checkpoint service, data bulletin
//                   (all on the partition's server node)
//   cluster-wide:   configuration service, security service (partition 0)
//
// User environments (PWS, GridView, ...) are built against this facade and
// can register extension services for supervision and migration.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "kernel/bulletin/data_bulletin.h"
#include "kernel/checkpoint/checkpoint_service.h"
#include "kernel/config/configuration_service.h"
#include "kernel/detector/detectors.h"
#include "kernel/event/event_service.h"
#include "kernel/fault_log.h"
#include "kernel/ft_params.h"
#include "kernel/group/group_service.h"
#include "kernel/group/watch_daemon.h"
#include "kernel/ppm/process_manager.h"
#include "kernel/security/security_service.h"
#include "kernel/service_kind.h"

namespace phoenix::kernel {

class PhoenixKernel final : public ServiceDirectory {
 public:
  explicit PhoenixKernel(cluster::Cluster& cluster, FtParams params = {});
  ~PhoenixKernel() override;

  PhoenixKernel(const PhoenixKernel&) = delete;
  PhoenixKernel& operator=(const PhoenixKernel&) = delete;

  /// Creates and starts every kernel daemon and seeds the meta-group view.
  /// Call once; the engine must then be run to let the system settle.
  void boot();

  // --- staged construction API (used by construct::SystemConstructor) ------
  //
  // Instead of boot()'s all-at-once bring-up, the system construction tool
  // deploys partition by partition with verification between steps. The
  // meta-group ring then forms incrementally: the first partition's GSD
  // founds a singleton group and every later GSD joins it.

  /// Creates every daemon object and the service directory; starts nothing.
  void create_daemons();
  bool daemons_created() const noexcept { return created_; }

  /// Starts the cluster-wide configuration (with hardware introspection)
  /// and security services.
  void start_core_services();

  /// Starts the per-node daemons (PPM, detector, WD) on one node.
  void start_node_daemons(net::NodeId node);

  /// Starts one partition's services (checkpoint, event, bulletin, GSD).
  /// With `found_ring` the GSD bootstraps a singleton meta-group; otherwise
  /// it joins the existing ring.
  void start_partition_services(net::PartitionId p, bool found_ring);

  cluster::Cluster& cluster() noexcept { return cluster_; }
  const FtParams& params() const noexcept { return params_; }
  FaultLog& fault_log() noexcept { return log_; }

  // --- daemon accessors (current instances) -------------------------------

  GroupServiceDaemon& gsd(net::PartitionId p) { return *gsds_.at(p.value); }
  EventService& event_service(net::PartitionId p) { return *ess_.at(p.value); }
  CheckpointService& checkpoint_service(net::PartitionId p) { return *css_.at(p.value); }
  DataBulletin& bulletin(net::PartitionId p) { return *dbs_.at(p.value); }
  WatchDaemon& watch_daemon(net::NodeId n) { return *wds_.at(n.value); }
  DetectorDaemon& detector(net::NodeId n) { return *detectors_.at(n.value); }
  ProcessManager& ppm(net::NodeId n) { return *ppms_.at(n.value); }
  ConfigurationService& config() { return *config_; }
  SecurityService& security() { return *security_; }

  // --- extension services ---------------------------------------------------

  /// Factory for an extension service instance on a given node. The daemon
  /// it returns must bind a port that is unique on that node.
  using ExtensionFactory =
      std::function<std::unique_ptr<cluster::Daemon>(net::NodeId)>;

  /// Registers a named extension (e.g. "pws.scheduler") so the recovery
  /// machinery can recreate it during migrations.
  void register_extension(const std::string& name, ExtensionFactory factory);

  /// Current instance of a named extension, or nullptr.
  cluster::Daemon* extension(const std::string& name) const;

  // --- ServiceDirectory -------------------------------------------------------

  net::NodeId service_node(ServiceKind kind, net::PartitionId p) const override;
  void set_service_node(ServiceKind kind, net::PartitionId p,
                        net::NodeId node) override;
  cluster::Daemon* create_service(ServiceKind kind, net::PartitionId p,
                                  net::NodeId node) override;
  cluster::Daemon* create_extension(const std::string& name,
                                    net::NodeId node) override;
  std::vector<net::NodeId> migration_targets(net::PartitionId p) const override;
  std::size_t partition_count() const override { return cluster_.spec().partitions; }

 private:
  std::vector<SupervisedSpec> default_supervised() const;

  cluster::Cluster& cluster_;
  FtParams params_;
  FaultLog log_;
  bool booted_ = false;
  bool created_ = false;

  // Per-node daemons (indexed by node id).
  std::vector<std::unique_ptr<WatchDaemon>> wds_;
  std::vector<std::unique_ptr<DetectorDaemon>> detectors_;
  std::vector<std::unique_ptr<ProcessManager>> ppms_;

  // Per-partition service instances (indexed by partition id). Replaced on
  // migration; old instances move to the graveyard so their pending timers
  // stay safe.
  std::vector<std::unique_ptr<GroupServiceDaemon>> gsds_;
  std::vector<std::unique_ptr<EventService>> ess_;
  std::vector<std::unique_ptr<CheckpointService>> css_;
  std::vector<std::unique_ptr<DataBulletin>> dbs_;
  std::vector<std::unique_ptr<cluster::Daemon>> graveyard_;

  std::unique_ptr<ConfigurationService> config_;
  std::unique_ptr<SecurityService> security_;

  // kind -> partition -> hosting node.
  std::map<ServiceKind, std::vector<net::NodeId>> service_nodes_;

  std::map<std::string, ExtensionFactory> extension_factories_;
  std::map<std::string, std::unique_ptr<cluster::Daemon>> extension_instances_;

  // Zones already founded during staged construction (zoned topology only).
  std::set<std::uint32_t> founded_zones_;
  // Top-ring size gauge probe (zoned topology); unregistered in the dtor.
  std::uint64_t metrics_probe_id_ = 0;
};

}  // namespace phoenix::kernel
