// Service kinds and the service directory interface.
//
// Phoenix daemons locate each other through well-known ports plus a
// directory that tracks which node currently hosts each per-partition
// service instance (the hosting node changes when the group service migrates
// a failed service to a backup node). In the real system this information
// lives in the configuration service and is pushed via announcements; here
// the directory is the kernel's authoritative cache of it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/daemon.h"
#include "net/ids.h"

namespace phoenix::kernel {

enum class ServiceKind : std::uint8_t {
  kWatchDaemon,
  kGroupService,
  kEventService,
  kCheckpointService,
  kDataBulletin,
  kProcessManager,
  kConfiguration,
  kSecurity,
  kDetector,
};

std::string_view to_string(ServiceKind kind) noexcept;
net::PortId port_of(ServiceKind kind) noexcept;

/// Kernel-side interface the group service and PPM use to locate, create,
/// and relocate service instances. Implemented by PhoenixKernel.
class ServiceDirectory {
 public:
  virtual ~ServiceDirectory() = default;

  /// Node currently hosting the given per-partition service.
  virtual net::NodeId service_node(ServiceKind kind, net::PartitionId p) const = 0;

  /// Current address of the given per-partition service instance.
  net::Address service_address(ServiceKind kind, net::PartitionId p) const {
    return {service_node(kind, p), port_of(kind)};
  }

  /// Records that `kind`'s partition-`p` instance now lives on `node`.
  virtual void set_service_node(ServiceKind kind, net::PartitionId p,
                                net::NodeId node) = 0;

  /// Creates (but does not start) a fresh instance of a per-partition
  /// service on `node`, replacing any previous instance object for that
  /// partition. Returns the new daemon.
  virtual cluster::Daemon* create_service(ServiceKind kind, net::PartitionId p,
                                          net::NodeId node) = 0;

  /// Creates (not started) a fresh instance of an extension service
  /// registered by name (e.g. "pws.scheduler"). Null when unknown.
  virtual cluster::Daemon* create_extension(const std::string& name,
                                            net::NodeId node) = 0;

  /// Live backup nodes usable as migration targets within partition `p`,
  /// best candidate first.
  virtual std::vector<net::NodeId> migration_targets(net::PartitionId p) const = 0;

  /// Number of partitions (== meta-group size when all GSDs are healthy).
  virtual std::size_t partition_count() const = 0;
};

}  // namespace phoenix::kernel
