#include "net/symbol.h"

#include <stdexcept>

namespace phoenix::net {

namespace detail {

std::uint32_t InternPool::intern(std::string_view name, std::uint32_t max_ids) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = ids_.find(name); it != ids_.end()) return it->second;
  if (names_.size() > max_ids) {
    throw std::length_error("intern pool overflow");
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(std::string(name));  // deque: stable string_view storage
  ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t InternPool::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = ids_.find(name);
  return it == ids_.end() ? 0 : it->second;
}

std::string_view InternPool::name(std::uint32_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (id >= names_.size()) return {};
  return names_[id];
}

std::size_t InternPool::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

}  // namespace detail

namespace {

detail::InternPool& symbol_pool() {
  static detail::InternPool pool;
  return pool;
}

}  // namespace

SymbolId intern_symbol(std::string_view name) {
  return SymbolId{symbol_pool().intern(name, UINT32_MAX - 1)};
}

SymbolId find_symbol(std::string_view name) {
  return SymbolId{symbol_pool().find(name)};
}

std::string_view symbol_name(SymbolId id) {
  return symbol_pool().name(id.value);
}

std::size_t symbol_count() { return symbol_pool().size(); }

}  // namespace phoenix::net
