// Process-wide string interning.
//
// Generalizes the MessageTypeId scheme (net/message.h): any hot-path
// identity string — application names, process owners, event attribute
// keys — is interned once into a dense SymbolId and compared/stored as an
// integer from then on. The string API stays at the edges: producers intern
// when a record is created, consumers resolve ids back to names only when
// rendering or asserting.
//
// Ids are stable for the life of the process and never released; id 0 is
// reserved/invalid. Interning is thread-safe (parallel trials intern from
// worker threads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace phoenix::net {

namespace detail {

/// Mutex-guarded intern pool: name -> dense id, id -> name. Index 0 is
/// reserved as the invalid id. Both the message-type table and the symbol
/// table are instances of this.
class InternPool {
 public:
  /// Interns `name` (idempotent), throwing std::length_error past `max_ids`.
  std::uint32_t intern(std::string_view name, std::uint32_t max_ids);

  /// Id for an already-interned name; 0 when never seen.
  std::uint32_t find(std::string_view name) const;

  /// Name for `id`; empty for 0/unknown.
  std::string_view name(std::uint32_t id) const;

  /// Number of ids handed out, including the reserved 0.
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::string> names_{std::string()};  // deque: stable storage
  std::unordered_map<std::string_view, std::uint32_t> ids_;
};

}  // namespace detail

/// Dense process-wide id for an interned identity string. 0 is invalid.
struct SymbolId {
  std::uint32_t value = 0;
  constexpr bool valid() const noexcept { return value != 0; }
  friend constexpr bool operator==(SymbolId, SymbolId) = default;
};

/// Interns `name`, returning its stable id (same name -> same id for the
/// life of the process).
SymbolId intern_symbol(std::string_view name);

/// Looks up an already-interned name's id without interning; invalid id
/// when the name has never been seen (useful for filters: an owner nobody
/// ever reported can match nothing).
SymbolId find_symbol(std::string_view name);

/// The name for `id`; empty for invalid/unknown ids.
std::string_view symbol_name(SymbolId id);

/// Number of distinct interned symbols (including the reserved slot 0).
std::size_t symbol_count();

}  // namespace phoenix::net
