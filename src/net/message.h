// Message base class for all daemon-to-daemon traffic.
//
// Messages are polymorphic C++ objects rather than serialized bytes — the
// simulator never crosses a process boundary — but every message reports a
// wire_size() so the fabric can account bandwidth the way a real deployment
// would (the PWS-vs-PBS experiment depends on this).
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

#include "net/ids.h"

namespace phoenix::net {

class Message {
 public:
  virtual ~Message() = default;

  /// Stable message type name, e.g. "group.heartbeat". Used for tracing,
  /// stats breakdown, and dynamic dispatch checks in tests.
  virtual std::string_view type() const noexcept = 0;

  /// Bytes this message would occupy on the wire (header + payload).
  virtual std::size_t wire_size() const noexcept = 0;
};

using MessagePtr = std::unique_ptr<Message>;

/// Common fixed header cost applied to every message (addresses, type tag,
/// length, checksum — roughly a UDP-ish control datagram header).
inline constexpr std::size_t kWireHeaderBytes = 64;

/// Downcast helper: returns nullptr when the runtime type does not match.
template <typename T>
const T* message_cast(const Message& m) noexcept {
  return dynamic_cast<const T*>(&m);
}

/// Envelope: a message in flight between two daemon addresses on one network.
struct Envelope {
  Address from;
  Address to;
  NetworkId network;
  std::shared_ptr<const Message> message;
};

}  // namespace phoenix::net
