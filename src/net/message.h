// Message base class for all daemon-to-daemon traffic.
//
// Messages are polymorphic C++ objects rather than serialized bytes — the
// simulator never crosses a process boundary — but every message reports a
// wire_size() so the fabric can account bandwidth the way a real deployment
// would (the PWS-vs-PBS experiment depends on this).
//
// Message *types* are interned process-wide into dense MessageTypeId
// integers so per-message stats accounting is an array index, not a
// string hash. Concrete messages declare their type with
// PHOENIX_MESSAGE_TYPE("x.y"), which interns once per class (thread-safe
// function-local static) and serves both type() and type_id() from it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "net/ids.h"

namespace phoenix::net {

/// Dense process-wide id for a message type name. 0 is reserved/invalid.
struct MessageTypeId {
  std::uint16_t value = 0;
  constexpr bool valid() const noexcept { return value != 0; }
  friend constexpr bool operator==(MessageTypeId, MessageTypeId) = default;
};

/// Interns `name`, returning its stable id (same name -> same id for the
/// life of the process). Thread-safe: parallel trials intern from worker
/// threads. Interned names are never released.
MessageTypeId intern_message_type(std::string_view name);

/// Looks up an already-interned name's id without interning; invalid id
/// when the name has never been seen.
MessageTypeId find_message_type(std::string_view name);

/// The name for `id`; empty for invalid/unknown ids.
std::string_view message_type_name(MessageTypeId id);

/// Number of distinct interned types (upper bound for TypeCounts sizing).
std::size_t message_type_count();

class Message {
 public:
  virtual ~Message() = default;

  /// Stable message type name, e.g. "group.heartbeat". Used for tracing,
  /// stats breakdown, and dynamic dispatch checks in tests.
  virtual std::string_view type() const noexcept = 0;

  /// Interned id of type(). The default interns on every call (a hash
  /// lookup); classes declared via PHOENIX_MESSAGE_TYPE override it with a
  /// cached per-class id and pay the lookup once per process.
  virtual MessageTypeId type_id() const noexcept { return intern_message_type(type()); }

  /// Bytes this message would occupy on the wire (header + payload).
  virtual std::size_t wire_size() const noexcept = 0;
};

/// Declares type(), a cached type_id(), and a class-level static_type_id()
/// for a Message subclass. static_type_id() lets dispatch tables resolve a
/// handler slot from the class alone (ServiceRuntime::on<MsgT>) without an
/// instance in hand.
#define PHOENIX_MESSAGE_TYPE(name)                                      \
  static ::phoenix::net::MessageTypeId static_type_id() noexcept {      \
    static const ::phoenix::net::MessageTypeId cached_id =              \
        ::phoenix::net::intern_message_type(name);                      \
    return cached_id;                                                   \
  }                                                                     \
  std::string_view type() const noexcept override { return (name); }   \
  ::phoenix::net::MessageTypeId type_id() const noexcept override {    \
    return static_type_id();                                           \
  }

using MessagePtr = std::unique_ptr<Message>;

/// Common fixed header cost applied to every message (addresses, type tag,
/// length, checksum — roughly a UDP-ish control datagram header).
inline constexpr std::size_t kWireHeaderBytes = 64;

/// Downcast helper: returns nullptr when the runtime type does not match.
template <typename T>
const T* message_cast(const Message& m) noexcept {
  return dynamic_cast<const T*>(&m);
}

/// Envelope: a message in flight between two daemon addresses on one network.
struct Envelope {
  Address from;
  Address to;
  NetworkId network;
  std::shared_ptr<const Message> message;
};

/// Per-message-type counters indexed by MessageTypeId: the hot path is
/// `counts.slot(id) += bytes` (one array index); the map-like string API
/// (`at`, `contains`, `count`, iteration as (name, value) pairs) exists for
/// tests, benches, and report rendering. A type with a zero count is
/// indistinguishable from an absent one, matching how the old
/// unordered_map<string, uint64> behaved (keys only ever appeared with a
/// positive value).
class TypeCounts {
 public:
  /// Mutable counter cell for `id` (hot path; grows storage on demand).
  std::uint64_t& slot(MessageTypeId id) {
    if (id.value >= counts_.size()) counts_.resize(id.value + std::size_t{1}, 0);
    return counts_[id.value];
  }

  /// Value for `name`; 0 when absent.
  std::uint64_t get(std::string_view name) const;

  /// Value for `name`; throws std::out_of_range when absent (map parity).
  std::uint64_t at(std::string_view name) const;

  bool contains(std::string_view name) const { return get(name) != 0; }
  std::size_t count(std::string_view name) const { return contains(name) ? 1 : 0; }

  /// Number of types with a non-zero count.
  std::size_t size() const noexcept;
  bool empty() const noexcept { return size() == 0; }

  /// Element-wise accumulate (used by Fabric::total_stats).
  void add(const TypeCounts& other);

  void clear() noexcept { counts_.clear(); }

  /// Iterates non-zero entries as (type name, count) pairs.
  class const_iterator {
   public:
    using value_type = std::pair<std::string_view, std::uint64_t>;

    const_iterator(const std::vector<std::uint64_t>* counts, std::size_t i)
        : counts_(counts), i_(i) {
      skip_zeros();
    }

    value_type operator*() const {
      return {message_type_name(MessageTypeId{static_cast<std::uint16_t>(i_)}),
              (*counts_)[i_]};
    }
    const_iterator& operator++() {
      ++i_;
      skip_zeros();
      return *this;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) = default;

   private:
    void skip_zeros() {
      while (i_ < counts_->size() && (*counts_)[i_] == 0) ++i_;
    }
    const std::vector<std::uint64_t>* counts_;
    std::size_t i_;
  };

  const_iterator begin() const {
    return const_iterator(&counts_, counts_.empty() ? 0 : 1);  // 0 is reserved
  }
  const_iterator end() const { return const_iterator(&counts_, counts_.size()); }

 private:
  std::vector<std::uint64_t> counts_;  // [MessageTypeId::value] -> count
};

}  // namespace phoenix::net
