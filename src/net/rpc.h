// Resilient RPC substrate (DESIGN.md §9).
//
// The kernel's client plane (KernelApi) promises "uniformed semantics", but
// the fabric underneath is a lossy datagram network and service instances
// migrate between nodes during recovery. This header supplies the three
// building blocks that close the gap, in the MSCS re-binding / transparent
// retry tradition:
//
//   - Result<T> / Status: every call completes exactly once with a typed
//     payload plus a status a caller can branch on — "the service said no"
//     (kDenied) is distinguishable from "nothing answered in time"
//     (kTimeout), "no network path ever existed" (kUnreachable), and "the
//     retry budget ran out first" (kRetriesExhausted).
//   - CallOptions / RetryPolicy: per-call deadline and retry budget, with
//     exponential backoff between attempts and optional jitter (drawn only
//     when a retry actually happens, so fault-free runs consume no
//     randomness and stay bit-identical).
//   - ReplayCache: the server half of at-most-once execution. Mutating
//     handlers register each (client, request-type, request-id) before
//     executing and cache the reply; a retransmitted request is answered
//     from the cache instead of being applied twice.
//
// Requests carry a small `attempt` ordinal for diagnostics. It rides inside
// the fixed wire header (net::kWireHeaderBytes), so no wire_size() formula
// changes and simulated latencies are unaffected.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "net/ids.h"
#include "net/message.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace phoenix::net {

/// How a call completed. kOk is the only success.
enum class Status : std::uint8_t {
  kOk,                // reply received, request granted
  kTimeout,           // deadline expired with at least one attempt on the wire
  kDenied,            // the service answered and refused
  kUnreachable,       // no attempt could be transmitted (no path / node dead)
  kRetriesExhausted,  // retry budget spent before the deadline
};

std::string_view to_string(Status s) noexcept;

/// Completion value of an RPC: a status plus a payload (default-constructed
/// unless status == kOk, except where a method documents otherwise).
template <typename T>
struct Result {
  Status status = Status::kUnreachable;
  T value{};

  bool ok() const noexcept { return status == Status::kOk; }
  explicit operator bool() const noexcept { return ok(); }

  static Result success(T v) { return Result{Status::kOk, std::move(v)}; }
  static Result failure(Status s) { return Result{s, T{}}; }
};

/// Per-call knobs, all defaulted. Zero/negative fields inherit the client's
/// defaults at issue time.
struct CallOptions {
  /// Absolute budget for the whole call, retries included. 0 = inherit.
  sim::SimTime deadline = 0;
  /// Retransmissions allowed after the first attempt. -1 = inherit;
  /// 0 = one-shot.
  int max_retries = -1;
  /// When false the call is never retransmitted (single attempt), because
  /// the server gives no at-most-once guarantee for it.
  bool idempotent = true;
};

/// Exponential backoff schedule: attempt n (1-based) waits
/// min(initial_rto * multiplier^(n-1), max_rto) for a reply before
/// retransmitting, with +/- jitter_frac applied from the second attempt on.
struct RetryPolicy {
  sim::SimTime initial_rto = 2 * sim::kSecond;
  double multiplier = 2.0;
  sim::SimTime max_rto = 8 * sim::kSecond;
  /// Fractional jitter on retry waits; 0 gives a deterministic schedule.
  double jitter_frac = 0.1;
  /// Retry budget used when CallOptions::max_retries is -1.
  int default_max_retries = 4;

  /// The un-jittered wait after attempt `attempt` (1-based).
  sim::SimTime rto_for(int attempt) const noexcept;

  /// Applies +/- jitter_frac to `rto` (one uniform draw; call only on
  /// retries so fault-free runs draw nothing).
  sim::SimTime jittered(sim::SimTime rto, sim::Rng& rng) const;
};

/// Server-side at-most-once filter. A mutating handler calls begin() before
/// executing; kNew means execute and complete() with the reply, kReplay
/// means resend the cached reply verbatim, kInFlight means drop the
/// duplicate (the original execution's reply will serve it — used by
/// asynchronous handlers such as parallel commands).
///
/// Keys are (client address, request type, request id): a client never
/// reuses a request id across retries of different operations, and the type
/// component keeps two services' id spaces from colliding in shared caches.
/// Requests with id 0 or an invalid client address bypass the cache.
///
/// Eviction is FIFO at `capacity` entries — old enough that any plausible
/// retransmission window has long closed (a retry after eviction would
/// re-execute, which is the pre-cache behaviour).
class ReplayCache {
 public:
  enum class Admit : std::uint8_t { kNew, kInFlight, kReplay };

  explicit ReplayCache(std::size_t capacity = 256) : capacity_(capacity) {}

  /// Admission check; on kReplay, *replay (if non-null) receives the cached
  /// reply to retransmit.
  Admit begin(const Address& client, MessageTypeId type, std::uint64_t request_id,
              std::shared_ptr<const Message>* replay = nullptr);

  /// Stores the reply for an entry begin() admitted as kNew. No-op for
  /// untracked or already-evicted entries.
  void complete(const Address& client, MessageTypeId type,
                std::uint64_t request_id, std::shared_ptr<const Message> reply);

  std::uint64_t replays_served() const noexcept { return replays_; }
  std::uint64_t duplicates_suppressed() const noexcept { return in_flight_hits_; }
  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Key {
    Address client;
    MessageTypeId type;
    std::uint64_t request_id = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = std::hash<Address>{}(k.client);
      h ^= (static_cast<std::size_t>(k.type.value) + 0x9e3779b9u) + (h << 6) + (h >> 2);
      h ^= static_cast<std::size_t>(k.request_id) + 0x9e3779b9u + (h << 6) + (h >> 2);
      return h;
    }
  };
  struct Entry {
    std::shared_ptr<const Message> reply;  // null while the request executes
  };

  std::size_t capacity_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::deque<Key> order_;  // insertion order, for FIFO eviction
  std::uint64_t replays_ = 0;
  std::uint64_t in_flight_hits_ = 0;
};

}  // namespace phoenix::net
