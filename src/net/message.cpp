#include "net/message.h"

#include <stdexcept>
#include <string>

#include "net/symbol.h"

namespace phoenix::net {

namespace {

// Message types intern into their own pool (dense uint16 ids keep
// TypeCounts vectors small) built on the same InternPool machinery as the
// general symbol table (net/symbol.h).
detail::InternPool& type_pool() {
  static detail::InternPool t;
  return t;
}

}  // namespace

MessageTypeId intern_message_type(std::string_view name) {
  try {
    return MessageTypeId{
        static_cast<std::uint16_t>(type_pool().intern(name, UINT16_MAX))};
  } catch (const std::length_error&) {
    throw std::length_error("message type intern table overflow");
  }
}

MessageTypeId find_message_type(std::string_view name) {
  return MessageTypeId{static_cast<std::uint16_t>(type_pool().find(name))};
}

std::string_view message_type_name(MessageTypeId id) {
  return type_pool().name(id.value);
}

std::size_t message_type_count() { return type_pool().size(); }

std::uint64_t TypeCounts::get(std::string_view name) const {
  const MessageTypeId id = find_message_type(name);
  if (!id.valid() || id.value >= counts_.size()) return 0;
  return counts_[id.value];
}

std::uint64_t TypeCounts::at(std::string_view name) const {
  const std::uint64_t v = get(name);
  if (v == 0) {
    throw std::out_of_range("TypeCounts::at: no bytes recorded for type '" +
                            std::string(name) + "'");
  }
  return v;
}

std::size_t TypeCounts::size() const noexcept {
  std::size_t n = 0;
  for (const std::uint64_t c : counts_) n += c != 0 ? 1 : 0;
  return n;
}

void TypeCounts::add(const TypeCounts& other) {
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
}

}  // namespace phoenix::net
