#include "net/message.h"

#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace phoenix::net {

namespace {

// Process-wide intern table. Guarded by a mutex: interning happens once per
// message type per process (the PHOENIX_MESSAGE_TYPE function-local static
// caches the id), and name lookups only run on cold stats/reporting paths,
// so contention is a non-issue even with parallel trials on many threads.
struct InternTable {
  std::mutex mu;
  std::deque<std::string> names{""};  // index 0 reserved = invalid
  std::unordered_map<std::string_view, std::uint16_t> ids;
};

InternTable& table() {
  static InternTable t;
  return t;
}

}  // namespace

MessageTypeId intern_message_type(std::string_view name) {
  InternTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  if (const auto it = t.ids.find(name); it != t.ids.end()) {
    return MessageTypeId{it->second};
  }
  if (t.names.size() > UINT16_MAX) {
    throw std::length_error("message type intern table overflow");
  }
  const auto id = static_cast<std::uint16_t>(t.names.size());
  t.names.push_back(std::string(name));  // deque: stable string_view storage
  t.ids.emplace(t.names.back(), id);
  return MessageTypeId{id};
}

MessageTypeId find_message_type(std::string_view name) {
  InternTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  const auto it = t.ids.find(name);
  return it == t.ids.end() ? MessageTypeId{} : MessageTypeId{it->second};
}

std::string_view message_type_name(MessageTypeId id) {
  InternTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  if (id.value >= t.names.size()) return {};
  return t.names[id.value];
}

std::size_t message_type_count() {
  InternTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  return t.names.size();
}

std::uint64_t TypeCounts::get(std::string_view name) const {
  const MessageTypeId id = find_message_type(name);
  if (!id.valid() || id.value >= counts_.size()) return 0;
  return counts_[id.value];
}

std::uint64_t TypeCounts::at(std::string_view name) const {
  const std::uint64_t v = get(name);
  if (v == 0) {
    throw std::out_of_range("TypeCounts::at: no bytes recorded for type '" +
                            std::string(name) + "'");
  }
  return v;
}

std::size_t TypeCounts::size() const noexcept {
  std::size_t n = 0;
  for (const std::uint64_t c : counts_) n += c != 0 ? 1 : 0;
  return n;
}

void TypeCounts::add(const TypeCounts& other) {
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
}

}  // namespace phoenix::net
