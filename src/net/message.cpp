#include "net/message.h"

namespace phoenix::net {

// Message is header-only apart from anchoring the vtable here.

}  // namespace phoenix::net
