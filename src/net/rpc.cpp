#include "net/rpc.h"

#include <utility>

namespace phoenix::net {

std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kTimeout: return "timeout";
    case Status::kDenied: return "denied";
    case Status::kUnreachable: return "unreachable";
    case Status::kRetriesExhausted: return "retries_exhausted";
  }
  return "?";
}

sim::SimTime RetryPolicy::rto_for(int attempt) const noexcept {
  double rto = static_cast<double>(initial_rto);
  for (int i = 1; i < attempt; ++i) {
    rto *= multiplier;
    if (rto >= static_cast<double>(max_rto)) return max_rto;
  }
  const auto t = static_cast<sim::SimTime>(rto);
  return t < max_rto ? t : max_rto;
}

sim::SimTime RetryPolicy::jittered(sim::SimTime rto, sim::Rng& rng) const {
  if (jitter_frac <= 0.0) return rto;
  const double spread = static_cast<double>(rto) * jitter_frac;
  const double t = static_cast<double>(rto) + rng.uniform(-spread, spread);
  return t < 1.0 ? sim::SimTime{1} : static_cast<sim::SimTime>(t);
}

ReplayCache::Admit ReplayCache::begin(const Address& client, MessageTypeId type,
                                      std::uint64_t request_id,
                                      std::shared_ptr<const Message>* replay) {
  if (request_id == 0 || !client.valid()) return Admit::kNew;  // untracked
  const Key key{client, type, request_id};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.reply == nullptr) {
      ++in_flight_hits_;
      return Admit::kInFlight;
    }
    ++replays_;
    if (replay != nullptr) *replay = it->second.reply;
    return Admit::kReplay;
  }
  entries_.emplace(key, Entry{});
  order_.push_back(key);
  while (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  return Admit::kNew;
}

void ReplayCache::complete(const Address& client, MessageTypeId type,
                           std::uint64_t request_id,
                           std::shared_ptr<const Message> reply) {
  if (request_id == 0 || !client.valid()) return;
  auto it = entries_.find(Key{client, type, request_id});
  if (it != entries_.end()) it->second.reply = std::move(reply);
}

}  // namespace phoenix::net
