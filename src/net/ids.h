// Strong identifier types shared by the network and cluster layers.
//
// Plain integers invite mixing node ids with partition ids; these wrappers
// make such bugs type errors while staying trivially copyable and hashable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace phoenix::net {

namespace detail {
/// CRTP strong integer id. Comparable, hashable, streamable via value().
template <typename Tag, typename Rep = std::uint32_t>
struct StrongId {
  Rep value = kInvalid;

  static constexpr Rep kInvalid = ~Rep{0};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  constexpr bool valid() const noexcept { return value != kInvalid; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};
}  // namespace detail

/// A physical node in the cluster; dense, 0-based.
struct NodeId : detail::StrongId<NodeId> {
  using StrongId::StrongId;
};

/// A cluster partition (server + backup + compute nodes); dense, 0-based.
struct PartitionId : detail::StrongId<PartitionId> {
  using StrongId::StrongId;
};

/// One of the (typically three) independent networks each node attaches to.
struct NetworkId : detail::StrongId<NetworkId, std::uint8_t> {
  using StrongId::StrongId;
};

/// A daemon's mailbox port on a node (like a TCP port, statically assigned).
struct PortId : detail::StrongId<PortId, std::uint16_t> {
  using StrongId::StrongId;
};

/// A daemon address: (node, port).
struct Address {
  NodeId node;
  PortId port;

  constexpr bool valid() const noexcept { return node.valid() && port.valid(); }
  friend constexpr bool operator==(const Address&, const Address&) = default;
  friend constexpr auto operator<=>(const Address&, const Address&) = default;
};

}  // namespace phoenix::net

namespace std {
template <>
struct hash<phoenix::net::NodeId> {
  size_t operator()(phoenix::net::NodeId id) const noexcept { return id.value; }
};
template <>
struct hash<phoenix::net::PartitionId> {
  size_t operator()(phoenix::net::PartitionId id) const noexcept { return id.value; }
};
template <>
struct hash<phoenix::net::NetworkId> {
  size_t operator()(phoenix::net::NetworkId id) const noexcept { return id.value; }
};
template <>
struct hash<phoenix::net::PortId> {
  size_t operator()(phoenix::net::PortId id) const noexcept { return id.value; }
};
template <>
struct hash<phoenix::net::Address> {
  size_t operator()(const phoenix::net::Address& a) const noexcept {
    return (static_cast<size_t>(a.node.value) << 16) ^ a.port.value;
  }
};
}  // namespace std
