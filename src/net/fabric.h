// Simulated multi-network cluster fabric.
//
// The Dawning 4000A attaches every node to three independent networks; the
// Phoenix watch daemon heartbeats over all of them so the group service can
// distinguish a dead node from a dead link. The fabric models exactly that:
// per-(node, network) interface state, a latency model, and byte/message
// accounting per network (used by the PWS-vs-PBS bandwidth experiment).
//
// The fabric is topology + transport only; it delivers envelopes through a
// handler installed by the cluster layer, which knows which daemon owns
// which address.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/message.h"
#include "obs/metrics.h"
#include "obs/span_store.h"
#include "sim/engine.h"
#include "sim/parallel_engine.h"

namespace phoenix::net {

/// Latency model: base + per-byte cost + uniform jitter fraction, plus an
/// independent per-message loss probability (lossy datagram semantics; the
/// kernel's heartbeat grace and retry logic must absorb this).
struct LatencyModel {
  sim::SimTime base = 50 * sim::kMicrosecond;     // switch + stack traversal
  /// Extra one-way cost when the path crosses partition edge switches into
  /// the core (0 = flat topology). Applied when the fabric knows the
  /// partition grouping (Fabric::set_group_size).
  sim::SimTime cross_group_extra = 30 * sim::kMicrosecond;
  double per_byte_us = 0.001;                     // ~1 GB/s effective
  double jitter_frac = 0.2;                       // +/- fraction of total
  double loss_probability = 0.0;                  // per message, per network

  sim::SimTime sample(std::size_t bytes, sim::Rng& rng,
                      bool cross_group = false) const;

  /// Conservative lower bound on any value sample() can return: the
  /// zero-payload message, no cross-group extra, maximum negative jitter.
  /// This is the largest safe lookahead for a ParallelEngine driving a
  /// ShardedFabric built on this model (never 0 — sample() floors at 1us).
  sim::SimTime min_latency() const noexcept;
};

/// Per-network traffic counters. The per-type breakdown is indexed by
/// interned MessageTypeId (one array index per send, no string hashing);
/// its string-keyed lookup API is unchanged for tests and reports.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_dropped = 0;    // interface down or node dead
  std::uint64_t messages_lost = 0;       // random loss (LatencyModel)
  std::uint64_t messages_delivered = 0;  // reached the delivery handler
  TypeCounts bytes_by_type;

  /// Accumulates `other` into this — the one merge used by every
  /// per-network / per-shard aggregation (no more open-coded field sums).
  void add(const NetworkStats& other) {
    messages_sent += other.messages_sent;
    bytes_sent += other.bytes_sent;
    messages_dropped += other.messages_dropped;
    messages_lost += other.messages_lost;
    messages_delivered += other.messages_delivered;
    bytes_by_type.add(other.bytes_by_type);
  }
};

class Fabric {
 public:
  /// Called when an envelope reaches its destination (both interfaces up at
  /// send time, destination still reachable at delivery time).
  using DeliveryHandler = std::function<void(const Envelope&)>;

  /// Predicate the cluster layer installs: is this node powered and alive?
  using NodeAlivePredicate = std::function<bool(NodeId)>;

  /// Fault-injection hook: returns true to silently discard a message that
  /// was accepted on the wire (counted as messages_lost, like random loss).
  /// Checked before the random-loss draw, so targeted drops consume no
  /// randomness and stay deterministic.
  using DropFilter =
      std::function<bool(const Address& from, const Address& to, const Message&)>;

  Fabric(sim::Engine& engine, std::size_t node_count, std::size_t network_count);

  std::size_t node_count() const noexcept { return node_count_; }
  std::size_t network_count() const noexcept { return network_count_; }

  void set_delivery_handler(DeliveryHandler handler) { deliver_ = std::move(handler); }
  void set_node_alive_predicate(NodeAlivePredicate pred) { node_alive_ = std::move(pred); }
  void set_drop_filter(DropFilter filter) { drop_ = std::move(filter); }

  /// Attaches a span store for causal tracing. While `store->enabled()`,
  /// every send records a wire-hop span (outcome delivered / lost /
  /// dropped / unreachable) parented to the sender's ambient TraceContext,
  /// and the delivery handler runs under a ContextScope rooted at that hop
  /// so server-side spans link to it. The untraced path is unchanged
  /// (same closure size, one extra null-check per send).
  void set_span_store(obs::SpanStore* store) noexcept { spans_ = store; }

  /// Registers a snapshot-time probe on `registry` that publishes this
  /// fabric's merged stats as gauges named "<prefix>.messages_sent" etc.
  /// Returns the probe id; unregister it if the fabric dies first.
  std::uint64_t register_metrics(obs::Registry& registry, std::string prefix);

  LatencyModel& latency_model() noexcept { return latency_; }

  /// Enables the two-level topology model: nodes in the same group of
  /// `nodes_per_group` consecutive ids share an edge switch; traffic
  /// between groups pays LatencyModel::cross_group_extra. 0 = flat.
  void set_group_size(std::size_t nodes_per_group) noexcept {
    group_size_ = nodes_per_group;
  }

  // --- interface state ---------------------------------------------------

  bool interface_up(NodeId node, NetworkId network) const;
  void set_interface_up(NodeId node, NetworkId network, bool up);

  /// Cuts/restores every interface of `node` (models unplugging the node).
  void set_node_links_up(NodeId node, bool up);

  /// True when at least one network connects the two nodes end to end.
  bool any_path(NodeId a, NodeId b) const;

  // --- adversarial link weather --------------------------------------------
  //
  // Unlike interface cuts (visible to both ends as a down NIC), these model
  // the faults that fool naive failure detection: traffic silently vanishes
  // in ONE direction, or a node's sends all run late. Both interfaces stay
  // administratively up throughout.

  /// Blocks (or unblocks) every message from `from`'s node to `to`'s node,
  /// on every network, in that direction only — the asymmetric-partition
  /// primitive. Blocked messages count as messages_lost; the sender cannot
  /// tell. The reverse direction is unaffected.
  void set_link_blocked(NodeId from, NodeId to, bool blocked);
  bool link_blocked(NodeId from, NodeId to) const;
  void clear_blocked_links();

  /// Adds `extra` to the latency of every message `node` originates (a slow
  /// node: heartbeats arrive late but the node is not dead). 0 clears.
  void set_node_send_delay(NodeId node, sim::SimTime extra);
  sim::SimTime node_send_delay(NodeId node) const;

  // --- sending -----------------------------------------------------------

  /// Sends `message` from->to over `network`. Returns true if it was put on
  /// the wire (both interfaces up, both nodes alive); the envelope is then
  /// scheduled for delivery after a sampled latency. A message put on the
  /// wire can still be lost if the destination dies before delivery.
  bool send(const Address& from, const Address& to, NetworkId network,
            std::shared_ptr<const Message> message);

  /// Sends over the first network whose path is currently up. Returns the
  /// network used, or an invalid NetworkId if none is available.
  NetworkId send_any(const Address& from, const Address& to,
                     std::shared_ptr<const Message> message);

  // --- stats ---------------------------------------------------------------

  const NetworkStats& stats(NetworkId network) const;
  NetworkStats total_stats() const;
  void reset_stats();

 private:
  std::size_t index(NodeId node, NetworkId network) const {
    return static_cast<std::size_t>(node.value) * network_count_ + network.value;
  }
  bool node_alive(NodeId n) const { return !node_alive_ || node_alive_(n); }
  void record_wire_span(const Message& message, sim::SimTime start,
                        sim::SimTime end, const char* outcome);

  static std::uint64_t link_key(NodeId from, NodeId to) noexcept {
    return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  }

  sim::Engine& engine_;
  std::size_t node_count_;
  std::size_t network_count_;
  std::size_t group_size_ = 0;
  std::vector<char> interface_up_;  // [node * network_count + network]
  LatencyModel latency_;
  DeliveryHandler deliver_;
  NodeAlivePredicate node_alive_;
  DropFilter drop_;
  std::unordered_set<std::uint64_t> blocked_links_;  // directional, link_key()
  std::vector<sim::SimTime> send_delay_;             // [node]; empty until used
  std::vector<NetworkStats> stats_;
  obs::SpanStore* spans_ = nullptr;
};

/// Shard-aware fabric for the conservative parallel engine.
///
/// Same transport semantics as Fabric — per-(node, network) interface state,
/// LatencyModel sampling, per-network byte/message accounting — but the
/// simulated cluster is partitioned across a ParallelEngine's shards by a
/// node->shard map:
///   - intra-shard sends schedule delivery on the sending shard's engine;
///   - cross-shard sends go through the parallel engine's SPSC mailboxes,
///     with the sampled latency clamped up to the lookahead (choose the
///     lookahead <= latency_model().min_latency() and the clamp never fires).
///
/// Thread discipline: send() must run on the thread currently executing the
/// sending node's shard; the delivery handler is invoked on the destination
/// node's shard and must only touch that shard's state. Latency jitter and
/// loss draw from the *sending* shard's RNG stream, so runs are reproducible
/// for a fixed shard count. Traffic stats are kept per sending shard
/// (delivery-time drops per receiving shard) — aggregate only while the
/// engine is quiescent. Topology mutations (set_interface_up and friends)
/// are quiescent-only too: they are rare control-plane actions between
/// run_until() calls, not data-plane traffic.
class ShardedFabric {
 public:
  using DeliveryHandler = std::function<void(const Envelope&)>;

  /// `node_shard[n]` is the shard owning node n; every value must be less
  /// than `engine.shard_count()`.
  ShardedFabric(sim::ParallelEngine& engine, std::vector<std::uint32_t> node_shard,
                std::size_t network_count);

  std::size_t node_count() const noexcept { return node_shard_.size(); }
  std::size_t network_count() const noexcept { return network_count_; }
  std::uint32_t shard_of(NodeId node) const { return node_shard_.at(node.value); }

  void set_delivery_handler(DeliveryHandler handler) { deliver_ = std::move(handler); }

  /// As Fabric::set_span_store. Wire-hop spans for cross-shard messages get
  /// outcome "delivered_cross_shard"; the span is recorded on the
  /// destination shard's thread (SpanStore::record is thread-safe) and the
  /// ContextScope re-establishes the trace across the mailbox boundary.
  void set_span_store(obs::SpanStore* store) noexcept { spans_ = store; }

  /// As Fabric::register_metrics, with per-shard slots merged into one
  /// snapshot plus "<prefix>.cross_shard_sent". Quiescent-only (probes run
  /// at Registry::snapshot_json time).
  std::uint64_t register_metrics(obs::Registry& registry, std::string prefix);

  /// Quiescent-only mutation; keep min_latency() >= the engine's lookahead
  /// or cross-shard latencies get clamped up to it.
  LatencyModel& latency_model() noexcept { return latency_; }

  /// Two-level topology, as Fabric::set_group_size.
  void set_group_size(std::size_t nodes_per_group) noexcept {
    group_size_ = nodes_per_group;
  }

  bool interface_up(NodeId node, NetworkId network) const;
  void set_interface_up(NodeId node, NetworkId network, bool up);
  void set_node_links_up(NodeId node, bool up);

  /// Sends from->to over `network`; same contract as Fabric::send. Must be
  /// called from the sending node's shard context.
  bool send(const Address& from, const Address& to, NetworkId network,
            std::shared_ptr<const Message> message);

  // --- stats (quiescent only) ----------------------------------------------

  /// Aggregated over shards for one network / over everything.
  NetworkStats stats(NetworkId network) const;
  NetworkStats total_stats() const;
  /// Messages that crossed a shard boundary (subset of messages_sent).
  std::uint64_t cross_shard_sent() const noexcept;
  void reset_stats();

 private:
  struct alignas(64) PerShard {
    std::vector<NetworkStats> nets;  // [network]
    std::uint64_t cross_sent = 0;
  };

  std::size_t index(NodeId node, NetworkId network) const {
    return static_cast<std::size_t>(node.value) * network_count_ + network.value;
  }
  void deliver_at_destination(const Envelope& env);
  void traced_deliver(const Envelope& env, std::uint64_t trace_id,
                      std::uint64_t hop_id, std::uint64_t parent_span,
                      sim::SimTime sent_at, bool cross_shard);

  sim::ParallelEngine& engine_;
  std::vector<std::uint32_t> node_shard_;
  std::size_t network_count_;
  std::size_t group_size_ = 0;
  std::vector<char> interface_up_;  // [node * network_count + network]
  LatencyModel latency_;
  DeliveryHandler deliver_;
  std::vector<PerShard> shard_state_;  // [shard]
  obs::SpanStore* spans_ = nullptr;
};

}  // namespace phoenix::net
