#include "net/fabric.h"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace phoenix::net {

sim::SimTime LatencyModel::sample(std::size_t bytes, sim::Rng& rng,
                                  bool cross_group) const {
  double raw = static_cast<double>(base) + per_byte_us * static_cast<double>(bytes);
  if (cross_group) raw += static_cast<double>(cross_group_extra);
  const double jitter = raw * jitter_frac;
  const double total = raw + rng.uniform(-jitter, jitter);
  return total < 1.0 ? sim::SimTime{1} : static_cast<sim::SimTime>(total);
}

sim::SimTime LatencyModel::min_latency() const noexcept {
  // Every term sample() adds on top of `base` is non-negative (payload
  // bytes, cross-group extra), and the jitter draw is half-open at
  // -raw * jitter_frac, so base * (1 - jitter_frac) truncated the same way
  // sample() truncates is a true lower bound.
  const double lo = static_cast<double>(base) * (1.0 - jitter_frac);
  return lo < 1.0 ? sim::SimTime{1} : static_cast<sim::SimTime>(lo);
}

Fabric::Fabric(sim::Engine& engine, std::size_t node_count, std::size_t network_count)
    : engine_(engine),
      node_count_(node_count),
      network_count_(network_count),
      interface_up_(node_count * network_count, 1),
      stats_(network_count) {
  if (network_count == 0) throw std::invalid_argument("Fabric requires >= 1 network");
}

bool Fabric::interface_up(NodeId node, NetworkId network) const {
  assert(node.value < node_count_ && network.value < network_count_);
  return interface_up_[index(node, network)] != 0;
}

void Fabric::set_interface_up(NodeId node, NetworkId network, bool up) {
  assert(node.value < node_count_ && network.value < network_count_);
  interface_up_[index(node, network)] = up ? 1 : 0;
}

void Fabric::set_node_links_up(NodeId node, bool up) {
  for (std::size_t n = 0; n < network_count_; ++n) {
    set_interface_up(node, NetworkId{static_cast<std::uint8_t>(n)}, up);
  }
}

bool Fabric::any_path(NodeId a, NodeId b) const {
  for (std::size_t n = 0; n < network_count_; ++n) {
    const NetworkId net{static_cast<std::uint8_t>(n)};
    if (interface_up(a, net) && interface_up(b, net)) return true;
  }
  return false;
}

void Fabric::set_link_blocked(NodeId from, NodeId to, bool blocked) {
  if (blocked) {
    blocked_links_.insert(link_key(from, to));
  } else {
    blocked_links_.erase(link_key(from, to));
  }
}

bool Fabric::link_blocked(NodeId from, NodeId to) const {
  return !blocked_links_.empty() && blocked_links_.count(link_key(from, to)) > 0;
}

void Fabric::clear_blocked_links() { blocked_links_.clear(); }

void Fabric::set_node_send_delay(NodeId node, sim::SimTime extra) {
  if (send_delay_.empty()) {
    if (extra == 0) return;
    send_delay_.assign(node_count_, 0);
  }
  send_delay_.at(node.value) = extra;
}

sim::SimTime Fabric::node_send_delay(NodeId node) const {
  return send_delay_.empty() ? 0 : send_delay_.at(node.value);
}

void Fabric::record_wire_span(const Message& message, sim::SimTime start,
                              sim::SimTime end, const char* outcome) {
  // Root a fresh trace when no ambient context exists, so standalone sends
  // are still visible when tracing is on.
  const obs::TraceContext parent = obs::current_context();
  const std::uint64_t trace_id =
      parent.active() ? parent.trace_id : spans_->mint_id();
  spans_->record(obs::Span{trace_id, spans_->mint_id(), parent.parent_span_id,
                           start, end, "fabric",
                           std::string("hop:") + std::string(message.type()),
                           outcome});
}

bool Fabric::send(const Address& from, const Address& to, NetworkId network,
                  std::shared_ptr<const Message> message) {
  assert(message != nullptr);
  NetworkStats& st = stats_.at(network.value);
  const std::size_t bytes = kWireHeaderBytes + message->wire_size();
  const bool traced = spans_ != nullptr && spans_->enabled();

  if (!node_alive(from.node) || !node_alive(to.node) ||
      !interface_up(from.node, network) || !interface_up(to.node, network)) {
    ++st.messages_dropped;
    if (traced) {
      record_wire_span(*message, engine_.now(), engine_.now(), "unreachable");
    }
    return false;
  }

  ++st.messages_sent;
  st.bytes_sent += bytes;
  st.bytes_by_type.slot(message->type_id()) += bytes;

  if (!blocked_links_.empty() &&
      blocked_links_.count(link_key(from.node, to.node)) > 0) {
    ++st.messages_lost;  // directional blackhole; sender cannot tell
    if (traced) record_wire_span(*message, engine_.now(), engine_.now(), "lost");
    return true;
  }

  if (drop_ && drop_(from, to, *message)) {
    ++st.messages_lost;  // targeted fault injection; sender cannot tell
    if (traced) record_wire_span(*message, engine_.now(), engine_.now(), "lost");
    return true;
  }

  if (latency_.loss_probability > 0.0 &&
      engine_.rng().chance(latency_.loss_probability)) {
    ++st.messages_lost;  // vanished on the wire; sender cannot tell
    if (traced) record_wire_span(*message, engine_.now(), engine_.now(), "lost");
    return true;
  }

  const bool cross_group =
      group_size_ > 0 &&
      from.node.value / group_size_ != to.node.value / group_size_;
  sim::SimTime latency = latency_.sample(bytes, engine_.rng(), cross_group);
  if (!send_delay_.empty()) latency += send_delay_[from.node.value];
  Envelope env{from, to, network, std::move(message)};

  if (traced) {
    // Traced delivery carries the hop span's identity; the fatter closure
    // may spill out of the scheduler's small-buffer optimization, which is
    // why this is a separate path from the default one below.
    const obs::TraceContext parent = obs::current_context();
    const std::uint64_t trace_id =
        parent.active() ? parent.trace_id : spans_->mint_id();
    const std::uint64_t hop_id = spans_->mint_id();
    const sim::SimTime sent_at = engine_.now();
    engine_.schedule_after(
        latency, [this, env = std::move(env), trace_id, hop_id,
                  parent_span = parent.parent_span_id, sent_at] {
          const sim::SimTime at = engine_.now();
          const std::string name =
              std::string("hop:") + std::string(env.message->type());
          if (!node_alive(env.to.node) || !interface_up(env.to.node, env.network)) {
            ++stats_.at(env.network.value).messages_dropped;
            spans_->record(obs::Span{trace_id, hop_id, parent_span, sent_at, at,
                                     "fabric", name, "dropped"});
            return;
          }
          ++stats_.at(env.network.value).messages_delivered;
          spans_->record(obs::Span{trace_id, hop_id, parent_span, sent_at, at,
                                   "fabric", name, "delivered"});
          obs::ContextScope scope(obs::TraceContext{trace_id, hop_id}, sent_at);
          if (deliver_) deliver_(env);
        });
    return true;
  }

  engine_.schedule_after(latency, [this, env = std::move(env)] {
    // Delivery-time checks: the destination may have died or its interface
    // may have been cut while the message was in flight.
    if (!node_alive(env.to.node) || !interface_up(env.to.node, env.network)) {
      ++stats_.at(env.network.value).messages_dropped;
      return;
    }
    ++stats_.at(env.network.value).messages_delivered;
    if (deliver_) deliver_(env);
  });
  return true;
}

NetworkId Fabric::send_any(const Address& from, const Address& to,
                           std::shared_ptr<const Message> message) {
  for (std::size_t n = 0; n < network_count_; ++n) {
    const NetworkId net{static_cast<std::uint8_t>(n)};
    if (interface_up(from.node, net) && interface_up(to.node, net)) {
      if (send(from, to, net, message)) return net;
    }
  }
  return NetworkId{};
}

const NetworkStats& Fabric::stats(NetworkId network) const {
  return stats_.at(network.value);
}

NetworkStats Fabric::total_stats() const {
  NetworkStats total;
  for (const auto& st : stats_) total.add(st);
  return total;
}

namespace {

// Shared gauge naming for both fabric flavors.
void publish_stats_gauges(obs::Registry& registry, const std::string& prefix,
                          const NetworkStats& st) {
  registry.gauge(prefix + ".messages_sent")
      ->set(static_cast<double>(st.messages_sent));
  registry.gauge(prefix + ".bytes_sent")->set(static_cast<double>(st.bytes_sent));
  registry.gauge(prefix + ".messages_dropped")
      ->set(static_cast<double>(st.messages_dropped));
  registry.gauge(prefix + ".messages_lost")
      ->set(static_cast<double>(st.messages_lost));
  registry.gauge(prefix + ".messages_delivered")
      ->set(static_cast<double>(st.messages_delivered));
}

}  // namespace

std::uint64_t Fabric::register_metrics(obs::Registry& registry,
                                       std::string prefix) {
  return registry.register_probe(
      [this, prefix = std::move(prefix)](obs::Registry& r) {
        publish_stats_gauges(r, prefix, total_stats());
      });
}

void Fabric::reset_stats() {
  for (auto& st : stats_) st = NetworkStats{};
}

// ---------------------------------------------------------------------------
// ShardedFabric
// ---------------------------------------------------------------------------

ShardedFabric::ShardedFabric(sim::ParallelEngine& engine,
                             std::vector<std::uint32_t> node_shard,
                             std::size_t network_count)
    : engine_(engine),
      node_shard_(std::move(node_shard)),
      network_count_(network_count),
      interface_up_(node_shard_.size() * network_count, 1),
      shard_state_(engine.shard_count()) {
  if (network_count == 0) {
    throw std::invalid_argument("ShardedFabric requires >= 1 network");
  }
  for (const std::uint32_t s : node_shard_) {
    if (s >= engine.shard_count()) {
      throw std::invalid_argument("ShardedFabric: node mapped to shard " +
                                  std::to_string(s) + " but engine has only " +
                                  std::to_string(engine.shard_count()));
    }
  }
  for (auto& ps : shard_state_) ps.nets.resize(network_count);
}

bool ShardedFabric::interface_up(NodeId node, NetworkId network) const {
  assert(node.value < node_shard_.size() && network.value < network_count_);
  return interface_up_[index(node, network)] != 0;
}

void ShardedFabric::set_interface_up(NodeId node, NetworkId network, bool up) {
  assert(node.value < node_shard_.size() && network.value < network_count_);
  interface_up_[index(node, network)] = up ? 1 : 0;
}

void ShardedFabric::set_node_links_up(NodeId node, bool up) {
  for (std::size_t n = 0; n < network_count_; ++n) {
    set_interface_up(node, NetworkId{static_cast<std::uint8_t>(n)}, up);
  }
}

void ShardedFabric::deliver_at_destination(const Envelope& env) {
  // Runs on the destination node's shard. The interface may have been cut
  // (quiescently) while the message was in flight.
  if (!interface_up(env.to.node, env.network)) {
    ++shard_state_[shard_of(env.to.node)].nets[env.network.value].messages_dropped;
    return;
  }
  ++shard_state_[shard_of(env.to.node)].nets[env.network.value].messages_delivered;
  if (deliver_) deliver_(env);
}

void ShardedFabric::traced_deliver(const Envelope& env, std::uint64_t trace_id,
                                   std::uint64_t hop_id,
                                   std::uint64_t parent_span,
                                   sim::SimTime sent_at, bool cross_shard) {
  // Runs on the destination node's shard with the hop span's identity in
  // hand; record() is thread-safe, the stats slot is this shard's own.
  const std::uint32_t ds = shard_of(env.to.node);
  const sim::SimTime at = engine_.shard(ds).now();
  const std::string name =
      std::string("hop:") + std::string(env.message->type());
  if (!interface_up(env.to.node, env.network)) {
    ++shard_state_[ds].nets[env.network.value].messages_dropped;
    spans_->record(obs::Span{trace_id, hop_id, parent_span, sent_at, at,
                             "fabric", name, "dropped"});
    return;
  }
  ++shard_state_[ds].nets[env.network.value].messages_delivered;
  spans_->record(obs::Span{trace_id, hop_id, parent_span, sent_at, at, "fabric",
                           name,
                           cross_shard ? "delivered_cross_shard" : "delivered"});
  obs::ContextScope scope(obs::TraceContext{trace_id, hop_id}, sent_at);
  if (deliver_) deliver_(env);
}

bool ShardedFabric::send(const Address& from, const Address& to, NetworkId network,
                         std::shared_ptr<const Message> message) {
  assert(message != nullptr);
  const std::uint32_t fs = shard_of(from.node);
  const std::uint32_t ts = shard_of(to.node);
  sim::Engine& src = engine_.shard(fs);
  NetworkStats& st = shard_state_[fs].nets.at(network.value);
  const std::size_t bytes = kWireHeaderBytes + message->wire_size();

  if (!interface_up(from.node, network) || !interface_up(to.node, network)) {
    ++st.messages_dropped;
    return false;
  }

  ++st.messages_sent;
  st.bytes_sent += bytes;
  st.bytes_by_type.slot(message->type_id()) += bytes;

  const bool traced = spans_ != nullptr && spans_->enabled();

  if (latency_.loss_probability > 0.0 &&
      src.rng().chance(latency_.loss_probability)) {
    ++st.messages_lost;  // vanished on the wire; sender cannot tell
    if (traced) {
      const obs::TraceContext parent = obs::current_context();
      const std::uint64_t trace_id =
          parent.active() ? parent.trace_id : spans_->mint_id();
      spans_->record(obs::Span{
          trace_id, spans_->mint_id(), parent.parent_span_id, src.now(),
          src.now(), "fabric",
          std::string("hop:") + std::string(message->type()), "lost"});
    }
    return true;
  }

  const bool cross_group =
      group_size_ > 0 &&
      from.node.value / group_size_ != to.node.value / group_size_;
  sim::SimTime latency = latency_.sample(bytes, src.rng(), cross_group);
  Envelope env{from, to, network, std::move(message)};

  if (traced) {
    const obs::TraceContext parent = obs::current_context();
    const std::uint64_t trace_id =
        parent.active() ? parent.trace_id : spans_->mint_id();
    const std::uint64_t hop_id = spans_->mint_id();
    const std::uint64_t pspan = parent.parent_span_id;
    const sim::SimTime sent_at = src.now();
    if (fs == ts) {
      src.schedule_after(latency,
                         [this, env = std::move(env), trace_id, hop_id, pspan,
                          sent_at] {
                           traced_deliver(env, trace_id, hop_id, pspan, sent_at,
                                          /*cross_shard=*/false);
                         });
    } else {
      ++shard_state_[fs].cross_sent;
      if (latency < engine_.lookahead()) latency = engine_.lookahead();
      engine_.post_cross(fs, ts, src.now() + latency,
                         [this, env = std::move(env), trace_id, hop_id, pspan,
                          sent_at] {
                           traced_deliver(env, trace_id, hop_id, pspan, sent_at,
                                          /*cross_shard=*/true);
                         });
    }
    return true;
  }

  if (fs == ts) {
    src.schedule_after(latency,
                       [this, env = std::move(env)] { deliver_at_destination(env); });
  } else {
    ++shard_state_[fs].cross_sent;
    // With lookahead <= latency_model().min_latency() this clamp is a no-op;
    // it keeps conservatism unconditional if the model is tightened later.
    if (latency < engine_.lookahead()) latency = engine_.lookahead();
    engine_.post_cross(
        fs, ts, src.now() + latency,
        [this, env = std::move(env)] { deliver_at_destination(env); });
  }
  return true;
}

NetworkStats ShardedFabric::stats(NetworkId network) const {
  NetworkStats total;
  for (const auto& ps : shard_state_) total.add(ps.nets.at(network.value));
  return total;
}

NetworkStats ShardedFabric::total_stats() const {
  NetworkStats total;
  for (const auto& ps : shard_state_) {
    for (const auto& st : ps.nets) total.add(st);
  }
  return total;
}

std::uint64_t ShardedFabric::register_metrics(obs::Registry& registry,
                                              std::string prefix) {
  return registry.register_probe(
      [this, prefix = std::move(prefix)](obs::Registry& r) {
        publish_stats_gauges(r, prefix, total_stats());
        r.gauge(prefix + ".cross_shard_sent")
            ->set(static_cast<double>(cross_shard_sent()));
      });
}

std::uint64_t ShardedFabric::cross_shard_sent() const noexcept {
  std::uint64_t n = 0;
  for (const auto& ps : shard_state_) n += ps.cross_sent;
  return n;
}

void ShardedFabric::reset_stats() {
  for (auto& ps : shard_state_) {
    for (auto& st : ps.nets) st = NetworkStats{};
    ps.cross_sent = 0;
  }
}

}  // namespace phoenix::net
