#include "net/fabric.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace phoenix::net {

sim::SimTime LatencyModel::sample(std::size_t bytes, sim::Rng& rng,
                                  bool cross_group) const {
  double raw = static_cast<double>(base) + per_byte_us * static_cast<double>(bytes);
  if (cross_group) raw += static_cast<double>(cross_group_extra);
  const double jitter = raw * jitter_frac;
  const double total = raw + rng.uniform(-jitter, jitter);
  return total < 1.0 ? sim::SimTime{1} : static_cast<sim::SimTime>(total);
}

Fabric::Fabric(sim::Engine& engine, std::size_t node_count, std::size_t network_count)
    : engine_(engine),
      node_count_(node_count),
      network_count_(network_count),
      interface_up_(node_count * network_count, 1),
      stats_(network_count) {
  if (network_count == 0) throw std::invalid_argument("Fabric requires >= 1 network");
}

bool Fabric::interface_up(NodeId node, NetworkId network) const {
  assert(node.value < node_count_ && network.value < network_count_);
  return interface_up_[index(node, network)] != 0;
}

void Fabric::set_interface_up(NodeId node, NetworkId network, bool up) {
  assert(node.value < node_count_ && network.value < network_count_);
  interface_up_[index(node, network)] = up ? 1 : 0;
}

void Fabric::set_node_links_up(NodeId node, bool up) {
  for (std::size_t n = 0; n < network_count_; ++n) {
    set_interface_up(node, NetworkId{static_cast<std::uint8_t>(n)}, up);
  }
}

bool Fabric::any_path(NodeId a, NodeId b) const {
  for (std::size_t n = 0; n < network_count_; ++n) {
    const NetworkId net{static_cast<std::uint8_t>(n)};
    if (interface_up(a, net) && interface_up(b, net)) return true;
  }
  return false;
}

bool Fabric::send(const Address& from, const Address& to, NetworkId network,
                  std::shared_ptr<const Message> message) {
  assert(message != nullptr);
  NetworkStats& st = stats_.at(network.value);
  const std::size_t bytes = kWireHeaderBytes + message->wire_size();

  if (!node_alive(from.node) || !node_alive(to.node) ||
      !interface_up(from.node, network) || !interface_up(to.node, network)) {
    ++st.messages_dropped;
    return false;
  }

  ++st.messages_sent;
  st.bytes_sent += bytes;
  st.bytes_by_type.slot(message->type_id()) += bytes;

  if (drop_ && drop_(from, to, *message)) {
    ++st.messages_lost;  // targeted fault injection; sender cannot tell
    return true;
  }

  if (latency_.loss_probability > 0.0 &&
      engine_.rng().chance(latency_.loss_probability)) {
    ++st.messages_lost;  // vanished on the wire; sender cannot tell
    return true;
  }

  const bool cross_group =
      group_size_ > 0 &&
      from.node.value / group_size_ != to.node.value / group_size_;
  const sim::SimTime latency = latency_.sample(bytes, engine_.rng(), cross_group);
  Envelope env{from, to, network, std::move(message)};
  engine_.schedule_after(latency, [this, env = std::move(env)] {
    // Delivery-time checks: the destination may have died or its interface
    // may have been cut while the message was in flight.
    if (!node_alive(env.to.node) || !interface_up(env.to.node, env.network)) {
      ++stats_.at(env.network.value).messages_dropped;
      return;
    }
    if (deliver_) deliver_(env);
  });
  return true;
}

NetworkId Fabric::send_any(const Address& from, const Address& to,
                           std::shared_ptr<const Message> message) {
  for (std::size_t n = 0; n < network_count_; ++n) {
    const NetworkId net{static_cast<std::uint8_t>(n)};
    if (interface_up(from.node, net) && interface_up(to.node, net)) {
      if (send(from, to, net, message)) return net;
    }
  }
  return NetworkId{};
}

const NetworkStats& Fabric::stats(NetworkId network) const {
  return stats_.at(network.value);
}

NetworkStats Fabric::total_stats() const {
  NetworkStats total;
  for (const auto& st : stats_) {
    total.messages_sent += st.messages_sent;
    total.bytes_sent += st.bytes_sent;
    total.messages_dropped += st.messages_dropped;
    total.messages_lost += st.messages_lost;
    // Flat vector accumulate — no per-type string hashing or node churn.
    total.bytes_by_type.add(st.bytes_by_type);
  }
  return total;
}

void Fabric::reset_stats() {
  for (auto& st : stats_) st = NetworkStats{};
}

}  // namespace phoenix::net
