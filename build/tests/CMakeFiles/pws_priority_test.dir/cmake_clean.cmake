file(REMOVE_RECURSE
  "CMakeFiles/pws_priority_test.dir/pws_priority_test.cpp.o"
  "CMakeFiles/pws_priority_test.dir/pws_priority_test.cpp.o.d"
  "pws_priority_test"
  "pws_priority_test.pdb"
  "pws_priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
