# Empty dependencies file for pws_priority_test.
# This may be replaced when dependencies are built.
