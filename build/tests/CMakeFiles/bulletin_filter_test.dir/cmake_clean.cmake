file(REMOVE_RECURSE
  "CMakeFiles/bulletin_filter_test.dir/bulletin_filter_test.cpp.o"
  "CMakeFiles/bulletin_filter_test.dir/bulletin_filter_test.cpp.o.d"
  "bulletin_filter_test"
  "bulletin_filter_test.pdb"
  "bulletin_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulletin_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
