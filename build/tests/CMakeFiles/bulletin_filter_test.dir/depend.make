# Empty dependencies file for bulletin_filter_test.
# This may be replaced when dependencies are built.
