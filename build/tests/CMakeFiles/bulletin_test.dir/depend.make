# Empty dependencies file for bulletin_test.
# This may be replaced when dependencies are built.
