file(REMOVE_RECURSE
  "CMakeFiles/bulletin_test.dir/bulletin_test.cpp.o"
  "CMakeFiles/bulletin_test.dir/bulletin_test.cpp.o.d"
  "bulletin_test"
  "bulletin_test.pdb"
  "bulletin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulletin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
