# Empty compiler generated dependencies file for mpi_job_test.
# This may be replaced when dependencies are built.
