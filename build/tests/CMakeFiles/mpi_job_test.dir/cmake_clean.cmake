file(REMOVE_RECURSE
  "CMakeFiles/mpi_job_test.dir/mpi_job_test.cpp.o"
  "CMakeFiles/mpi_job_test.dir/mpi_job_test.cpp.o.d"
  "mpi_job_test"
  "mpi_job_test.pdb"
  "mpi_job_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
