# Empty compiler generated dependencies file for pws_test.
# This may be replaced when dependencies are built.
