file(REMOVE_RECURSE
  "CMakeFiles/pws_test.dir/pws_test.cpp.o"
  "CMakeFiles/pws_test.dir/pws_test.cpp.o.d"
  "pws_test"
  "pws_test.pdb"
  "pws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
