file(REMOVE_RECURSE
  "CMakeFiles/event_extra_test.dir/event_extra_test.cpp.o"
  "CMakeFiles/event_extra_test.dir/event_extra_test.cpp.o.d"
  "event_extra_test"
  "event_extra_test.pdb"
  "event_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
