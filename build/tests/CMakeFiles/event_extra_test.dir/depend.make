# Empty dependencies file for event_extra_test.
# This may be replaced when dependencies are built.
