# Empty dependencies file for parallel_trials_test.
# This may be replaced when dependencies are built.
