file(REMOVE_RECURSE
  "CMakeFiles/parallel_trials_test.dir/parallel_trials_test.cpp.o"
  "CMakeFiles/parallel_trials_test.dir/parallel_trials_test.cpp.o.d"
  "parallel_trials_test"
  "parallel_trials_test.pdb"
  "parallel_trials_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_trials_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
