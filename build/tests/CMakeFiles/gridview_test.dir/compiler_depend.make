# Empty compiler generated dependencies file for gridview_test.
# This may be replaced when dependencies are built.
