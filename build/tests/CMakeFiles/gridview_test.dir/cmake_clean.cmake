file(REMOVE_RECURSE
  "CMakeFiles/gridview_test.dir/gridview_test.cpp.o"
  "CMakeFiles/gridview_test.dir/gridview_test.cpp.o.d"
  "gridview_test"
  "gridview_test.pdb"
  "gridview_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridview_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
