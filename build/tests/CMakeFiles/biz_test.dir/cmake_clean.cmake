file(REMOVE_RECURSE
  "CMakeFiles/biz_test.dir/biz_test.cpp.o"
  "CMakeFiles/biz_test.dir/biz_test.cpp.o.d"
  "biz_test"
  "biz_test.pdb"
  "biz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
