# Empty compiler generated dependencies file for biz_test.
# This may be replaced when dependencies are built.
