file(REMOVE_RECURSE
  "CMakeFiles/deps_aggregate_test.dir/deps_aggregate_test.cpp.o"
  "CMakeFiles/deps_aggregate_test.dir/deps_aggregate_test.cpp.o.d"
  "deps_aggregate_test"
  "deps_aggregate_test.pdb"
  "deps_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deps_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
