file(REMOVE_RECURSE
  "CMakeFiles/fault_log_test.dir/fault_log_test.cpp.o"
  "CMakeFiles/fault_log_test.dir/fault_log_test.cpp.o.d"
  "fault_log_test"
  "fault_log_test.pdb"
  "fault_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
