# Empty dependencies file for fault_log_test.
# This may be replaced when dependencies are built.
