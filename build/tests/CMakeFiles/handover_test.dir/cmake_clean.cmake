file(REMOVE_RECURSE
  "CMakeFiles/handover_test.dir/handover_test.cpp.o"
  "CMakeFiles/handover_test.dir/handover_test.cpp.o.d"
  "handover_test"
  "handover_test.pdb"
  "handover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
