# Empty dependencies file for table4_linpack.
# This may be replaced when dependencies are built.
