file(REMOVE_RECURSE
  "CMakeFiles/table4_linpack.dir/table4_linpack.cpp.o"
  "CMakeFiles/table4_linpack.dir/table4_linpack.cpp.o.d"
  "table4_linpack"
  "table4_linpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_linpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
