file(REMOVE_RECURSE
  "CMakeFiles/table3_es_faults.dir/table3_es_faults.cpp.o"
  "CMakeFiles/table3_es_faults.dir/table3_es_faults.cpp.o.d"
  "table3_es_faults"
  "table3_es_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_es_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
