# Empty compiler generated dependencies file for table3_es_faults.
# This may be replaced when dependencies are built.
