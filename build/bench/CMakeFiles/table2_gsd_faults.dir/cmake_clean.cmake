file(REMOVE_RECURSE
  "CMakeFiles/table2_gsd_faults.dir/table2_gsd_faults.cpp.o"
  "CMakeFiles/table2_gsd_faults.dir/table2_gsd_faults.cpp.o.d"
  "table2_gsd_faults"
  "table2_gsd_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_gsd_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
