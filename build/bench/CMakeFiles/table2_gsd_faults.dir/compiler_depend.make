# Empty compiler generated dependencies file for table2_gsd_faults.
# This may be replaced when dependencies are built.
