# Empty compiler generated dependencies file for table1_wd_faults.
# This may be replaced when dependencies are built.
