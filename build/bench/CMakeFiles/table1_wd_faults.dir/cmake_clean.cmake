file(REMOVE_RECURSE
  "CMakeFiles/table1_wd_faults.dir/table1_wd_faults.cpp.o"
  "CMakeFiles/table1_wd_faults.dir/table1_wd_faults.cpp.o.d"
  "table1_wd_faults"
  "table1_wd_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_wd_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
