file(REMOVE_RECURSE
  "CMakeFiles/pws_vs_pbs.dir/pws_vs_pbs.cpp.o"
  "CMakeFiles/pws_vs_pbs.dir/pws_vs_pbs.cpp.o.d"
  "pws_vs_pbs"
  "pws_vs_pbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_vs_pbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
