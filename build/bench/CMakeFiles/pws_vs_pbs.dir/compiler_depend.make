# Empty compiler generated dependencies file for pws_vs_pbs.
# This may be replaced when dependencies are built.
