file(REMOVE_RECURSE
  "CMakeFiles/fig9_pws_gui.dir/fig9_pws_gui.cpp.o"
  "CMakeFiles/fig9_pws_gui.dir/fig9_pws_gui.cpp.o.d"
  "fig9_pws_gui"
  "fig9_pws_gui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pws_gui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
