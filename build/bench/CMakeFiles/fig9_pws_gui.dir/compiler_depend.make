# Empty compiler generated dependencies file for fig9_pws_gui.
# This may be replaced when dependencies are built.
