# Empty dependencies file for availability.
# This may be replaced when dependencies are built.
