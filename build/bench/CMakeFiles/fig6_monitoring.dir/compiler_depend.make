# Empty compiler generated dependencies file for fig6_monitoring.
# This may be replaced when dependencies are built.
