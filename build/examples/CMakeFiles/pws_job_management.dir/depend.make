# Empty dependencies file for pws_job_management.
# This may be replaced when dependencies are built.
