file(REMOVE_RECURSE
  "CMakeFiles/pws_job_management.dir/pws_job_management.cpp.o"
  "CMakeFiles/pws_job_management.dir/pws_job_management.cpp.o.d"
  "pws_job_management"
  "pws_job_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_job_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
