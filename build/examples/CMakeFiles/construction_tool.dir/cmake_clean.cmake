file(REMOVE_RECURSE
  "CMakeFiles/construction_tool.dir/construction_tool.cpp.o"
  "CMakeFiles/construction_tool.dir/construction_tool.cpp.o.d"
  "construction_tool"
  "construction_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/construction_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
