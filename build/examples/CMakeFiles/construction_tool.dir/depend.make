# Empty dependencies file for construction_tool.
# This may be replaced when dependencies are built.
