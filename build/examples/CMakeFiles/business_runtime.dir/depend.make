# Empty dependencies file for business_runtime.
# This may be replaced when dependencies are built.
