file(REMOVE_RECURSE
  "CMakeFiles/business_runtime.dir/business_runtime.cpp.o"
  "CMakeFiles/business_runtime.dir/business_runtime.cpp.o.d"
  "business_runtime"
  "business_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/business_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
