file(REMOVE_RECURSE
  "CMakeFiles/gridview_monitor.dir/gridview_monitor.cpp.o"
  "CMakeFiles/gridview_monitor.dir/gridview_monitor.cpp.o.d"
  "gridview_monitor"
  "gridview_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridview_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
