# Empty dependencies file for gridview_monitor.
# This may be replaced when dependencies are built.
