# Empty compiler generated dependencies file for custom_user_env.
# This may be replaced when dependencies are built.
