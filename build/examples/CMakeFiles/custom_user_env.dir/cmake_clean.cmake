file(REMOVE_RECURSE
  "CMakeFiles/custom_user_env.dir/custom_user_env.cpp.o"
  "CMakeFiles/custom_user_env.dir/custom_user_env.cpp.o.d"
  "custom_user_env"
  "custom_user_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_user_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
