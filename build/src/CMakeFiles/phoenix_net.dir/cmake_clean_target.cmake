file(REMOVE_RECURSE
  "libphoenix_net.a"
)
