# Empty dependencies file for phoenix_net.
# This may be replaced when dependencies are built.
