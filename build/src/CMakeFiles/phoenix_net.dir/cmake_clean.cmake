file(REMOVE_RECURSE
  "CMakeFiles/phoenix_net.dir/net/fabric.cpp.o"
  "CMakeFiles/phoenix_net.dir/net/fabric.cpp.o.d"
  "CMakeFiles/phoenix_net.dir/net/message.cpp.o"
  "CMakeFiles/phoenix_net.dir/net/message.cpp.o.d"
  "libphoenix_net.a"
  "libphoenix_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
