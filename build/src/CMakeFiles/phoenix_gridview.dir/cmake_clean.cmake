file(REMOVE_RECURSE
  "CMakeFiles/phoenix_gridview.dir/gridview/gridview.cpp.o"
  "CMakeFiles/phoenix_gridview.dir/gridview/gridview.cpp.o.d"
  "libphoenix_gridview.a"
  "libphoenix_gridview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_gridview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
