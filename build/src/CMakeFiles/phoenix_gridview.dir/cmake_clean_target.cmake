file(REMOVE_RECURSE
  "libphoenix_gridview.a"
)
