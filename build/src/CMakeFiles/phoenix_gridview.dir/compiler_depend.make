# Empty compiler generated dependencies file for phoenix_gridview.
# This may be replaced when dependencies are built.
