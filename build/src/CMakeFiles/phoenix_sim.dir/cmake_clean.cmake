file(REMOVE_RECURSE
  "CMakeFiles/phoenix_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/phoenix_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/phoenix_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/phoenix_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/phoenix_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/phoenix_sim.dir/sim/trace.cpp.o.d"
  "libphoenix_sim.a"
  "libphoenix_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
