file(REMOVE_RECURSE
  "CMakeFiles/phoenix_biz.dir/biz/business_runtime.cpp.o"
  "CMakeFiles/phoenix_biz.dir/biz/business_runtime.cpp.o.d"
  "libphoenix_biz.a"
  "libphoenix_biz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_biz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
