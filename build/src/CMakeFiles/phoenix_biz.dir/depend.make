# Empty dependencies file for phoenix_biz.
# This may be replaced when dependencies are built.
