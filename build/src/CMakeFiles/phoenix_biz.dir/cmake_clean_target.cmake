file(REMOVE_RECURSE
  "libphoenix_biz.a"
)
