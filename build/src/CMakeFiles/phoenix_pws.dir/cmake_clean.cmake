file(REMOVE_RECURSE
  "CMakeFiles/phoenix_pws.dir/pws/job.cpp.o"
  "CMakeFiles/phoenix_pws.dir/pws/job.cpp.o.d"
  "CMakeFiles/phoenix_pws.dir/pws/pool.cpp.o"
  "CMakeFiles/phoenix_pws.dir/pws/pool.cpp.o.d"
  "CMakeFiles/phoenix_pws.dir/pws/portal.cpp.o"
  "CMakeFiles/phoenix_pws.dir/pws/portal.cpp.o.d"
  "CMakeFiles/phoenix_pws.dir/pws/pws.cpp.o"
  "CMakeFiles/phoenix_pws.dir/pws/pws.cpp.o.d"
  "CMakeFiles/phoenix_pws.dir/pws/scheduler.cpp.o"
  "CMakeFiles/phoenix_pws.dir/pws/scheduler.cpp.o.d"
  "libphoenix_pws.a"
  "libphoenix_pws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_pws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
