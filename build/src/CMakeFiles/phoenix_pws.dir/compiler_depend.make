# Empty compiler generated dependencies file for phoenix_pws.
# This may be replaced when dependencies are built.
