file(REMOVE_RECURSE
  "libphoenix_pws.a"
)
