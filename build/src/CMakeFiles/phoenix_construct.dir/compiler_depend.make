# Empty compiler generated dependencies file for phoenix_construct.
# This may be replaced when dependencies are built.
