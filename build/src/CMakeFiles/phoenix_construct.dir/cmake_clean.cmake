file(REMOVE_RECURSE
  "CMakeFiles/phoenix_construct.dir/construct/constructor.cpp.o"
  "CMakeFiles/phoenix_construct.dir/construct/constructor.cpp.o.d"
  "libphoenix_construct.a"
  "libphoenix_construct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_construct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
