file(REMOVE_RECURSE
  "libphoenix_construct.a"
)
