file(REMOVE_RECURSE
  "libphoenix_workload.a"
)
