# Empty dependencies file for phoenix_workload.
# This may be replaced when dependencies are built.
