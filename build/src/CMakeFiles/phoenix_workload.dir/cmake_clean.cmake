file(REMOVE_RECURSE
  "CMakeFiles/phoenix_workload.dir/workload/hpl_model.cpp.o"
  "CMakeFiles/phoenix_workload.dir/workload/hpl_model.cpp.o.d"
  "CMakeFiles/phoenix_workload.dir/workload/job_trace.cpp.o"
  "CMakeFiles/phoenix_workload.dir/workload/job_trace.cpp.o.d"
  "CMakeFiles/phoenix_workload.dir/workload/mpi_job.cpp.o"
  "CMakeFiles/phoenix_workload.dir/workload/mpi_job.cpp.o.d"
  "CMakeFiles/phoenix_workload.dir/workload/resource_model.cpp.o"
  "CMakeFiles/phoenix_workload.dir/workload/resource_model.cpp.o.d"
  "libphoenix_workload.a"
  "libphoenix_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
