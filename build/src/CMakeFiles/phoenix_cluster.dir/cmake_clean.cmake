file(REMOVE_RECURSE
  "CMakeFiles/phoenix_cluster.dir/cluster/cluster.cpp.o"
  "CMakeFiles/phoenix_cluster.dir/cluster/cluster.cpp.o.d"
  "CMakeFiles/phoenix_cluster.dir/cluster/daemon.cpp.o"
  "CMakeFiles/phoenix_cluster.dir/cluster/daemon.cpp.o.d"
  "CMakeFiles/phoenix_cluster.dir/cluster/node.cpp.o"
  "CMakeFiles/phoenix_cluster.dir/cluster/node.cpp.o.d"
  "libphoenix_cluster.a"
  "libphoenix_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
