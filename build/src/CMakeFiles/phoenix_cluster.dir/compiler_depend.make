# Empty compiler generated dependencies file for phoenix_cluster.
# This may be replaced when dependencies are built.
