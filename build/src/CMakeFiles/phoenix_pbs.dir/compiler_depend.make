# Empty compiler generated dependencies file for phoenix_pbs.
# This may be replaced when dependencies are built.
