file(REMOVE_RECURSE
  "CMakeFiles/phoenix_pbs.dir/pbs/mom.cpp.o"
  "CMakeFiles/phoenix_pbs.dir/pbs/mom.cpp.o.d"
  "CMakeFiles/phoenix_pbs.dir/pbs/pbs_server.cpp.o"
  "CMakeFiles/phoenix_pbs.dir/pbs/pbs_server.cpp.o.d"
  "libphoenix_pbs.a"
  "libphoenix_pbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_pbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
