file(REMOVE_RECURSE
  "libphoenix_pbs.a"
)
