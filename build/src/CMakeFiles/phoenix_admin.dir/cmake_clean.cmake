file(REMOVE_RECURSE
  "CMakeFiles/phoenix_admin.dir/admin/admin_console.cpp.o"
  "CMakeFiles/phoenix_admin.dir/admin/admin_console.cpp.o.d"
  "libphoenix_admin.a"
  "libphoenix_admin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
