file(REMOVE_RECURSE
  "libphoenix_admin.a"
)
