# Empty compiler generated dependencies file for phoenix_admin.
# This may be replaced when dependencies are built.
