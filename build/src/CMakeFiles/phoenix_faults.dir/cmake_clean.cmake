file(REMOVE_RECURSE
  "CMakeFiles/phoenix_faults.dir/faults/fault_injector.cpp.o"
  "CMakeFiles/phoenix_faults.dir/faults/fault_injector.cpp.o.d"
  "libphoenix_faults.a"
  "libphoenix_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
