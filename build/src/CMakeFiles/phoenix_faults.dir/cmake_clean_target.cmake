file(REMOVE_RECURSE
  "libphoenix_faults.a"
)
