# Empty dependencies file for phoenix_faults.
# This may be replaced when dependencies are built.
