
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/api.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/api.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/api.cpp.o.d"
  "/root/repo/src/kernel/bulletin/data_bulletin.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/bulletin/data_bulletin.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/bulletin/data_bulletin.cpp.o.d"
  "/root/repo/src/kernel/checkpoint/checkpoint_service.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/checkpoint/checkpoint_service.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/checkpoint/checkpoint_service.cpp.o.d"
  "/root/repo/src/kernel/config/configuration_service.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/config/configuration_service.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/config/configuration_service.cpp.o.d"
  "/root/repo/src/kernel/detector/detectors.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/detector/detectors.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/detector/detectors.cpp.o.d"
  "/root/repo/src/kernel/event/event_service.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/event/event_service.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/event/event_service.cpp.o.d"
  "/root/repo/src/kernel/group/group_service.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/group/group_service.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/group/group_service.cpp.o.d"
  "/root/repo/src/kernel/group/meta_group.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/group/meta_group.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/group/meta_group.cpp.o.d"
  "/root/repo/src/kernel/group/watch_daemon.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/group/watch_daemon.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/group/watch_daemon.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/kernel.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/kernel.cpp.o.d"
  "/root/repo/src/kernel/ppm/process_manager.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/ppm/process_manager.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/ppm/process_manager.cpp.o.d"
  "/root/repo/src/kernel/security/security_service.cpp" "src/CMakeFiles/phoenix_kernel.dir/kernel/security/security_service.cpp.o" "gcc" "src/CMakeFiles/phoenix_kernel.dir/kernel/security/security_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/phoenix_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phoenix_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/phoenix_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
