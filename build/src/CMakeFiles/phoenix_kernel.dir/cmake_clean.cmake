file(REMOVE_RECURSE
  "CMakeFiles/phoenix_kernel.dir/kernel/api.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/api.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/bulletin/data_bulletin.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/bulletin/data_bulletin.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/checkpoint/checkpoint_service.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/checkpoint/checkpoint_service.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/config/configuration_service.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/config/configuration_service.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/detector/detectors.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/detector/detectors.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/event/event_service.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/event/event_service.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/group/group_service.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/group/group_service.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/group/meta_group.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/group/meta_group.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/group/watch_daemon.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/group/watch_daemon.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/kernel.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/kernel.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/ppm/process_manager.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/ppm/process_manager.cpp.o.d"
  "CMakeFiles/phoenix_kernel.dir/kernel/security/security_service.cpp.o"
  "CMakeFiles/phoenix_kernel.dir/kernel/security/security_service.cpp.o.d"
  "libphoenix_kernel.a"
  "libphoenix_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoenix_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
