file(REMOVE_RECURSE
  "libphoenix_kernel.a"
)
