# Empty compiler generated dependencies file for phoenix_kernel.
# This may be replaced when dependencies are built.
