// Reproduces paper Table 3: "Three Unhealthy Situations for ES".
//
// Paper values:
//   process: 30 s / 12 us / 0.12 s (sum 30.12 s) — GSD supervision restart,
//            state retrieved from the checkpoint service
//   node:    30 s / 0.3 s / 2.95 s (sum 33.25 s) — rides the GSD migration
//   network: 30 s / 12 us / 0      (sum ~30 s)
//
// The network row is detected through the hosting node's per-network
// heartbeat analysis (the ES itself does not heartbeat); we report the
// kernel's network-fault record for the ES-hosting node.
#include <cstdio>

#include "bench_util.h"

using namespace phoenix;
using namespace phoenix::bench;

int main() {
  kernel::FtParams params;
  const net::PartitionId target{5};

  print_fault_table_header(
      "Table 3 - Three Unhealthy Situations for ES (measured vs paper)");

  Harness probe_cluster(paper_testbed(), params);
  const net::NodeId server = probe_cluster.cluster.server_node(target);

  const auto process = run_fault_scenario(
      params, server,
      [target](Harness& h) {
        return h.injector.kill_daemon(h.kernel.event_service(target));
      },
      "ES", kernel::FaultKind::kProcessFailure);
  if (process) print_fault_row("process", *process, "30s", "12us", "0.12s");

  const auto node = run_fault_scenario(
      params, server,
      [server](Harness& h) { return h.injector.crash_node(server); }, "ES",
      kernel::FaultKind::kNodeFailure);
  if (node) print_fault_row("node", *node, "30s", "0.3s", "2.95s");

  const auto network = run_fault_scenario(
      params, server,
      [server](Harness& h) {
        return h.injector.cut_interface(server, net::NetworkId{2});
      },
      "WD", kernel::FaultKind::kNetworkFailure);
  if (network) print_fault_row("network", *network, "30s", "12us", "0s");

  std::printf(
      "\nA recovered event service retrieves its consumer registry from the\n"
      "checkpoint service, so registered consumers keep receiving events\n"
      "without re-registering (verified by tests/event_test.cpp).\n");
  return 0;
}
