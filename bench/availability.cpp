// Availability / MTTR study — quantifying the introduction's "high
// availability support for business computing which promises delivering
// 7x24 service" as a function of the ONE tunable the paper calls out: the
// heartbeat interval.
//
// Two simulated hours per configuration on the 136-node testbed, with a
// Poisson fault load (daemon kills, compute-node crashes with later repair,
// NIC cuts). Reported per interval: handled faults, mean time to recover
// (detection -> service restored), and whole-system availability (fraction
// of time with no unrecovered fault outstanding, via the admin console's
// fault analyzer).
#include <cstdio>

#include "admin/admin_console.h"
#include "bench_util.h"

using namespace phoenix;
using namespace phoenix::bench;

namespace {

struct Row {
  double interval_s;
  std::size_t faults;
  std::size_t unrecovered;
  double mean_ttr_s;
  double availability;
};

Row run(double interval_s) {
  kernel::FtParams params;
  params.heartbeat_interval = sim::from_seconds(interval_s);
  Harness h(paper_testbed(), params);
  admin::AdminConsole console(h.cluster,
                              h.cluster.compute_nodes(net::PartitionId{0})[0],
                              h.kernel);
  h.run_s(3 * interval_s);
  h.kernel.fault_log().clear();

  // Poisson fault load: mean one fault per 4 minutes for 2 hours.
  sim::Rng rng(2026);
  double t = h.cluster.now() / 1e6;
  const double horizon = t + 2.0 * 3600.0;
  std::vector<net::NodeId> crashed;
  while (t < horizon) {
    t += rng.exponential(240.0);
    const double dice = rng.uniform();
    h.injector.schedule(sim::from_seconds(t), [&h, &rng, &crashed, dice] {
      if (dice < 0.45) {
        // Kill a random per-node daemon.
        const auto node = net::NodeId{static_cast<std::uint32_t>(
            rng.uniform_int(0, h.cluster.node_count() - 1))};
        if (h.cluster.node(node).alive()) {
          h.injector.kill_daemon(h.kernel.watch_daemon(node));
        }
      } else if (dice < 0.7) {
        // Crash a compute node; repair it two minutes later.
        const auto p = net::PartitionId{static_cast<std::uint32_t>(
            rng.uniform_int(0, h.cluster.spec().partitions - 1))};
        const auto computes = h.cluster.compute_nodes(p);
        const auto node = computes[rng.uniform_int(0, computes.size() - 1)];
        if (h.cluster.node(node).alive()) {
          h.injector.crash_node(node);
          h.injector.schedule(h.cluster.now() + 120 * sim::kSecond,
                              [&h, node] {
                                h.injector.restore_node(node);
                                h.kernel.watch_daemon(node).start();
                                h.kernel.detector(node).start();
                                h.kernel.ppm(node).start();
                              },
                              "repair node");
        }
      } else if (dice < 0.85) {
        // Kill a partition service.
        const auto p = net::PartitionId{static_cast<std::uint32_t>(
            rng.uniform_int(0, h.cluster.spec().partitions - 1))};
        h.injector.kill_daemon(h.kernel.event_service(p));
      } else {
        // Flap a NIC for a minute.
        const auto node = net::NodeId{static_cast<std::uint32_t>(
            rng.uniform_int(0, h.cluster.node_count() - 1))};
        const net::NetworkId network{static_cast<std::uint8_t>(rng.uniform_int(0, 2))};
        h.injector.cut_interface(node, network);
        h.injector.schedule(h.cluster.now() + 60 * sim::kSecond,
                            [&h, node, network] {
                              h.injector.restore_interface(node, network);
                            },
                            "repair nic");
      }
    }, "fault");
  }
  h.run_s(2.0 * 3600.0 + 300.0);

  const admin::FaultAnalysis analysis = console.analyze_faults();
  Row row;
  row.interval_s = interval_s;
  row.faults = analysis.total_faults;
  row.unrecovered = analysis.unrecovered;
  row.availability = analysis.availability;
  double ttr = 0;
  std::size_t n = 0;
  for (const auto& [component, c] : analysis.by_component) {
    if (c.recovered > 0) {
      ttr += c.mean_ttr_s * static_cast<double>(c.recovered);
      n += c.recovered;
    }
  }
  row.mean_ttr_s = n == 0 ? 0 : ttr / static_cast<double>(n);
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Availability study - 2 simulated hours of Poisson faults on the\n"
      "136-node testbed, per heartbeat interval (the paper's tunable).\n\n");
  std::printf("%-10s | %-8s | %-12s | %-14s | %s\n", "interval", "faults",
              "unrecovered", "mean TTR", "availability");
  std::printf("%s\n", std::string(66, '-').c_str());
  for (const double interval_s : {1.0, 5.0, 15.0, 30.0}) {
    const Row row = run(interval_s);
    std::printf("%8.0fs | %-8zu | %-12zu | %11.2fs | %.5f\n", row.interval_s,
                row.faults, row.unrecovered, row.mean_ttr_s, row.availability);
  }
  std::printf(
      "\nTTR (and with it availability) tracks the heartbeat interval: the\n"
      "paper's 'the sum of detecting, diagnosing and recovery time is almost\n"
      "equal to the interval of sending heartbeat', integrated over a fault\n"
      "load. Operators trade monitoring overhead for recovery speed with one\n"
      "parameter.\n");
  return 0;
}
