// Simulation-core hot-path microbenchmark.
//
// Every paper figure is produced by pushing millions of events through
// sim::Engine, net::Fabric, and kernel::EventService; this bench pins down
// the per-event / per-send / per-publish cost so regressions (and wins) in
// the three hottest layers show up as a number, not a feeling. Emits
// BENCH_hotpath.json (or argv[1]) for trend tracking across PRs.
//
// Workloads:
//   scheduler  - schedule/fire/cancel mix shaped like the heartbeat storm:
//                every fired event re-arms itself and cancel+reschedules a
//                random pending timer (the watch-daemon grace-reset pattern).
//   fabric     - Fabric::send of heartbeat-sized messages with periodic
//                engine drains; measures the full on-wire accounting path.
//   publish    - EventService::publish_local against a realistic registry
//                (exact, prefix, wildcard, and non-matching subscriptions).
//   dispatch   - per-envelope handler routing: the ServiceRuntime dense
//                type-id table vs the message_cast if-chain every service
//                hand-rolled before it.
//   parallel   - a 16k-node sharded world (ParallelEngine + ShardedFabric)
//                driven by per-node heartbeat timers with a cross-shard
//                reporting fraction, swept across worker-thread counts
//                (pass --threads N to pin a single count). Speedups are
//                relative to the sequential reference mode and only show
//                above 1x on multi-core hosts, so the JSON also records
//                hardware_concurrency.
//
// Flags:
//   --quick            ~20x smaller iteration counts (CI smoke runs)
//   --threads N        pin the parallel sweep to one worker-thread count
//   --trace-json PATH  after the benches, re-run a small sharded world with
//                      the span store enabled and write the wire-hop spans
//                      as Chrome trace-event JSON (open in Perfetto); the
//                      run always contains cross-shard hops.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/shard_map.h"
#include "kernel/runtime/service_runtime.h"
#include "net/fabric.h"
#include "obs/span_store.h"
#include "sim/engine.h"
#include "sim/parallel_engine.h"

namespace phoenix::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Scheduler mix.
// ---------------------------------------------------------------------------

// Self-sustaining timer storm. Each fire re-arms the slot and resets one
// random other timer (cancel + reschedule), so the live set stays constant
// while the queue carries a realistic fraction of lazily-cancelled ghosts.
// Captures are sized like real daemon lambdas (this + ~24 bytes of state),
// which is what decides whether the callback type heap-allocates.
struct TimerStorm {
  explicit TimerStorm(std::size_t slots) : eng(42), ring(slots) {
    for (std::size_t s = 0; s < ring.size(); ++s) arm(s, 0x9e3779b97f4a7c15ull + s);
  }

  void arm(std::size_t slot, std::uint64_t payload) {
    const std::uint64_t a = payload + 1;
    const std::uint64_t b = payload ^ 0x94d049bb133111ebull;
    ring[slot] = eng.schedule_after(1 + (eng.rng().next() & 1023),
                                    [this, slot, a, b] { fire(slot, a ^ b); });
  }

  void fire(std::size_t slot, std::uint64_t payload) {
    // Reset a random pending timer: the heartbeat-grace pattern.
    const std::size_t victim =
        static_cast<std::size_t>(eng.rng().next() % ring.size());
    eng.cancel(ring[victim]);
    arm(victim, payload ^ victim);
    if (victim != slot) arm(slot, payload + slot);
  }

  sim::Engine eng;
  std::vector<sim::EventId> ring;
};

double bench_scheduler(std::size_t fires) {
  TimerStorm storm(4096);
  const auto t0 = Clock::now();
  const std::size_t ran = storm.eng.run(fires);
  const double secs = seconds_since(t0);
  if (ran != fires) std::fprintf(stderr, "scheduler mix ran dry (%zu)\n", ran);
  return static_cast<double>(ran) / secs;
}

// ---------------------------------------------------------------------------
// Fabric send path.
// ---------------------------------------------------------------------------

struct BenchPingMsg final : net::Message {
  std::size_t bytes = 128;
  PHOENIX_MESSAGE_TYPE("bench.ping")
  std::size_t wire_size() const noexcept override { return bytes; }
};

double bench_fabric(std::size_t sends) {
  sim::Engine eng(7);
  constexpr std::size_t kNodes = 64;
  net::Fabric fabric(eng, kNodes, 3);
  std::uint64_t delivered = 0;
  fabric.set_delivery_handler([&](const net::Envelope&) { ++delivered; });

  const auto msg = std::make_shared<BenchPingMsg>();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < sends; ++i) {
    const net::Address from{net::NodeId{static_cast<std::uint32_t>(i % kNodes)},
                            net::PortId{1}};
    const net::Address to{
        net::NodeId{static_cast<std::uint32_t>((i + 1 + i / kNodes) % kNodes)},
        net::PortId{1}};
    fabric.send(from, to, net::NetworkId{static_cast<std::uint8_t>(i % 3)}, msg);
    if ((i & 2047) == 2047) eng.run();  // drain in-flight deliveries
  }
  eng.run();
  const double secs = seconds_since(t0);
  if (delivered == 0) std::fprintf(stderr, "fabric bench delivered nothing\n");
  return static_cast<double>(sends) / secs;
}

// ---------------------------------------------------------------------------
// EventService publish fan-out.
// ---------------------------------------------------------------------------

double bench_publish(std::size_t publishes) {
  Harness h(paper_testbed());
  h.run_s(2.0);  // let services come up
  auto& es = h.kernel.event_service(net::PartitionId{0});

  // Registry shaped like a busy deployment: most consumers want specific
  // types, a few monitor whole prefixes, one wants everything, and many
  // subscriptions never match the published traffic at all.
  const char* exact_types[] = {"node.failed", "node.recovered", "app.exited",
                               "service.failed"};
  for (std::uint32_t c = 0; c < 96; ++c) {
    kernel::Subscription sub;
    sub.consumer = {net::NodeId{2 + c % 64}, net::PortId{static_cast<std::uint16_t>(20000 + c)}};
    if (c % 8 == 0) {
      sub.types = {"node.*"};
    } else if (c == 1) {
      sub.types = {"*"};
    } else if (c % 2 == 0) {
      sub.types = {exact_types[c % 4]};
    } else {
      sub.types = {"never.published." + std::to_string(c)};
    }
    if (c % 16 == 3) sub.attr_filters = {{"severity", "fatal"}};
    es.subscribe_local(std::move(sub), /*replicate=*/false);
  }

  const char* published[] = {"node.failed", "app.exited", "config.changed",
                             "node.recovered", "service.failed", "app.started"};
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < publishes; ++i) {
    kernel::Event e;
    e.type = published[i % 6];
    e.subject_node = net::NodeId{static_cast<std::uint32_t>(i % 100)};
    e.attrs = {{"severity", (i % 5 == 0) ? "fatal" : "warn"}};
    es.publish_local(std::move(e));
    // Drain in-flight notifies. run() would never return here — the kernel's
    // periodic heartbeats keep the queue non-empty forever — so advance
    // simulated time just past the fabric latency instead.
    if ((i & 255) == 255) h.cluster.engine().run_for(sim::kMillisecond);
  }
  h.cluster.engine().run_for(5 * sim::kMillisecond);
  return static_cast<double>(publishes) / seconds_since(t0);
}

// ---------------------------------------------------------------------------
// Handler dispatch: ServiceRuntime table vs the old message_cast if-chain.
// ---------------------------------------------------------------------------

// Ten message types, the size of a busy service's protocol (the GSD handles
// eight). Traffic round-robins across all of them, so the if-chain pays an
// average of ~5.5 failed dynamic_casts per envelope while the table pays one
// array index regardless of protocol size.
#define BENCH_DISPATCH_MSG(N)                                          \
  struct DispatchMsg##N final : net::Message {                         \
    std::uint64_t payload = N;                                         \
    PHOENIX_MESSAGE_TYPE("bench.dispatch" #N)                          \
    std::size_t wire_size() const noexcept override { return 64; }     \
  };
BENCH_DISPATCH_MSG(0)
BENCH_DISPATCH_MSG(1)
BENCH_DISPATCH_MSG(2)
BENCH_DISPATCH_MSG(3)
BENCH_DISPATCH_MSG(4)
BENCH_DISPATCH_MSG(5)
BENCH_DISPATCH_MSG(6)
BENCH_DISPATCH_MSG(7)
BENCH_DISPATCH_MSG(8)
BENCH_DISPATCH_MSG(9)
#undef BENCH_DISPATCH_MSG

/// The pre-runtime idiom: every service's handle() was a chain of
/// message_cast (dynamic_cast) attempts, one per protocol message.
class IfChainService final : public cluster::Daemon {
 public:
  IfChainService(cluster::Cluster& cluster, net::NodeId node)
      : Daemon(cluster, "bench.ifchain", node, net::PortId{100}) {}

  std::uint64_t sink = 0;

 private:
  void handle(const net::Envelope& env) override {
    const net::Message& m = *env.message;
    if (const auto* p = net::message_cast<DispatchMsg0>(m)) { sink += p->payload; return; }
    if (const auto* p = net::message_cast<DispatchMsg1>(m)) { sink += p->payload; return; }
    if (const auto* p = net::message_cast<DispatchMsg2>(m)) { sink += p->payload; return; }
    if (const auto* p = net::message_cast<DispatchMsg3>(m)) { sink += p->payload; return; }
    if (const auto* p = net::message_cast<DispatchMsg4>(m)) { sink += p->payload; return; }
    if (const auto* p = net::message_cast<DispatchMsg5>(m)) { sink += p->payload; return; }
    if (const auto* p = net::message_cast<DispatchMsg6>(m)) { sink += p->payload; return; }
    if (const auto* p = net::message_cast<DispatchMsg7>(m)) { sink += p->payload; return; }
    if (const auto* p = net::message_cast<DispatchMsg8>(m)) { sink += p->payload; return; }
    if (const auto* p = net::message_cast<DispatchMsg9>(m)) { sink += p->payload; return; }
  }
};

/// The same protocol on the runtime's dense type-id table (standalone: no
/// directory/params, so only dispatch and counters are in play).
class TableService final : public kernel::ServiceRuntime {
 public:
  TableService(cluster::Cluster& cluster, net::NodeId node)
      : ServiceRuntime(cluster, "bench.table", node, net::PortId{101},
                       /*directory=*/nullptr, /*params=*/nullptr, Options{}) {
    on<DispatchMsg0>([this](const DispatchMsg0& m) { sink += m.payload; });
    on<DispatchMsg1>([this](const DispatchMsg1& m) { sink += m.payload; });
    on<DispatchMsg2>([this](const DispatchMsg2& m) { sink += m.payload; });
    on<DispatchMsg3>([this](const DispatchMsg3& m) { sink += m.payload; });
    on<DispatchMsg4>([this](const DispatchMsg4& m) { sink += m.payload; });
    on<DispatchMsg5>([this](const DispatchMsg5& m) { sink += m.payload; });
    on<DispatchMsg6>([this](const DispatchMsg6& m) { sink += m.payload; });
    on<DispatchMsg7>([this](const DispatchMsg7& m) { sink += m.payload; });
    on<DispatchMsg8>([this](const DispatchMsg8& m) { sink += m.payload; });
    on<DispatchMsg9>([this](const DispatchMsg9& m) { sink += m.payload; });
  }

  std::uint64_t sink = 0;
};

struct DispatchRates {
  double table_per_sec = 0;
  double ifchain_per_sec = 0;
};

DispatchRates bench_dispatch(std::size_t deliveries) {
  cluster::ClusterSpec spec;
  spec.partitions = 1;
  spec.computes_per_partition = 1;
  spec.backups_per_partition = 0;
  spec.networks = 1;
  cluster::Cluster cluster(spec);
  IfChainService chain(cluster, cluster.server_node(net::PartitionId{0}));
  TableService table(cluster, cluster.server_node(net::PartitionId{0}));
  chain.start();
  table.start();

  std::vector<net::Envelope> envs;
  const net::Address from{net::NodeId{0}, net::PortId{99}};
  auto add = [&](std::shared_ptr<const net::Message> msg) {
    envs.push_back(net::Envelope{from, {}, net::NetworkId{0}, std::move(msg)});
  };
  add(std::make_shared<DispatchMsg0>());
  add(std::make_shared<DispatchMsg1>());
  add(std::make_shared<DispatchMsg2>());
  add(std::make_shared<DispatchMsg3>());
  add(std::make_shared<DispatchMsg4>());
  add(std::make_shared<DispatchMsg5>());
  add(std::make_shared<DispatchMsg6>());
  add(std::make_shared<DispatchMsg7>());
  add(std::make_shared<DispatchMsg8>());
  add(std::make_shared<DispatchMsg9>());

  DispatchRates rates;
  {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < deliveries; ++i) table.deliver(envs[i % 10]);
    rates.table_per_sec = static_cast<double>(deliveries) / seconds_since(t0);
  }
  {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < deliveries; ++i) chain.deliver(envs[i % 10]);
    rates.ifchain_per_sec = static_cast<double>(deliveries) / seconds_since(t0);
  }
  if (table.sink != chain.sink) {
    std::fprintf(stderr, "dispatch checksum mismatch (%llu vs %llu)\n",
                 static_cast<unsigned long long>(table.sink),
                 static_cast<unsigned long long>(chain.sink));
  }
  return rates;
}

// ---------------------------------------------------------------------------
// Parallel sharded world.
// ---------------------------------------------------------------------------

// A 16k-node cluster on 16 shards: every node runs a self-rearming heartbeat
// timer sending to its partition server (intra-shard by construction), and
// every 8th beat reports to a rotating remote partition server (~94%
// cross-shard given 16 shards), so the window/mailbox machinery carries a
// realistic minority of the traffic rather than dominating it.
struct ShardedWorld {
  struct Scale {
    std::size_t partitions = 256;
    std::size_t nodes_per_partition = 64;  // 16384 nodes total
    std::size_t shards = 16;
    sim::SimTime horizon = 20 * sim::kMillisecond;
  };

  ShardedWorld(std::size_t threads, Scale scale,
               obs::SpanStore* spans = nullptr)
      : sc(scale),
        map(cluster::ShardMap::partition_blocks(sc.partitions,
                                                sc.nodes_per_partition,
                                                sc.shards)),
        pe({.shards = sc.shards,
            .threads = threads,
            .lookahead = net::LatencyModel{}.min_latency(),
            .seed = 4242}),
        fabric(pe, map.node_shards(), /*network_count=*/1) {
    fabric.set_group_size(sc.nodes_per_partition);
    // Delivery accounting lives in the fabric's own per-shard NetworkStats
    // (total_stats().messages_delivered) — no hand-rolled counters here.
    fabric.set_delivery_handler([](const net::Envelope&) {});
    if (spans != nullptr) fabric.set_span_store(spans);
    msg = std::make_shared<BenchPingMsg>();
    msg->bytes = 48;  // heartbeat-sized
  }

  net::NodeId server_of(std::size_t partition) const {
    return net::NodeId{
        static_cast<std::uint32_t>(partition * sc.nodes_per_partition)};
  }

  void tick(net::NodeId n, std::uint64_t seq) {
    sim::Engine& eng = pe.shard(map.shard_of(n));
    const std::size_t part = n.value / sc.nodes_per_partition;
    const net::PortId port{1};
    fabric.send({n, port}, {server_of(part), port}, net::NetworkId{0}, msg);
    if (seq % 8 == 0) {
      const std::size_t remote =
          (part + 1 + (n.value + seq) % (sc.partitions - 1)) % sc.partitions;
      fabric.send({n, port}, {server_of(remote), port}, net::NetworkId{0}, msg);
    }
    eng.schedule_after(200 + eng.rng().next() % 400,
                       [this, n, seq] { tick(n, seq + 1); });
  }

  /// Returns (events executed, wall seconds).
  std::pair<std::uint64_t, double> run() {
    for (std::uint32_t n = 0; n < sc.partitions * sc.nodes_per_partition; ++n) {
      pe.shard(map.shard_of(net::NodeId{n}))
          .schedule_at(1 + n % 997, [this, id = net::NodeId{n}] { tick(id, 1); });
    }
    const auto t0 = Clock::now();
    const std::uint64_t ran = pe.run_until(sc.horizon);
    return {ran, seconds_since(t0)};
  }

  Scale sc;
  cluster::ShardMap map;
  sim::ParallelEngine pe;
  net::ShardedFabric fabric;
  std::shared_ptr<BenchPingMsg> msg;
};

struct ParallelPoint {
  std::size_t threads = 0;
  double events_per_sec = 0;
  double speedup = 0;
};

struct ParallelResults {
  double baseline_events_per_sec = 0;  // sequential reference mode
  std::uint64_t events = 0;
  std::uint64_t cross_posted = 0;
  /// Merged per-shard fabric stats of the sequential reference run.
  net::NetworkStats fabric_stats;
  std::uint64_t fabric_cross_shard_sent = 0;
  std::vector<ParallelPoint> sweep;
};

ParallelResults bench_parallel(const std::vector<std::size_t>& thread_counts,
                               const ShardedWorld::Scale& scale) {
  ParallelResults out;
  {
    ShardedWorld world(/*threads=*/0, scale);
    const auto [ran, secs] = world.run();
    out.baseline_events_per_sec = static_cast<double>(ran) / secs;
    out.events = ran;
    out.cross_posted = world.pe.cross_posted();
    out.fabric_stats = world.fabric.total_stats();
    out.fabric_cross_shard_sent = world.fabric.cross_shard_sent();
    std::printf("parallel   t=seq: %12.0f events/s  (%llu events, %llu cross-shard, %llu delivered)\n",
                out.baseline_events_per_sec,
                static_cast<unsigned long long>(ran),
                static_cast<unsigned long long>(out.cross_posted),
                static_cast<unsigned long long>(out.fabric_stats.messages_delivered));
  }
  for (const std::size_t t : thread_counts) {
    ShardedWorld world(t, scale);
    const auto [ran, secs] = world.run();
    ParallelPoint p;
    p.threads = t;
    p.events_per_sec = static_cast<double>(ran) / secs;
    p.speedup = p.events_per_sec / out.baseline_events_per_sec;
    if (ran != out.events) {
      std::fprintf(stderr, "parallel bench diverged at t=%zu (%llu vs %llu)\n",
                   t, static_cast<unsigned long long>(ran),
                   static_cast<unsigned long long>(out.events));
    }
    std::printf("parallel   t=%-3zu: %12.0f events/s  (%.2fx)\n", t,
                p.events_per_sec, p.speedup);
    out.sweep.push_back(p);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Traced re-run: Chrome trace-event export.
// ---------------------------------------------------------------------------

// A small sharded world re-run with the span store on and ≥2 worker threads,
// so the exported trace always contains cross-shard wire hops (recorded on
// the destination shard's thread). Deliberately separate from the timed runs:
// tracing heap-allocates per send and must never touch the headline numbers.
bool export_trace_json(const char* path) {
  obs::SpanStore spans;
  spans.set_enabled(true);
  spans.set_capacity(1 << 18);
  // Horizon must cover >= 8 tick periods (200-600us each): cross-shard
  // reports only fire on every 8th beat, and the whole point of this export
  // is to contain them.
  ShardedWorld world(/*threads=*/2,
                     {.partitions = 16,
                      .nodes_per_partition = 16,
                      .shards = 4,
                      .horizon = 8 * sim::kMillisecond},
                     &spans);
  world.run();

  std::size_t cross = 0;
  for (const auto& s : spans.spans()) {
    if (s.outcome == "delivered_cross_shard") ++cross;
  }
  std::printf("trace      : %zu spans (%zu cross-shard) -> %s\n", spans.size(),
              cross, path);
  if (cross == 0) {
    std::fprintf(stderr, "trace run produced no cross-shard spans\n");
    return false;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  const std::string json = spans.to_chrome_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const char* out_path = "BENCH_hotpath.json";
  const char* trace_path = nullptr;
  bool quick = false;
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = {static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10))};
    } else if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::size_t scale_div = quick ? 20 : 1;
  phoenix::bench::ShardedWorld::Scale world_scale;
  if (quick) {
    world_scale = {.partitions = 32,
                   .nodes_per_partition = 32,
                   .shards = 8,
                   .horizon = 5 * phoenix::sim::kMillisecond};
    thread_counts = {2};
  }

  const double events_per_sec =
      phoenix::bench::bench_scheduler(2'000'000 / scale_div);
  std::printf("scheduler mix : %12.0f events/s\n", events_per_sec);
  const double sends_per_sec = phoenix::bench::bench_fabric(2'000'000 / scale_div);
  std::printf("fabric send   : %12.0f sends/s\n", sends_per_sec);
  const double publishes_per_sec =
      phoenix::bench::bench_publish(200'000 / scale_div);
  std::printf("es publish    : %12.0f publishes/s\n", publishes_per_sec);
  const auto dispatch = phoenix::bench::bench_dispatch(4'000'000 / scale_div);
  std::printf("dispatch table: %12.0f msgs/s\n", dispatch.table_per_sec);
  std::printf("dispatch chain: %12.0f msgs/s\n", dispatch.ifchain_per_sec);
  const auto parallel =
      phoenix::bench::bench_parallel(thread_counts, world_scale);

  if (trace_path != nullptr && !phoenix::bench::export_trace_json(trace_path)) {
    return 1;
  }

  std::string sweep_json;
  for (std::size_t i = 0; i < parallel.sweep.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s      { \"threads\": %zu, \"events_per_sec\": %.0f, "
                  "\"speedup\": %.3f }",
                  i ? ",\n" : "", parallel.sweep[i].threads,
                  parallel.sweep[i].events_per_sec, parallel.sweep[i].speedup);
    sweep_json += buf;
  }

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"engine_hotpath\",\n"
                 "  \"quick\": %s,\n"
                 "  \"events_per_sec\": %.0f,\n"
                 "  \"sends_per_sec\": %.0f,\n"
                 "  \"publishes_per_sec\": %.0f,\n"
                 "  \"dispatch_table_per_sec\": %.0f,\n"
                 "  \"dispatch_ifchain_per_sec\": %.0f,\n"
                 "  \"parallel\": {\n"
                 "    \"nodes\": %zu,\n"
                 "    \"shards\": %zu,\n"
                 "    \"lookahead_us\": %llu,\n"
                 "    \"hardware_concurrency\": %u,\n"
                 "    \"events\": %llu,\n"
                 "    \"cross_shard_posted\": %llu,\n"
                 "    \"baseline_events_per_sec\": %.0f,\n"
                 "    \"fabric\": {\n"
                 "      \"messages_sent\": %llu,\n"
                 "      \"messages_delivered\": %llu,\n"
                 "      \"messages_dropped\": %llu,\n"
                 "      \"messages_lost\": %llu,\n"
                 "      \"bytes_sent\": %llu,\n"
                 "      \"cross_shard_sent\": %llu\n"
                 "    },\n"
                 "    \"sweep\": [\n%s\n    ]\n"
                 "  }\n"
                 "}\n",
                 quick ? "true" : "false", events_per_sec, sends_per_sec,
                 publishes_per_sec, dispatch.table_per_sec,
                 dispatch.ifchain_per_sec,
                 world_scale.partitions * world_scale.nodes_per_partition,
                 world_scale.shards,
                 static_cast<unsigned long long>(
                     phoenix::net::LatencyModel{}.min_latency()),
                 std::thread::hardware_concurrency(),
                 static_cast<unsigned long long>(parallel.events),
                 static_cast<unsigned long long>(parallel.cross_posted),
                 parallel.baseline_events_per_sec,
                 static_cast<unsigned long long>(parallel.fabric_stats.messages_sent),
                 static_cast<unsigned long long>(parallel.fabric_stats.messages_delivered),
                 static_cast<unsigned long long>(parallel.fabric_stats.messages_dropped),
                 static_cast<unsigned long long>(parallel.fabric_stats.messages_lost),
                 static_cast<unsigned long long>(parallel.fabric_stats.bytes_sent),
                 static_cast<unsigned long long>(parallel.fabric_cross_shard_sent),
                 sweep_json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
