// Reproduces the paper's §5.3 scalability evaluation and the §4.3 design
// ablation behind it.
//
// Series reported:
//  (a) per-GSD monitoring load vs. cluster size — with the paper's
//      partitioned design the load per GSD is constant (one partition),
//      while the ablated "flat" design (every node in one group, §4.3's
//      rejected alternative) grows linearly;
//  (b) meta-group size (#partitions) vs. flat membership size (#nodes);
//  (c) cluster-wide data-bulletin query latency through the single access
//      point, vs. cluster size (GridView's collection path);
//  (d) event fan-out latency from publish to delivery across partitions.
#include <cstdio>

#include "bench_util.h"
#include "gridview/gridview.h"
#include "kernel/event/event_service.h"

using namespace phoenix;
using namespace phoenix::bench;

namespace {

struct ScalePoint {
  std::size_t nodes = 0;
  std::size_t partitions = 0;
  double hb_per_gsd_per_interval = 0;   // partitioned design
  double hb_flat_per_interval = 0;      // flat ablation (1 partition)
  std::size_t meta_group_size = 0;
  double query_latency_ms = 0;
  double event_fanout_ms = 0;
  std::uint64_t row_reply_bytes = 0;    // full-row cluster query
  std::uint64_t agg_reply_bytes = 0;    // aggregate-pushdown cluster query
};

ScalePoint measure(std::size_t partitions, std::size_t computes) {
  ScalePoint point;

  kernel::FtParams params;
  params.detector_sample_interval = 10 * sim::kSecond;

  // --- partitioned design -------------------------------------------------
  {
    cluster::ClusterSpec spec;
    spec.partitions = partitions;
    spec.computes_per_partition = computes;
    spec.backups_per_partition = 1;
    Harness h(spec, params);
    h.run_s(65.0);
    const std::uint64_t before = h.kernel.gsd(net::PartitionId{0}).heartbeats_received();
    h.run_s(120.0);  // 4 heartbeat intervals
    const std::uint64_t received =
        h.kernel.gsd(net::PartitionId{0}).heartbeats_received() - before;
    point.nodes = h.cluster.node_count();
    point.partitions = partitions;
    point.hb_per_gsd_per_interval = static_cast<double>(received) / 4.0;
    point.meta_group_size = h.kernel.gsd(net::PartitionId{0}).view().members.size();

    // (c) single-access-point full-cluster query latency, via GridView.
    gridview::GridView view(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                            h.kernel, 20 * sim::kSecond);
    view.start();
    h.run_s(45.0);
    point.query_latency_ms = sim::to_seconds(view.last_refresh_latency()) * 1e3;

    // (c') reply bytes: full rows vs aggregate pushdown.
    h.cluster.fabric().reset_stats();
    view.refresh_now();
    h.run_s(2.0);
    {
      point.row_reply_bytes =
          h.cluster.fabric().total_stats().bytes_by_type.get("db.query_reply");
    }
    h.cluster.fabric().reset_stats();
    view.set_aggregate_mode(true);
    view.refresh_now();
    h.run_s(2.0);
    {
      point.agg_reply_bytes =
          h.cluster.fabric().total_stats().bytes_by_type.get("db.query_reply");
    }
    view.set_aggregate_mode(false);

    // (d) event fan-out: publish at partition 0, measure delivery at the
    // GridView consumer (it subscribed to failure events).
    const sim::SimTime published = h.cluster.now();
    kernel::Event e;
    e.type = std::string(kernel::event_types::kNodeFailed);
    e.subject_node = net::NodeId{0};
    h.kernel.event_service(net::PartitionId{partitions > 1 ? 1u : 0u}).publish_local(e);
    const std::size_t events_before = view.events().size();
    while (view.events().size() == events_before) {
      if (!h.cluster.engine().step()) break;
    }
    point.event_fanout_ms = sim::to_seconds(h.cluster.now() - published) * 1e3;
  }

  // --- flat ablation: the whole cluster as ONE group ----------------------
  {
    cluster::ClusterSpec flat;
    flat.partitions = 1;
    flat.computes_per_partition = partitions * computes + 2 * (partitions - 1);
    flat.backups_per_partition = 1;
    Harness h(flat, params);
    h.run_s(65.0);
    const std::uint64_t before = h.kernel.gsd(net::PartitionId{0}).heartbeats_received();
    h.run_s(120.0);
    point.hb_flat_per_interval = static_cast<double>(
        h.kernel.gsd(net::PartitionId{0}).heartbeats_received() - before) / 4.0;
  }

  return point;
}

}  // namespace

int main() {
  std::printf(
      "Section 5.3 - scalability of the Phoenix kernel (and the Section 4.3\n"
      "partitioned-group-vs-flat-group ablation)\n\n");
  std::printf("%-7s | %-6s | %-20s | %-18s | %-10s | %-14s | %-12s | %-20s\n",
              "nodes", "parts", "hb/GSD/interval", "hb flat (ablate)", "meta size",
              "query latency", "event fanout", "reply KB (rows/agg)");
  std::printf("%s\n", std::string(128, '-').c_str());

  // 16-compute partitions, scaled from 72 to 1152 nodes (the Dawning 4000A
  // itself is the 640-node point: 40 partitions).
  for (const std::size_t partitions : {4u, 8u, 16u, 40u, 64u}) {
    const ScalePoint p = measure(partitions, 14);
    std::printf(
        "%-7zu | %-6zu | %-20.1f | %-18.1f | %-10zu | %11.2fms | %9.2fms | %8.1f / %-8.2f\n",
        p.nodes, p.partitions, p.hb_per_gsd_per_interval, p.hb_flat_per_interval,
        p.meta_group_size, p.query_latency_ms, p.event_fanout_ms,
        p.row_reply_bytes / 1e3, p.agg_reply_bytes / 1e3);
  }

  std::printf(
      "\nPer-GSD heartbeat load is constant in the partitioned design and\n"
      "grows linearly with cluster size in the flat ablation; the membership\n"
      "protocol only ever manages #partitions members (\"it is unacceptable\n"
      "for all nodes joining a group managed by group membership protocol\",\n"
      "paper 4.3). Query latency through the single access point stays\n"
      "flat because partition instances answer in parallel.\n");
  return 0;
}
