// Ablation of §4.3's multi-network heartbeat design: the watch daemon sends
// heartbeats through ALL network interfaces of its node. With three
// networks the GSD can tell a single-NIC failure from a node death and a
// one-network loss is non-fatal ("the recovery time of network is 0,
// because each node has three networks, only failure of one network isn't
// fatal"). This bench removes that redundancy and shows what breaks.
//
// Scenario per configuration: cut ONE network interface of a compute node
// and report how the kernel classifies it; then fail ONE ENTIRE network
// and count false node-failure diagnoses.
#include <cstdio>

#include "bench_util.h"

using namespace phoenix;
using namespace phoenix::bench;

namespace {

struct AblationResult {
  std::string nic_cut_diagnosis = "none";
  double nic_cut_diagnose_s = 0;
  std::size_t false_node_failures = 0;   // after losing one whole network
  bool partition_services_survived = true;
};

AblationResult run_with_networks(std::size_t networks) {
  AblationResult result;
  kernel::FtParams params;
  params.heartbeat_interval = 5 * sim::kSecond;  // faster turnaround, same logic

  // --- single-NIC cut -------------------------------------------------------
  {
    cluster::ClusterSpec spec = paper_testbed();
    spec.networks = networks;
    Harness h(spec, params);
    h.run_s(12.0);
    h.kernel.fault_log().clear();
    const net::NodeId victim = h.cluster.compute_nodes(net::PartitionId{0})[1];
    h.run_until_after_heartbeat(victim);
    h.injector.cut_interface(victim, net::NetworkId{0});
    h.run_s(30.0);
    for (const auto& record : h.kernel.fault_log().records()) {
      if (record.node == victim) {
        result.nic_cut_diagnosis = std::string(kernel::to_string(record.kind));
        result.nic_cut_diagnose_s =
            sim::to_seconds(record.diagnosed_at - record.detected_at);
        break;
      }
    }
  }

  // --- one whole network fails ------------------------------------------------
  {
    cluster::ClusterSpec spec = paper_testbed();
    spec.networks = networks;
    Harness h(spec, params);
    h.run_s(12.0);
    h.kernel.fault_log().clear();
    h.injector.fail_network(net::NetworkId{0});
    h.run_s(40.0);
    for (const auto& record : h.kernel.fault_log().records()) {
      if (record.kind == kernel::FaultKind::kNodeFailure) {
        ++result.false_node_failures;
      }
    }
    for (std::uint32_t p = 0; p < spec.partitions; ++p) {
      if (!h.kernel.event_service(net::PartitionId{p}).alive()) {
        result.partition_services_survived = false;
      }
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf(
      "Ablation - heartbeats over all networks (paper design, 3 NICs/node)\n"
      "vs a single network. Testbed: 136 nodes, 8 partitions.\n\n");
  std::printf("%-10s | %-28s | %-26s | %s\n", "networks",
              "one NIC cut classified as", "whole-network outage",
              "services survive");
  std::printf("%s\n", std::string(100, '-').c_str());

  for (const std::size_t networks : {3u, 2u, 1u}) {
    const AblationResult r = run_with_networks(networks);
    char outage[64];
    std::snprintf(outage, sizeof(outage), "%zu false node failures",
                  r.false_node_failures);
    char nic[64];
    std::snprintf(nic, sizeof(nic), "%s (%.3fs diag)", r.nic_cut_diagnosis.c_str(),
                  r.nic_cut_diagnose_s);
    std::printf("%-10zu | %-28s | %-26s | %s\n", networks, nic, outage,
                r.partition_services_survived ? "yes" : "NO");
  }

  std::printf(
      "\nWith >= 2 networks a NIC loss is pinpointed in sub-millisecond table\n"
      "analysis and recovery costs nothing; with 1 network the same fault is\n"
      "indistinguishable from node death (probe-timeout diagnosis, false\n"
      "node-failure handling, and a whole-network outage takes every node\n"
      "'down' at once). This is why the Dawning 4000A gives every node three\n"
      "networks and why WD heartbeats traverse all of them.\n");
  return 0;
}
