// Batched multi-tenant submission gateway benchmark (DESIGN.md §13).
//
// Models the paper's portal-scale grid scenario: a large tenant population
// (10k users in --quick, 100k in the full run) submitting small jobs to one
// PWS scheduler as a Poisson stream with a 10x flash-crowd window, a few
// job-spamming tenants, and a slice of submissions cancelled almost
// immediately (fat-fingered runs). Two modes over the same generated load:
//
//   per-job  - the historical path: one PwsSubmitMsg RPC per submission
//              from a client node, each paying its own checkpoint save and
//              scheduling pass; cancels are per-job PwsCancelMsg RPCs.
//   gateway  - submissions flow through the SubmissionGateway: weighted
//              fair batches on a 10 ms window, one replay-deduplicated
//              PwsSubmitBatchMsg per batch, window-coalesced checkpoints,
//              coalesced scheduling passes, token-bucket admission control,
//              immediate cancels absorbed client-side.
//
// Reported per mode: wall-clock submission throughput (jobs/s) over the
// whole trace AND sustained inside the flash window, scheduler
// submit->scheduled latency percentiles (pws.schedule_latency_us), gateway
// submit->verdict percentiles (pws.gateway.submit_latency_us), and the Jain
// fairness index over per-tenant acceptance ratios.
//
// Acceptance: gateway fairness >= 0.9 (both modes' runs); the full run must
// additionally show >= 5x gateway throughput over per-job at 100k users.
//
// Usage: pws_gateway [--quick] [out.json]   (default out: BENCH_pws_gateway.json)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "pws/gateway.h"
#include "pws/pws.h"
#include "workload/tenant_load.h"

namespace phoenix::bench {
namespace {

struct GatewayBenchParams {
  bool quick = false;
  std::size_t partitions = 4;
  std::size_t computes_per_partition = 128;  // 512 compute nodes
  workload::TenantLoadParams load;
  double admission_rate = 2.0;   // jobs/s sustained per tenant (gateway mode)
  double admission_burst = 16.0;
  double drain_s = 15.0;
};

GatewayBenchParams make_params(bool quick) {
  GatewayBenchParams p;
  p.quick = quick;
  p.load.horizon = 60 * sim::kSecond;
  p.load.flashes = {{20 * sim::kSecond, 30 * sim::kSecond, 10.0}};
  p.load.spammer_fraction = 0.001;  // 1 in 1000 tenants spams...
  p.load.spammer_boost = 100.0;     // ...at 100x a normal tenant's rate
  p.load.cancel_fraction = 0.03;
  p.load.cancel_delay = 1 * sim::kMillisecond;
  p.load.mean_duration_s = 0.02;
  p.load.min_duration_s = 0.005;
  if (quick) {
    p.partitions = 4;
    p.computes_per_partition = 32;  // 128 compute nodes
    p.load.tenant_count = 10'000;
    p.load.base_rate = 400.0;       // 4000 jobs/s during the flash window
  } else {
    p.load.tenant_count = 100'000;
    p.load.base_rate = 1000.0;      // 10000 jobs/s during the flash window
  }
  return p;
}

cluster::ClusterSpec spec_of(const GatewayBenchParams& p) {
  cluster::ClusterSpec s;
  s.partitions = p.partitions;
  s.computes_per_partition = p.computes_per_partition;
  s.backups_per_partition = 0;
  return s;
}

pws::PwsConfig pws_config_of(const GatewayBenchParams& p, const Harness& h,
                             bool batched) {
  pws::PwsConfig config;
  pws::PoolConfig pool;
  pool.name = "batch";
  pool.policy = pws::SchedPolicy::kFifo;
  for (std::uint32_t part = 0; part < p.partitions; ++part) {
    for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{part})) {
      pool.nodes.push_back(n);
    }
  }
  config.pools = {pool};
  // Both modes retire terminal jobs: with 10^5 submissions the historical
  // keep-everything table would make every per-job checkpoint O(total jobs)
  // and the comparison would measure retention, not the submission path.
  config.retain_terminal_jobs = false;
  if (batched) {
    config.checkpoint_interval = 10 * sim::kMillisecond;
    config.admission_rate = p.admission_rate;
    config.admission_burst = p.admission_burst;
  }
  return config;
}

/// Per-job wire client: one PwsSubmitMsg RPC per submission (the historical
/// portal behaviour), one PwsCancelMsg RPC per cancel.
class PerJobClient final : public cluster::Daemon {
 public:
  PerJobClient(cluster::Cluster& cluster, net::NodeId node,
               net::Address scheduler, std::vector<std::uint32_t>& accepted,
               std::size_t& cancel_requests)
      : Daemon(cluster, "pws.perjob_client", node, cluster::ports::kClient),
        scheduler_(scheduler),
        accepted_(accepted),
        cancel_requests_(cancel_requests) {
    start();
  }

  void submit(const pws::SubmitRequest& request, std::uint32_t tenant,
              sim::SimTime cancel_after) {
    auto msg = std::make_shared<pws::PwsSubmitMsg>();
    msg->request = request;
    msg->reply_to = address();
    msg->request_id = next_id_++;
    pending_.emplace(msg->request_id, Pending{tenant, cancel_after});
    send_any(scheduler_, std::move(msg));
  }

 private:
  struct Pending {
    std::uint32_t tenant = 0;
    sim::SimTime cancel_after = 0;
  };

  void handle(const net::Envelope& env) override {
    const auto* reply = net::message_cast<pws::PwsSubmitReplyMsg>(*env.message);
    if (reply == nullptr) return;
    auto it = pending_.find(reply->request_id);
    if (it == pending_.end()) return;
    const Pending p = it->second;
    pending_.erase(it);
    if (!reply->accepted) return;
    ++accepted_[p.tenant];
    if (p.cancel_after == 0) return;
    const pws::JobId id = reply->job_id;
    engine().schedule_after(p.cancel_after, [this, id] {
      if (!alive()) return;
      ++cancel_requests_;
      auto cancel = std::make_shared<pws::PwsCancelMsg>();
      cancel->job_id = id;
      cancel->reply_to = address();
      cancel->request_id = next_id_++;
      send_any(scheduler_, std::move(cancel));
    });
  }

  net::Address scheduler_;
  std::vector<std::uint32_t>& accepted_;
  std::size_t& cancel_requests_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
};

struct ModeResult {
  const char* mode = "";
  std::size_t submissions = 0;
  std::size_t accepted = 0;
  std::size_t denied = 0;
  std::size_t cancel_requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t batches = 0;          // gateway mode only
  std::uint64_t absorbed_cancels = 0; // gateway mode only
  double wall_s = 0;
  double jobs_per_s = 0;
  double flash_jobs_per_s = 0;  // sustained rate inside the flash window
  double fairness = 1.0;
  // submit->scheduled (scheduler) and submit->verdict (gateway) latencies.
  double sched_p50_us = 0, sched_p95_us = 0, sched_p99_us = 0;
  double gw_p50_us = 0, gw_p95_us = 0, gw_p99_us = 0;
};

/// Wall-clock rate of submissions processed inside the flash window.
struct FlashProbe {
  std::chrono::steady_clock::time_point start_wall, end_wall;
  std::size_t start_count = 0, end_count = 0;

  void arm(sim::Engine& engine, const workload::FlashWindow& window,
           const std::size_t& counter) {
    engine.schedule_after(window.start, [this, &counter] {
      start_wall = std::chrono::steady_clock::now();
      start_count = counter;
    });
    engine.schedule_after(window.end, [this, &counter] {
      end_wall = std::chrono::steady_clock::now();
      end_count = counter;
    });
  }

  double rate() const {
    const double s = std::chrono::duration<double>(end_wall - start_wall).count();
    return s > 0 ? static_cast<double>(end_count - start_count) / s : 0;
  }
};

double jain_index(const std::vector<std::uint32_t>& submitted,
                  const std::vector<std::uint32_t>& accepted) {
  double sum = 0, sum_sq = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < submitted.size(); ++i) {
    if (submitted[i] == 0) continue;
    const double x =
        static_cast<double>(accepted[i]) / static_cast<double>(submitted[i]);
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  if (n == 0 || sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(n) * sum_sq);
}

void fill_latencies(const obs::Registry& metrics, ModeResult& out) {
  if (const obs::Histogram* sched =
          metrics.find_histogram("pws.schedule_latency_us")) {
    out.sched_p50_us = sched->percentile(0.50);
    out.sched_p95_us = sched->percentile(0.95);
    out.sched_p99_us = sched->percentile(0.99);
  }
  if (const obs::Histogram* gw =
          metrics.find_histogram("pws.gateway.submit_latency_us")) {
    out.gw_p50_us = gw->percentile(0.50);
    out.gw_p95_us = gw->percentile(0.95);
    out.gw_p99_us = gw->percentile(0.99);
  }
}

ModeResult run_per_job(const GatewayBenchParams& params,
                       const std::vector<workload::TenantEvent>& events) {
  Harness h(spec_of(params));
  h.cluster.metrics().set_enabled(true);
  pws::PwsSystem pws_system(h.kernel, pws_config_of(params, h, false));
  h.run_s(2.0);

  ModeResult out;
  out.mode = "per-job";
  std::vector<std::uint32_t> submitted(params.load.tenant_count, 0);
  std::vector<std::uint32_t> accepted(params.load.tenant_count, 0);
  PerJobClient client(h.cluster,
                      h.cluster.compute_nodes(net::PartitionId{0})[0],
                      pws_system.scheduler().address(), accepted,
                      out.cancel_requests);

  auto& engine = h.cluster.engine();
  for (const workload::TenantEvent& ev : events) {
    engine.schedule_after(ev.arrival, [&, ev] {
      pws::SubmitRequest r;
      r.name = "j" + std::to_string(out.submissions);
      r.user = workload::tenant_name(ev.tenant);
      r.pool = "batch";
      r.nodes = ev.nodes;
      r.duration = ev.duration;
      ++out.submissions;
      ++submitted[ev.tenant];
      client.submit(r, ev.tenant, ev.cancel_after);
    });
  }
  FlashProbe flash;
  flash.arm(engine, params.load.flashes.front(), out.submissions);

  const auto wall_start = std::chrono::steady_clock::now();
  h.run_s(sim::to_seconds(params.load.horizon) + params.drain_s);
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count();

  out.accepted = 0;
  for (std::uint32_t a : accepted) out.accepted += a;
  out.jobs_per_s =
      out.wall_s > 0 ? static_cast<double>(out.submissions) / out.wall_s : 0;
  out.flash_jobs_per_s = flash.rate();
  out.fairness = jain_index(submitted, accepted);
  out.completed = pws_system.scheduler().stats().completed;
  out.cancelled = pws_system.scheduler().stats().cancelled;
  fill_latencies(h.cluster.metrics(), out);
  return out;
}

ModeResult run_gateway(const GatewayBenchParams& params,
                       const std::vector<workload::TenantEvent>& events) {
  Harness h(spec_of(params));
  h.cluster.metrics().set_enabled(true);
  pws::PwsSystem pws_system(h.kernel, pws_config_of(params, h, true));
  h.run_s(2.0);

  pws::GatewayConfig gw_config;
  gw_config.scheduler = pws_system.scheduler().address();
  pws::SubmissionGateway gateway(
      h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0], gw_config);

  ModeResult out;
  out.mode = "gateway";
  std::vector<std::uint32_t> submitted(params.load.tenant_count, 0);
  std::vector<std::uint32_t> accepted(params.load.tenant_count, 0);
  // Cancel bookkeeping for submissions that outrun their cancel request.
  std::unordered_map<pws::SubmissionGateway::Ticket, pws::JobId> job_of;
  std::unordered_set<pws::SubmissionGateway::Ticket> cancel_wanted;

  auto& engine = h.cluster.engine();
  for (const workload::TenantEvent& ev : events) {
    engine.schedule_after(ev.arrival, [&, ev] {
      pws::SubmitRequest r;
      r.name = "j" + std::to_string(out.submissions);
      r.user = workload::tenant_name(ev.tenant);
      r.pool = "batch";
      r.nodes = ev.nodes;
      r.duration = ev.duration;
      ++out.submissions;
      ++submitted[ev.tenant];
      const bool will_cancel = ev.cancel_after > 0;
      const auto ticket = gateway.submit(
          r, [&, tenant = ev.tenant, will_cancel](
                 pws::SubmissionGateway::Ticket tk,
                 const pws::BatchSubmitResult& res) {
            if (res.status == pws::SubmitStatus::kAccepted) {
              ++accepted[tenant];
              if (!will_cancel) return;
              if (cancel_wanted.erase(tk) > 0) {
                ++out.cancel_requests;
                gateway.cancel_job(res.job_id);
              } else {
                job_of[tk] = res.job_id;
              }
            }
          });
      if (will_cancel) {
        engine.schedule_after(ev.cancel_after, [&, ticket] {
          if (gateway.cancel(ticket)) return;  // absorbed in the window
          auto it = job_of.find(ticket);
          if (it != job_of.end()) {
            ++out.cancel_requests;
            gateway.cancel_job(it->second);
            job_of.erase(it);
          } else {
            cancel_wanted.insert(ticket);  // verdict still in flight
          }
        });
      }
    });
  }
  FlashProbe flash;
  flash.arm(engine, params.load.flashes.front(), out.submissions);

  const auto wall_start = std::chrono::steady_clock::now();
  h.run_s(sim::to_seconds(params.load.horizon) + params.drain_s);
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count();

  out.accepted = gateway.stats().accepted;
  out.denied = gateway.stats().denied;
  out.batches = gateway.stats().batches_sent;
  out.absorbed_cancels = gateway.stats().absorbed_cancels;
  out.jobs_per_s =
      out.wall_s > 0 ? static_cast<double>(out.submissions) / out.wall_s : 0;
  out.flash_jobs_per_s = flash.rate();
  out.fairness = jain_index(submitted, accepted);
  out.completed = pws_system.scheduler().stats().completed;
  out.cancelled = pws_system.scheduler().stats().cancelled;
  fill_latencies(h.cluster.metrics(), out);
  return out;
}

void print_mode(const ModeResult& r) {
  std::printf(
      "%-8s | %9zu | %11.0f | %11.0f | %8.3f | %9.0f | %9.0f | %9.0f\n",
      r.mode, r.submissions, r.jobs_per_s, r.flash_jobs_per_s, r.fairness,
      r.sched_p50_us, r.sched_p99_us, r.gw_p99_us);
}

void print_json(std::FILE* f, const ModeResult& r, const char* indent) {
  std::fprintf(
      f,
      "%s{\"mode\": \"%s\", \"submissions\": %zu, \"accepted\": %zu,"
      " \"denied\": %zu, \"completed\": %llu, \"cancelled\": %llu,\n"
      "%s \"cancel_requests\": %zu, \"batches\": %llu,"
      " \"absorbed_cancels\": %llu,\n"
      "%s \"wall_s\": %.3f, \"jobs_per_s\": %.0f, \"flash_jobs_per_s\": %.0f,"
      " \"fairness\": %.4f,\n"
      "%s \"sched_latency_us\": {\"p50\": %.0f, \"p95\": %.0f, \"p99\": %.0f},"
      " \"gateway_latency_us\": {\"p50\": %.0f, \"p95\": %.0f, \"p99\": %.0f}}",
      indent, r.mode, r.submissions, r.accepted, r.denied,
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.cancelled), indent, r.cancel_requests,
      static_cast<unsigned long long>(r.batches),
      static_cast<unsigned long long>(r.absorbed_cancels), indent, r.wall_s,
      r.jobs_per_s, r.flash_jobs_per_s, r.fairness, indent, r.sched_p50_us,
      r.sched_p95_us, r.sched_p99_us, r.gw_p50_us, r.gw_p95_us, r.gw_p99_us);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  using namespace phoenix;
  using namespace phoenix::bench;
  std::setvbuf(stdout, nullptr, _IONBF, 0);

  bool quick = false;
  const char* out_path = "BENCH_pws_gateway.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  const GatewayBenchParams params = make_params(quick);
  const std::vector<workload::TenantEvent> events =
      generate_tenant_load(params.load);
  std::printf("pws_gateway (%s): %zu tenants, %zu compute nodes, %zu"
              " submissions over %.0fs (flash 10x in [20s,30s))\n\n",
              quick ? "quick" : "full",
              static_cast<std::size_t>(params.load.tenant_count),
              params.partitions * params.computes_per_partition, events.size(),
              sim::to_seconds(params.load.horizon));
  std::printf("%-8s | %9s | %11s | %11s | %8s | %9s | %9s | %9s\n", "mode",
              "submits", "jobs/s wall", "flash j/s", "fairness", "sch p50us",
              "sch p99us", "gw p99us");
  std::printf("%s\n", std::string(94, '-').c_str());

  const ModeResult per_job = run_per_job(params, events);
  print_mode(per_job);
  const ModeResult gateway = run_gateway(params, events);
  print_mode(gateway);

  const double speedup =
      per_job.jobs_per_s > 0 ? gateway.jobs_per_s / per_job.jobs_per_s : 0;
  const double flash_speedup = per_job.flash_jobs_per_s > 0
                                   ? gateway.flash_jobs_per_s /
                                         per_job.flash_jobs_per_s
                                   : 0;
  std::printf("\nspeedup: %.1fx whole-trace, %.1fx sustained in the flash"
              " window; gateway sent %llu batches, absorbed %llu cancels"
              " client-side, denied %zu spam submissions\n",
              speedup, flash_speedup,
              static_cast<unsigned long long>(gateway.batches),
              static_cast<unsigned long long>(gateway.absorbed_cancels),
              gateway.denied);

  bool ok = true;
  if (gateway.fairness < 0.9) {
    std::fprintf(stderr, "FAIL: gateway fairness %.4f < 0.9\n",
                 gateway.fairness);
    ok = false;
  }
  if (!quick && flash_speedup < 5.0) {
    std::fprintf(stderr, "FAIL: gateway flash-window speedup %.1fx < 5x\n",
                 flash_speedup);
    ok = false;
  }

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"pws_gateway\",\n  \"config\": \"%s\",\n"
                 "  \"tenants\": %zu,\n  \"events\": %zu,\n  \"modes\": [\n",
                 quick ? "quick" : "full",
                 static_cast<std::size_t>(params.load.tenant_count),
                 events.size());
    print_json(f, per_job, "    ");
    std::fprintf(f, ",\n");
    print_json(f, gateway, "    ");
    std::fprintf(f, "\n  ],\n  \"speedup\": %.2f,\n  \"flash_speedup\": %.2f\n}\n",
                 speedup, flash_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}
