// Reproduces paper Table 4: "Phoenix's Impact on Linpack Benchmark
// Performance" — Linpack at 4 / 16 / 64 / 128 CPUs with and without the
// Phoenix kernel daemons running.
//
// The daemon overhead is MEASURED from the simulated cluster (the CPU share
// the per-node kernel daemons actually hold in the process tables while the
// kernel runs), then applied to the analytic HPL model. The paper reports
// that Phoenix costs Linpack roughly 1 % or less at every scale.
#include <cstdio>

#include "bench_util.h"
#include "workload/hpl_model.h"
#include "workload/mpi_job.h"

using namespace phoenix;
using namespace phoenix::bench;

namespace {

/// Boots a kernel on enough nodes for `cpus` and measures the average
/// background CPU fraction the kernel daemons impose on compute nodes.
double measured_daemon_fraction(unsigned cpus, unsigned cpus_per_node) {
  cluster::ClusterSpec spec;
  const unsigned nodes = std::max(1u, cpus / cpus_per_node);
  spec.partitions = std::max<std::size_t>(1, nodes / 16);
  spec.computes_per_partition =
      (nodes + spec.partitions - 1) / spec.partitions;
  spec.backups_per_partition = 0;
  spec.cpus_per_node = cpus_per_node;

  Harness h(spec);
  h.run_s(120.0);  // settle: heartbeats, detector sampling

  double fraction_sum = 0.0;
  std::size_t count = 0;
  for (std::uint32_t p = 0; p < spec.partitions; ++p) {
    for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{p})) {
      const auto& node = h.cluster.node(n);
      fraction_sum += node.daemon_cpu_load() / node.cpus();
      ++count;
    }
  }
  return count == 0 ? 0.0 : fraction_sum / static_cast<double>(count);
}

}  // namespace

int main() {
  std::printf("Table 4 - Phoenix's Impact on Linpack Benchmark Performance\n");
  std::printf("%-6s | %-16s | %-16s | %-9s | %-22s\n", "CPU",
              "Gflops w/o Phoenix", "Gflops w/ Phoenix", "ratio", "paper ratio");
  std::printf("%s\n", std::string(84, '-').c_str());

  constexpr unsigned kCpusPerNode = 4;
  for (const unsigned cpus : {4u, 16u, 64u, 128u}) {
    const double daemon_fraction = measured_daemon_fraction(cpus, kCpusPerNode);

    workload::HplConfig without;
    without.cpus = cpus;
    const auto clean = workload::run_hpl_model(without);

    workload::HplConfig with = without;
    with.background_cpu_fraction = daemon_fraction;
    const auto loaded = workload::run_hpl_model(with);

    const double ratio = 100.0 * loaded.gflops / clean.gflops;
    std::printf("%-6u | %16.2f | %16.2f | %8.2f%% | ~99%% (little impact)\n",
                cpus, clean.gflops, loaded.gflops, ratio);
  }

  std::printf(
      "\nDaemon footprint is measured from the live simulated process tables\n"
      "(WD + detector + PPM per compute node). As in the paper, the kernel\n"
      "has little impact on scientific computing at every scale.\n");

  // Network-side companion measurement: a 32-rank ring-exchange application
  // (HPL-like communication) shares the fabric with the kernel's control
  // traffic for five simulated minutes; who uses the wire?
  {
    cluster::ClusterSpec spec;
    spec.partitions = 4;
    spec.computes_per_partition = 8;
    spec.backups_per_partition = 0;
    Harness h(spec);
    workload::MpiJobConfig mpi;
    for (std::uint32_t p = 0; p < 4; ++p) {
      for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{p})) {
        mpi.nodes.push_back(n);
      }
    }
    workload::MpiJob job(h.cluster, mpi);
    h.run_s(30.0);
    h.cluster.fabric().reset_stats();
    job.start();
    h.run_s(300.0);
    job.stop();

    const auto stats = h.cluster.fabric().total_stats();
    std::uint64_t app = 0, total = 0;
    for (const auto& [type, bytes] : stats.bytes_by_type) {
      total += bytes;
      if (type.rfind("app.", 0) == 0) app += bytes;
    }
    const std::uint64_t control = total - app;
    std::printf(
        "\nNetwork share over 5 min with a 32-rank ring-exchange app running:\n"
        "  application traffic: %8.2f MB\n"
        "  kernel control traffic: %5.2f MB (%.3f%% of the wire)\n"
        "The kernel's heartbeats, detector exports and federation chatter are\n"
        "noise next to application communication.\n",
        app / 1e6, control / 1e6,
        total > 0 ? 100.0 * static_cast<double>(control) / static_cast<double>(total)
                  : 0.0);
  }
  return 0;
}
