// Reproduces paper Figure 9: "Integrated Web GUI for Phoenix-PWS:
// Start/Shutdown Nodes" — the PWS portal's management screen over a running
// workload, including the figure's node start/shutdown operation (rendered
// as ASCII; the original renders HTML).
#include <cstdio>

#include "bench_util.h"
#include "pws/portal.h"
#include "pws/pws.h"
#include "workload/job_trace.h"
#include "workload/resource_model.h"

using namespace phoenix;
using namespace phoenix::bench;

int main() {
  cluster::ClusterSpec spec;
  spec.partitions = 2;
  spec.computes_per_partition = 14;
  spec.backups_per_partition = 1;
  Harness h(spec);

  workload::ResourceModel model(h.cluster);
  model.start();

  pws::PwsConfig config;
  pws::PoolConfig pool;
  pool.name = "batch";
  pool.policy = pws::SchedPolicy::kBackfill;
  for (std::uint32_t p = 0; p < 2; ++p) {
    for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{p})) {
      pool.nodes.push_back(n);
    }
  }
  config.pools = {pool};
  pws::PwsSystem pws_system(h.kernel, config);

  pws::Portal portal(h.cluster, h.cluster.compute_nodes(net::PartitionId{0})[0],
                     h.kernel, pws_system.scheduler().address());
  portal.start();

  // A live workload.
  workload::TraceParams trace;
  trace.job_count = 24;
  trace.mean_interarrival_s = 6.0;
  trace.mean_duration_s = 300.0;
  trace.max_nodes = 6;
  for (const auto& job : workload::generate_trace(trace)) {
    h.injector.schedule(h.cluster.now() + job.arrival,
                        [&pws_system, job] {
                          pws::SubmitRequest r;
                          r.name = job.name;
                          r.user = job.user;
                          r.pool = "batch";
                          r.nodes = job.nodes;
                          r.duration = job.duration;
                          pws_system.scheduler().submit(r);
                        },
                        "submit");
  }
  h.run_s(120.0);

  std::printf("Figure 9 - Phoenix-PWS integrated portal (ASCII rendering)\n\n%s\n",
              portal.render().c_str());

  // The figure's operation: shut a node down, watch the job resilience
  // path kick in, start it back up.
  const net::NodeId target = h.cluster.compute_nodes(net::PartitionId{1})[3];
  std::printf("operator: shutdown node %u ...\n", target.value);
  portal.shutdown_node(target);
  h.run_s(60.0);
  std::printf("operator: start node %u ...\n\n", target.value);
  portal.start_node(target);
  h.run_s(60.0);

  std::printf("%s\n", portal.render().c_str());
  const auto& stats = pws_system.scheduler().stats();
  std::printf("jobs: %llu submitted, %llu completed, %llu requeued by the shutdown "
              "(none lost)\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.requeued));
  return 0;
}
