// Micro-benchmarks of the kernel primitives behind Figures 3-5: meta-group
// view operations, event publish -> delivery, data-bulletin ingest/query,
// checkpoint save/load, and the discrete-event engine itself. These measure
// the implementation's real CPU cost (google-benchmark), complementing the
// simulated-time experiments in the table benches.
#include <benchmark/benchmark.h>

#include "faults/fault_injector.h"
#include "kernel/kernel.h"

using namespace phoenix;

namespace {

cluster::ClusterSpec bench_spec(std::size_t partitions) {
  cluster::ClusterSpec spec;
  spec.partitions = partitions;
  spec.computes_per_partition = 14;
  spec.backups_per_partition = 1;
  return spec;
}

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(static_cast<sim::SimTime>(i), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_KernelBoot(benchmark::State& state) {
  const auto partitions = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    cluster::Cluster cluster(bench_spec(partitions));
    kernel::PhoenixKernel kernel(cluster);
    kernel.boot();
    benchmark::DoNotOptimize(kernel.partition_count());
  }
  state.SetLabel(std::to_string(partitions * 16) + " nodes");
}
BENCHMARK(BM_KernelBoot)->Arg(2)->Arg(8)->Arg(40);

void BM_SimulatedMinute(benchmark::State& state) {
  // Real CPU cost of simulating one minute of a running cluster.
  const auto partitions = static_cast<std::size_t>(state.range(0));
  cluster::Cluster cluster(bench_spec(partitions));
  kernel::PhoenixKernel kernel(cluster);
  kernel.boot();
  for (auto _ : state) {
    cluster.engine().run_for(60 * sim::kSecond);
  }
  state.SetLabel(std::to_string(partitions * 16) + " nodes");
}
BENCHMARK(BM_SimulatedMinute)->Arg(2)->Arg(8)->Arg(40);

void BM_EventPublishDeliver(benchmark::State& state) {
  cluster::Cluster cluster(bench_spec(4));
  kernel::PhoenixKernel kernel(cluster);
  kernel.boot();
  cluster.engine().run_for(5 * sim::kSecond);
  auto& es = kernel.event_service(net::PartitionId{0});
  const auto consumers = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < consumers; ++i) {
    kernel::Subscription sub;
    sub.consumer = {net::NodeId{3}, net::PortId{static_cast<std::uint16_t>(100 + i)}};
    sub.types = {"bench.event"};
    es.subscribe_local(sub, /*replicate=*/false);
  }
  for (auto _ : state) {
    kernel::Event e;
    e.type = "bench.event";
    es.publish_local(e);
    // Drain the deliveries (they dead-letter: no daemons bound). A bounded
    // run, not run(): the kernel's periodic timers never empty the queue.
    cluster.engine().run_for(5 * sim::kMillisecond);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(consumers));
}
BENCHMARK(BM_EventPublishDeliver)->Arg(1)->Arg(16)->Arg(256);

void BM_BulletinIngest(benchmark::State& state) {
  cluster::Cluster cluster(bench_spec(2));
  kernel::PhoenixKernel kernel(cluster);
  kernel.boot();
  auto& db = kernel.bulletin(net::PartitionId{0});
  kernel::NodeRecord record;
  record.node = net::NodeId{2};
  record.partition = net::PartitionId{0};
  std::uint32_t i = 0;
  for (auto _ : state) {
    record.node = net::NodeId{2 + (i++ % 14)};
    db.report_local(record, {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BulletinIngest);

void BM_BulletinLocalQuery(benchmark::State& state) {
  cluster::Cluster cluster(bench_spec(2));
  kernel::PhoenixKernel kernel(cluster);
  kernel.boot();
  auto& db = kernel.bulletin(net::PartitionId{0});
  for (std::uint32_t n = 0; n < 256; ++n) {
    kernel::NodeRecord record;
    record.node = net::NodeId{n};
    record.partition = net::PartitionId{0};
    db.report_local(record, {});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.node_rows());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BulletinLocalQuery);

void BM_CheckpointSaveLoad(benchmark::State& state) {
  cluster::Cluster cluster(bench_spec(2));
  kernel::PhoenixKernel kernel(cluster);
  kernel.boot();
  auto& cs = kernel.checkpoint_service(net::PartitionId{0});
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    cs.save_local("bench", "key", data, /*replicate=*/false);
    benchmark::DoNotOptimize(cs.load_local("bench", "key"));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckpointSaveLoad)->Arg(128)->Arg(4096)->Arg(1 << 16);

void BM_MetaViewSerialize(benchmark::State& state) {
  kernel::MetaView view;
  view.view_id = 42;
  for (std::uint32_t p = 0; p < static_cast<std::uint32_t>(state.range(0)); ++p) {
    view.members.push_back(kernel::MetaMember{
        net::PartitionId{p}, {net::NodeId{p * 17}, net::PortId{2}}, p});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel::MetaView::deserialize(view.serialize()));
  }
}
BENCHMARK(BM_MetaViewSerialize)->Arg(8)->Arg(40)->Arg(128);

void BM_FaultDetectionCycle(benchmark::State& state) {
  // Real CPU cost of a full WD-kill detect/diagnose/recover cycle at 1 s
  // heartbeats on a 2-partition cluster.
  for (auto _ : state) {
    cluster::Cluster cluster(bench_spec(2));
    kernel::FtParams params;
    params.heartbeat_interval = 1 * sim::kSecond;
    kernel::PhoenixKernel kernel(cluster, params);
    kernel.boot();
    cluster.engine().run_for(3 * sim::kSecond);
    faults::FaultInjector injector(cluster);
    injector.kill_daemon(kernel.watch_daemon(net::NodeId{3}));
    cluster.engine().run_for(5 * sim::kSecond);
    benchmark::DoNotOptimize(kernel.fault_log().records().size());
  }
}
BENCHMARK(BM_FaultDetectionCycle);

}  // namespace

BENCHMARK_MAIN();
