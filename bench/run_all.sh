#!/usr/bin/env sh
# Runs every bench binary and collects the outputs at the repo root:
#   BENCH_<name>.json  for benches with machine-readable output
#                      (engine_hotpath and monitoring_plane natively;
#                      micro_kernel via the google-benchmark JSON reporter)
#   BENCH_<name>.log   captured stdout of the text-table benches
#   BENCH_results.json every per-bench JSON merged into one object keyed
#                      by bench name (one file to diff across PRs)
#
# Usage: bench/run_all.sh [build-dir]     (default: build)
#
# All BENCH_* files are gitignored scratch — paste the numbers you care
# about into the PR description instead of committing them.
#
# Exits non-zero if any bench exits non-zero, after running them all (so one
# failure never hides another's numbers).
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench_dir="$build_dir/bench"

if [ ! -d "$bench_dir" ]; then
  echo "error: '$bench_dir' not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

failed=""

run_one() {
  name=$1
  shift
  bin="$bench_dir/$name"
  if [ ! -x "$bin" ]; then
    echo "--- skipping $name (not built)"
    return 0
  fi
  echo "--- $name"
  if ! "$bin" "$@"; then
    failed="$failed $name"
  fi
}

cd "$repo_root"

# JSON-emitting benches.
run_one engine_hotpath "$repo_root/BENCH_hotpath.json"
run_one monitoring_plane "$repo_root/BENCH_monitoring_plane.json"
run_one rpc_resilience "$repo_root/BENCH_rpc_resilience.json"
run_one pws_gateway "$repo_root/BENCH_pws_gateway.json"
run_one fault_matrix "$repo_root/BENCH_fault_matrix.json"
run_one group_scale "$repo_root/BENCH_group_scale.json"
run_one micro_kernel \
  "--benchmark_out=$repo_root/BENCH_micro_kernel.json" \
  --benchmark_out_format=json

# Text-table benches: capture stdout alongside the JSON files. POSIX sh has
# no PIPESTATUS, so write to the log file first and cat it back rather than
# piping through tee (which would swallow the bench's exit code).
for name in table1_wd_faults table2_gsd_faults table3_es_faults \
            table4_linpack fig6_monitoring scalability pws_vs_pbs \
            ablation_networks availability fig9_pws_gui; do
  run_one "$name" > "$repo_root/BENCH_$name.log" 2>&1
  [ -f "$repo_root/BENCH_$name.log" ] && cat "$repo_root/BENCH_$name.log"
done

# Merge every per-bench JSON into one object, keyed by bench name. A "host"
# key records the core count (so parallel-engine speedups in
# BENCH_hotpath.json's "parallel" section can be read in context) plus the
# git revision and UTC wall time of the run, so any archived
# BENCH_results.json can be traced back to the exact tree that produced it.
results="$repo_root/BENCH_results.json"
rm -f "$results"
ncpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
git_sha=$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)
if [ -n "$(git -C "$repo_root" status --porcelain 2>/dev/null)" ]; then
  git_sha="$git_sha-dirty"
fi
run_at=$(date -u +%Y-%m-%dT%H:%M:%SZ)
{
  printf '{\n'
  printf '  "host": { "hardware_concurrency": %s, "git_sha": "%s", "run_at_utc": "%s" },\n' \
    "$ncpus" "$git_sha" "$run_at"
  first=1
  for f in "$repo_root"/BENCH_*.json; do
    [ -e "$f" ] || continue
    # Never merge the merged file into itself: the output redirection
    # creates it before this glob is expanded.
    [ "$f" = "$results" ] && continue
    name=$(basename "$f" .json)
    name=${name#BENCH_}
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    printf '  "%s": ' "$name"
    # Re-indent the file's JSON under its key, without a trailing newline.
    awk 'NR > 1 { printf "\n  " } { printf "%s", $0 }' "$f"
  done
  printf '\n}\n'
} > "$results"

echo
echo "collected:"
ls -1 "$repo_root"/BENCH_* 2>/dev/null || echo "  (nothing produced)"

if [ -n "$failed" ]; then
  echo
  echo "FAILED benches:$failed" >&2
  exit 1
fi
