// Group-management scaling: flat meta-group vs zoned hierarchy (DESIGN.md §15).
//
// The paper keeps every partition's GSD in ONE flat ring, so a burst of
// correlated failures (a rack of consecutive partitions dying at once)
// serializes around the ring: each removal exposes the NEXT dead member to a
// fresh predecessor whose grace window starts from zero — detection and
// reconfiguration cost ~burst_size ring cycles. The zoned topology strides
// consecutive partitions across zone sub-rings, so the same burst lands in
// `burst` DIFFERENT rings whose detections and recoveries run in parallel.
//
// The bench sweeps cluster sizes (64/256 partitions in --quick; 1024/4096
// added in the full run), boots each size twice — GroupTopology::flat() and
// zoned(sqrt-sized zones) — kills the server nodes of 8 consecutive
// mid-range partitions right after boot settles, and measures the
// DETECTION+RECONFIGURATION latency: simulated time from the crash instant
// until the last of the 8 is journaled recovered (removed from its ring,
// migrated to its backup node, views reconverged).
//
// Acceptance: zoned <= 0.8x flat at every size, and <= 0.5x flat at 4096
// (full run only) — the hierarchy must be sub-linear in the burst, not a
// constant-factor tweak.
//
// Usage: group_scale [--quick] [out.json]   (default out: BENCH_group_scale.json)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

namespace phoenix::bench {
namespace {

constexpr std::uint32_t kBurst = 8;  // consecutive partitions killed at once

struct CaseResult {
  std::size_t partitions = 0;
  std::uint32_t zone_size = 0;  // 0: flat
  double latency_s = -1;        // detection+reconfiguration, -1: no convergence
  std::uint64_t recovered = 0;
};

kernel::FtParams case_params(bool zoned, std::uint32_t zone_size) {
  kernel::FtParams p;
  p.heartbeat_interval = 2 * sim::kSecond;
  p.detector_sample_interval = 1 * sim::kSecond;
  if (zoned) p.topology = kernel::FtParams::GroupTopology::zoned(zone_size);
  return p;
}

/// Zone width for a sweep size: sqrt(N) keeps both levels O(sqrt(N)) —
/// 64 -> 8x8, 256 -> 16x16, 1024 -> 32x32, 4096 -> 64x64.
std::uint32_t zone_size_for(std::size_t partitions) {
  return static_cast<std::uint32_t>(
      std::lround(std::sqrt(static_cast<double>(partitions))));
}

CaseResult run_case(std::size_t partitions, bool zoned) {
  cluster::ClusterSpec spec;
  spec.partitions = partitions;
  spec.computes_per_partition = 0;  // membership-layer bench: servers + backups
  spec.backups_per_partition = 1;
  spec.networks = 3;

  const std::uint32_t zone_size = zoned ? zone_size_for(partitions) : 0;
  Harness h(spec, case_params(zoned, zone_size));
  h.run_s(6.0);  // boot settles on the seeded views

  // Kill the server nodes of kBurst CONSECUTIVE partitions in the middle of
  // the id range: ring-adjacent under flat(), one per zone under zoned()
  // (stride = num_zones >= kBurst at every swept size), and never a boot
  // leader of any ring.
  const std::uint32_t first = static_cast<std::uint32_t>(partitions / 2);
  const sim::SimTime t0 = h.cluster.now();
  for (std::uint32_t k = 0; k < kBurst; ++k) {
    h.injector.crash_node(
        h.cluster.server_node(net::PartitionId{first + k}));
  }

  // Run until every victim is journaled recovered (cap: 600 simulated s).
  CaseResult r;
  r.partitions = partitions;
  r.zone_size = zone_size;
  for (int tick = 0; tick < 600; ++tick) {
    h.run_s(1.0);
    std::uint64_t recovered = 0;
    sim::SimTime last = t0;
    for (const auto& rec : h.kernel.fault_log().records()) {
      if (rec.component != "GSD" || !rec.recovered) continue;
      if (rec.detected_at < t0) continue;
      ++recovered;
      last = std::max(last, rec.recovered_at);
    }
    if (recovered >= kBurst) {
      r.recovered = recovered;
      r.latency_s = sim::to_seconds(last - t0);
      break;
    }
  }
  return r;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  using namespace phoenix;
  using namespace phoenix::bench;
  std::setvbuf(stdout, nullptr, _IONBF, 0);

  bool quick = false;
  const char* out_path = "BENCH_group_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  std::vector<std::size_t> sizes = {64, 256};
  if (!quick) {
    sizes.push_back(1024);
    sizes.push_back(4096);
  }

  std::printf("group_scale (%s): %u consecutive server-node crashes;"
              " detection+reconfiguration latency, flat vs zoned\n\n",
              quick ? "quick" : "full", kBurst);
  std::printf("%10s | %9s | %10s | %10s | %6s\n", "partitions", "zone_size",
              "flat_s", "zoned_s", "ratio");
  std::printf("%s\n", std::string(56, '-').c_str());

  bool ok = true;
  struct Row {
    std::size_t partitions;
    std::uint32_t zone_size;
    double flat_s, zoned_s, ratio;
  };
  std::vector<Row> rows;
  for (std::size_t n : sizes) {
    const CaseResult flat = run_case(n, /*zoned=*/false);
    const CaseResult zoned = run_case(n, /*zoned=*/true);
    if (flat.latency_s < 0 || zoned.latency_s < 0) {
      std::fprintf(stderr,
                   "FAIL: no convergence at %zu partitions (flat %.1f,"
                   " zoned %.1f)\n",
                   n, flat.latency_s, zoned.latency_s);
      ok = false;
      continue;
    }
    const double ratio = zoned.latency_s / flat.latency_s;
    rows.push_back({n, zoned.zone_size, flat.latency_s, zoned.latency_s, ratio});
    std::printf("%10zu | %9u | %10.2f | %10.2f | %6.2f\n", n, zoned.zone_size,
                flat.latency_s, zoned.latency_s, ratio);
    if (ratio > 0.8) {
      std::fprintf(stderr, "FAIL: zoned/flat %.2f > 0.8 at %zu partitions\n",
                   ratio, n);
      ok = false;
    }
    if (!quick && n == 4096 && ratio > 0.5) {
      std::fprintf(stderr, "FAIL: zoned/flat %.2f > 0.5 at 4096 partitions\n",
                   ratio);
      ok = false;
    }
  }

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"group_scale\",\n  \"config\": \"%s\",\n"
                 "  \"burst\": %u,\n  \"cases\": [\n",
                 quick ? "quick" : "full", kBurst);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"partitions\": %zu, \"zone_size\": %u,"
                   " \"flat_s\": %.3f, \"zoned_s\": %.3f, \"ratio\": %.3f}%s\n",
                   r.partitions, r.zone_size, r.flat_s, r.zoned_s, r.ratio,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"pass\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}
