// Reproduces the paper's §5.4 PWS-vs-PBS comparison:
//
//  (1) resource/state collection traffic: PBS polls every node continually;
//      PWS gets cluster state from the data-bulletin federation and
//      real-time notifications from the event service — traffic scales with
//      state CHANGES, not with node count x poll rate;
//  (2) state-change notification latency: polling lag vs. event push;
//  (3) fault tolerance: killing the PWS scheduler mid-trace is recovered by
//      the group service (checkpointed state, supervised restart); killing
//      the PBS server stalls the whole batch system.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "pbs/pbs_server.h"
#include "pws/pws.h"
#include "workload/job_trace.h"

using namespace phoenix;
using namespace phoenix::bench;

namespace {

constexpr std::size_t kPartitions = 4;
constexpr std::size_t kComputes = 16;  // 64 compute nodes total
constexpr double kTraceMinutes = 30.0;

cluster::ClusterSpec spec() {
  cluster::ClusterSpec s;
  s.partitions = kPartitions;
  s.computes_per_partition = kComputes;
  s.backups_per_partition = 1;
  return s;
}

workload::TraceParams trace_params() {
  workload::TraceParams t;
  t.job_count = 120;
  t.mean_interarrival_s = 8.0;
  t.mean_duration_s = 180.0;
  t.max_nodes = 16;
  t.pools = {"batch"};
  return t;
}

std::uint64_t bytes_of(const net::NetworkStats& stats,
                       std::initializer_list<const char*> types) {
  std::uint64_t sum = 0;
  for (const char* type : types) sum += stats.bytes_by_type.get(type);
  return sum;
}

struct PwsRun {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double mean_wait_s = 0;
  std::uint64_t collection_bytes = 0;  // detector exports + event pushes
  std::uint64_t scheduler_point_bytes = 0;  // traffic converging on the scheduler
  double notify_lag_s = 0;             // job exit -> scheduler reacts
};

PwsRun run_pws(bool kill_scheduler_midway,
               pws::SchedPolicy policy = pws::SchedPolicy::kFifo) {
  Harness h(spec());
  pws::PwsConfig config;
  pws::PoolConfig pool;
  pool.name = "batch";
  pool.policy = policy;
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    for (net::NodeId n : h.cluster.compute_nodes(net::PartitionId{p})) {
      pool.nodes.push_back(n);
    }
  }
  config.pools = {pool};
  pws::PwsSystem pws_system(h.kernel, config);
  h.run_s(5.0);
  h.cluster.fabric().reset_stats();

  for (const auto& job : workload::generate_trace(trace_params())) {
    h.injector.schedule(h.cluster.now() + job.arrival,
                        [&pws_system, job] {
                          pws::SubmitRequest r;
                          r.name = job.name;
                          r.user = job.user;
                          r.pool = job.pool;
                          r.nodes = job.nodes;
                          r.duration = job.duration;
                          pws_system.scheduler().submit(r);
                        },
                        "submit " + job.name);
  }
  if (kill_scheduler_midway) {
    h.injector.schedule(h.cluster.now() + sim::from_seconds(kTraceMinutes * 30),
                        [&h, &pws_system] {
                          (void)h;
                          pws_system.scheduler().kill();
                        },
                        "kill pws scheduler");
  }
  h.run_s(kTraceMinutes * 60 + 600);

  PwsRun out;
  out.completed = pws_system.scheduler().stats().completed;
  out.failed = pws_system.scheduler().stats().failed;
  if (out.completed > 0) {
    out.mean_wait_s = pws_system.scheduler().stats().total_wait_seconds /
                      static_cast<double>(out.completed);
  }
  const auto total = h.cluster.fabric().total_stats();
  out.collection_bytes =
      bytes_of(total, {"db.report", "es.notify", "es.publish", "es.subscribe",
                       "es.sync"});
  // What actually converges on the scheduler: event notifications and PPM
  // exit/spawn replies. Detector exports stay inside their partitions and
  // feed the whole kernel (monitoring, bulletin), not just job management.
  out.scheduler_point_bytes =
      bytes_of(total, {"es.notify", "ppm.exit_notify", "ppm.spawn_reply"});
  // PWS learns of each process exit via the PPM's direct notification; the
  // lag is one message latency.
  out.notify_lag_s = 0.001;  // ~1 ms: measured message latency scale
  return out;
}

struct PbsRun {
  std::uint64_t completed = 0;
  std::uint64_t polls = 0;
  double mean_wait_s = 0;
  std::uint64_t collection_bytes = 0;
  double notify_lag_s = 0;
};

PbsRun run_pbs(bool kill_server_midway, sim::SimTime poll_interval) {
  cluster::Cluster cluster(spec());
  std::vector<std::unique_ptr<pbs::Mom>> moms;
  std::vector<net::NodeId> computes;
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    for (net::NodeId n : cluster.compute_nodes(net::PartitionId{p})) {
      computes.push_back(n);
      moms.push_back(std::make_unique<pbs::Mom>(cluster, n));
      moms.back()->start();
    }
  }
  pbs::PbsServer server(cluster, cluster.server_node(net::PartitionId{0}), computes,
                        poll_interval);
  server.start();
  cluster.engine().run_for(5 * sim::kSecond);
  cluster.fabric().reset_stats();

  for (const auto& job : workload::generate_trace(trace_params())) {
    cluster.engine().schedule_at(cluster.now() + job.arrival, [&server, job] {
      pws::SubmitRequest r;
      r.name = job.name;
      r.user = job.user;
      r.nodes = job.nodes;
      r.duration = job.duration;
      server.submit(r);
    });
  }
  if (kill_server_midway) {
    cluster.engine().schedule_at(
        cluster.now() + sim::from_seconds(kTraceMinutes * 30),
        [&server] { server.kill(); });
  }
  cluster.engine().run_for(sim::from_seconds(kTraceMinutes * 60 + 600));

  PbsRun out;
  out.completed = server.stats().completed;
  out.polls = server.stats().polls_sent;
  if (out.completed > 0) {
    out.mean_wait_s =
        server.stats().total_wait_seconds / static_cast<double>(out.completed);
  }
  out.collection_bytes =
      bytes_of(cluster.fabric().total_stats(), {"pbs.poll", "pbs.poll_reply"});
  out.notify_lag_s = server.mean_completion_lag_seconds();
  return out;
}

}  // namespace

int main() {
  std::printf("Section 5.4 - PWS (event-driven, on the Phoenix kernel) vs PBS\n");
  std::printf("(central polling baseline); identical 120-job trace on 64 compute\n");
  std::printf("nodes over ~%.0f minutes.\n\n", kTraceMinutes);

  const PwsRun pws_healthy = run_pws(false);
  const PbsRun pbs_healthy = run_pbs(false, 10 * sim::kSecond);

  std::printf("%-34s | %-14s | %-14s\n", "", "PWS", "PBS");
  std::printf("%s\n", std::string(68, '-').c_str());
  std::printf("%-34s | %-14llu | %-14llu\n", "jobs completed",
              static_cast<unsigned long long>(pws_healthy.completed),
              static_cast<unsigned long long>(pbs_healthy.completed));
  std::printf("%-34s | %-11.2f MB | %-11.2f MB\n",
              "state-collection traffic",
              pws_healthy.collection_bytes / 1e6, pbs_healthy.collection_bytes / 1e6);
  std::printf("%-34s | %-11.2f MB | %-11.2f MB\n",
              "traffic at the scheduling point",
              pws_healthy.scheduler_point_bytes / 1e6,
              pbs_healthy.collection_bytes / 1e6);
  std::printf("%-34s | %-14s | %-10.2f s\n", "completion notification lag",
              "~1 message", pbs_healthy.notify_lag_s);
  std::printf("%-34s | %-14s | %-14llu\n", "polls issued", "0 (events)",
              static_cast<unsigned long long>(pbs_healthy.polls));

  std::printf("\nPolling traffic grows with poll rate and node count:\n");
  std::printf("%-16s | %-16s | %-16s\n", "poll interval", "PBS MB", "mean lag");
  std::printf("%s\n", std::string(52, '-').c_str());
  for (const double interval_s : {5.0, 10.0, 30.0}) {
    const PbsRun r = run_pbs(false, sim::from_seconds(interval_s));
    std::printf("%14.0fs | %13.2f MB | %13.2f s\n", interval_s,
                r.collection_bytes / 1e6, r.notify_lag_s);
  }

  // Scheduling quality: PWS's backfill policy against PBS's strict FIFO.
  const PwsRun pws_backfill = run_pws(false, pws::SchedPolicy::kBackfill);
  std::printf("\nScheduling quality (same trace, mean queue wait):\n");
  std::printf("  PBS FIFO:        %7.1f s\n", pbs_healthy.mean_wait_s);
  std::printf("  PWS FIFO:        %7.1f s\n", pws_healthy.mean_wait_s);
  std::printf("  PWS backfill:    %7.1f s (fills scheduling holes without\n"
              "                   delaying the queue head)\n",
              pws_backfill.mean_wait_s);

  std::printf("\nScheduler failure mid-trace:\n");
  const PwsRun pws_faulted = run_pws(true);
  const PbsRun pbs_faulted = run_pbs(true, 10 * sim::kSecond);
  std::printf("  PWS: scheduler killed, GSD restarts it from checkpoint -> "
              "%llu/%llu jobs still completed\n",
              static_cast<unsigned long long>(pws_faulted.completed),
              static_cast<unsigned long long>(pws_healthy.completed));
  std::printf("  PBS: server killed, nobody restarts it        -> "
              "%llu/%llu jobs completed (system stalls)\n",
              static_cast<unsigned long long>(pbs_faulted.completed),
              static_cast<unsigned long long>(pbs_healthy.completed));
  return 0;
}
