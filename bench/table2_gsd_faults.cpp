// Reproduces paper Table 2: "Three Unhealthy Situations for GSD".
//
// Paper values:
//   process: 30 s / 0.29 s / 2.03 s (sum 32.32 s)  — restart in place + rejoin
//   node:    30 s / 0.3 s  / 2.95 s (sum 33.25 s)  — migrate to another node
//   network: 30 s / 348 us / 0      (sum ~30 s)
#include <cstdio>

#include "bench_util.h"

using namespace phoenix;
using namespace phoenix::bench;

int main() {
  kernel::FtParams params;
  const net::PartitionId target{4};

  print_fault_table_header(
      "Table 2 - Three Unhealthy Situations for GSD (measured vs paper)");

  Harness probe_cluster(paper_testbed(), params);
  const net::NodeId server = probe_cluster.cluster.server_node(target);

  const auto process = run_fault_scenario(
      params, server,
      [target](Harness& h, faults::Scenario& s) {
        s.kill_daemon(h.kernel.gsd(target));
      },
      "GSD", kernel::FaultKind::kProcessFailure);
  if (process) print_fault_row("process", *process, "30s", "0.29s", "2.03s");

  const auto node = run_fault_scenario(
      params, server,
      [server](Harness&, faults::Scenario& s) { s.crash_node(server); },
      "GSD", kernel::FaultKind::kNodeFailure);
  if (node) print_fault_row("node", *node, "30s", "0.3s", "2.95s");

  const auto network = run_fault_scenario(
      params, server,
      [server](Harness&, faults::Scenario& s) {
        s.cut_interface(server, net::NetworkId{1});
      },
      "GSD", kernel::FaultKind::kNetworkFailure);
  if (network) print_fault_row("network", *network, "30s", "348us", "0s");

  std::printf(
      "\nGSD process failures restart in place and rejoin the ring at the\n"
      "tail; server-node failures migrate the GSD (and the partition's\n"
      "kernel services) to another node of the partition, with state\n"
      "retrieved from the checkpoint federation.\n");
  return 0;
}
