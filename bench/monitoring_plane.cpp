// Monitoring data-plane benchmark (DESIGN.md §8).
//
// Three measurements of the detector -> bulletin -> query pipeline:
//
//   ingest  - reports/s a bulletin instance absorbs through the local API:
//             full DbReportMsg snapshots (rebuild every app row per sample)
//             vs the steady-state DbDeltaMsg path (gauges + app churn only).
//             The delta path must ingest at >= 2x the snapshot rate.
//   wire    - steady-state bytes shipped per node-sample: every-sample full
//             snapshots vs the delta stream with its periodic resync.
//   query   - cluster-scope single-access-point query (GridView's refresh)
//             at Dawning-4000A scale (640 nodes) and 4x that (2560 nodes):
//             wall-clock per query, operator-new allocations per query, and
//             the simulated federation round-trip latency.
//
// Emits BENCH_monitoring_plane.json (or argv[1]) for trend tracking.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gridview/gridview.h"
#include "workload/resource_model.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every ordinary operator-new in the process bumps
// it, so alloc deltas around a query measure the whole reply path (collect,
// fan-out, merge, reply) and nothing is hidden in a library.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace phoenix::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Ingest: full snapshots vs deltas through the bulletin's local API.
// ---------------------------------------------------------------------------

constexpr std::size_t kIngestNodes = 64;
constexpr std::size_t kAppsPerNode = 8;
constexpr std::size_t kIngestRounds = 4000;  // reports = rounds * nodes

struct IngestFixture {
  explicit IngestFixture(kernel::DataBulletin& db) : db(db) {
    const char* names[] = {"hpl.xhpl", "wrf.exe", "blastp", "povray"};
    const char* owners[] = {"alice", "bob", "carol"};
    for (std::size_t n = 0; n < kIngestNodes; ++n) {
      NodeTemplate t;
      t.rec.node = net::NodeId{static_cast<std::uint32_t>(1000 + n)};
      t.rec.partition = net::PartitionId{0};
      t.rec.usage.cpu_pct = 12.0;
      t.rec.usage.mem_pct = 51.0;
      t.rec.alive = true;
      for (std::size_t a = 0; a < kAppsPerNode; ++a) {
        const cluster::Pid pid = n * 100 + a + 1;
        t.apps.push_back(kernel::AppRecord{
            .node = t.rec.node,
            .pid = pid,
            .name_id = net::intern_symbol(names[pid % 4]),
            .owner_id = net::intern_symbol(owners[pid % 3]),
            .state = cluster::ProcessState::kRunning,
            .cpu_share = 1.0,
        });
      }
      templates.push_back(std::move(t));
    }
  }

  struct NodeTemplate {
    kernel::NodeRecord rec;
    std::vector<kernel::AppRecord> apps;
    std::uint64_t seq = 0;
    cluster::Pid next_pid = 0;
  };

  kernel::DataBulletin& db;
  std::vector<NodeTemplate> templates;
};

/// Every sample materializes and ships the whole process table (the pre-§8
/// wire protocol): per node per round, build the DbReportMsg a detector
/// would send (fresh app-row vector), charge its wire_size() the way the
/// fabric does on every send, and absorb it into the table.
double bench_ingest_full(kernel::DataBulletin& db) {
  IngestFixture fx(db);
  std::size_t wire_bytes = 0;
  const auto t0 = Clock::now();
  for (std::size_t round = 0; round < kIngestRounds; ++round) {
    for (auto& t : fx.templates) {
      t.rec.usage.cpu_pct += 0.01;  // gauges always drift a little
      auto report = std::make_shared<kernel::DbReportMsg>();
      report->node_record = t.rec;
      report->apps.assign(t.apps.begin(), t.apps.end());
      report->seq = ++t.seq;
      wire_bytes += report->wire_size();  // fabric accounting, every send
      fx.db.report_local(report->node_record, std::move(report->apps),
                         report->seq);
    }
  }
  const double secs = seconds_since(t0);
  if (wire_bytes == 0) std::fprintf(stderr, "full ingest shipped nothing\n");
  return static_cast<double>(kIngestRounds * kIngestNodes) / secs;
}

/// Steady state of the delta protocol: gauges moved, app churn rare (one
/// exit + one start per node every 16th sample), table untouched otherwise.
double bench_ingest_delta(kernel::DataBulletin& db) {
  IngestFixture fx(db);
  for (auto& t : fx.templates) {  // anchor every chain with one snapshot
    std::vector<kernel::AppRecord> apps(t.apps.begin(), t.apps.end());
    db.report_local(t.rec, std::move(apps), ++t.seq);
    t.next_pid = t.rec.node.value * 1000 + 500;
  }
  std::size_t wire_bytes = 0;
  const auto t0 = Clock::now();
  for (std::size_t round = 0; round < kIngestRounds; ++round) {
    for (auto& t : fx.templates) {
      auto delta = std::make_shared<kernel::DbDeltaMsg>();
      delta->node = t.rec.node;
      delta->partition = t.rec.partition;
      delta->prev_seq = t.seq;
      delta->seq = ++t.seq;
      delta->has_usage = true;
      t.rec.usage.cpu_pct += 0.01;
      delta->usage = t.rec.usage;
      delta->sampled_at = static_cast<sim::SimTime>(round);
      if (round % 16 == 15) {
        delta->exited.push_back(t.apps[round / 16 % kAppsPerNode].pid);
        delta->started.push_back(kernel::AppRecord{
            .node = t.rec.node,
            .pid = ++t.next_pid,
            .name_id = t.apps[0].name_id,
            .owner_id = t.apps[0].owner_id,
            .state = cluster::ProcessState::kRunning,
            .cpu_share = 1.0,
        });
        t.apps[round / 16 % kAppsPerNode].pid = t.next_pid;
      }
      wire_bytes += delta->wire_size();  // fabric accounting, every send
      db.apply_delta(*delta);
    }
  }
  const double secs = seconds_since(t0);
  if (wire_bytes == 0) std::fprintf(stderr, "delta ingest shipped nothing\n");
  if (db.deltas_dropped() != 0) {
    std::fprintf(stderr, "delta ingest dropped %llu deltas (broken chains)\n",
                 static_cast<unsigned long long>(db.deltas_dropped()));
  }
  return static_cast<double>(kIngestRounds * kIngestNodes) / secs;
}

// ---------------------------------------------------------------------------
// Wire accounting: bytes per node-sample, snapshots vs delta stream.
// ---------------------------------------------------------------------------

struct WireCosts {
  double full = 0;   // every sample ships the whole table
  double delta = 0;  // deltas with a resync snapshot every resync_every
};

WireCosts steady_state_wire_bytes(unsigned resync_every) {
  kernel::DbReportMsg full;
  full.node_record.node = net::NodeId{1};
  kernel::DbDeltaMsg delta;
  delta.has_usage = true;  // gauges drift every sample; app churn amortizes ~0
  for (std::size_t a = 0; a < kAppsPerNode; ++a) {
    full.apps.push_back(kernel::AppRecord{
        .node = full.node_record.node,
        .pid = a + 1,
        .name_id = net::intern_symbol("hpl.xhpl"),
        .owner_id = net::intern_symbol("alice"),
    });
  }
  WireCosts w;
  w.full = static_cast<double>(full.wire_size());
  w.delta = (static_cast<double>(full.wire_size()) +
             static_cast<double>(resync_every - 1) *
                 static_cast<double>(delta.wire_size())) /
            static_cast<double>(resync_every);
  return w;
}

// ---------------------------------------------------------------------------
// Cluster-scope query at scale.
// ---------------------------------------------------------------------------

struct QueryResult {
  std::size_t nodes = 0;
  std::size_t app_rows = 0;
  double wall_ms = 0;       // wall-clock per query round-trip
  double allocs = 0;        // operator-new calls per query round-trip
  double sim_latency_us = 0;  // simulated federation latency
};

QueryResult bench_query(std::uint32_t partitions) {
  cluster::ClusterSpec spec;
  spec.partitions = partitions;
  spec.computes_per_partition = 14;
  spec.backups_per_partition = 1;
  spec.cpus_per_node = 4;
  Harness h(spec);

  workload::ResourceModelParams load;
  load.churn_apps_per_node = 2;  // populate the app tables realistically
  load.churn_exit_probability = 0.05;
  workload::ResourceModel model(h.cluster, load);
  model.start();

  gridview::GridView view(h.cluster,
                          h.cluster.compute_nodes(net::PartitionId{0})[0],
                          h.kernel, 3600 * sim::kSecond);  // refreshes driven manually
  view.start();
  h.run_s(40.0);  // detectors settle: several delta rounds + a resync cycle
  model.stop();   // keep the measured windows quiet

  constexpr int kQueries = 20;
  const auto before = view.refreshes_completed();
  double sim_latency_s = 0;
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (int q = 0; q < kQueries; ++q) {
    view.refresh_now();
    h.run_s(0.05);  // covers the fan-out round trip; detectors stay idle
    sim_latency_s += sim::to_seconds(view.last_refresh_latency());
  }
  const double wall = seconds_since(t0);
  const std::uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
  if (view.refreshes_completed() - before != kQueries) {
    std::fprintf(stderr, "query bench: only %llu/%d refreshes completed\n",
                 static_cast<unsigned long long>(view.refreshes_completed() - before),
                 kQueries);
  }

  QueryResult r;
  r.nodes = h.cluster.node_count();
  r.app_rows = view.last_summary().app_count;
  r.wall_ms = wall / kQueries * 1e3;
  r.allocs = static_cast<double>(allocs1 - allocs0) / kQueries;
  r.sim_latency_us = sim_latency_s / kQueries * 1e6;
  return r;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  using namespace phoenix;
  using namespace phoenix::bench;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const char* out_path = argc > 1 ? argv[1] : "BENCH_monitoring_plane.json";

  // Two bulletins from one tiny harness; sim time never advances during the
  // timed loops, so the surrounding daemons are dormant.
  cluster::ClusterSpec tiny;
  tiny.partitions = 2;
  tiny.computes_per_partition = 2;
  tiny.backups_per_partition = 0;
  Harness h(tiny);

  const double full_rate = bench_ingest_full(h.kernel.bulletin(net::PartitionId{0}));
  const double delta_rate = bench_ingest_delta(h.kernel.bulletin(net::PartitionId{1}));
  const double speedup = delta_rate / full_rate;
  std::printf("ingest full-snapshot : %12.0f reports/s\n", full_rate);
  std::printf("ingest delta         : %12.0f reports/s   (%.2fx)\n", delta_rate,
              speedup);

  kernel::FtParams defaults;
  const WireCosts wire = steady_state_wire_bytes(defaults.detector_resync_every);
  std::printf("wire per node-sample : %.0f B full, %.1f B delta stream (%.2fx smaller)\n",
              wire.full, wire.delta, wire.full / wire.delta);

  const QueryResult q640 = bench_query(40);
  std::printf("query %4zu nodes     : %.3f ms wall, %.0f allocs, %.0f us sim latency"
              " (%zu app rows)\n",
              q640.nodes, q640.wall_ms, q640.allocs, q640.sim_latency_us,
              q640.app_rows);
  const QueryResult q2560 = bench_query(160);
  std::printf("query %4zu nodes     : %.3f ms wall, %.0f allocs, %.0f us sim latency"
              " (%zu app rows)\n",
              q2560.nodes, q2560.wall_ms, q2560.allocs, q2560.sim_latency_us,
              q2560.app_rows);

  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"monitoring_plane\",\n"
        "  \"ingest_full_reports_per_sec\": %.0f,\n"
        "  \"ingest_delta_reports_per_sec\": %.0f,\n"
        "  \"ingest_speedup\": %.2f,\n"
        "  \"wire_bytes_per_sample_full\": %.0f,\n"
        "  \"wire_bytes_per_sample_delta\": %.1f,\n"
        "  \"wire_reduction_factor\": %.2f,\n"
        "  \"query_640\": {\"nodes\": %zu, \"app_rows\": %zu, \"wall_ms\": %.3f,"
        " \"allocs\": %.0f, \"sim_latency_us\": %.0f},\n"
        "  \"query_2560\": {\"nodes\": %zu, \"app_rows\": %zu, \"wall_ms\": %.3f,"
        " \"allocs\": %.0f, \"sim_latency_us\": %.0f}\n"
        "}\n",
        full_rate, delta_rate, speedup, wire.full, wire.delta,
        wire.full / wire.delta, q640.nodes, q640.app_rows, q640.wall_ms,
        q640.allocs, q640.sim_latency_us, q2560.nodes, q2560.app_rows,
        q2560.wall_ms, q2560.allocs, q2560.sim_latency_us);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
